//! # sim-fault — deterministic fault & adversarial-schedule injection plans
//!
//! A [`FaultPlan`] is a *pure description* of perturbations to apply to one
//! simulated run: errno faults at chosen syscall occurrences, asynchronous
//! signals at chosen instruction boundaries, adversarial scheduler
//! decisions, and transient page-permission flips. The plan owns a seed and
//! a splittable PRNG ([`Rng`]) but never consults wall-clock time or any
//! other ambient state, so the same plan applied to the same guest produces
//! the same run, byte for byte, under both the block engine and the
//! stepwise oracle (rr's "chaos mode" and DiOS pioneered this
//! seed-replayable style of perturbation).
//!
//! The crate is dependency-free on purpose: `sim-kernel` consumes plans,
//! and the `simfault` explorer in `bench` generates them, but the plan
//! itself is plain data with a compact string encoding
//! ([`FaultPlan::encode`]/[`FaultPlan::decode`]) so any failing sweep cell
//! can be replayed with one command.
//!
//! Decision methods are pure functions of `(plan, architectural state)` —
//! retired-instruction counts, scheduler round numbers, syscall occurrence
//! indices — never of engine-internal structure (block boundaries, icache
//! state), which is what makes injection engine-invariant.

/// A splittable splitmix64 PRNG: the only randomness source a plan (or a
/// sweep generator) may use. Splitting derives an independent stream, so
/// e.g. per-cell plans drawn from one sweep seed never correlate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rng(u64);

const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The splitmix64 output mix.
const fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// A stream seeded with `seed`.
    pub const fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    /// The next value in this stream.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(GOLDEN);
        mix64(self.0)
    }

    /// A uniformly distributed value in `0..n` (`n` > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Derives an independent child stream (advances this one once).
    pub fn split(&mut self) -> Rng {
        Rng(mix64(self.next_u64() ^ 0x5851_F42D_4C95_7F2D))
    }
}

/// Stateless deterministic hash of `(seed, a, b)` — used for per-round
/// scheduler decisions so they depend only on architectural state, never on
/// how many times a stateful stream was consulted.
pub const fn mix(seed: u64, a: u64, b: u64) -> u64 {
    mix64(
        seed ^ a.wrapping_mul(GOLDEN)
            ^ b.wrapping_mul(0xC2B2_AE3D_27D4_EB4F),
    )
}

/// The errno-fault flavor injected at a syscall occurrence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Return `-EINTR` without executing the call (a signal "interrupted"
    /// it). Correct interposers restart the call.
    Eintr,
    /// Return `-EAGAIN` without executing the call. Robust guests retry.
    Eagain,
    /// Return `-ENOMEM` without executing the call (mmap only).
    Enomem,
    /// Execute the call but cap its transfer length so it completes
    /// partially (read/write only). Side effects stay faithful.
    Partial,
}

impl FaultKind {
    /// Stable lowercase tag used in plan encodings and obs events.
    pub fn tag(self) -> &'static str {
        match self {
            FaultKind::Eintr => "eintr",
            FaultKind::Eagain => "eagain",
            FaultKind::Enomem => "enomem",
            FaultKind::Partial => "partial",
        }
    }

    fn parse(s: &str) -> Result<FaultKind, String> {
        match s {
            "eintr" => Ok(FaultKind::Eintr),
            "eagain" => Ok(FaultKind::Eagain),
            "enomem" => Ok(FaultKind::Enomem),
            "partial" => Ok(FaultKind::Partial),
            _ => Err(format!("unknown fault kind {s:?}")),
        }
    }
}

/// One errno fault: the `occurrence`-th executed (post-`interposer_live`)
/// occurrence of syscall `nr` gets `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallFault {
    /// Syscall number to match (Linux x86-64 ABI numbering).
    pub nr: u64,
    /// 0-based index among matching occurrences.
    pub occurrence: u64,
    /// What to inject.
    pub kind: FaultKind,
}

/// Asynchronous signal injection at every `stride`-th instruction boundary
/// in the retired-instruction window `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignalWindow {
    /// Signal number to deliver (to whichever thread is running).
    pub signo: u64,
    /// First retired-instruction boundary of the window.
    pub start: u64,
    /// One past the last boundary of the window.
    pub end: u64,
    /// Boundary stride within the window (>= 1).
    pub stride: u64,
}

/// Adversarial scheduler perturbation, decided per scheduling round from
/// [`mix`] so both engines agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedPlan {
    /// Every `rotate_period`-th round, rotate the runnable list by a
    /// seed-derived amount (priority inversion: the fair order is
    /// adversarially deprioritized). 0 disables rotation.
    pub rotate_period: u64,
    /// If nonzero, cap each slice at `1 + mix(..) % slice_jitter`
    /// instructions — adversarial preemption points. 0 disables.
    pub slice_jitter: u64,
}

/// A transient page-permission flip: at retired-instruction boundary `at`,
/// the page containing `page` in the *running* process's space gets raw
/// permission bits `perms` for `duration` retired instructions, then its
/// original permissions are restored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PermFlip {
    /// Retired-instruction boundary at which the flip lands.
    pub at: u64,
    /// Guest address identifying the target page.
    pub page: u64,
    /// Raw permission bits (sim-mem `Perms` encoding: R=1, W=2, X=4).
    pub perms: u8,
    /// Retired instructions until restoration.
    pub duration: u64,
}

/// A complete, replayable perturbation plan for one run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for all seed-derived decisions (scheduler perturbation).
    pub seed: u64,
    /// Errno faults, keyed by (nr, occurrence).
    pub syscall_faults: Vec<SyscallFault>,
    /// Asynchronous signal storm window, if any.
    pub signal_window: Option<SignalWindow>,
    /// Scheduler perturbation, if any.
    pub sched: Option<SchedPlan>,
    /// Transient page-permission flips.
    pub perm_flips: Vec<PermFlip>,
}

/// Syscall numbers eligible for `Eintr`/`Eagain` injection: calls whose
/// callers must already tolerate those errnos on real Linux. Never inject
/// into control-plane calls (rt_sigreturn, exit, execve, clone, prctl, …) —
/// that would perturb the *machine*, not the workload.
const RESTARTABLE: &[u64] = &[0, 1, 35, 42, 43, 61, 202, 232, 500];

impl FaultPlan {
    /// An empty (guest-invisible) plan carrying only a seed.
    pub fn zero(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// True if applying this plan must be guest-invisible.
    pub fn is_zero(&self) -> bool {
        self.syscall_faults.is_empty()
            && self.signal_window.is_none()
            && self.sched.is_none()
            && self.perm_flips.is_empty()
    }

    /// Whether `kind` may be injected into syscall `nr` at all.
    pub fn injectable(nr: u64, kind: FaultKind) -> bool {
        match kind {
            FaultKind::Eintr | FaultKind::Eagain => RESTARTABLE.contains(&nr),
            FaultKind::Enomem => nr == 9,         // mmap
            FaultKind::Partial => nr == 0 || nr == 1, // read/write
        }
    }

    /// The fault to inject into the `occurrence`-th executed occurrence of
    /// `nr`, if any. Ineligible (nr, kind) pairs never fire, so a decoded
    /// plan cannot perturb control-plane syscalls.
    pub fn syscall_fault(&self, nr: u64, occurrence: u64) -> Option<FaultKind> {
        self.syscall_faults
            .iter()
            .find(|f| {
                f.nr == nr && f.occurrence == occurrence && Self::injectable(nr, f.kind)
            })
            .map(|f| f.kind)
    }

    /// The signal to deliver at retired-instruction boundary `retired`.
    pub fn boundary_signal(&self, retired: u64) -> Option<u64> {
        let w = self.signal_window?;
        let stride = w.stride.max(1);
        (retired >= w.start && retired < w.end && (retired - w.start).is_multiple_of(stride))
            .then_some(w.signo)
    }

    /// The earliest signal-injection boundary at or after `retired`.
    pub fn next_signal_at(&self, retired: u64) -> Option<u64> {
        let w = self.signal_window?;
        let stride = w.stride.max(1);
        let at = if retired <= w.start {
            w.start
        } else {
            w.start + (retired - w.start).div_ceil(stride) * stride
        };
        (at < w.end).then_some(at)
    }

    /// The earliest permission-flip boundary at or after `retired`.
    pub fn next_flip_at(&self, retired: u64) -> Option<u64> {
        self.perm_flips
            .iter()
            .map(|f| f.at)
            .filter(|&at| at >= retired)
            .min()
    }

    /// Flips landing exactly at boundary `retired`.
    pub fn flips_at(&self, retired: u64) -> impl Iterator<Item = &PermFlip> {
        self.perm_flips.iter().filter(move |f| f.at == retired)
    }

    /// The earliest plan-driven boundary event (signal or flip start) at or
    /// after `retired`. Restoration boundaries are tracked by the kernel,
    /// which knows what it flipped.
    pub fn next_boundary(&self, retired: u64) -> Option<u64> {
        match (self.next_signal_at(retired), self.next_flip_at(retired)) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// How far to rotate an `n`-entry runnable list in scheduling round
    /// `round` (0 = fair order preserved).
    pub fn sched_rotation(&self, round: u64, n: usize) -> usize {
        let Some(s) = self.sched else { return 0 };
        if s.rotate_period == 0 || n < 2 || !round.is_multiple_of(s.rotate_period) {
            return 0;
        }
        (mix(self.seed, round, 1) % n as u64) as usize
    }

    /// The adversarial slice cap (in instructions) for runnable slot `slot`
    /// in round `round`, if the plan preempts at all.
    pub fn slice_cap(&self, round: u64, slot: u64) -> Option<u64> {
        let s = self.sched?;
        (s.slice_jitter > 0).then(|| 1 + mix(self.seed, round, slot.wrapping_add(2)) % s.slice_jitter)
    }

    /// Compact single-token encoding, e.g.
    /// `s=7;f=0:2:eintr;w=10:5000:6000:100;c=3:40;p=0:0:0:200`.
    pub fn encode(&self) -> String {
        let mut parts = vec![format!("s={}", self.seed)];
        if !self.syscall_faults.is_empty() {
            let fs: Vec<String> = self
                .syscall_faults
                .iter()
                .map(|f| format!("{}:{}:{}", f.nr, f.occurrence, f.kind.tag()))
                .collect();
            parts.push(format!("f={}", fs.join(",")));
        }
        if let Some(w) = self.signal_window {
            parts.push(format!("w={}:{}:{}:{}", w.signo, w.start, w.end, w.stride));
        }
        if let Some(c) = self.sched {
            parts.push(format!("c={}:{}", c.rotate_period, c.slice_jitter));
        }
        if !self.perm_flips.is_empty() {
            let ps: Vec<String> = self
                .perm_flips
                .iter()
                .map(|p| format!("{}:{}:{}:{}", p.at, p.page, p.perms, p.duration))
                .collect();
            parts.push(format!("p={}", ps.join(",")));
        }
        parts.join(";")
    }

    /// Parses [`FaultPlan::encode`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed field.
    pub fn decode(s: &str) -> Result<FaultPlan, String> {
        fn num(s: &str) -> Result<u64, String> {
            s.parse::<u64>().map_err(|_| format!("bad number {s:?}"))
        }
        fn fields<const N: usize>(s: &str) -> Result<[&str; N], String> {
            let v: Vec<&str> = s.split(':').collect();
            v.try_into()
                .map_err(|_| format!("expected {N} ':'-fields in {s:?}"))
        }
        let mut plan = FaultPlan::default();
        for part in s.split(';').filter(|p| !p.is_empty()) {
            let (key, val) = part
                .split_once('=')
                .ok_or_else(|| format!("missing '=' in {part:?}"))?;
            match key {
                "s" => plan.seed = num(val)?,
                "f" => {
                    for item in val.split(',') {
                        let [nr, occ, kind] = fields::<3>(item)?;
                        plan.syscall_faults.push(SyscallFault {
                            nr: num(nr)?,
                            occurrence: num(occ)?,
                            kind: FaultKind::parse(kind)?,
                        });
                    }
                }
                "w" => {
                    let [signo, start, end, stride] = fields::<4>(val)?;
                    plan.signal_window = Some(SignalWindow {
                        signo: num(signo)?,
                        start: num(start)?,
                        end: num(end)?,
                        stride: num(stride)?,
                    });
                }
                "c" => {
                    let [rot, jit] = fields::<2>(val)?;
                    plan.sched = Some(SchedPlan {
                        rotate_period: num(rot)?,
                        slice_jitter: num(jit)?,
                    });
                }
                "p" => {
                    for item in val.split(',') {
                        let [at, page, perms, dur] = fields::<4>(item)?;
                        plan.perm_flips.push(PermFlip {
                            at: num(at)?,
                            page: num(page)?,
                            perms: u8::try_from(num(perms)?)
                                .map_err(|_| format!("perms out of range in {item:?}"))?,
                            duration: num(dur)?,
                        });
                    }
                }
                _ => return Err(format!("unknown field {key:?}")),
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_splittable() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let mut a = Rng::new(42);
        let mut child = a.split();
        // The child stream diverges from the parent's continuation.
        assert_ne!(child.next_u64(), a.next_u64());
        assert!(Rng::new(1).below(10) < 10);
    }

    #[test]
    fn mix_is_stateless_and_spreads() {
        assert_eq!(mix(7, 1, 2), mix(7, 1, 2));
        assert_ne!(mix(7, 1, 2), mix(7, 2, 1));
        assert_ne!(mix(7, 1, 2), mix(8, 1, 2));
    }

    #[test]
    fn zero_plan_decides_nothing() {
        let p = FaultPlan::zero(9);
        assert!(p.is_zero());
        assert_eq!(p.syscall_fault(0, 0), None);
        assert_eq!(p.boundary_signal(123), None);
        assert_eq!(p.next_boundary(0), None);
        assert_eq!(p.sched_rotation(5, 4), 0);
        assert_eq!(p.slice_cap(5, 0), None);
    }

    #[test]
    fn syscall_fault_matches_occurrence_and_eligibility() {
        let p = FaultPlan {
            syscall_faults: vec![
                SyscallFault { nr: 0, occurrence: 2, kind: FaultKind::Eintr },
                // rt_sigreturn is never injectable, even if a plan says so.
                SyscallFault { nr: 15, occurrence: 0, kind: FaultKind::Eintr },
            ],
            ..FaultPlan::default()
        };
        assert_eq!(p.syscall_fault(0, 2), Some(FaultKind::Eintr));
        assert_eq!(p.syscall_fault(0, 1), None);
        assert_eq!(p.syscall_fault(15, 0), None);
        assert!(!FaultPlan::injectable(9, FaultKind::Eintr));
        assert!(FaultPlan::injectable(9, FaultKind::Enomem));
        assert!(!FaultPlan::injectable(2, FaultKind::Partial));
    }

    #[test]
    fn signal_window_boundaries() {
        let p = FaultPlan {
            signal_window: Some(SignalWindow { signo: 10, start: 100, end: 160, stride: 25 }),
            ..FaultPlan::default()
        };
        assert_eq!(p.boundary_signal(100), Some(10));
        assert_eq!(p.boundary_signal(125), Some(10));
        assert_eq!(p.boundary_signal(150), Some(10));
        assert_eq!(p.boundary_signal(124), None);
        assert_eq!(p.boundary_signal(175), None);
        assert_eq!(p.next_signal_at(0), Some(100));
        assert_eq!(p.next_signal_at(101), Some(125));
        assert_eq!(p.next_signal_at(150), Some(150));
        assert_eq!(p.next_signal_at(151), None);
    }

    #[test]
    fn sched_decisions_are_bounded_and_engine_free() {
        let p = FaultPlan {
            seed: 3,
            sched: Some(SchedPlan { rotate_period: 2, slice_jitter: 10 }),
            ..FaultPlan::default()
        };
        for round in 0..20 {
            let r = p.sched_rotation(round, 4);
            assert!(r < 4);
            if round % 2 != 0 {
                assert_eq!(r, 0);
            }
            let cap = p.slice_cap(round, 1).unwrap();
            assert!((1..=10).contains(&cap));
        }
    }

    #[test]
    fn encode_decode_round_trips() {
        let p = FaultPlan {
            seed: 77,
            syscall_faults: vec![
                SyscallFault { nr: 0, occurrence: 3, kind: FaultKind::Partial },
                SyscallFault { nr: 202, occurrence: 0, kind: FaultKind::Eagain },
            ],
            signal_window: Some(SignalWindow { signo: 10, start: 5_000, end: 9_000, stride: 500 }),
            sched: Some(SchedPlan { rotate_period: 3, slice_jitter: 17 }),
            perm_flips: vec![PermFlip { at: 12_345, page: 0, perms: 1, duration: 400 }],
        };
        let s = p.encode();
        assert_eq!(FaultPlan::decode(&s).unwrap(), p);
        // Zero plan round-trips too.
        let z = FaultPlan::zero(5);
        assert_eq!(FaultPlan::decode(&z.encode()).unwrap(), z);
        assert!(FaultPlan::decode("x=1").is_err());
        assert!(FaultPlan::decode("f=0:0").is_err());
        assert!(FaultPlan::decode("w=1:2:3").is_err());
    }
}
