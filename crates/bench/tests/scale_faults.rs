//! Fault-equivalence property for the scale servers: epollsrv-sim and
//! pollsrv-sim answer the same request stream with byte-identical
//! responses under any errno fault plan over their hot syscalls.
//!
//! The two servers multiplex completely differently — readiness events
//! vs a speculative busy-scan — so their syscall streams (and therefore
//! the global per-nr occurrence counters the fault engine indexes by)
//! diverge immediately. The property pins down that every injection
//! site in both guests is errno-tolerant: a fault may land on a
//! different call site in each variant, but the client-observed byte
//! stream must not be able to tell.

use apps::{install_world, run_scale, scale_spec, RX_LOG};
use bench::Config;
use proptest::prelude::*;
use sim_fault::{FaultKind, FaultPlan, SyscallFault};
use sim_kernel::EngineConfig;
use sim_loader::boot_kernel;

const BUDGET: u64 = 2_000_000_000_000;
const REQUESTS: u32 = 48;
const RESP64: u8 = 2;

/// Runs one server variant under `plan` and returns the client's
/// recorded response byte stream.
fn rx_stream(epoll: bool, plan: &FaultPlan) -> Vec<u8> {
    let mut k = boot_kernel();
    install_world(&mut k.vfs);
    k.configure(EngineConfig {
        fault: Some(plan.clone()),
        ..EngineConfig::default()
    });
    let ip = Config::ZpolineUltra.make();
    let spec = scale_spec(epoll, 1, 24, 6, REQUESTS, RESP64, 1, true);
    let run = run_scale(&mut k, ip.as_ref(), &spec, BUDGET).expect("scale run");
    assert_eq!(run.requests, u64::from(REQUESTS), "no request may be lost to a fault");
    k.vfs.read_file(RX_LOG).expect("rx log").to_vec()
}

/// One injectable errno fault on a hot syscall: read (0), write (1),
/// accept (43), or epoll_wait (232). EINTR and EAGAIN only — both are
/// plain `-errno` returns the guests retry; `Partial` would need
/// byte-exact resume logic the strawman deliberately lacks.
fn arb_fault() -> impl Strategy<Value = SyscallFault> {
    (
        proptest::sample::select(vec![0u64, 1, 43, 232]),
        0u64..240,
        proptest::sample::select(vec![FaultKind::Eintr, FaultKind::Eagain]),
    )
        .prop_map(|(nr, occurrence, kind)| SyscallFault {
            nr,
            occurrence,
            kind,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same fault plan, both multiplexing strategies: identical bytes.
    #[test]
    fn errno_faults_never_perturb_the_response_stream(
        faults in proptest::collection::vec(arb_fault(), 1..6),
        seed in 1u64..1 << 48,
    ) {
        let plan = FaultPlan {
            syscall_faults: faults,
            ..FaultPlan::zero(seed)
        };
        let ep = rx_stream(true, &plan);
        let po = rx_stream(false, &plan);
        prop_assert_eq!(ep.len(), REQUESTS as usize * usize::from(RESP64) * 64);
        prop_assert_eq!(&ep, &po);
    }
}
