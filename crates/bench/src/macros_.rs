//! The Table 6 macrobenchmarks: nginx/lighttpd/redis throughput relative to
//! native, plus the sqlite completion-time row.

use crate::Config;
use apps::{install_world, run_macro, run_sqlite, sqlite_cfg, MacroSpec};
use k23::OfflineSession;
use sim_kernel::{Kernel, RunExit};
use sim_loader::boot_kernel;

const BUDGET: u64 = 40_000_000_000_000;

fn fresh_world() -> Kernel {
    let mut k = boot_kernel();
    install_world(&mut k.vfs);
    k
}

/// Runs the offline phase for a server spec on a scratch kernel and returns
/// the serialized log file (path, bytes) for transplanting into measurement
/// kernels — the paper collects logs once and reuses them (§5.1).
pub fn collect_offline_log(spec: &MacroSpec) -> (String, Vec<u8>) {
    let mut k = fresh_world();
    apps::install_spec_config(&mut k, spec);
    let session = OfflineSession::new(&mut k, spec.server);
    session
        .spawn(&mut k, &[spec.server.to_string()], &[])
        .expect("offline server spawn");
    // Server parks in accept; then drive a short client load.
    assert_eq!(k.run(BUDGET), RunExit::Deadlock, "offline server ready");
    for _ in 0..spec.clients {
        k.spawn(spec.client, &[], &[], None).expect("offline client");
    }
    let exit = k.run(BUDGET);
    assert_ne!(exit, RunExit::Budget, "offline load finished");
    let log = session.finish(&mut k);
    let path = k23::SiteLog::path_for(spec.server);
    let bytes = k.vfs.read_file(&path).expect("offline log written").to_vec();
    let _ = log;
    (path, bytes)
}

/// Offline log for the sqlite completion workload.
pub fn collect_offline_log_sqlite(cfg: &[u8]) -> (String, Vec<u8>) {
    let mut k = fresh_world();
    k.vfs
        .write_file("/etc/sqlite-sim.conf", cfg)
        .expect("sqlite cfg");
    let session = OfflineSession::new(&mut k, "/usr/bin/sqlite-sim");
    let (_pid, exit) = session.run_once(&mut k, &[], &[], BUDGET).expect("offline run");
    assert_eq!(exit, RunExit::AllExited);
    session.finish(&mut k);
    let path = k23::SiteLog::path_for("/usr/bin/sqlite-sim");
    let bytes = k.vfs.read_file(&path).expect("log").to_vec();
    (path, bytes)
}

fn install_log(k: &mut Kernel, log: &Option<(String, Vec<u8>)>) {
    if let Some((path, bytes)) = log {
        k.vfs.mkdir_p(k23::LOG_DIR).expect("log dir creatable");
        k.vfs.write_file(path, bytes).expect("log install");
        k.vfs.set_immutable(k23::LOG_DIR, true).expect("seal");
    }
}

/// Throughput of `spec` under `config` (requests per Gcycle).
pub fn macro_throughput(spec: &MacroSpec, config: Config, log: &Option<(String, Vec<u8>)>) -> f64 {
    let mut k = fresh_world();
    install_log(&mut k, log);
    let ip = config.make();
    let res = run_macro(&mut k, ip.as_ref(), spec, BUDGET)
        .unwrap_or_else(|e| panic!("{} under {}: {e:?}", spec.name, config.label()));
    res.throughput()
}

/// sqlite completion cycles under `config`.
pub fn sqlite_cycles(cfg: &[u8], config: Config, log: &Option<(String, Vec<u8>)>) -> u64 {
    let mut k = fresh_world();
    install_log(&mut k, log);
    let ip = config.make();
    run_sqlite(&mut k, ip.as_ref(), cfg, BUDGET)
        .unwrap_or_else(|e| panic!("sqlite under {}: {e:?}", config.label()))
}

/// One Table 6 row: native absolute + relative per configuration.
#[derive(Debug, Clone)]
pub struct MacroRow {
    /// Row label.
    pub name: String,
    /// Native throughput (requests per Gcycle; sqlite: Gcycles runtime).
    pub native: f64,
    /// (config label, relative-to-native fraction).
    pub rel: Vec<(&'static str, f64)>,
}

/// Runs the full Table 6.
pub fn run_table6(scale: u64) -> Vec<MacroRow> {
    let mut rows = Vec::new();
    for spec in apps::table6_specs(scale) {
        let offline = Some(collect_offline_log(&spec));
        let native = macro_throughput(&spec, Config::Native, &None);
        let rel = Config::TABLE6
            .iter()
            .map(|c| {
                let log = if c.needs_offline() { &offline } else { &None };
                (c.label(), macro_throughput(&spec, *c, log) / native)
            })
            .collect();
        rows.push(MacroRow {
            name: spec.name.clone(),
            native,
            rel,
        });
    }
    // sqlite: relative runtime = native_time / interposed_time (paper's
    // formula).
    let cfg = sqlite_cfg(scale);
    let offline = Some(collect_offline_log_sqlite(&cfg));
    let native_cycles = sqlite_cycles(&cfg, Config::Native, &None);
    let rel = Config::TABLE6
        .iter()
        .map(|c| {
            let log = if c.needs_offline() { &offline } else { &None };
            (
                c.label(),
                native_cycles as f64 / sqlite_cycles(&cfg, *c, log) as f64,
            )
        })
        .collect();
    rows.push(MacroRow {
        name: "sqlite (speedtest1, size 800)".to_string(),
        native: native_cycles as f64 / 1e9,
        rel,
    });
    rows
}

/// The paper's Table 6 relative percentages, for side-by-side output.
/// Order: zpoline-default, zpoline-ultra, lazypoline, K23-default,
/// K23-ultra, K23-ultra+, SUD.
pub const PAPER_TABLE6: [(&str, [f64; 7]); 11] = [
    ("nginx (1 worker, 0 KB)", [99.05, 98.40, 97.85, 97.94, 97.29, 96.70, 51.29]),
    ("nginx (1 worker, 4 KB)", [96.73, 96.14, 96.04, 96.24, 95.89, 95.76, 45.95]),
    ("nginx (10 workers, 0 KB)", [99.62, 99.34, 98.79, 99.52, 98.39, 97.83, 53.93]),
    ("nginx (10 workers, 4 KB)", [98.83, 98.76, 98.14, 98.59, 98.12, 98.23, 53.97]),
    ("lighttpd (1 worker, 0 KB)", [98.76, 99.48, 98.23, 99.15, 97.89, 97.50, 61.25]),
    ("lighttpd (1 worker, 4 KB)", [99.28, 98.37, 97.93, 98.56, 98.01, 97.62, 61.62]),
    ("lighttpd (10 workers, 0 KB)", [98.77, 98.60, 98.18, 98.16, 98.36, 97.69, 59.83]),
    ("lighttpd (10 workers, 4 KB)", [99.17, 98.98, 98.67, 99.01, 98.65, 98.62, 65.06]),
    ("redis (1 I/O thread)", [100.00, 99.93, 99.98, 100.21, 100.17, 99.90, 96.15]),
    ("redis (6 I/O threads)", [99.94, 99.80, 99.80, 99.97, 99.97, 99.95, 35.75]),
    ("sqlite (speedtest1, size 800)", [98.12, 97.80, 97.31, 97.56, 97.13, 97.20, 55.90]),
];

/// Renders Table 6 (measured, with the paper's value in parentheses).
pub fn render_table6(rows: &[MacroRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<32}{:>10}", "Application (workload)", "native"));
    for c in Config::TABLE6 {
        out.push_str(&format!("{:>24}", c.label()));
    }
    out.push('\n');
    let mut geo: Vec<f64> = vec![0.0; Config::TABLE6.len()];
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!("{:<32}{:>10.2}", r.name, r.native));
        for (j, (_, rel)) in r.rel.iter().enumerate() {
            geo[j] += rel.ln();
            let paper = PAPER_TABLE6
                .get(i)
                .map(|(_, vals)| vals[j])
                .unwrap_or(f64::NAN);
            out.push_str(&format!(
                "{:>24}",
                format!("{} ({paper:.2})", crate::fmt_rel(*rel))
            ));
        }
        out.push('\n');
    }
    out.push_str(&format!("{:<32}{:>10}", "geomean", ""));
    let n = rows.len() as f64;
    for (j, g) in geo.iter().enumerate() {
        let paper_geo: f64 = {
            let s: f64 = PAPER_TABLE6.iter().map(|(_, v)| (v[j] / 100.0).ln()).sum();
            (s / PAPER_TABLE6.len() as f64).exp() * 100.0
        };
        out.push_str(&format!(
            "{:>24}",
            format!("{} ({paper_geo:.2})", crate::fmt_rel((g / n).exp()))
        ));
    }
    out.push('\n');
    out
}
