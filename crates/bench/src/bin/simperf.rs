//! simperf — host wall-clock throughput of the simulator engines.
//!
//! Runs the Table 5 syscall-500 stress guest under the pre-fast-path
//! engine (per-step scheduler loop + byte-at-a-time memory, selected via
//! `EngineConfig::stepwise().mem(MemMode::Legacy)`) and the
//! block/page-run engine, reporting simulated instructions per second for
//! both. A trace diff at a smaller count first proves the two engines are
//! instruction-for-instruction identical, so the throughput comparison is
//! apples to apples. Results land in `BENCH_simperf.json` (override with
//! `--json PATH`), including a `sim-obs` counter snapshot (TLB hit rate,
//! icache reuse, block lengths) so perf changes regress-check hit rates,
//! not just throughput. Timed runs keep tracing disabled — the snapshot
//! comes from one extra untimed run.

use bench::micro::{build_micro_app, MICRO_APP, MICRO_CFG};
use interpose::{Interposer, Native};
use sim_kernel::{EngineConfig, Kernel, MemMode, Pid, RunExit, TraceEntry};
use sim_loader::boot_kernel;
use std::time::Instant;

fn boot(n: u64) -> (Kernel, Pid) {
    let mut k = boot_kernel();
    build_micro_app().install(&mut k.vfs);
    k.vfs.write_file(MICRO_CFG, &n.to_le_bytes()).expect("cfg");
    let ip = Native;
    ip.install(&mut k);
    let pid = ip.spawn(&mut k, MICRO_APP, &[], &[]).expect("spawn");
    (k, pid)
}

/// Runs the stress guest to completion under one engine. `legacy` selects
/// the pre-fast-path engine; `trace` records the instruction-level trace.
fn run(n: u64, legacy: bool, trace: bool) -> (f64, u64, Option<Vec<TraceEntry>>) {
    let (mut k, pid) = boot(n);
    if legacy {
        k.configure(EngineConfig::stepwise().mem(MemMode::Legacy));
    }
    if trace {
        k.start_exec_trace();
    }
    let t0 = Instant::now();
    let exit = k.run(u64::MAX / 4);
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(exit, RunExit::AllExited);
    assert_eq!(k.process(pid).and_then(|p| p.exit_status), Some(0));
    let tr = if trace { Some(k.take_exec_trace()) } else { None };
    (dt, k.clock, tr)
}

fn best_of(runs: u32, n: u64, legacy: bool) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut clock = 0;
    for _ in 0..runs {
        let (dt, c, _) = run(n, legacy, false);
        best = best.min(dt);
        clock = c;
    }
    (best, clock)
}

fn main() {
    let mut json_path = "BENCH_simperf.json".to_string();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => {
                json_path = argv
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("--json needs a path"))
                    .clone();
                i += 1;
            }
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    let scale = bench::scale().max(1);

    // 1. Determinism proof: full trace diff at a modest count.
    let diff_n = 2_000 / scale.clamp(1, 10);
    let (_, clock_fast, fast_tr) = run(diff_n, false, true);
    let (_, clock_ref, ref_tr) = run(diff_n, true, true);
    let (fast_tr, ref_tr) = (fast_tr.unwrap(), ref_tr.unwrap());
    assert_eq!(clock_fast, clock_ref, "engine clocks diverge");
    assert_eq!(fast_tr.len(), ref_tr.len(), "trace lengths diverge");
    for (i, (f, r)) in fast_tr.iter().zip(ref_tr.iter()).enumerate() {
        assert_eq!(f, r, "trace diverges at step {i}");
    }
    println!(
        "determinism: {} traced instructions identical across engines (clock {})",
        fast_tr.len(),
        clock_fast
    );

    // 2. Throughput: same guest, bigger count, timed without tracing.
    let n = (1_000_000 / scale).max(20_000);
    // Both engines retire the identical instruction stream (proved above),
    // so one traced run yields the retired-instruction count for both.
    let (_, _, count_tr) = run(n, false, true);
    let instructions = count_tr.unwrap().len() as u64;
    let (dt_ref, _) = best_of(3, n, true);
    let (dt_fast, _) = best_of(3, n, false);
    let ips_ref = instructions as f64 / dt_ref;
    let ips_fast = instructions as f64 / dt_fast;
    let speedup = ips_fast / ips_ref;
    println!("guest: {MICRO_APP} (syscall-500 stress), {n} iterations, {instructions} instructions");
    println!("before (stepwise + byte-at-a-time): {dt_ref:.3}s  {ips_ref:>12.0} inst/s");
    println!("after  (blocks + page runs + TLB):  {dt_fast:.3}s  {ips_fast:>12.0} inst/s");
    println!("speedup: {speedup:.2}x");

    // 3. Counter snapshot from one extra fast-engine run with sim-obs on
    // (tracing stays off during every timed run above).
    sim_obs::enable(sim_obs::ObsConfig::default());
    let _ = run(n, false, false);
    let rec = sim_obs::disable().expect("recorder");
    println!(
        "obs: tlb hit rate {:.2}%, icache reuse {:.2}%, mean block {:.1} steps",
        100.0 * rec.counters.tlb_hit_rate(),
        100.0 * rec.counters.icache_reuse_rate(),
        rec.counters.block_lengths.mean()
    );

    let json = sjson::Value::object(vec![
        ("guest", sjson::Value::Str(MICRO_APP.into())),
        ("iterations", sjson::Value::UInt(n)),
        ("instructions", sjson::Value::UInt(instructions)),
        (
            "determinism",
            sjson::Value::object(vec![
                ("trace_len", sjson::Value::UInt(fast_tr.len() as u64)),
                ("identical", sjson::Value::Bool(true)),
            ]),
        ),
        (
            "before",
            sjson::Value::object(vec![
                ("engine", sjson::Value::Str("stepwise+byte-at-a-time".into())),
                ("seconds", sjson::Value::Float(dt_ref)),
                ("inst_per_sec", sjson::Value::Float(ips_ref)),
            ]),
        ),
        (
            "after",
            sjson::Value::object(vec![
                ("engine", sjson::Value::Str("run_block+page-runs+tlb".into())),
                ("seconds", sjson::Value::Float(dt_fast)),
                ("inst_per_sec", sjson::Value::Float(ips_fast)),
            ]),
        ),
        ("speedup", sjson::Value::Float(speedup)),
        ("obs", rec.counters_json()),
    ]);
    std::fs::write(&json_path, json.to_string_pretty())
        .unwrap_or_else(|e| panic!("write {json_path}: {e}"));
    println!("wrote {json_path}");
}
