//! simperf — host wall-clock throughput of the simulator engines.
//!
//! Runs the Table 5 syscall-500 stress guest under three engines — the
//! pre-fast-path baseline (per-step scheduler loop + byte-at-a-time
//! memory, `EngineConfig::stepwise().mem(MemMode::Legacy)`), the
//! block/page-run engine, and the trace engine (hot blocks promoted into
//! linked superblocks with generation revalidation) — reporting simulated
//! instructions per second for each. A three-way trace diff at a smaller
//! count first proves the engines are instruction-for-instruction
//! identical, so the throughput comparison is apples to apples. Results
//! land in `BENCH_simperf.json` (override with `--json PATH`), including
//! a `sim-obs` counter snapshot (TLB hit rate, icache reuse and
//! coalescing, trace formation/link/side-exit counts) so perf changes
//! regress-check hit rates, not just throughput. The snapshot run sizes
//! the event ring to hold the full workload so `dropped_events` is zero
//! and counters are never skewed by ring overflow. Timed runs keep
//! tracing and obs disabled.
//!
//! `--gate FILE` re-measures and compares against a committed baseline:
//! determinism must hold, the snapshot ring must not drop events, and
//! block/trace inst/s must not fall below baseline × (1 − tol)
//! (`--tol` / `SIMPERF_TOL`, default 0.5 — generous because wall-clock
//! throughput on shared CI is noisy; only slowdowns fail, speedups pass).

use bench::micro::{build_micro_app, MICRO_APP, MICRO_CFG};
use interpose::{Interposer, Native};
use sim_kernel::{EngineConfig, Kernel, MemMode, Pid, RunExit, TraceEntry, Vfs};
use sim_loader::{boot_kernel, boot_kernel_from};
use std::process::ExitCode;
use std::sync::OnceLock;
use std::time::Instant;

/// Which engine a run uses.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Pre-fast-path baseline: stepwise loop + byte-at-a-time memory.
    Legacy,
    /// Block engine: `run_block` + page runs + TLB.
    Block,
    /// Trace engine: blocks promoted into linked superblocks.
    Trace,
}

impl Mode {
    const ALL: [Mode; 3] = [Mode::Legacy, Mode::Block, Mode::Trace];

    fn config(self) -> EngineConfig {
        match self {
            Mode::Legacy => EngineConfig::stepwise().mem(MemMode::Legacy),
            Mode::Block => EngineConfig::new(),
            Mode::Trace => EngineConfig::traced(),
        }
    }

    /// Engine label used in the JSON rows and the gate.
    fn label(self) -> &'static str {
        match self {
            Mode::Legacy => "stepwise+byte-at-a-time",
            Mode::Block => "run_block+page-runs+tlb",
            Mode::Trace => "superblocks+generation-revalidation",
        }
    }

    /// Key of this engine's row in the JSON document. `before`/`after`
    /// keep their original meaning (baseline vs headline engine).
    fn json_key(self) -> &'static str {
        match self {
            Mode::Legacy => "before",
            Mode::Block => "block",
            Mode::Trace => "after",
        }
    }
}

/// The world VFS (libc + micro app), assembled exactly once: every
/// engine x repetition run clones this template instead of re-assembling
/// the guest images per boot.
fn world() -> &'static Vfs {
    static WORLD: OnceLock<Vfs> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut k = boot_kernel();
        build_micro_app().install(&mut k.vfs);
        k.vfs
    })
}

fn boot(n: u64) -> (Kernel, Pid) {
    let mut k = boot_kernel_from(world());
    k.vfs.write_file(MICRO_CFG, &n.to_le_bytes()).expect("cfg");
    let ip = Native;
    ip.install(&mut k);
    let pid = ip.spawn(&mut k, MICRO_APP, &[], &[]).expect("spawn");
    (k, pid)
}

/// Runs the stress guest to completion under one engine. `trace` records
/// the instruction-level trace; `ring_cap` overrides the obs event-ring
/// capacity for snapshot runs.
fn run(n: u64, mode: Mode, trace: bool, ring_cap: Option<usize>) -> (f64, u64, Option<Vec<TraceEntry>>) {
    let (mut k, pid) = boot(n);
    let mut cfg = mode.config();
    if let Some(cap) = ring_cap {
        cfg = cfg.obs_ring_capacity(cap);
    }
    k.configure(cfg);
    if trace {
        k.start_exec_trace();
    }
    let t0 = Instant::now();
    let exit = k.run(u64::MAX / 4);
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(exit, RunExit::AllExited);
    assert_eq!(k.process(pid).and_then(|p| p.exit_status), Some(0));
    let tr = if trace { Some(k.take_exec_trace()) } else { None };
    (dt, k.clock, tr)
}

fn best_of(runs: u32, n: u64, mode: Mode) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..runs {
        let (dt, _, _) = run(n, mode, false, None);
        best = best.min(dt);
    }
    best
}

/// One engine's measured throughput row.
struct Row {
    mode: Mode,
    seconds: f64,
    inst_per_sec: f64,
}

/// Everything one full measurement pass produces.
struct Measured {
    n: u64,
    instructions: u64,
    diff_len: usize,
    rows: Vec<Row>,
    obs_iterations: u64,
    dropped_events: u64,
    obs: sjson::Value,
}

fn measure() -> Measured {
    let scale = bench::scale().max(1);

    // 1. Determinism proof: full three-way trace diff at a modest count.
    // The stepwise run is the oracle; block and trace must match it
    // entry for entry (pid, tid, rip, clock, event).
    let diff_n = 2_000 / scale.clamp(1, 10);
    let (_, clock_ref, ref_tr) = run(diff_n, Mode::Legacy, true, None);
    let ref_tr = ref_tr.unwrap();
    for mode in [Mode::Block, Mode::Trace] {
        let (_, clock, tr) = run(diff_n, mode, true, None);
        let tr = tr.unwrap();
        assert_eq!(clock, clock_ref, "{}: engine clocks diverge", mode.label());
        assert_eq!(tr.len(), ref_tr.len(), "{}: trace lengths diverge", mode.label());
        for (i, (f, r)) in tr.iter().zip(ref_tr.iter()).enumerate() {
            assert_eq!(f, r, "{}: trace diverges at step {i}", mode.label());
        }
    }
    println!(
        "determinism: {} traced instructions identical across stepwise/block/trace (clock {})",
        ref_tr.len(),
        clock_ref
    );

    // 2. Throughput: same guest, bigger count, timed without tracing.
    let n = (1_000_000 / scale).max(20_000);
    // All engines retire the identical instruction stream (proved above),
    // so one traced run yields the retired-instruction count for all.
    let (_, _, count_tr) = run(n, Mode::Trace, true, None);
    let instructions = count_tr.unwrap().len() as u64;
    println!("guest: {MICRO_APP} (syscall-500 stress), {n} iterations, {instructions} instructions");
    let rows: Vec<Row> = Mode::ALL
        .iter()
        .map(|&mode| {
            let seconds = best_of(3, n, mode);
            let inst_per_sec = instructions as f64 / seconds;
            println!("{:<38} {seconds:.3}s  {inst_per_sec:>12.0} inst/s", mode.label());
            Row { mode, seconds, inst_per_sec }
        })
        .collect();
    let ips = |m: Mode| rows.iter().find(|r| r.mode == m).unwrap().inst_per_sec;
    println!(
        "speedup over stepwise baseline: block {:.2}x, trace {:.2}x",
        ips(Mode::Block) / ips(Mode::Legacy),
        ips(Mode::Trace) / ips(Mode::Legacy)
    );

    // 3. Counter snapshot from one extra trace-engine run with sim-obs on
    // (tracing and obs stay off during every timed run above). The ring
    // is sized for the workload (~2 events per guest iteration) so the
    // snapshot counters are never skewed by silent event drops; the
    // snapshot caps the iteration count so the ring stays modest.
    let obs_n = n.min(100_000);
    let ring_cap = (4 * obs_n).next_power_of_two().max(1 << 16) as usize;
    sim_obs::enable(sim_obs::ObsConfig::default());
    let _ = run(obs_n, Mode::Trace, false, Some(ring_cap));
    let rec = sim_obs::disable().expect("recorder");
    let dropped_events = rec.total_dropped();
    println!(
        "obs: tlb hit rate {:.2}%, icache reuse {:.2}%, {} traces formed, {} trace entries, {} dropped events (ring {ring_cap})",
        100.0 * rec.counters.tlb_hit_rate(),
        100.0 * rec.counters.icache_reuse_rate(),
        rec.counters.trace_forms,
        rec.counters.trace_entries,
        dropped_events
    );

    Measured {
        n,
        instructions,
        diff_len: ref_tr.len(),
        rows,
        obs_iterations: obs_n,
        dropped_events,
        obs: rec.counters_json(),
    }
}

fn write_json(path: &str, m: &Measured) {
    let ips = |mode: Mode| m.rows.iter().find(|r| r.mode == mode).unwrap().inst_per_sec;
    let mut fields = vec![
        ("guest", sjson::Value::Str(MICRO_APP.into())),
        ("iterations", sjson::Value::UInt(m.n)),
        ("instructions", sjson::Value::UInt(m.instructions)),
        (
            "determinism",
            sjson::Value::object(vec![
                ("trace_len", sjson::Value::UInt(m.diff_len as u64)),
                ("identical", sjson::Value::Bool(true)),
            ]),
        ),
    ];
    for row in &m.rows {
        fields.push((
            row.mode.json_key(),
            sjson::Value::object(vec![
                ("engine", sjson::Value::Str(row.mode.label().into())),
                ("seconds", sjson::Value::Float(row.seconds)),
                ("inst_per_sec", sjson::Value::Float(row.inst_per_sec)),
            ]),
        ));
    }
    fields.push(("speedup", sjson::Value::Float(ips(Mode::Trace) / ips(Mode::Legacy))));
    fields.push((
        "speedup_block",
        sjson::Value::Float(ips(Mode::Block) / ips(Mode::Legacy)),
    ));
    fields.push(("obs_iterations", sjson::Value::UInt(m.obs_iterations)));
    fields.push(("obs", m.obs.clone()));
    let json = sjson::Value::object(fields);
    std::fs::write(path, json.to_string_pretty()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    println!("wrote {path}");
}

/// Compares a fresh measurement against the committed baseline; returns
/// the list of violations (empty = gate passes). Only slowdowns beyond
/// the tolerance fail — speedups always pass.
fn gate(baseline_path: &str, m: &Measured, tol: f64) -> Result<Vec<String>, String> {
    let data = std::fs::read(baseline_path).map_err(|e| format!("read {baseline_path}: {e}"))?;
    let v = sjson::parse(&data).map_err(|e| format!("{baseline_path}: bad JSON: {e:?}"))?;
    let mut violations = Vec::new();
    // The committed baseline must itself claim determinism; the fresh
    // run already proved it (measure() asserts the three-way diff).
    let base_identical = v
        .get("determinism")
        .and_then(|d| d.get("identical"))
        .and_then(|b| b.as_bool());
    if base_identical != Some(true) {
        violations.push(format!(
            "{baseline_path}: determinism.identical is not true in the committed baseline"
        ));
    }
    if m.dropped_events > 0 {
        violations.push(format!(
            "obs snapshot dropped {} events — counters are skewed; grow the ring",
            m.dropped_events
        ));
    }
    for row in &m.rows {
        // The stepwise baseline row is informational, not gated: it
        // moves with host load, and regressions there don't indicate an
        // engine problem.
        if row.mode == Mode::Legacy {
            continue;
        }
        let Some(base_ips) = v
            .get(row.mode.json_key())
            .and_then(|r| r.get("inst_per_sec"))
            .and_then(|x| x.as_f64())
        else {
            violations.push(format!(
                "{baseline_path}: no {}.inst_per_sec in baseline",
                row.mode.json_key()
            ));
            continue;
        };
        let floor = base_ips * (1.0 - tol);
        if row.inst_per_sec < floor {
            violations.push(format!(
                "{}: inst/s fell to {:.0} (baseline {:.0}, floor {:.0} at tol {:.0}%)",
                row.mode.label(),
                row.inst_per_sec,
                base_ips,
                floor,
                tol * 100.0
            ));
        }
    }
    Ok(violations)
}

fn main() -> ExitCode {
    let mut json_path = "BENCH_simperf.json".to_string();
    let mut gate_path: Option<String> = None;
    let mut tol = std::env::var("SIMPERF_TOL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => {
                json_path = argv
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("--json needs a path"))
                    .clone();
                i += 1;
            }
            "--gate" => {
                gate_path = Some(
                    argv.get(i + 1)
                        .unwrap_or_else(|| panic!("--gate needs a baseline path"))
                        .clone(),
                );
                i += 1;
            }
            "--tol" => {
                tol = argv
                    .get(i + 1)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| panic!("--tol needs a number"));
                i += 1;
            }
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }

    let m = measure();
    if let Some(baseline) = &gate_path {
        let violations = match gate(baseline, &m, tol) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("simperf: gate error: {e}");
                return ExitCode::FAILURE;
            }
        };
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("simperf: REGRESSION {v}");
            }
            return ExitCode::FAILURE;
        }
        println!(
            "gate: ok (block+trace inst/s within {:.0}% of {baseline}, determinism held, 0 dropped events)",
            tol * 100.0
        );
        return ExitCode::SUCCESS;
    }
    write_json(&json_path, &m);
    ExitCode::SUCCESS
}
