//! Regenerates Table 3: the pitfall matrix.
fn main() {
    let m = pitfalls::full_matrix();
    println!("Table 3 — interposers vs System Call Interposition Pitfalls\n");
    print!("{}", pitfalls::render_matrix(&m));
}
