//! simprof — deterministic sampling profiler driver and bench regression
//! gate.
//!
//! Profiles a coreutil, a Table 6 server workload, and the epoll server
//! under production-traffic load (the simscale shape) under every
//! registry interposer with the sim-clock-driven sampler enabled
//! ([`sim_kernel::EngineConfig::profile`]), then writes:
//!
//! * `SIMPROF_folded.txt` — folded guest stacks (flamegraph.pl format),
//! * `SIMPROF_stages.txt` — the per-interposer per-stage critical-path
//!   cycle table fed by the round-trip spans,
//! * `SIMPROF_flame.svg` — a self-contained flamegraph of the first row,
//! * `BENCH_simprof.json` — per-row sample/instruction/syscall counts, the
//!   committed regression baseline `scripts/bench_gate.sh` compares.
//!
//! ```text
//! simprof [--engine block|stepwise|trace] [--period N (default 64)]
//!         [--scale N] [--interposer NAME]... [--json PATH] [--out-prefix P]
//!         [--gate BASELINE [--tol F]] [--smoke]
//! ```
//!
//! Under `--engine trace` the stage table is followed by a per-trace
//! occupancy table (replayed steps per trace and side-exit rate, hottest
//! trace first) drawn from the trace cache's per-entry counters.
//!
//! * `--gate BASELINE` — re-measure and compare against a committed
//!   baseline JSON; any row whose instruction or sample count drifts
//!   beyond the tolerance band (default 10%, `--tol` / `SIMPROF_TOL`)
//!   fails with a non-zero exit, as does any row whose obs ring dropped
//!   events (`dropped_events > 0` — lossy counters can't gate anything).
//! * `--smoke` — CI determinism gate: profiles the coreutil under `k23`
//!   and `ptrace` twice per engine and requires the folded stacks and
//!   stage table to be byte-identical across runs *and* across the
//!   block/stepwise engines.
//!
//! Sampling is architectural: the sampler counts retired instructions, so
//! every output here is byte-identical across consecutive runs and across
//! both engines (DESIGN.md §9).

use apps::MacroSpec;
use bench::scale::{collect_offline_log_scale, ScaleParams, Variant};
use interpose::Interposer;
use k23::OfflineSession;
use sim_kernel::{EngineConfig, RunExit, Vfs};
use sim_loader::{boot_kernel, boot_kernel_from};
use std::fmt::Write as _;
use std::process::ExitCode;
use std::sync::OnceLock;

/// Coreutil workload (installed by `apps::install_world`).
const COREUTIL: &str = "/usr/bin/ls-sim";
/// Cycle budget per profiled run.
const BUDGET: u64 = u64::MAX / 4;

/// The world VFS (libc + every app image), assembled exactly once per
/// process: the serial mechanism sweep boots one kernel per
/// (workload, interposer) row and re-assembling every guest image per
/// row is pure startup waste.
fn world() -> &'static Vfs {
    static WORLD: OnceLock<Vfs> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut k = boot_kernel();
        apps::install_world(&mut k.vfs);
        k.vfs
    })
}

fn make_interposer(name: &str) -> Result<(Box<dyn Interposer>, bool), String> {
    pitfalls::register_all();
    let ip = interpose::by_name_spec(name).map_err(|e| e.to_string())?;
    Ok((ip, name.starts_with("k23")))
}

fn engine_cfg(engine: &str) -> Result<EngineConfig, String> {
    match engine {
        "block" => Ok(EngineConfig::new()),
        "stepwise" => Ok(EngineConfig::stepwise()),
        "trace" => Ok(EngineConfig::traced()),
        other => Err(format!("unknown engine {other:?} (block|stepwise|trace)")),
    }
}

struct Args {
    engine: String,
    period: u64,
    scale: u64,
    interposers: Vec<String>,
    json_out: String,
    out_prefix: String,
    gate: Option<String>,
    tol: f64,
    smoke: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        engine: "block".to_string(),
        period: 64,
        scale: 50,
        interposers: Vec::new(),
        json_out: "BENCH_simprof.json".to_string(),
        out_prefix: "SIMPROF".to_string(),
        gate: None,
        tol: std::env::var("SIMPROF_TOL")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.10),
        smoke: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--engine" => {
                a.engine = value(&argv, i, "--engine")?;
                i += 1;
            }
            "--period" => {
                let v = value(&argv, i, "--period")?;
                a.period = v.parse().map_err(|_| format!("bad --period {v}"))?;
                i += 1;
            }
            "--scale" => {
                let v = value(&argv, i, "--scale")?;
                a.scale = v.parse().map_err(|_| format!("bad --scale {v}"))?;
                i += 1;
            }
            "--interposer" => {
                a.interposers.push(value(&argv, i, "--interposer")?);
                i += 1;
            }
            "--json" => {
                a.json_out = value(&argv, i, "--json")?;
                i += 1;
            }
            "--out-prefix" => {
                a.out_prefix = value(&argv, i, "--out-prefix")?;
                i += 1;
            }
            "--gate" => {
                a.gate = Some(value(&argv, i, "--gate")?);
                i += 1;
            }
            "--tol" => {
                let v = value(&argv, i, "--tol")?;
                a.tol = v.parse().map_err(|_| format!("bad --tol {v}"))?;
                i += 1;
            }
            "--smoke" => a.smoke = true,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    if a.interposers.is_empty() {
        pitfalls::register_all();
        a.interposers = interpose::names().iter().map(|s| s.to_string()).collect();
    }
    Ok(a)
}

/// One profiled run's outputs and gate metrics.
struct RunOutput {
    folded: String,
    stages: String,
    traces: String,
    flame: String,
    samples: u64,
    instructions: u64,
    syscalls: u64,
    dropped: u64,
}

/// Per-trace occupancy rows (trace engine only; empty elsewhere): replayed
/// steps per trace and the side-exit rate, hottest trace first.
fn trace_table(k: &mut sim_kernel::Kernel) -> String {
    let mut rows = Vec::new();
    for pid in k.pids() {
        let tids: Vec<_> = k
            .process(pid)
            .map(|p| p.threads.iter().map(|t| t.tid).collect())
            .unwrap_or_default();
        for tid in tids {
            let stats = k.cpu_mut(pid, tid).map(|c| c.trace_stats()).unwrap_or_default();
            for st in stats {
                rows.push((pid, tid, st));
            }
        }
    }
    if rows.is_empty() {
        return String::new();
    }
    let mut s = String::new();
    // Formation / side-exit summary first: how many superblocks the
    // workload earned and how often a replay left one early. This is the
    // measurement half of the "fatter traces" open item — server event
    // loops form few, hot traces whose side-exit rate bounds how much
    // fatter they could get.
    let formed = rows.len();
    let enters: u64 = rows.iter().map(|(_, _, st)| st.enters).sum();
    let steps: u64 = rows.iter().map(|(_, _, st)| st.steps).sum();
    let side_exits: u64 = rows.iter().map(|(_, _, st)| st.side_exits).sum();
    let _ = writeln!(
        s,
        "trace formation: {formed} traces formed, {enters} enters, {steps} replayed steps, side-exit rate {:.1}%",
        100.0 * side_exits as f64 / enters.max(1) as f64
    );
    let _ = writeln!(s, "per-trace occupancy (replayed steps per trace, hottest first):");
    let _ = writeln!(
        s,
        "  {:<8} {:<14} {:>5} {:>8} {:>10} {:>11}",
        "pid/tid", "entry", "ops", "enters", "steps", "side-exit%"
    );
    for (pid, tid, st) in rows {
        let _ = writeln!(
            s,
            "  {:<8} {:<14} {:>5} {:>8} {:>10} {:>10.1}%",
            format!("{pid}/{tid}"),
            format!("{:#x}", st.entry),
            st.ops,
            st.enters,
            st.steps,
            100.0 * st.side_exits as f64 / st.enters.max(1) as f64
        );
    }
    s
}

fn finish_run(k: &mut sim_kernel::Kernel, rec: Box<sim_obs::Recorder>) -> RunOutput {
    let syscalls = k
        .pids()
        .iter()
        .filter_map(|p| k.process(*p))
        .map(|p| p.stats.syscalls)
        .sum();
    RunOutput {
        folded: rec.folded_stacks(),
        stages: rec.stage_table(),
        traces: trace_table(k),
        flame: rec.flamegraph_svg(),
        samples: rec.samples.len() as u64,
        instructions: k.prof_retired(),
        syscalls,
        dropped: rec.total_dropped(),
    }
}

/// Profiles `COREUTIL` under one interposer.
fn profile_coreutil(name: &str, engine: &str, period: u64) -> Result<RunOutput, String> {
    let (ip, needs_offline) =
        make_interposer(name)?;
    let mut k = boot_kernel_from(world());
    let argv = vec![COREUTIL.to_string()];

    if needs_offline {
        // The offline phase runs unprofiled: the profile covers the online
        // run, matching what the paper's tables measure.
        let session = OfflineSession::new(&mut k, COREUTIL);
        let (_pid, exit) = session
            .run_once(&mut k, &argv, &[], BUDGET)
            .map_err(|e| format!("offline phase failed: {e}"))?;
        if exit != RunExit::AllExited {
            return Err(format!("offline phase did not finish: {exit:?}"));
        }
        session.finish(&mut k);
    }

    sim_obs::clear_region_paths();
    sim_obs::clear_span_ranges();
    k.configure(engine_cfg(engine)?.profile(period));
    sim_obs::enable(sim_obs::ObsConfig {
        micro_events: false,
        ..sim_obs::ObsConfig::default()
    });
    ip.install(&mut k);
    let pid = match ip.spawn(&mut k, COREUTIL, &argv, &[]) {
        Ok(pid) => pid,
        Err(e) => {
            sim_obs::disable();
            return Err(format!("spawn {COREUTIL}: {e}"));
        }
    };
    let exit = k.run(BUDGET);
    let rec = sim_obs::disable().expect("recorder was enabled");
    if exit != RunExit::AllExited {
        return Err(format!("{COREUTIL} did not finish: {exit:?}"));
    }
    let status = k.process(pid).and_then(|p| p.exit_status);
    if status != Some(0) {
        return Err(format!("{COREUTIL} exited with {status:?}"));
    }
    Ok(finish_run(&mut k, rec))
}

/// Profiles one Table 6 server spec under one interposer. K23 variants
/// reuse `offline_log`, collected once on a scratch kernel and
/// transplanted into the measurement kernel's sealed log directory —
/// the paper collects logs once per application (§5.1).
fn profile_server(
    name: &str,
    engine: &str,
    period: u64,
    spec: &MacroSpec,
    offline_log: &Option<(String, Vec<u8>)>,
) -> Result<RunOutput, String> {
    let (ip, needs_offline) =
        make_interposer(name)?;
    let mut k = boot_kernel_from(world());
    if needs_offline {
        let (path, bytes) = offline_log
            .as_ref()
            .ok_or_else(|| "offline log not collected".to_string())?;
        k.vfs.mkdir_p(k23::LOG_DIR).map_err(|e| format!("log dir: {e}"))?;
        k.vfs.write_file(path, bytes).map_err(|e| format!("log install: {e}"))?;
        k.vfs
            .set_immutable(k23::LOG_DIR, true)
            .map_err(|e| format!("log seal: {e}"))?;
    }

    sim_obs::clear_region_paths();
    sim_obs::clear_span_ranges();
    k.configure(engine_cfg(engine)?.profile(period));
    sim_obs::enable(sim_obs::ObsConfig {
        micro_events: false,
        ..sim_obs::ObsConfig::default()
    });
    let res = apps::run_macro(&mut k, ip.as_ref(), spec, BUDGET);
    let rec = sim_obs::disable().expect("recorder was enabled");
    res.map_err(|e| format!("{} under {name}: {e:?}", spec.name))?;
    Ok(finish_run(&mut k, rec))
}

/// Connections for the epollsrv profiling row: enough that readiness
/// dispatch (blocked `epoll_wait` wakeups) dominates the profile, few
/// enough that sweeping every interposer stays cheap.
const EPOLLSRV_CONNS: u32 = 128;

/// Scale-load parameters for the epollsrv profiling row.
fn epollsrv_params(scale: u64) -> ScaleParams {
    ScaleParams {
        requests: ((2_000 / scale.max(1)) as u32).max(64),
        active: 16,
        resp64: 2,
        server_work: 2,
        workers: 1,
    }
}

/// Profiles the epoll server under production-traffic load (the simscale
/// workload shape) under one interposer. Same offline-log transplant
/// discipline as [`profile_server`].
fn profile_epoll_server(
    name: &str,
    engine: &str,
    period: u64,
    params: &ScaleParams,
    offline_log: &Option<(String, Vec<u8>)>,
) -> Result<RunOutput, String> {
    let (ip, needs_offline) = make_interposer(name)?;
    let mut k = boot_kernel_from(world());
    if needs_offline {
        let (path, bytes) = offline_log
            .as_ref()
            .ok_or_else(|| "offline log not collected".to_string())?;
        k.vfs.mkdir_p(k23::LOG_DIR).map_err(|e| format!("log dir: {e}"))?;
        k.vfs.write_file(path, bytes).map_err(|e| format!("log install: {e}"))?;
        k.vfs
            .set_immutable(k23::LOG_DIR, true)
            .map_err(|e| format!("log seal: {e}"))?;
    }

    sim_obs::clear_region_paths();
    sim_obs::clear_span_ranges();
    k.configure(engine_cfg(engine)?.profile(period));
    sim_obs::enable(sim_obs::ObsConfig {
        micro_events: false,
        ..sim_obs::ObsConfig::default()
    });
    let spec = apps::scale_spec(
        true,
        params.workers,
        EPOLLSRV_CONNS,
        params.active,
        params.requests,
        params.resp64,
        params.server_work,
        false,
    );
    let res = apps::run_scale(&mut k, ip.as_ref(), &spec, BUDGET);
    let rec = sim_obs::disable().expect("recorder was enabled");
    res.map_err(|e| format!("epollsrv under {name}: {e:?}"))?;
    Ok(finish_run(&mut k, rec))
}

/// A (workload, interposer) gate row.
struct Row {
    workload: String,
    interposer: String,
    out: RunOutput,
}

fn rows_json(args: &Args, rows: &[Row]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"period\": {},", args.period);
    let _ = writeln!(s, "  \"scale\": {},", args.scale);
    let _ = writeln!(s, "  \"engine\": \"{}\",", args.engine);
    s.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"workload\": \"{}\", \"interposer\": \"{}\", \"samples\": {}, \"instructions\": {}, \"syscalls\": {}, \"dropped_events\": {}}}",
            r.workload, r.interposer, r.out.samples, r.out.instructions, r.out.syscalls, r.out.dropped
        );
        s.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Compares measured rows against a committed baseline; returns the list
/// of violations (empty = gate passes).
fn gate(baseline_path: &str, rows: &[Row], tol: f64) -> Result<Vec<String>, String> {
    let data = std::fs::read(baseline_path).map_err(|e| format!("read {baseline_path}: {e}"))?;
    let v = sjson::parse(&data).map_err(|e| format!("{baseline_path}: bad JSON: {e:?}"))?;
    let base_rows = v
        .get("rows")
        .and_then(|r| r.as_array())
        .ok_or_else(|| format!("{baseline_path} has no rows array"))?;
    let mut violations = Vec::new();
    // A lossy obs ring skews every counter the gate compares: any dropped
    // event in the current run fails outright.
    for r in rows {
        if r.out.dropped > 0 {
            violations.push(format!(
                "{}/{}: obs ring dropped {} events — counters are untrustworthy; grow the ring",
                r.workload, r.interposer, r.out.dropped
            ));
        }
    }
    let field = |r: &sjson::Value, k: &str| r.get(k).and_then(|x| x.as_u64());
    let sfield = |r: &sjson::Value, k: &str| r.get(k).and_then(|x| x.as_str().map(String::from));
    for b in base_rows {
        let (Some(w), Some(ip)) = (sfield(b, "workload"), sfield(b, "interposer")) else {
            continue;
        };
        let Some(cur) = rows.iter().find(|r| r.workload == w && r.interposer == ip) else {
            violations.push(format!("{w}/{ip}: row missing from current run"));
            continue;
        };
        for (metric, base_val, cur_val) in [
            ("instructions", field(b, "instructions"), Some(cur.out.instructions)),
            ("samples", field(b, "samples"), Some(cur.out.samples)),
        ] {
            let (Some(base_val), Some(cur_val)) = (base_val, cur_val) else {
                continue;
            };
            let drift = (cur_val as f64 - base_val as f64) / (base_val as f64).max(1.0);
            if drift.abs() > tol {
                violations.push(format!(
                    "{w}/{ip}: {metric} drifted {:+.1}% (baseline {base_val}, now {cur_val}, tol {:.0}%)",
                    drift * 100.0,
                    tol * 100.0
                ));
            }
        }
    }
    Ok(violations)
}

/// CI determinism gate: byte-identical profiles across consecutive runs
/// and across engines, for the coreutil under `k23` and `ptrace`.
fn smoke(period: u64) -> Result<(), String> {
    for name in ["k23", "ptrace"] {
        let mut per_engine: Vec<(String, String)> = Vec::new();
        for engine in ["block", "stepwise"] {
            let a = profile_coreutil(name, engine, period)?;
            let b = profile_coreutil(name, engine, period)?;
            if a.folded != b.folded || a.stages != b.stages {
                return Err(format!(
                    "{name}/{engine}: consecutive runs produced different profiles"
                ));
            }
            if a.samples == 0 {
                return Err(format!("{name}/{engine}: no samples captured"));
            }
            per_engine.push((a.folded, a.stages));
        }
        if per_engine[0] != per_engine[1] {
            return Err(format!("{name}: block and stepwise profiles differ"));
        }
        println!("smoke: {name} ok (deterministic across runs and engines)");
    }
    Ok(())
}

fn run(args: &Args) -> Result<ExitCode, String> {
    if args.smoke {
        smoke(args.period)?;
        return Ok(ExitCode::SUCCESS);
    }

    let spec = apps::table6_specs(args.scale)
        .into_iter()
        .next()
        .ok_or_else(|| "no table6 specs".to_string())?;
    let scale_params = epollsrv_params(args.scale);
    let any_k23 = args.interposers.iter().any(|n| n.starts_with("k23"));
    let server_offline = if any_k23 {
        Some(bench::macros_::collect_offline_log(&spec))
    } else {
        None
    };
    let epollsrv_offline = if any_k23 {
        Some(collect_offline_log_scale(Variant::Epoll, &scale_params))
    } else {
        None
    };

    let mut rows = Vec::new();
    let mut folded_all = String::new();
    let mut stages_all = String::new();
    let mut flame = String::new();
    for name in &args.interposers {
        for workload in ["coreutil", "server", "epollsrv"] {
            let out = match workload {
                "coreutil" => profile_coreutil(name, &args.engine, args.period)?,
                "server" => profile_server(name, &args.engine, args.period, &spec, &server_offline)?,
                _ => profile_epoll_server(
                    name,
                    &args.engine,
                    args.period,
                    &scale_params,
                    &epollsrv_offline,
                )?,
            };
            let _ = writeln!(folded_all, "# {workload} under {name}");
            folded_all.push_str(&out.folded);
            let _ = writeln!(stages_all, "# {workload} under {name}");
            stages_all.push_str(&out.stages);
            if !out.traces.is_empty() {
                stages_all.push_str(&out.traces);
            }
            stages_all.push('\n');
            if flame.is_empty() {
                flame = out.flame.clone();
            }
            println!(
                "{workload:<10} {name:<14} samples {:>7}  instructions {:>12}  syscalls {:>7}",
                out.samples, out.instructions, out.syscalls
            );
            rows.push(Row {
                workload: workload.to_string(),
                interposer: name.clone(),
                out,
            });
        }
    }

    if let Some(baseline) = &args.gate {
        let violations = gate(baseline, &rows, args.tol)?;
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("simprof: REGRESSION {v}");
            }
            return Ok(ExitCode::FAILURE);
        }
        println!(
            "gate: ok ({} rows within {:.0}% of {baseline})",
            rows.len(),
            args.tol * 100.0
        );
        return Ok(ExitCode::SUCCESS);
    }

    let json = rows_json(args, &rows);
    std::fs::write(&args.json_out, &json).map_err(|e| format!("write {}: {e}", args.json_out))?;
    let folded_path = format!("{}_folded.txt", args.out_prefix);
    let stages_path = format!("{}_stages.txt", args.out_prefix);
    let flame_path = format!("{}_flame.svg", args.out_prefix);
    std::fs::write(&folded_path, &folded_all).map_err(|e| format!("write {folded_path}: {e}"))?;
    std::fs::write(&stages_path, &stages_all).map_err(|e| format!("write {stages_path}: {e}"))?;
    std::fs::write(&flame_path, &flame).map_err(|e| format!("write {flame_path}: {e}"))?;
    println!("wrote {}, {folded_path}, {stages_path}, {flame_path}", args.json_out);
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simprof: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("simprof: {e}");
            ExitCode::FAILURE
        }
    }
}
