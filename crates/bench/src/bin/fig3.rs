//! Regenerates Figure 3: the ls offline log.
fn main() { print!("{}", bench::figures::fig3()); }
