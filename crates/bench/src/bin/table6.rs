//! Regenerates Table 6: macrobenchmark throughput relative to native.
fn main() {
    let scale = bench::scale();
    println!("Table 6 — macrobenchmarks, relative to native (paper value in parens)\n");
    let rows = bench::macros_::run_table6(scale);
    print!("{}", bench::macros_::render_table6(&rows));
}
