//! Regenerates Figure 1: instruction misidentification.
fn main() { print!("{}", bench::figures::fig1()); }
