//! `simscale` — the connection-scale matrix (Table 6 at production
//! traffic shapes).
//!
//! Sweeps epollsrv-sim (readiness multiplexing) and pollsrv-sim
//! (busy-poll strawman) over 10^2–10^4 concurrent connections under
//! native + every Table 6 interposer, on parallel host threads. All
//! output is byte-identical for any `--threads` value and across
//! repeated runs — CI compares two invocations at thread counts 1 and 4.
//!
//! ```text
//! simscale                       # full matrix, text table on stdout
//! simscale --smoke               # tiny matrix for CI determinism checks
//! simscale --threads N           # host worker threads (default 4)
//! simscale --json PATH           # also write the matrix as JSON
//! simscale --out PATH            # also write the text table
//! simscale --gate BENCH_scale.json   # throughput floor + criterion check
//! ```
//!
//! Refresh the committed baseline with:
//! `cargo run --release -p bench --bin simscale -- --json BENCH_scale.json`

use bench::scale::{full_params, matrix_json, render_matrix, run_matrix, run_matrix_cells};
use bench::scale::{full_matrix_cells, gate};
use std::process::ExitCode;

fn run(
    smoke: bool,
    threads: usize,
    json_out: Option<&str>,
    text_out: Option<&str>,
) -> Result<String, String> {
    let matrix = if smoke {
        let conns = [16u32, 64];
        let mut params = full_params(bench::scale());
        params.requests = 64;
        let cells: Vec<_> = full_matrix_cells(&conns)
            .into_iter()
            .filter(|c| {
                matches!(
                    c.config,
                    bench::Config::Native | bench::Config::K23Default | bench::Config::Sud
                )
            })
            .collect();
        run_matrix_cells(&conns, &cells, &params, threads)
    } else {
        let conns = [100u32, 1000, 10_000];
        run_matrix(&conns, &full_params(bench::scale()), threads)
    };
    let text = render_matrix(&matrix);
    if let Some(path) = json_out {
        let json = matrix_json(&matrix).to_string_pretty();
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
    }
    if let Some(path) = text_out {
        std::fs::write(path, &text).map_err(|e| format!("write {path}: {e}"))?;
    }
    Ok(text)
}

fn run_gate(path: &str) -> Result<String, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    let baseline = sjson::parse(&bytes).map_err(|e| format!("parse {path}: {e:?}"))?;
    let tol = std::env::var("SIMSCALE_TOL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2);
    gate(&baseline, tol)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut threads = 4usize;
    let mut json_out: Option<String> = None;
    let mut text_out: Option<String> = None;
    let mut gate_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--threads" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => threads = n,
                None => return usage("--threads needs a number"),
            },
            "--json" => match it.next() {
                Some(p) => json_out = Some(p.clone()),
                None => return usage("--json needs a path"),
            },
            "--out" => match it.next() {
                Some(p) => text_out = Some(p.clone()),
                None => return usage("--out needs a path"),
            },
            "--gate" => match it.next() {
                Some(p) => gate_path = Some(p.clone()),
                None => return usage("--gate needs a path"),
            },
            other => return usage(&format!("unknown flag {other:?}")),
        }
    }
    let res = match gate_path {
        Some(p) => run_gate(&p),
        None => run(smoke, threads, json_out.as_deref(), text_out.as_deref()),
    };
    match res {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("simscale: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!(
        "simscale: {err}\nusage: simscale [--smoke] [--threads N] [--json PATH] [--out PATH] [--gate BENCH_scale.json]"
    );
    ExitCode::FAILURE
}
