//! `simaudit` — the interposition coverage matrix.
//!
//! Sweeps every registry mechanism plus the composed stacks in
//! [`bench::audit::AUDIT_STACKS`] across the coreutil, client/server,
//! epoll-server (readiness dispatch), and hostile workloads with the
//! kernel-side audit ledger enabled, and prints one
//! byte-deterministic row per cell: coverage, interposed-via-path /
//! via-control / double-interposed counts, and bypasses broken down by
//! pitfall signature (`P2b-preinit`, `P1a-exec`, ...).
//!
//! ```text
//! simaudit                       # full sweep (block engine)
//! simaudit --smoke               # CI mode: same sweep (determinism is
//!                                # checked by diffing two invocations)
//! simaudit --engine stepwise     # sweep under another engine (the
//!                                # output must be byte-identical)
//! simaudit --json PATH           # also write the matrix as JSON
//! simaudit --out PATH            # also write the matrix text (use to
//!                                # refresh MATRIX_simaudit.txt)
//! simaudit --replay <mech> <coreutil|server|epollsrv|hostile>   # one cell, full ledger
//! simaudit --gate MATRIX_simaudit.txt          # coverage floor check
//! ```

use bench::audit::{
    full_audit_matrix, matrix_json, parse_matrix_rows, render_audit_matrix, render_cell, run_cell,
    server_spec,
};
use sim_kernel::EngineConfig;
use std::process::ExitCode;

fn engine_cfg(engine: &str) -> Result<EngineConfig, String> {
    match engine {
        "block" => Ok(EngineConfig::new()),
        "stepwise" => Ok(EngineConfig::stepwise()),
        "trace" => Ok(EngineConfig::traced()),
        other => Err(format!("unknown engine {other:?} (block|stepwise|trace)")),
    }
}

fn sweep(engine: &str, json_out: Option<&str>, text_out: Option<&str>) -> Result<String, String> {
    engine_cfg(engine)?;
    let rows = full_audit_matrix(|| engine_cfg(engine).expect("validated above"));
    let server = server_spec().name;
    let text = render_audit_matrix(&rows, &server);
    if let Some(path) = json_out {
        let json = matrix_json(&rows, &server).to_string_pretty();
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
    }
    if let Some(path) = text_out {
        std::fs::write(path, &text).map_err(|e| format!("write {path}: {e}"))?;
    }
    Ok(text)
}

fn replay(spec: &str, workload: &str) -> Result<String, String> {
    pitfalls::register_all();
    interpose::registry::parse_spec(spec).map_err(|e| format!("bad spec {spec:?}: {e}"))?;
    if !matches!(workload, "coreutil" | "server" | "epollsrv" | "hostile") {
        return Err(format!(
            "unknown workload {workload:?} (coreutil|server|epollsrv|hostile)"
        ));
    }
    let ledger = run_cell(spec, workload, EngineConfig::new());
    Ok(render_cell(spec, workload, &ledger))
}

/// Re-runs the sweep and fails if any cell's coverage fell below the
/// committed baseline (new cells pass; a removed cell fails).
fn gate(baseline_path: &str) -> Result<(), String> {
    let baseline = std::fs::read_to_string(baseline_path)
        .map_err(|e| format!("read {baseline_path}: {e}"))?;
    let want = parse_matrix_rows(&baseline);
    if want.is_empty() {
        return Err(format!("{baseline_path} contains no matrix rows"));
    }
    let fresh_text = sweep("block", None, None)?;
    let fresh = parse_matrix_rows(&fresh_text);
    let mut failures = Vec::new();
    for (mech, workload, floor) in &want {
        match fresh
            .iter()
            .find(|(m, w, _)| m == mech && w == workload)
            .map(|(_, _, p)| *p)
        {
            None => failures.push(format!("{mech}/{workload}: cell missing from fresh sweep")),
            Some(p) if p < *floor => failures.push(format!(
                "{mech}/{workload}: coverage {}.{}% fell below committed {}.{}%",
                p / 10,
                p % 10,
                floor / 10,
                floor % 10
            )),
            Some(_) => {}
        }
    }
    if failures.is_empty() {
        println!(
            "simaudit gate: {} cells at or above the committed coverage floor",
            want.len()
        );
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: simaudit [--smoke | --engine <block|stepwise|trace>] [--json PATH] [--out PATH]\n\
         \x20      simaudit --replay <mechanism> <coreutil|server|epollsrv|hostile>\n\
         \x20      simaudit --gate <MATRIX file>"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut engine = "block".to_string();
    let mut json_out: Option<String> = None;
    let mut text_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--smoke" => {}
            "--engine" => match args.get(i + 1) {
                Some(e) => {
                    engine = e.clone();
                    i += 1;
                }
                None => usage(),
            },
            "--json" => match args.get(i + 1) {
                Some(p) => {
                    json_out = Some(p.clone());
                    i += 1;
                }
                None => usage(),
            },
            "--out" => match args.get(i + 1) {
                Some(p) => {
                    text_out = Some(p.clone());
                    i += 1;
                }
                None => usage(),
            },
            "--replay" => match (args.get(i + 1), args.get(i + 2)) {
                (Some(spec), Some(workload)) => match replay(spec, workload) {
                    Ok(text) => {
                        print!("{text}");
                        return ExitCode::SUCCESS;
                    }
                    Err(e) => {
                        eprintln!("simaudit: {e}");
                        return ExitCode::FAILURE;
                    }
                },
                _ => usage(),
            },
            "--gate" => match args.get(i + 1) {
                Some(path) => match gate(path) {
                    Ok(()) => return ExitCode::SUCCESS,
                    Err(e) => {
                        eprintln!("simaudit gate FAILED:\n{e}");
                        return ExitCode::FAILURE;
                    }
                },
                None => usage(),
            },
            _ => usage(),
        }
        i += 1;
    }
    match sweep(&engine, json_out.as_deref(), text_out.as_deref()) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("simaudit: {e}");
            ExitCode::FAILURE
        }
    }
}
