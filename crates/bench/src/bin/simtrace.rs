//! simtrace — run a guest workload under any interposition mechanism with
//! `sim-obs` tracing enabled, and export the result as Chrome trace-event
//! JSON (loadable in Perfetto / `about:tracing`) plus a plain-text
//! summary with per-interposer syscall-latency attribution.
//!
//! ```text
//! simtrace [--interposer NAME] [--engine block|stepwise|trace]
//!          [--app PATH | --micro N]
//!          [--trace-out PATH] [--summary-out PATH]
//!          [--no-micro-events] [--selfcheck] [--compare]
//! ```
//!
//! * `--interposer` — one of `native`, `ptrace`, `sud`, `sud-armed`,
//!   `zpoline`, `zpoline-ultra`, `lazypoline`, `k23`, `k23-ultra`,
//!   `k23-ultra+` (default `k23`). K23 variants run the offline phase
//!   first, untraced, so the trace covers only the online run.
//! * `--engine` — execution engine for the traced run (default `block`).
//!   The summary's counter block always includes the trace-engine rows
//!   (formation/link/side-exit counts — zero outside `trace`).
//! * `--app` — VFS path of a coreutil installed by `apps::install_world`
//!   (default `/usr/bin/ls-sim`); `--micro N` instead runs the Table 5
//!   syscall-500 stress loop for `N` iterations.
//! * `--selfcheck` — re-parse the written trace with `sjson` and require
//!   at least one syscall span (CI smoke gate); exits non-zero on failure.
//! * `--compare` — additionally measure per-iteration microbenchmark
//!   cycles under the main mechanisms and print the overhead ordering.

use bench::micro::{build_micro_app, per_iteration_cycles_with, MICRO_APP, MICRO_CFG};
use interpose::Interposer;
use k23::OfflineSession;
use sim_kernel::RunExit;
use sim_loader::boot_kernel;
use std::process::ExitCode;

/// `(interposer, needs_offline_phase)` for a mechanism spec, resolved
/// through the unified [`interpose`] registry.
fn make_interposer(name: &str) -> Result<(Box<dyn Interposer>, bool), String> {
    pitfalls::register_all();
    let ip = interpose::by_name_spec(name).map_err(|e| e.to_string())?;
    Ok((ip, name.starts_with("k23")))
}

fn engine_cfg(engine: &str) -> Result<sim_kernel::EngineConfig, String> {
    use sim_kernel::EngineConfig;
    match engine {
        "block" => Ok(EngineConfig::new()),
        "stepwise" => Ok(EngineConfig::stepwise()),
        "trace" => Ok(EngineConfig::traced()),
        other => Err(format!("unknown engine {other:?} (block|stepwise|trace)")),
    }
}

struct Args {
    interposer: String,
    engine: String,
    app: String,
    micro: Option<u64>,
    trace_out: String,
    summary_out: String,
    micro_events: bool,
    selfcheck: bool,
    compare: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        interposer: "k23".to_string(),
        engine: "block".to_string(),
        app: "/usr/bin/ls-sim".to_string(),
        micro: None,
        trace_out: "SIMTRACE_trace.json".to_string(),
        summary_out: "SIMTRACE_summary.txt".to_string(),
        micro_events: true,
        selfcheck: false,
        compare: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--interposer" => {
                a.interposer = value(&argv, i, "--interposer")?;
                i += 1;
            }
            "--engine" => {
                a.engine = value(&argv, i, "--engine")?;
                i += 1;
            }
            "--app" => {
                a.app = value(&argv, i, "--app")?;
                i += 1;
            }
            "--micro" => {
                let v = value(&argv, i, "--micro")?;
                a.micro = Some(v.parse().map_err(|_| format!("bad --micro count {v}"))?);
                i += 1;
            }
            "--trace-out" => {
                a.trace_out = value(&argv, i, "--trace-out")?;
                i += 1;
            }
            "--summary-out" => {
                a.summary_out = value(&argv, i, "--summary-out")?;
                i += 1;
            }
            "--no-micro-events" => a.micro_events = false,
            "--selfcheck" => a.selfcheck = true,
            "--compare" => a.compare = true,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(a)
}

/// Runs the chosen workload traced; returns the recorder.
fn traced_run(args: &Args) -> Result<Box<sim_obs::Recorder>, String> {
    let (ip, needs_offline) = make_interposer(&args.interposer).map_err(|e| {
        format!(
            "{e} (try native, ptrace, sud, sud-armed, zpoline, zpoline-ultra, lazypoline, k23, k23-ultra, k23-ultra+, or a composed spec like k23+tracer+recorder)"
        )
    })?;

    let mut k = boot_kernel();
    let (app, argv) = match args.micro {
        Some(n) => {
            build_micro_app().install(&mut k.vfs);
            k.vfs
                .write_file(MICRO_CFG, &n.to_le_bytes())
                .map_err(|e| format!("write micro config: {e}"))?;
            (MICRO_APP.to_string(), vec![])
        }
        None => {
            apps::install_world(&mut k.vfs);
            (args.app.clone(), vec![args.app.clone()])
        }
    };

    if needs_offline {
        // Offline phase runs untraced: the trace should cover the online
        // run the paper's tables describe, not log collection.
        let session = OfflineSession::new(&mut k, &app);
        let (_pid, exit) = session
            .run_once(&mut k, &argv, &[], u64::MAX / 4)
            .map_err(|e| format!("offline phase failed: {e}"))?;
        if exit != RunExit::AllExited {
            return Err(format!("offline phase did not finish: {exit:?}"));
        }
        session.finish(&mut k);
    }

    // Audit the traced run against the mechanism's declared coverage so
    // the summary's counter block reports interposed/bypassed/double
    // counts per attribution path alongside the latency table.
    k.configure(engine_cfg(&args.engine)?.audit(ip.coverage()));
    sim_obs::enable(sim_obs::ObsConfig {
        micro_events: args.micro_events,
        ..sim_obs::ObsConfig::default()
    });
    ip.install(&mut k);
    let pid = match ip.spawn(&mut k, &app, &argv, &[]) {
        Ok(pid) => pid,
        Err(e) => {
            sim_obs::disable();
            return Err(format!("spawn {app}: {e}"));
        }
    };
    let exit = k.run(u64::MAX / 4);
    let rec = sim_obs::disable().expect("recorder was enabled");
    if exit != RunExit::AllExited {
        return Err(format!("{app} did not finish: {exit:?}"));
    }
    let status = k.process(pid).and_then(|p| p.exit_status);
    if status != Some(0) {
        return Err(format!("{app} exited with {status:?}"));
    }
    Ok(rec)
}

/// `--compare`: per-iteration stress-loop cycles under each mechanism
/// (differencing cancels startup and offline costs; see `bench::micro`).
fn compare_table(n: u64) -> String {
    let mechanisms: &[&str] = &[
        "native",
        "k23",
        "zpoline",
        "lazypoline",
        "sud",
        "ptrace",
    ];
    let mut rows: Vec<(String, f64)> = Vec::new();
    for name in mechanisms {
        let (ip, needs_offline) = make_interposer(name).expect("known mechanism");
        let cycles = if needs_offline {
            // The only offline-phase mechanism in the list is k23-default;
            // the bench harness collects and seals its log before timing.
            assert_eq!(*name, "k23", "only k23 needs offline here");
            bench::micro::per_iteration_cycles(bench::Config::K23Default, n)
        } else {
            per_iteration_cycles_with(ip.as_ref(), n)
        };
        rows.push((ip.label(), cycles));
    }
    let native = rows[0].1;
    let mut s = String::new();
    s.push_str("per-syscall overhead (microbenchmark, sim-cycles/iteration):\n");
    s.push_str(&format!(
        "  {:<24} {:>12} {:>10}\n",
        "mechanism", "cycles/iter", "vs native"
    ));
    for (label, cycles) in &rows {
        s.push_str(&format!(
            "  {:<24} {:>12.1} {:>9.2}x\n",
            label,
            cycles,
            cycles / native
        ));
    }
    s
}

/// Parses the written trace back and checks it contains ≥ 1 syscall span.
fn selfcheck(trace_path: &str) -> Result<u64, String> {
    let data = std::fs::read(trace_path).map_err(|e| format!("read {trace_path}: {e}"))?;
    let v = sjson::parse(&data).map_err(|e| format!("{trace_path} is not valid JSON: {e:?}"))?;
    let events = v
        .get("traceEvents")
        .and_then(|t| t.as_array())
        .ok_or_else(|| format!("{trace_path} has no traceEvents array"))?;
    let spans = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("B")
                && e.get("cat").and_then(|c| c.as_str()) == Some("syscall")
        })
        .count() as u64;
    if spans == 0 {
        return Err(format!("{trace_path} contains no syscall spans"));
    }
    Ok(spans)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simtrace: {e}");
            return ExitCode::FAILURE;
        }
    };

    let rec = match traced_run(&args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("simtrace: {e}");
            return ExitCode::FAILURE;
        }
    };

    let trace = rec.chrome_trace_json();
    if let Err(e) = std::fs::write(&args.trace_out, &trace) {
        eprintln!("simtrace: write {}: {e}", args.trace_out);
        return ExitCode::FAILURE;
    }

    let mut summary = format!(
        "workload: {} under {} ({} engine)\n{}",
        args.micro
            .map_or(args.app.clone(), |n| format!("{MICRO_APP} x{n}")),
        args.interposer,
        args.engine,
        rec.summary()
    );
    if args.compare {
        let n = (2_000 / bench::scale().max(1)).max(200);
        summary.push_str(&compare_table(n));
    }
    if let Err(e) = std::fs::write(&args.summary_out, &summary) {
        eprintln!("simtrace: write {}: {e}", args.summary_out);
        return ExitCode::FAILURE;
    }
    print!("{summary}");
    println!("wrote {} and {}", args.trace_out, args.summary_out);

    if args.selfcheck {
        match selfcheck(&args.trace_out) {
            Ok(spans) => println!("selfcheck: ok ({spans} syscall spans)"),
            Err(e) => {
                eprintln!("simtrace: selfcheck failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}
