//! Regenerates Figure 2: the offline phase walkthrough.
fn main() { print!("{}", bench::figures::fig2()); }
