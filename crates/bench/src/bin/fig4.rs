//! Regenerates Figure 4: the online phase walkthrough.
fn main() { print!("{}", bench::figures::fig4()); }
