//! Runs every table and figure in order.
fn main() {
    print!("{}\n\n", bench::figures::fig1());
    print!("{}\n\n", bench::figures::fig2());
    print!("{}\n\n", bench::figures::fig3());
    print!("{}\n\n", bench::figures::fig4());
    let rows = bench::table2::run_table2(bench::scale());
    println!("Table 2 — unique syscall/sysenter sites logged offline\n");
    print!("{}\n\n", bench::table2::render_table2(&rows));
    println!("Table 3 — interposers vs pitfalls\n");
    print!("{}\n\n", pitfalls::render_matrix(&pitfalls::full_matrix()));
    let n = 2_000_000 / bench::scale().max(1);
    println!("Table 5 — microbenchmark overhead (x{n})\n");
    print!("{}\n\n", bench::micro::render_table5(&bench::micro::run_table5(n)));
    println!("Table 6 — macrobenchmarks\n");
    print!("{}", bench::macros_::render_table6(&bench::macros_::run_table6(bench::scale())));
}
