//! `simstack` — the composed-stack fault sweep and propagation report.
//!
//! Runs every composed interposer stack in [`pitfalls::stack::STACKS`]
//! against every [`pitfalls::fault`] scenario and prints a
//! byte-deterministic verdict table; failing cells print a one-command
//! replay line carrying the exact seed + plan, and composition-only
//! hazards (the stack fails where its bare base survives) are flagged.
//! The sweep ends with the fork/execve propagation report: the P1a
//! parent/victim pair run under tracer/recorder stacks on K23 and
//! zpoline bases.
//!
//! ```text
//! simstack                   # full matrix + propagation, default seed
//! simstack --seed 23         # full matrix at seed 23
//! simstack --smoke           # CI mode: default-seed sweep (determinism
//!                            # is checked by diffing two invocations)
//! simstack --replay <spec> '<plan>'   # re-run one cell from its encoding
//! ```

use pitfalls::stack::{full_stack_matrix, render_propagation, render_stack_matrix, run_stack_probe, STACKS};
use sim_fault::FaultPlan;

const DEFAULT_SEED: u64 = 7;

fn sweep(seed: u64) {
    let cells = full_stack_matrix(seed);
    print!("{}", render_stack_matrix(seed, &cells));
    println!();
    print!("{}", render_propagation());
}

fn replay(spec: &str, encoded: &str) {
    let plan = match FaultPlan::decode(encoded) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("simstack: bad plan {encoded:?}: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = interpose::registry::parse_spec(spec) {
        pitfalls::register_all();
        if interpose::registry::parse_spec(spec).is_err() {
            eprintln!("simstack: bad spec {spec:?}: {e} (expected e.g. one of {STACKS:?})");
            std::process::exit(2);
        }
    }
    let baseline = run_stack_probe(spec, None);
    let faulted = run_stack_probe(spec, Some(&plan));
    let survived = faulted.exit == baseline.exit && faulted.output == baseline.output;
    println!("replay {spec} '{}'", plan.encode());
    println!(
        "  baseline: exit {:?}, {} output bytes",
        baseline.exit,
        baseline.output.len()
    );
    println!(
        "  faulted:  exit {:?}, {} output bytes",
        faulted.exit,
        faulted.output.len()
    );
    println!("  verdict:  {}", if survived { "survived" } else { "FAILED" });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("--smoke") => sweep(DEFAULT_SEED),
        Some("--seed") => {
            let seed = args
                .get(1)
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or_else(|| {
                    eprintln!("simstack: --seed needs an integer");
                    std::process::exit(2);
                });
            sweep(seed);
        }
        Some("--replay") => match (args.get(1), args.get(2)) {
            (Some(spec), Some(plan)) => replay(spec, plan),
            _ => {
                eprintln!("usage: simstack --replay <spec> '<plan>'");
                std::process::exit(2);
            }
        },
        Some(other) => {
            eprintln!("simstack: unknown argument {other:?}");
            eprintln!("usage: simstack [--smoke | --seed <n> | --replay <spec> '<plan>']");
            std::process::exit(2);
        }
    }
}
