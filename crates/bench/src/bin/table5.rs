//! Regenerates Table 5: microbenchmark overhead vs native.
fn main() {
    let n = 2_000_000 / bench::scale().max(1);
    println!("Table 5 — microbenchmark overhead (nonexistent syscall x{n}, differenced)\n");
    let rows = bench::micro::run_table5(n);
    print!("{}", bench::micro::render_table5(&rows));
}
