//! simrecord — record/replay driver with divergence bisection and
//! time-travel navigation (DESIGN.md §11).
//!
//! Recording captures every source of nondeterminism a run consumes —
//! syscall results, injected faults/signals/permission flips, scheduler
//! decisions, process exits — into a length-prefixed `SREC1` log keyed by
//! retired-instruction counts, alongside the canonicalized sim-obs event
//! stream of the recording run. Because retired instructions are the
//! engine-invariant coordinate system, a log recorded under any engine
//! (stepwise, block, trace) replays byte-identically under any other.
//!
//! ```text
//! simrecord --record [--workload micro|coreutil|nginx] [--engine E]
//!           [--seed N] [--fault] [--checkpoint-period N] [--out FILE]
//! simrecord --replay FILE [--engine E]     # verify; bisect on divergence
//! simrecord --navigate FILE --seek N [--engine E]   # time travel
//! simrecord --smoke                        # CI acceptance gate
//! ```
//!
//! * `--replay` re-executes the header's workload on any engine and
//!   verifies every produced record against the log in order. On
//!   divergence it prints the first mismatched record (index +
//!   retired-instruction coordinate, located by `O(log n)` prefix-digest
//!   bisection for the obs stream) and a post-mortem dump: per-thread RIP,
//!   symbolized guest stacks, and the tail of the replay's obs events.
//! * `--navigate` seeks to a retired-instruction index: it rebuilds the
//!   deterministic checkpoint chain, restores the nearest checkpoint at or
//!   below the target through sim-mem page snapshots, and inject-replays
//!   the remainder from the log (falling back to replay-from-start when
//!   the chain is broken or restoration fails).
//! * `--smoke` is the CI gate: records nginx-sim under a fault plan on the
//!   trace engine, verify-replays on stepwise requiring a byte-identical
//!   obs stream, round-trips the codec, bisects an artificially perturbed
//!   log to the exact record index, and checks a navigation seek against a
//!   replay from the start.

use bench::micro::{build_micro_app, MICRO_APP, MICRO_CFG};
use interpose::{Interposer, Native};
use sim_fault::{FaultKind, FaultPlan, SchedPlan, SyscallFault};
use sim_kernel::{nr, EngineConfig, Kernel, RunExit};
use sim_loader::boot_kernel;
use sim_record::{first_divergence, first_obs_divergence, obs_lines, Header, Rec, Recording};
use std::process::ExitCode;
use std::rc::Rc;

const COREUTIL: &str = "/usr/bin/ls-sim";
const BUDGET: u64 = u64::MAX / 4;
const DEFAULT_CKPT_PERIOD: u64 = 4096;

fn engine_cfg(engine: &str) -> Result<EngineConfig, String> {
    match engine {
        "block" => Ok(EngineConfig::new()),
        "stepwise" => Ok(EngineConfig::stepwise()),
        "trace" => Ok(EngineConfig::traced()),
        other => Err(format!("unknown engine {other:?} (block|stepwise|trace)")),
    }
}

/// The canned `--fault` plan per workload: errnos only syscalls whose
/// callers must tolerate them, plus an adversarial scheduler rotation for
/// the multi-process server row (generating `Sched` records).
fn canned_plan(workload: &str) -> FaultPlan {
    let mut plan = FaultPlan::zero(11);
    match workload {
        "micro" => {
            plan.syscall_faults = vec![
                SyscallFault {
                    nr: nr::SYS_NONEXISTENT,
                    occurrence: 7,
                    kind: FaultKind::Eintr,
                },
                SyscallFault {
                    nr: nr::SYS_NONEXISTENT,
                    occurrence: 900,
                    kind: FaultKind::Eagain,
                },
            ];
        }
        _ => {
            plan.syscall_faults = vec![
                SyscallFault {
                    nr: 0, // read
                    occurrence: 3,
                    kind: FaultKind::Eintr,
                },
                SyscallFault {
                    nr: 1, // write
                    occurrence: 5,
                    kind: FaultKind::Eagain,
                },
            ];
            plan.sched = Some(SchedPlan {
                rotate_period: 3,
                slice_jitter: 0,
            });
        }
    }
    plan
}

/// Per-workload default for the `seed` knob (micro: iterations, nginx:
/// Table 6 scale divisor).
fn default_seed(workload: &str) -> u64 {
    match workload {
        "micro" => 2_000,
        "nginx" => 50,
        _ => 1,
    }
}

/// Installs and spawns a single-process workload, leaving the kernel ready
/// to configure and run. (nginx is driven by `apps::run_macro` instead.)
fn setup_single(workload: &str, seed: u64, k: &mut Kernel) -> Result<(), String> {
    match workload {
        "micro" => {
            build_micro_app().install(&mut k.vfs);
            k.vfs
                .write_file(MICRO_CFG, &seed.to_le_bytes())
                .map_err(|e| format!("micro cfg: {e}"))?;
            let ip = Native;
            ip.install(k);
            ip.spawn(k, MICRO_APP, &[], &[])
                .map_err(|e| format!("spawn {MICRO_APP}: {e}"))?;
        }
        "coreutil" => {
            apps::install_world(&mut k.vfs);
            let ip = Native;
            ip.install(k);
            ip.spawn(k, COREUTIL, &[COREUTIL.to_string()], &[])
                .map_err(|e| format!("spawn {COREUTIL}: {e}"))?;
        }
        other => return Err(format!("workload {other:?} is not single-process")),
    }
    Ok(())
}

/// One completed workload run: the kernel (holding the record session's
/// final state), the canonicalized obs stream, and any workload-level
/// failure (tolerated by callers when a divergence explains it).
struct RunDone {
    k: Kernel,
    obs: Vec<String>,
    err: Option<String>,
}

/// Runs `workload` to completion under `cfg` with obs capture enabled.
fn run_workload(workload: &str, seed: u64, cfg: EngineConfig) -> Result<RunDone, String> {
    sim_obs::enable(sim_obs::ObsConfig::default());
    let out = run_workload_inner(workload, seed, cfg);
    let rec = sim_obs::disable();
    let k = out?;
    let rec = rec.ok_or_else(|| "obs recorder missing".to_string())?;
    Ok(RunDone {
        obs: obs_lines(&rec),
        err: k.1,
        k: k.0,
    })
}

fn run_workload_inner(
    workload: &str,
    seed: u64,
    cfg: EngineConfig,
) -> Result<(Kernel, Option<String>), String> {
    let mut k = boot_kernel();
    let err = match workload {
        "micro" | "coreutil" => {
            setup_single(workload, seed, &mut k)?;
            k.configure(cfg);
            match k.run(BUDGET) {
                RunExit::AllExited | RunExit::Stop => None,
                other => Some(format!("{workload} run ended with {other:?}")),
            }
        }
        "nginx" => {
            apps::install_world(&mut k.vfs);
            k.configure(cfg);
            let spec = apps::table6_specs(seed.max(1))
                .into_iter()
                .next()
                .ok_or_else(|| "no table6 specs".to_string())?;
            apps::run_macro(&mut k, &Native, &spec, BUDGET)
                .err()
                .map(|e| format!("{} failed: {e:?}", spec.name))
        }
        other => return Err(format!("unknown workload {other:?} (micro|coreutil|nginx)")),
    };
    Ok((k, err))
}

/// Post-mortem dump at the kernel's current state: per-process RIP +
/// symbolized guest stack, plus the tail of the obs event stream.
fn post_mortem(k: &mut Kernel, obs: &[String]) {
    for pid in k.pids() {
        let Some(tid) = k
            .process(pid)
            .and_then(|p| p.threads.first().map(|t| t.tid))
        else {
            continue;
        };
        let rip = k.cpu_mut(pid, tid).map(|c| c.rip).unwrap_or(0);
        println!("  pid {pid} tid {tid} rip {rip:#x}");
        for frame in k.symbolized_stack(pid, tid) {
            println!("    {frame}");
        }
    }
    let tail = &obs[obs.len().saturating_sub(8)..];
    println!("  last {} obs events:", tail.len());
    for line in tail {
        println!("    {line}");
    }
}

fn do_record(args: &Args) -> Result<ExitCode, String> {
    let plan = args.fault.then(|| canned_plan(&args.workload));
    let mut cfg = engine_cfg(&args.engine)?;
    if let Some(p) = &plan {
        cfg = cfg.fault(p.clone());
    }
    let cfg = if args.ckpt_period > 0 {
        cfg.record_with_checkpoints(args.ckpt_period)
    } else {
        cfg.record()
    };
    let mut run = run_workload(&args.workload, args.seed, cfg)?;
    if let Some(e) = run.err {
        return Err(format!("recording run failed: {e}"));
    }
    let recording = Recording {
        header: Header {
            engine: args.engine.clone(),
            workload: args.workload.clone(),
            seed: args.seed,
            fault_plan: plan.map(|p| p.encode()),
            checkpoint_period: args.ckpt_period,
        },
        recs: run.k.take_recording(),
        obs: run.obs,
    };
    let bytes = recording.encode();
    std::fs::write(&args.out, &bytes).map_err(|e| format!("write {}: {e}", args.out))?;
    println!(
        "recorded {} on {}: {} records, {} obs events, {} retired instructions -> {} ({} bytes)",
        args.workload,
        args.engine,
        recording.recs.len(),
        recording.obs.len(),
        run.k.record_retired(),
        args.out,
        bytes.len()
    );
    Ok(ExitCode::SUCCESS)
}

/// Decodes a recording and rebuilds its engine config (fault plan
/// re-installed from the header).
fn load_recording(path: &str) -> Result<(Recording, Option<FaultPlan>), String> {
    let data = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    let recording = Recording::decode(&data).map_err(|e| format!("{path}: {e}"))?;
    let plan = recording
        .header
        .fault_plan
        .as_deref()
        .map(FaultPlan::decode)
        .transpose()
        .map_err(|e| format!("{path}: bad fault plan: {e}"))?;
    Ok((recording, plan))
}

fn do_replay(args: &Args) -> Result<ExitCode, String> {
    let (recording, plan) = load_recording(&args.file)?;
    let h = &recording.header;
    let mut cfg = engine_cfg(&args.engine)?;
    if let Some(p) = &plan {
        cfg = cfg.fault(p.clone());
    }
    let log = Rc::new(recording.recs.clone());
    let mut run = run_workload(&h.workload, h.seed, cfg.replay_verify(Rc::clone(&log)))?;
    if let Some(d) = run.k.record_divergence().cloned() {
        println!(
            "replay: DIVERGED at record {} (retired instruction {})",
            d.index, d.retired
        );
        println!("  expected: {:?}", d.expected);
        println!("  got:      {:?}", d.got);
        post_mortem(&mut run.k, &run.obs);
        return Ok(ExitCode::FAILURE);
    }
    if let Some(e) = run.err {
        return Err(format!("replay run failed without diverging: {e}"));
    }
    if run.k.record_cursor() != recording.recs.len() {
        println!(
            "replay: DIVERGED — log not fully consumed ({} of {} records)",
            run.k.record_cursor(),
            recording.recs.len()
        );
        return Ok(ExitCode::FAILURE);
    }
    if let Some((idx, probes)) = first_obs_divergence(&recording.obs, &run.obs) {
        println!(
            "replay: records match but obs stream DIVERGED at line {idx} ({probes} probes)"
        );
        println!("  expected: {:?}", recording.obs.get(idx));
        println!("  got:      {:?}", run.obs.get(idx));
        return Ok(ExitCode::FAILURE);
    }
    println!(
        "replay: ok — {} on {} (recorded on {}), {} records verified, obs stream byte-identical ({} events)",
        h.workload,
        args.engine,
        h.engine,
        recording.recs.len(),
        run.obs.len()
    );
    Ok(ExitCode::SUCCESS)
}

/// Architectural state dump target for navigation.
fn dump_state(k: &mut Kernel) {
    println!(
        "  retired {} clock {} — state:",
        k.record_retired(),
        k.clock
    );
    for pid in k.pids() {
        let Some(tid) = k
            .process(pid)
            .and_then(|p| p.threads.first().map(|t| t.tid))
        else {
            continue;
        };
        let rip = k.cpu_mut(pid, tid).map(|c| c.rip).unwrap_or(0);
        println!("  pid {pid} tid {tid} rip {rip:#x}");
        for frame in k.symbolized_stack(pid, tid) {
            println!("    {frame}");
        }
    }
}

fn do_navigate(args: &Args) -> Result<ExitCode, String> {
    let (recording, plan) = load_recording(&args.file)?;
    let h = recording.header.clone();
    if h.workload == "nginx" {
        return Err(
            "navigation requires a single-process workload (checkpoint chains break on fork)"
                .into(),
        );
    }
    // Rebuild the deterministic checkpoint chain (recordings don't carry
    // page snapshots for every checkpoint; the chain is re-derivable
    // because the recording run itself is deterministic).
    let period = if h.checkpoint_period > 0 {
        h.checkpoint_period
    } else {
        DEFAULT_CKPT_PERIOD
    };
    let mut cfg = engine_cfg(&h.engine)?;
    if let Some(p) = &plan {
        cfg = cfg.fault(p.clone());
    }
    let mut chain_run = run_workload(&h.workload, h.seed, cfg.record_with_checkpoints(period))?;
    if let Some(e) = chain_run.err {
        return Err(format!("chain rebuild failed: {e}"));
    }
    let ckpts = chain_run.k.take_checkpoints();
    let chain_ok = chain_run.k.record_chain_ok();
    let total = chain_run.k.record_retired();
    let target = args.seek.min(total);

    // Seek: inject-mode replay, seeded from the nearest checkpoint.
    let log = Rc::new(recording.recs);
    let mut k = boot_kernel();
    setup_single(&h.workload, h.seed, &mut k)?;
    let mut cfg = engine_cfg(&args.engine)?;
    if let Some(p) = &plan {
        cfg = cfg.fault(p.clone());
    }
    k.configure(cfg.replay_inject(Rc::clone(&log)));
    let mut from = 0u64;
    if chain_ok {
        if let Some(at) = ckpts.iter().rposition(|c| c.retired <= target) {
            match k.restore_to_checkpoint(&ckpts, at) {
                Ok(()) => from = ckpts[at].retired,
                Err(e) => eprintln!(
                    "simrecord: checkpoint restore failed ({e}); replaying from the start"
                ),
            }
        }
    } else {
        eprintln!("simrecord: checkpoint chain broken; replaying from the start");
    }
    let exit = k.run_to_retired(target, BUDGET);
    println!(
        "navigate: {} to retired instruction {target} (of {total}) from checkpoint at {from} (period {period}, {} checkpoints): {exit:?}",
        h.workload,
        ckpts.len()
    );
    dump_state(&mut k);
    Ok(ExitCode::SUCCESS)
}

// ===== Smoke (CI acceptance gate) =====

/// Registers + RIP + clock of the (single) live process.
fn cpu_state(k: &mut Kernel) -> Result<(u64, Vec<u64>, u64), String> {
    let pid = *k.pids().first().ok_or("no live process")?;
    let tid = k
        .process(pid)
        .and_then(|p| p.threads.first().map(|t| t.tid))
        .ok_or("no live thread")?;
    let cpu = k.cpu_mut(pid, tid).ok_or("no cpu")?;
    Ok((cpu.rip, cpu.regs.to_vec(), k.clock))
}

fn smoke() -> Result<(), String> {
    // 1. Record nginx-sim under a fault plan on the trace engine.
    let plan = canned_plan("nginx");
    let seed = default_seed("nginx");
    let mut run = run_workload(
        "nginx",
        seed,
        EngineConfig::traced().fault(plan.clone()).record(),
    )?;
    if let Some(e) = run.err {
        return Err(format!("recording run failed: {e}"));
    }
    let recording = Recording {
        header: Header {
            engine: "trace".into(),
            workload: "nginx".into(),
            seed,
            fault_plan: Some(plan.encode()),
            checkpoint_period: 0,
        },
        recs: run.k.take_recording(),
        obs: run.obs,
    };
    if recording.recs.len() < 100 {
        return Err(format!("log too short: {} records", recording.recs.len()));
    }
    if !recording
        .recs
        .iter()
        .any(|r| !matches!(r, Rec::Syscall { .. } | Rec::Exit { .. }))
    {
        return Err("fault plan produced no asynchrony records".into());
    }

    // 2. Codec round trip.
    let bytes = recording.encode();
    let back = Recording::decode(&bytes)?;
    if back != recording {
        return Err("codec round-trip mismatch".into());
    }
    println!(
        "smoke: codec round-trip ok ({} bytes, {} records, {} obs events)",
        bytes.len(),
        recording.recs.len(),
        recording.obs.len()
    );

    // 3. Cross-engine replay: trace-recorded log verifies on stepwise with
    // a byte-identical obs event stream.
    let log = Rc::new(recording.recs.clone());
    let rep = run_workload(
        "nginx",
        seed,
        EngineConfig::stepwise()
            .fault(plan.clone())
            .replay_verify(Rc::clone(&log)),
    )?;
    if let Some(d) = rep.k.record_divergence() {
        return Err(format!("trace→stepwise replay diverged: {d:?}"));
    }
    if let Some(e) = rep.err {
        return Err(format!("trace→stepwise replay failed: {e}"));
    }
    if rep.k.record_cursor() != recording.recs.len() {
        return Err(format!(
            "trace→stepwise replay consumed {} of {} records",
            rep.k.record_cursor(),
            recording.recs.len()
        ));
    }
    if rep.obs != recording.obs {
        let at = first_obs_divergence(&recording.obs, &rep.obs);
        return Err(format!("trace→stepwise obs stream differs at {at:?}"));
    }
    println!(
        "smoke: trace→stepwise replay ok (obs byte-identical, {} events)",
        rep.obs.len()
    );

    // 4. An artificially perturbed log bisects to the exact record index,
    // offline and live.
    let idx = recording
        .recs
        .iter()
        .position(|r| r.retired() > recording.recs[recording.recs.len() / 2].retired())
        .unwrap_or(recording.recs.len() / 2);
    let mut bad = recording.recs.clone();
    let idx = (idx..bad.len())
        .find(|&i| matches!(bad[i], Rec::Syscall { .. }))
        .ok_or("no syscall record to perturb")?;
    let expect_retired = bad[idx].retired();
    if let Rec::Syscall { ret, .. } = &mut bad[idx] {
        *ret = ret.wrapping_add(1);
    }
    let d = first_divergence(&recording.recs, &bad).ok_or("bisection found nothing")?;
    if d.index != idx || d.retired != expect_retired {
        return Err(format!(
            "bisection missed: expected record {idx} (retired {expect_retired}), got {d:?}"
        ));
    }
    let rep = run_workload(
        "nginx",
        seed,
        EngineConfig::stepwise()
            .fault(plan.clone())
            .replay_verify(Rc::new(bad)),
    )?;
    let live = rep
        .k
        .record_divergence()
        .ok_or("live verifier missed the perturbation")?;
    if live.index != idx || live.retired != expect_retired {
        return Err(format!(
            "live verifier halted at record {} (retired {}), expected {idx} ({expect_retired})",
            live.index, live.retired
        ));
    }
    println!(
        "smoke: perturbed log bisected to record {idx} (retired instruction {expect_retired}, {} probes; live verifier agrees)",
        d.probes
    );

    // 5. Navigation: a checkpoint-seeded seek reproduces the architectural
    // state of a replay from the start.
    let iters = default_seed("micro");
    let mut rec_run = run_workload(
        "micro",
        iters,
        EngineConfig::new().record_with_checkpoints(2_000),
    )?;
    if let Some(e) = rec_run.err {
        return Err(format!("navigation record failed: {e}"));
    }
    if !rec_run.k.record_chain_ok() {
        return Err("navigation record broke the checkpoint chain".into());
    }
    let log = Rc::new(rec_run.k.take_recording());
    let ckpts = rec_run.k.take_checkpoints();
    let total = rec_run.k.record_retired();
    if ckpts.len() < 2 {
        return Err(format!(
            "expected ≥ 2 checkpoints over {total} retired instructions"
        ));
    }
    let target = ckpts[1].retired + 123;
    let reference = {
        let mut k = boot_kernel();
        setup_single("micro", iters, &mut k)?;
        k.configure(EngineConfig::stepwise().replay_inject(Rc::clone(&log)));
        k.run_to_retired(target, BUDGET);
        cpu_state(&mut k)?
    };
    let sought = {
        let mut k = boot_kernel();
        setup_single("micro", iters, &mut k)?;
        k.configure(EngineConfig::new().replay_inject(Rc::clone(&log)));
        let at = ckpts
            .iter()
            .rposition(|c| c.retired <= target)
            .ok_or("no checkpoint below target")?;
        k.restore_to_checkpoint(&ckpts, at)
            .map_err(|e| format!("restore: {e}"))?;
        k.run_to_retired(target, BUDGET);
        cpu_state(&mut k)?
    };
    if sought != reference {
        return Err(format!(
            "navigation seek state mismatch: sought {sought:?} vs reference {reference:?}"
        ));
    }
    println!(
        "smoke: navigation seek to retired instruction {target} matches replay-from-start (restored checkpoint at {})",
        ckpts[1].retired
    );
    Ok(())
}

// ===== Argument parsing =====

enum Mode {
    Record,
    Replay,
    Navigate,
    Smoke,
}

struct Args {
    mode: Mode,
    engine: String,
    workload: String,
    seed: u64,
    fault: bool,
    ckpt_period: u64,
    out: String,
    file: String,
    seek: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut a = Args {
        mode: Mode::Smoke,
        engine: "block".to_string(),
        workload: "micro".to_string(),
        seed: 0,
        fault: false,
        ckpt_period: 0,
        out: "SIMRECORD.srec".to_string(),
        file: String::new(),
        seek: 0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return Err(
            "usage: simrecord --record|--replay FILE|--navigate FILE --seek N|--smoke".into(),
        );
    }
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let mut mode_set = false;
    let mut seed_set = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--record" => {
                a.mode = Mode::Record;
                mode_set = true;
            }
            "--replay" => {
                a.mode = Mode::Replay;
                a.file = value(&argv, i, "--replay")?;
                mode_set = true;
                i += 1;
            }
            "--navigate" => {
                a.mode = Mode::Navigate;
                a.file = value(&argv, i, "--navigate")?;
                mode_set = true;
                i += 1;
            }
            "--smoke" => {
                a.mode = Mode::Smoke;
                mode_set = true;
            }
            "--engine" => {
                a.engine = value(&argv, i, "--engine")?;
                i += 1;
            }
            "--workload" => {
                a.workload = value(&argv, i, "--workload")?;
                i += 1;
            }
            "--seed" => {
                let v = value(&argv, i, "--seed")?;
                a.seed = v.parse().map_err(|_| format!("bad --seed {v}"))?;
                seed_set = true;
                i += 1;
            }
            "--fault" => a.fault = true,
            "--checkpoint-period" => {
                let v = value(&argv, i, "--checkpoint-period")?;
                a.ckpt_period = v.parse().map_err(|_| format!("bad --checkpoint-period {v}"))?;
                i += 1;
            }
            "--out" => {
                a.out = value(&argv, i, "--out")?;
                i += 1;
            }
            "--seek" => {
                let v = value(&argv, i, "--seek")?;
                a.seek = v.parse().map_err(|_| format!("bad --seek {v}"))?;
                i += 1;
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    if !mode_set {
        return Err("pick one of --record, --replay, --navigate, --smoke".into());
    }
    if !seed_set {
        a.seed = default_seed(&a.workload);
    }
    Ok(a)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("simrecord: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.mode {
        Mode::Record => do_record(&args),
        Mode::Replay => do_replay(&args),
        Mode::Navigate => do_navigate(&args),
        Mode::Smoke => smoke().map(|()| ExitCode::SUCCESS),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("simrecord: {e}");
            ExitCode::FAILURE
        }
    }
}
