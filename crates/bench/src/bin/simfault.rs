//! `simfault` — the deterministic fault & adversarial-schedule sweep.
//!
//! Runs every interposition mechanism against every [`pitfalls::fault`]
//! scenario and prints a byte-deterministic verdict table; failing cells
//! print a one-command replay line carrying the exact seed + plan.
//!
//! ```text
//! simfault                   # full matrix at the default seed
//! simfault --seed 23         # full matrix at seed 23
//! simfault --smoke           # CI mode: default-seed matrix (determinism
//!                            # is checked by diffing two invocations)
//! simfault --replay <mech> '<plan>'   # re-run one cell from its encoding
//! ```

use pitfalls::fault::{full_fault_matrix, render_fault_matrix, run_probe, MECHANISMS};
use sim_fault::FaultPlan;

const DEFAULT_SEED: u64 = 7;

fn sweep(seed: u64) {
    let cells = full_fault_matrix(seed);
    print!("{}", render_fault_matrix(seed, &cells));
}

fn replay(mech: &str, encoded: &str) {
    let plan = match FaultPlan::decode(encoded) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("simfault: bad plan {encoded:?}: {e}");
            std::process::exit(2);
        }
    };
    if !MECHANISMS.contains(&mech) {
        eprintln!("simfault: unknown mechanism {mech:?} (expected one of {MECHANISMS:?})");
        std::process::exit(2);
    }
    let baseline = run_probe(mech, None);
    let faulted = run_probe(mech, Some(&plan));
    let survived = faulted.exit == baseline.exit && faulted.output == baseline.output;
    println!("replay {mech} '{}'", plan.encode());
    println!(
        "  baseline: exit {:?}, {} output bytes",
        baseline.exit,
        baseline.output.len()
    );
    println!(
        "  faulted:  exit {:?}, {} output bytes",
        faulted.exit,
        faulted.output.len()
    );
    println!("  verdict:  {}", if survived { "survived" } else { "FAILED" });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("--smoke") => sweep(DEFAULT_SEED),
        Some("--seed") => {
            let seed = args
                .get(1)
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or_else(|| {
                    eprintln!("simfault: --seed needs an integer");
                    std::process::exit(2);
                });
            sweep(seed);
        }
        Some("--replay") => match (args.get(1), args.get(2)) {
            (Some(mech), Some(plan)) => replay(mech, plan),
            _ => {
                eprintln!("usage: simfault --replay <mechanism> '<plan>'");
                std::process::exit(2);
            }
        },
        Some(other) => {
            eprintln!("simfault: unknown argument {other:?}");
            eprintln!("usage: simfault [--smoke | --seed <n> | --replay <mech> '<plan>']");
            std::process::exit(2);
        }
    }
}
