//! Regenerates Table 2: unique offline-logged syscall sites per application.
fn main() {
    let rows = bench::table2::run_table2(bench::scale());
    println!("Table 2 — unique syscall/sysenter sites logged offline\n");
    print!("{}", bench::table2::render_table2(&rows));
}
