//! The Table 5 microbenchmark: a stress loop invoking the nonexistent
//! syscall 500, measured per-iteration by differencing two run lengths
//! (which cancels startup, constructor, and offline-phase costs exactly).
//!
//! The paper invokes the syscall 100 M times on real hardware; the
//! simulator runs a scaled count (see `K23_BENCH_SCALE`) — per-iteration
//! cost is independent of the count by construction, so scaling does not
//! change the measured ratios. The simulator is fully deterministic, so the
//! paper's ±0.0x % measurement-noise column is identically zero here.

use crate::Config;
use k23::OfflineSession;
use sim_isa::Reg;
use sim_kernel::{nr, Kernel, RunExit};
use sim_loader::{boot_kernel, ImageBuilder, SimElf, LIBC_PATH};

/// Path of the stress binary.
pub const MICRO_APP: &str = "/usr/bin/microbench";
/// Iteration-count config file.
pub const MICRO_CFG: &str = "/etc/microbench.conf";

/// Builds the stress binary: reads the iteration count from its config,
/// then loops `mov rax, 500; syscall`.
pub fn build_micro_app() -> SimElf {
    let mut b = ImageBuilder::new(MICRO_APP);
    b.entry("main");
    b.needs(LIBC_PATH);
    b.asm.label("main");
    // read the count (raw syscalls; constant cost, cancelled by differencing)
    b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
    b.asm.lea_label(Reg::Rsi, "cfg_path");
    b.asm.mov_imm(Reg::Rdx, 0);
    b.asm.mov_imm(Reg::Rax, nr::SYS_OPENAT);
    b.asm.syscall();
    b.asm.mov_reg(Reg::R12, Reg::Rax);
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.lea_label(Reg::Rsi, "count");
    b.asm.mov_imm(Reg::Rdx, 8);
    b.asm.mov_imm(Reg::Rax, nr::SYS_READ);
    b.asm.syscall();
    b.asm.mov_reg(Reg::Rdi, Reg::R12);
    b.asm.mov_imm(Reg::Rax, nr::SYS_CLOSE);
    b.asm.syscall();
    b.asm.lea_label(Reg::R11, "count");
    b.asm.load(Reg::Rbx, Reg::R11, 0);
    // the measured loop (paper §6.2.1)
    b.asm.label("loop");
    b.asm.mov_imm(Reg::Rax, nr::SYS_NONEXISTENT);
    b.asm.label("stress_site");
    b.asm.syscall();
    b.asm.sub_imm(Reg::Rbx, 1);
    b.asm.jnz("loop");
    b.asm.mov_imm(Reg::Rax, 0);
    b.asm.ret();
    b.data_object("cfg_path", format!("{MICRO_CFG}\0").as_bytes());
    b.data_object("count", &[0u8; 8]);
    b.finish()
}

fn total_cycles(config: Config, n: u64) -> u64 {
    let mut k = boot_kernel();
    build_micro_app().install(&mut k.vfs);
    if config.needs_offline() {
        // Offline phase with a small representative run (fixed size so it
        // contributes identically to both differencing runs).
        k.vfs
            .write_file(MICRO_CFG, &64u64.to_le_bytes())
            .expect("cfg");
        let session = OfflineSession::new(&mut k, MICRO_APP);
        let (_pid, exit) = session
            .run_once(&mut k, &[], &[], 10_000_000_000)
            .expect("offline run");
        assert_eq!(exit, RunExit::AllExited, "offline phase completed");
        session.finish(&mut k);
    }
    k.vfs
        .write_file(MICRO_CFG, &n.to_le_bytes())
        .expect("cfg");
    let ip = config.make();
    ip.install(&mut k);
    let pid = ip
        .spawn(&mut k, MICRO_APP, &[], &[])
        .expect("spawn microbench");
    let tid = k.process(pid).expect("proc").threads[0].tid;
    let exit = k.run(u64::MAX / 4);
    assert_eq!(exit, RunExit::AllExited, "{}", config.label());
    assert_eq!(
        k.process(pid).and_then(|p| p.exit_status),
        Some(0),
        "{} run failed",
        config.label()
    );
    k.cycles_of(pid, tid)
}

/// Per-iteration cycles under an arbitrary interposer instance (used by
/// the Criterion benches for mechanisms outside the Table 5 set).
pub fn per_iteration_cycles_with(ip: &dyn interpose::Interposer, n: u64) -> f64 {
    let total = |n: u64| -> u64 {
        let mut k = boot_kernel();
        build_micro_app().install(&mut k.vfs);
        k.vfs.write_file(MICRO_CFG, &n.to_le_bytes()).expect("cfg");
        ip.install(&mut k);
        let pid = ip.spawn(&mut k, MICRO_APP, &[], &[]).expect("spawn");
        let tid = k.process(pid).expect("proc").threads[0].tid;
        assert_eq!(k.run(u64::MAX / 4), RunExit::AllExited);
        k.cycles_of(pid, tid)
    };
    let c1 = total(n);
    let c2 = total(2 * n);
    (c2 - c1) as f64 / n as f64
}

/// Per-iteration cycles for one configuration.
pub fn per_iteration_cycles(config: Config, n: u64) -> f64 {
    let c1 = total_cycles(config, n);
    let c2 = total_cycles(config, 2 * n);
    (c2 - c1) as f64 / n as f64
}

/// One Table 5 row.
#[derive(Debug, Clone)]
pub struct MicroRow {
    /// Configuration label.
    pub label: &'static str,
    /// Measured overhead vs native.
    pub overhead: f64,
    /// The paper's value, for side-by-side output.
    pub paper: f64,
}

/// Runs the full Table 5 microbenchmark.
pub fn run_table5(n: u64) -> Vec<MicroRow> {
    let native = per_iteration_cycles(Config::Native, n);
    Config::TABLE5
        .iter()
        .map(|c| MicroRow {
            label: c.label(),
            overhead: per_iteration_cycles(*c, n) / native,
            paper: c.paper_table5().expect("table5 config"),
        })
        .collect()
}

/// Renders Table 5.
pub fn render_table5(rows: &[MicroRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<22}{:>12}{:>12}{:>8}\n",
        "Configuration", "measured", "paper", "Δ"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<22}{:>12}{:>12}{:>8}\n",
            r.label,
            crate::fmt_ratio(r.overhead),
            crate::fmt_ratio(r.paper),
            format!("{:+.3}", r.overhead - r.paper),
        ));
    }
    out.push_str("(stddev is identically 0: the simulator is deterministic)\n");
    out
}

/// Expose the Kernel type for bin diagnostics.
pub type BenchKernel = Kernel;
