//! The evaluated interposer configurations (paper Tables 4 and 5).

use interpose::Interposer;

/// One evaluated configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Config {
    /// No interposition.
    Native,
    /// zpoline without the NULL-execution check.
    ZpolineDefault,
    /// zpoline with the bitmap NULL-execution check.
    ZpolineUltra,
    /// lazypoline.
    Lazypoline,
    /// K23 without checks.
    K23Default,
    /// K23 with the hash-set NULL-execution check.
    K23Ultra,
    /// K23 with the check and the dedicated-stack switch.
    K23UltraPlus,
    /// SUD armed but inert (isolates the kernel slow path).
    SudNoInterpose,
    /// Full SUD interposition.
    Sud,
}

impl Config {
    /// All Table 5 configurations, in row order (native excluded).
    pub const TABLE5: [Config; 8] = [
        Config::ZpolineDefault,
        Config::ZpolineUltra,
        Config::Lazypoline,
        Config::K23Default,
        Config::K23Ultra,
        Config::K23UltraPlus,
        Config::SudNoInterpose,
        Config::Sud,
    ];

    /// The Table 6 configurations (SUD-no-interposition is not in Table 6).
    pub const TABLE6: [Config; 7] = [
        Config::ZpolineDefault,
        Config::ZpolineUltra,
        Config::Lazypoline,
        Config::K23Default,
        Config::K23Ultra,
        Config::K23UltraPlus,
        Config::Sud,
    ];

    /// Display label, matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Config::Native => "native",
            Config::ZpolineDefault => "zpoline-default",
            Config::ZpolineUltra => "zpoline-ultra",
            Config::Lazypoline => "lazypoline",
            Config::K23Default => "K23-default",
            Config::K23Ultra => "K23-ultra",
            Config::K23UltraPlus => "K23-ultra+",
            Config::SudNoInterpose => "SUD-no-interposition",
            Config::Sud => "SUD",
        }
    }

    /// Canonical [`interpose::registry`] name.
    pub fn name(self) -> &'static str {
        match self {
            Config::Native => "native",
            Config::ZpolineDefault => "zpoline",
            Config::ZpolineUltra => "zpoline-ultra",
            Config::Lazypoline => "lazypoline",
            Config::K23Default => "k23",
            Config::K23Ultra => "k23-ultra",
            Config::K23UltraPlus => "k23-ultra+",
            Config::SudNoInterpose => "sud-armed",
            Config::Sud => "sud",
        }
    }

    /// Instantiates the interposer via the registry.
    pub fn make(self) -> Box<dyn Interposer> {
        pitfalls::register_all();
        interpose::by_name_spec(self.name()).expect("registered mechanism")
    }

    /// True for the K23 variants (which get an offline phase first, as in
    /// the paper's methodology §6.2).
    pub fn needs_offline(self) -> bool {
        matches!(
            self,
            Config::K23Default | Config::K23Ultra | Config::K23UltraPlus
        )
    }

    /// The paper's Table 5 overhead for comparison output.
    pub fn paper_table5(self) -> Option<f64> {
        Some(match self {
            Config::ZpolineDefault => 1.1267,
            Config::ZpolineUltra => 1.1576,
            Config::Lazypoline => 1.3801,
            Config::K23Default => 1.2788,
            Config::K23Ultra => 1.3919,
            Config::K23UltraPlus => 1.3948,
            Config::SudNoInterpose => 1.2269,
            Config::Sud => 15.3022,
            Config::Native => return None,
        })
    }
}
