//! Figure regeneration: textual versions of the paper's Figures 1–4.

use crate::Config;
use k23::OfflineSession;
use sim_isa::{disasm, Asm, Reg};
use sim_kernel::RunExit;
use sim_loader::boot_kernel;

/// Figure 1: an image with a true syscall, a partial syscall (opcode bytes
/// inside an immediate), and embedded data resembling a syscall — and what
/// the two static strategies make of it.
pub fn fig1() -> String {
    let mut a = Asm::new();
    a.mov_imm(Reg::Rax, 60);
    a.label("true_syscall");
    a.syscall();
    a.label("partial");
    a.mov_imm(Reg::Rbx, u64::from_le_bytes([1, 2, 0x0f, 0x05, 3, 4, 5, 6]));
    a.ret();
    a.label("data");
    a.quad(0x1122_3344_050f_c0de); // bytes: de c0 0f 05 44 33 22 11
    let prog = a.finish_program();

    let mut out = String::new();
    out.push_str("Figure 1 — misidentification of partial instructions and embedded data\n\n");
    out.push_str(&format!(
        "ground truth: one real syscall at +{}\n",
        prog.sym("true_syscall")
    ));
    out.push_str(&format!(
        "              a partial syscall inside the mov at +{} (imm bytes 0f 05 at +{})\n",
        prog.sym("partial"),
        prog.sym("partial") + 4
    ));
    out.push_str(&format!(
        "              embedded data containing 0f 05 at +{}\n\n",
        prog.sym("data") + 2
    ));

    out.push_str("byte-pattern scan finds:\n");
    for (addr, kind) in disasm::scan_syscall_bytes(&prog.bytes, 0) {
        let verdict = if addr == prog.sym("true_syscall") {
            "TRUE SITE"
        } else {
            "FALSE POSITIVE (would corrupt on rewrite)"
        };
        out.push_str(&format!("  +{addr:<6} {kind:?}  {verdict}\n"));
    }
    out.push_str("\nlinear sweep decodes:\n");
    for item in disasm::linear_sweep(&prog.bytes, 0) {
        match item.inst {
            Ok(i) => out.push_str(&format!("  +{:<6} {i}\n", item.addr)),
            Err(_) => out.push_str(&format!("  +{:<6} (bad byte — resync)\n", item.addr)),
        }
    }
    out.push_str("\nthe sweep desynchronizes inside the data and may both miss true\nsites (P2a) and fabricate false ones (P3a).\n");
    out
}

/// Figure 2: the offline phase's main steps, narrated from a real run.
pub fn fig2() -> String {
    let mut k = boot_kernel();
    apps::install_world(&mut k.vfs);
    let session = OfflineSession::new(&mut k, "/usr/bin/pwd-sim");
    let (pid, exit) = session
        .run_once(&mut k, &[], &[], 50_000_000_000)
        .expect("offline run");
    assert_eq!(exit, RunExit::AllExited);
    let sigsys = k.process(pid).map(|p| p.stats.sigsys_count).unwrap_or(0);
    let log = session.finish(&mut k);

    let mut out = String::new();
    out.push_str("Figure 2 — K23 offline phase (live run of pwd-sim)\n\n");
    out.push_str("(1) application invokes a system call\n");
    out.push_str(&format!(
        "(2) kernel traps it (SUD) and redirects to libLogger       [{sigsys} traps]\n"
    ));
    out.push_str(&format!(
        "(3) libLogger logs the triggering instruction              [{} unique sites]\n",
        log.len()
    ));
    out.push_str("(4) libLogger forwards the call and returns its result\n\n");
    out.push_str("log entries collected:\n");
    out.push_str(&log.render());
    out
}

/// Figure 3: the offline log generated for ls.
pub fn fig3() -> String {
    let mut k = boot_kernel();
    apps::install_world(&mut k.vfs);
    let session = OfflineSession::new(&mut k, "/usr/bin/ls-sim");
    let (_pid, exit) = session
        .run_once(&mut k, &[], &[], 50_000_000_000)
        .expect("offline run");
    assert_eq!(exit, RunExit::AllExited);
    let log = session.finish(&mut k);
    format!(
        "Figure 3 — log file generated for ls ({} unique sites)\n\n{}",
        log.len(),
        log.render()
    )
}

/// Figure 4: the online phase's main steps, narrated from a real run.
pub fn fig4() -> String {
    let mut k = boot_kernel();
    apps::install_world(&mut k.vfs);
    crate::micro::build_micro_app().install(&mut k.vfs);
    k.vfs
        .write_file(crate::micro::MICRO_CFG, &256u64.to_le_bytes())
        .expect("cfg");
    // Offline first.
    let session = OfflineSession::new(&mut k, crate::micro::MICRO_APP);
    session
        .run_once(&mut k, &[], &[], 50_000_000_000)
        .expect("offline");
    let log = session.finish(&mut k);
    // Online.
    let ip = Config::K23Ultra.make();
    ip.install(&mut k);
    let pid = ip
        .spawn(&mut k, crate::micro::MICRO_APP, &[], &[])
        .expect("spawn");
    let exit = k.run(1_000_000_000_000);
    assert_eq!(exit, RunExit::AllExited);
    let p = k.process(pid).expect("proc");
    let fast = p
        .symbols
        .get("libk23.so:__k23_forward")
        .map(|s| p.stats.syscalls_at_site(*s))
        .unwrap_or(0);
    let fallback = p
        .symbols
        .get("libk23.so:__k23_sud_forward")
        .map(|s| p.stats.syscalls_at_site(*s))
        .unwrap_or(0);
    let startup = ip.interposed_count(&k, pid) - fast - fallback
        - p.symbols
            .get("libk23.so:__k23_fake2")
            .map(|s| p.stats.syscalls_at_site(*s))
            .unwrap_or(0)
        - p.symbols
            .get("libk23.so:__k23_sud_forward_sigreturn")
            .map(|s| p.stats.syscalls_at_site(*s))
            .unwrap_or(0);

    let mut out = String::new();
    out.push_str("Figure 4 — K23 online phase (live run of the stress binary)\n\n");
    out.push_str(&format!(
        "(1-3) ptracer interposition before/during library loading   [{startup} syscalls]\n"
    ));
    out.push_str(&format!(
        "(4)   libK23 single selective rewrite of logged sites       [{} sites from a {}-entry log]\n",
        fast.min(1) * log.len() as u64,
        log.len()
    ));
    out.push_str(&format!(
        "(5-7) rewritten sites take the trampoline fast path         [{fast} calls]\n"
    ));
    out.push_str(&format!(
        "      unlogged sites take the SUD fallback                  [{fallback} calls]\n"
    ));
    out.push_str(&format!(
        "every syscall interposed: {} of {}\n",
        ip.interposed_count(&k, pid),
        p.stats.syscalls
    ));
    out
}
