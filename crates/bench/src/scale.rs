//! The simscale matrix: Table 6 taken to production traffic shapes.
//!
//! Sweeps the two connection-scale servers (`epollsrv-sim`, the
//! readiness-multiplexed variant, and `pollsrv-sim`, the busy-polling
//! strawman) over connection counts spanning 10^2–10^4 under every
//! Table 6 interposer, measuring absolute throughput and response-latency
//! percentiles. Independent cells run as independent guest kernels on
//! parallel host threads ([`ParallelRunner`]); because every kernel is
//! self-contained and every metric is a pure function of simulated state,
//! the output is byte-identical for any host thread count — the merge of
//! the per-kernel event streams is ordered by `(sim clock, cell, seq)`,
//! never by host completion order (DESIGN.md §14).

use crate::Config;
use apps::{install_world, run_scale, scale_spec, MacroSpec};
use k23::OfflineSession;
use sim_kernel::{RunExit, Vfs};
use sim_loader::{boot_kernel, boot_kernel_from};
use sim_obs::{EventKind, ObsConfig};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, OnceLock};

/// The world VFS (libc + every guest image), assembled exactly once per
/// process and cloned into each cell's kernel. A 48-cell matrix would
/// otherwise re-assemble every image 48 times; `Vfs` is plain data, so
/// the template is shared across the worker threads by reference.
fn world() -> &'static Vfs {
    static WORLD: OnceLock<Vfs> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut k = boot_kernel();
        install_world(&mut k.vfs);
        k.vfs
    })
}

/// Cycle budget per cell.
pub const BUDGET: u64 = 40_000_000_000_000;

/// Per-CPU event-ring capacity for cell runs. Large enough to keep the
/// load generator's full stream (latency spans come from it); the busy
/// polling server's ring saturates and counts drops deterministically.
const RING_CAP: usize = 1 << 18;

/// Per-cell cap on events contributing to the cross-kernel merged
/// stream (bounds harness memory; the per-cell digest still covers every
/// recorded event).
const MERGE_SAMPLE: usize = 1 << 13;

/// Chunk length for the offline-log collection loop (the busy-polling
/// server never parks, so the offline phase is driven in fixed chunks
/// exactly like [`apps::run_scale`]).
const CHUNK: u64 = 2_000_000;

/// Server variant under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// epollsrv-sim: readiness multiplexing, O(ready) per wakeup.
    Epoll,
    /// pollsrv-sim: nonblocking busy-scan, O(connections) per pass.
    Poll,
}

impl Variant {
    /// Stable display / JSON label.
    pub fn label(self) -> &'static str {
        match self {
            Variant::Epoll => "epoll",
            Variant::Poll => "poll",
        }
    }
}

/// Workload shape shared by every cell of one matrix.
#[derive(Debug, Clone, Copy)]
pub struct ScaleParams {
    /// Requests issued per cell (the measured load phase).
    pub requests: u32,
    /// Active-window size: requests round-robin over this many of the
    /// open connections; the rest stay idle, which is what separates
    /// readiness multiplexing from busy polling.
    pub active: u32,
    /// Response size in 64-byte units.
    pub resp64: u8,
    /// Per-request server-side work knob.
    pub server_work: u8,
    /// Server worker processes (prefork).
    pub workers: u8,
}

/// One matrix cell: a (server variant, connection count, interposer)
/// triple.
#[derive(Debug, Clone, Copy)]
pub struct ScaleCell {
    pub variant: Variant,
    pub conns: u32,
    pub config: Config,
}

/// Measured result of one cell.
#[derive(Debug, Clone)]
pub struct CellResult {
    pub variant: Variant,
    pub conns: u32,
    pub config: Config,
    /// Requests completed.
    pub requests: u64,
    /// Load-phase cycles (guest-stamped, cycle-exact).
    pub cycles: u64,
    /// Requests per Gcycle.
    pub throughput: f64,
    /// Response-latency percentiles in cycles (client read-park spans).
    pub p50: u64,
    pub p99: u64,
    pub p999: u64,
    /// Events recorded / dropped across the cell's rings.
    pub events: u64,
    pub dropped: u64,
    /// FNV-1a digest over every recorded event of this cell's kernel.
    pub digest: u64,
    /// Bounded event sample for the cross-kernel merge:
    /// `(clock, seq, event hash)`.
    sample: Vec<(u64, u64, u64)>,
}

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    let mut h = if h == 0 { 0xcbf2_9ce4_8422_2325 } else { h };
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn event_hash(ev: &sim_obs::Event) -> u64 {
    let mut h = fnv1a(0, &ev.clock.to_le_bytes());
    h = fnv1a(h, &ev.pid.to_le_bytes());
    h = fnv1a(h, &ev.tid.to_le_bytes());
    h = fnv1a(h, &ev.seq.to_le_bytes());
    fnv1a(h, format!("{:?}", ev.kind).as_bytes())
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn spec_for(cell: &ScaleCell, params: &ScaleParams) -> MacroSpec {
    scale_spec(
        cell.variant == Variant::Epoll,
        params.workers,
        cell.conns,
        params.active.min(cell.conns),
        params.requests,
        params.resp64,
        params.server_work,
        false,
    )
}

/// Offline site log for a scale-server variant, collected with the same
/// chunked drive as the measurement runs (the busy-polling server never
/// parks, so [`crate::macros_::collect_offline_log`]'s park-in-accept
/// assumption does not hold here). A small connection count suffices:
/// the log records syscall *sites*, which don't grow with load.
pub fn collect_offline_log_scale(variant: Variant, params: &ScaleParams) -> (String, Vec<u8>) {
    let cell = ScaleCell {
        variant,
        conns: 32,
        config: Config::Native,
    };
    let mut params = *params;
    params.requests = params.requests.min(64);
    let spec = spec_for(&cell, &params);
    let mut k = boot_kernel_from(world());
    apps::install_spec_config(&mut k, &spec);
    let ready = if variant == Variant::Epoll {
        "/data/epollsrv.ready"
    } else {
        "/data/pollsrv.ready"
    };
    let session = OfflineSession::new(&mut k, spec.server);
    session
        .spawn(&mut k, &[spec.server.to_string()], &[])
        .expect("offline server spawn");
    let mut spent = 0u64;
    while !k.vfs.exists(ready) {
        assert_ne!(k.run(CHUNK), RunExit::AllExited, "offline server exited early");
        spent += CHUNK;
        assert!(spent < BUDGET, "offline server never became ready");
    }
    let cpid = k
        .spawn(spec.client, &[spec.client.to_string()], &[], None)
        .expect("offline client spawn");
    loop {
        let exit = k.run(CHUNK);
        let done = k
            .process(cpid)
            .map(|p| p.exit_status.is_some())
            .unwrap_or(true);
        if done {
            break;
        }
        assert!(
            !matches!(exit, RunExit::Deadlock | RunExit::AllExited),
            "offline load wedged"
        );
        spent += CHUNK;
        assert!(spent < BUDGET, "offline load never finished");
    }
    session.finish(&mut k);
    let path = k23::SiteLog::path_for(spec.server);
    let bytes = k.vfs.read_file(&path).expect("offline log written").to_vec();
    (path, bytes)
}

/// Runs one cell on a fresh kernel and extracts its metrics. Pure with
/// respect to the host: everything returned derives from simulated state.
pub fn run_cell(
    cell: &ScaleCell,
    params: &ScaleParams,
    logs: &BTreeMap<&'static str, (String, Vec<u8>)>,
) -> CellResult {
    let spec = spec_for(cell, params);
    let mut k = boot_kernel_from(world());
    if cell.config.needs_offline() {
        let (path, bytes) = logs
            .get(cell.variant.label())
            .expect("offline log collected for variant");
        k.vfs.mkdir_p(k23::LOG_DIR).expect("log dir creatable");
        k.vfs.write_file(path, bytes).expect("log install");
        k.vfs.set_immutable(k23::LOG_DIR, true).expect("seal");
    }
    let ip = cell.config.make();
    sim_obs::enable(ObsConfig {
        ring_capacity: RING_CAP,
        ..ObsConfig::default()
    });
    let run = run_scale(&mut k, ip.as_ref(), &spec, BUDGET).unwrap_or_else(|e| {
        panic!(
            "{} c={} under {}: {e:?}",
            cell.variant.label(),
            cell.conns,
            cell.config.label()
        )
    });
    let rec = sim_obs::disable().expect("recorder active");
    // Response latency: the client's sockets are blocking, so each
    // response-read's own latency is the request's server turnaround.
    // Only load-phase reads count (the config read happens before t0).
    let mut lat: Vec<u64> = Vec::new();
    let mut events = 0u64;
    let mut dropped = 0u64;
    let mut digest = 0u64;
    let mut sample: Vec<(u64, u64, u64)> = Vec::new();
    for ((pid, _tid), ring) in &rec.rings {
        events += ring.events.len() as u64;
        dropped += ring.dropped;
        for ev in &ring.events {
            let h = event_hash(ev);
            digest = fnv1a(digest, &h.to_le_bytes());
            if sample.len() < MERGE_SAMPLE {
                sample.push((ev.clock, ev.seq, h));
            }
            if *pid == run.client && ev.clock >= run.t0 {
                if let EventKind::SyscallExit { name: "read", ret, latency, .. } = ev.kind {
                    if (ret as i64) > 0 {
                        lat.push(latency);
                    }
                }
            }
        }
    }
    lat.sort_unstable();
    CellResult {
        variant: cell.variant,
        conns: cell.conns,
        config: cell.config,
        requests: run.requests,
        cycles: run.t1 - run.t0,
        throughput: run.throughput(),
        p50: percentile(&lat, 0.50),
        p99: percentile(&lat, 0.99),
        p999: percentile(&lat, 0.999),
        events,
        dropped,
        digest,
        sample,
    }
}

/// Runs independent guest kernels on parallel host threads.
///
/// Each worker pulls a cell index off a shared queue, builds that cell's
/// kernel *inside its own thread* (a `Kernel` is `!Send`), runs it with a
/// thread-local recorder, and deposits the result at the cell's index.
/// Results are therefore ordered by cell index and every contained value
/// is a function of simulated state only — the matrix is byte-identical
/// for any `threads`.
#[derive(Debug, Clone, Copy)]
pub struct ParallelRunner {
    /// Host worker threads (clamped to at least 1).
    pub threads: usize,
}

impl ParallelRunner {
    /// Runs every cell; panics if any cell fails or wedges.
    pub fn run(
        &self,
        cells: &[ScaleCell],
        params: &ScaleParams,
        logs: &BTreeMap<&'static str, (String, Vec<u8>)>,
    ) -> Vec<CellResult> {
        let queue: Mutex<VecDeque<usize>> = Mutex::new((0..cells.len()).collect());
        let results: Mutex<Vec<Option<CellResult>>> = Mutex::new(vec![None; cells.len()]);
        let workers = self.threads.max(1).min(cells.len().max(1));
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let idx = match queue.lock().expect("queue").pop_front() {
                        Some(i) => i,
                        None => break,
                    };
                    let res = run_cell(&cells[idx], params, logs);
                    results.lock().expect("results")[idx] = Some(res);
                });
            }
        });
        results
            .into_inner()
            .expect("results")
            .into_iter()
            .map(|r| r.expect("every cell ran"))
            .collect()
    }
}

/// The full matrix result: per-cell rows plus the deterministic merge of
/// all per-kernel event streams.
#[derive(Debug, Clone)]
pub struct ScaleMatrix {
    pub params: ScaleParams,
    pub conn_counts: Vec<u32>,
    pub results: Vec<CellResult>,
    /// FNV-1a over the cross-kernel merged event sample, ordered by
    /// `(sim clock, cell index, seq)` — host thread timing can't reach it.
    pub merged_digest: u64,
}

/// Deterministically merges the per-cell event samples: sort by
/// `(clock, cell, seq)` and fold. The sort key is pure simulated state,
/// so any host interleaving yields the same digest.
pub fn merge_digest(results: &[CellResult]) -> u64 {
    let mut merged: Vec<(u64, usize, u64, u64)> = Vec::new();
    for (ci, r) in results.iter().enumerate() {
        for (clock, seq, h) in &r.sample {
            merged.push((*clock, ci, *seq, *h));
        }
    }
    merged.sort_unstable();
    let mut d = 0u64;
    for (clock, ci, seq, h) in merged {
        d = fnv1a(d, &clock.to_le_bytes());
        d = fnv1a(d, &(ci as u64).to_le_bytes());
        d = fnv1a(d, &seq.to_le_bytes());
        d = fnv1a(d, &h.to_le_bytes());
    }
    d
}

/// The committed matrix shape: 10^2 / 10^3 / 10^4 connections, native +
/// every Table 6 interposer, both server variants.
pub fn full_matrix_cells(conn_counts: &[u32]) -> Vec<ScaleCell> {
    let mut cells = Vec::new();
    let mut configs = vec![Config::Native];
    configs.extend(Config::TABLE6);
    for variant in [Variant::Epoll, Variant::Poll] {
        for &conns in conn_counts {
            for &config in &configs {
                cells.push(ScaleCell {
                    variant,
                    conns,
                    config,
                });
            }
        }
    }
    cells
}

/// Default full-matrix parameters, scaled by `K23_BENCH_SCALE`.
pub fn full_params(scale: u64) -> ScaleParams {
    ScaleParams {
        requests: ((4000 / scale.max(1)) as u32).max(64),
        active: 64,
        resp64: 2,
        server_work: 2,
        workers: 1,
    }
}

/// Runs a whole matrix: collects the per-variant offline logs once, then
/// fans the cells out over `threads` host workers.
pub fn run_matrix(conn_counts: &[u32], params: &ScaleParams, threads: usize) -> ScaleMatrix {
    let cells = full_matrix_cells(conn_counts);
    run_matrix_cells(conn_counts, &cells, params, threads)
}

/// [`run_matrix`] over an explicit cell list.
pub fn run_matrix_cells(
    conn_counts: &[u32],
    cells: &[ScaleCell],
    params: &ScaleParams,
    threads: usize,
) -> ScaleMatrix {
    let mut logs: BTreeMap<&'static str, (String, Vec<u8>)> = BTreeMap::new();
    for variant in [Variant::Epoll, Variant::Poll] {
        if cells
            .iter()
            .any(|c| c.variant == variant && c.config.needs_offline())
        {
            logs.insert(variant.label(), collect_offline_log_scale(variant, params));
        }
    }
    let results = ParallelRunner { threads }.run(cells, params, &logs);
    let merged_digest = merge_digest(&results);
    ScaleMatrix {
        params: *params,
        conn_counts: conn_counts.to_vec(),
        results,
        merged_digest,
    }
}

/// Epoll-over-poll throughput speedup for `config` at `conns`, if both
/// cells are present.
pub fn speedup_at(matrix: &[CellResult], config: Config, conns: u32) -> Option<f64> {
    let find = |v: Variant| {
        matrix
            .iter()
            .find(|r| r.variant == v && r.config == config && r.conns == conns)
            .map(|r| r.throughput)
    };
    match (find(Variant::Epoll), find(Variant::Poll)) {
        (Some(e), Some(p)) if p > 0.0 => Some(e / p),
        _ => None,
    }
}

/// Serializes the matrix (sorted keys, deterministic float formatting:
/// byte-identical across runs and host thread counts).
pub fn matrix_json(m: &ScaleMatrix) -> sjson::Value {
    use sjson::Value;
    let rows: Vec<Value> = m
        .results
        .iter()
        .map(|r| {
            Value::object(vec![
                ("variant", Value::Str(r.variant.label().to_string())),
                ("conns", Value::UInt(u64::from(r.conns))),
                ("config", Value::Str(r.config.label().to_string())),
                ("requests", Value::UInt(r.requests)),
                ("cycles", Value::UInt(r.cycles)),
                ("throughput_per_gcycle", Value::Float(r.throughput)),
                ("p50", Value::UInt(r.p50)),
                ("p99", Value::UInt(r.p99)),
                ("p999", Value::UInt(r.p999)),
                ("events", Value::UInt(r.events)),
                ("dropped", Value::UInt(r.dropped)),
                ("digest", Value::Str(format!("{:016x}", r.digest))),
            ])
        })
        .collect();
    let max_conns = m.conn_counts.iter().copied().max().unwrap_or(0);
    let speedups: Vec<Value> = m
        .conn_counts
        .iter()
        .filter_map(|&c| {
            speedup_at(&m.results, Config::K23Default, c).map(|s| {
                Value::object(vec![
                    ("conns", Value::UInt(u64::from(c))),
                    ("epoll_over_poll_k23", Value::Float(s)),
                ])
            })
        })
        .collect();
    Value::object(vec![
        (
            "params",
            Value::object(vec![
                ("requests", Value::UInt(u64::from(m.params.requests))),
                ("active", Value::UInt(u64::from(m.params.active))),
                ("resp64", Value::UInt(u64::from(m.params.resp64))),
                ("server_work", Value::UInt(u64::from(m.params.server_work))),
                ("workers", Value::UInt(u64::from(m.params.workers))),
            ]),
        ),
        (
            "conn_counts",
            Value::Array(
                m.conn_counts
                    .iter()
                    .map(|c| Value::UInt(u64::from(*c)))
                    .collect(),
            ),
        ),
        ("max_conns", Value::UInt(u64::from(max_conns))),
        ("cells", Value::Array(rows)),
        ("speedups", Value::Array(speedups)),
        ("merged_digest", Value::Str(format!("{:016x}", m.merged_digest))),
    ])
}

/// Renders the matrix as an aligned text table (one row per cell).
pub fn render_matrix(m: &ScaleMatrix) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8}{:>8}{:>18}{:>12}{:>12}{:>10}{:>10}{:>10}\n",
        "server", "conns", "interposer", "thr/Gcyc", "cycles", "p50", "p99", "p999"
    ));
    for r in &m.results {
        out.push_str(&format!(
            "{:<8}{:>8}{:>18}{:>12.1}{:>12}{:>10}{:>10}{:>10}\n",
            r.variant.label(),
            r.conns,
            r.config.label(),
            r.throughput,
            r.cycles,
            r.p50,
            r.p99,
            r.p999
        ));
    }
    let max_conns = m.conn_counts.iter().copied().max().unwrap_or(0);
    for config in [Config::K23Default, Config::K23Ultra, Config::K23UltraPlus] {
        if let Some(s) = speedup_at(&m.results, config, max_conns) {
            out.push_str(&format!(
                "epoll/poll speedup at c={max_conns} under {}: {s:.1}x\n",
                config.label()
            ));
        }
    }
    out.push_str(&format!("merged event digest: {:016x}\n", m.merged_digest));
    out
}

/// Gate checks against a committed `BENCH_scale.json`:
///
/// 1. the committed matrix itself must satisfy the scaling criterion
///    (epoll >= 5x poll at the top connection count under K23), and
/// 2. a fresh epoll-under-K23 run at the smallest committed connection
///    count must stay within `tol` of the committed throughput floor.
///
/// # Errors
///
/// A human-readable description of the first failed check.
pub fn gate(baseline: &sjson::Value, tol: f64) -> Result<String, String> {
    let cells = baseline
        .get("cells")
        .and_then(|c| c.as_array())
        .ok_or("baseline has no cells")?;
    let max_conns = baseline
        .get("max_conns")
        .and_then(|v| v.as_u64())
        .ok_or("baseline has no max_conns")?;
    let lookup = |variant: &str, config: &str, conns: u64| -> Option<f64> {
        cells.iter().find_map(|c| {
            (c.get("variant")?.as_str()? == variant
                && c.get("config")?.as_str()? == config
                && c.get("conns")?.as_u64()? == conns)
                .then(|| c.get("throughput_per_gcycle")?.as_f64())?
        })
    };
    let e = lookup("epoll", Config::K23Default.label(), max_conns)
        .ok_or("baseline missing epoll K23 cell at max conns")?;
    let p = lookup("poll", Config::K23Default.label(), max_conns)
        .ok_or("baseline missing poll K23 cell at max conns")?;
    if e < 5.0 * p {
        return Err(format!(
            "committed criterion violated: epoll {e:.1} < 5x poll {p:.1} at c={max_conns}"
        ));
    }
    // Re-measure the epoll K23 floor cell at the committed parameters.
    let params = baseline.get("params").ok_or("baseline has no params")?;
    let get = |k: &str| params.get(k).and_then(|v| v.as_u64());
    let committed = ScaleParams {
        requests: get("requests").ok_or("params.requests")? as u32,
        active: get("active").ok_or("params.active")? as u32,
        resp64: get("resp64").ok_or("params.resp64")? as u8,
        server_work: get("server_work").ok_or("params.server_work")? as u8,
        workers: get("workers").ok_or("params.workers")? as u8,
    };
    let min_conns = baseline
        .get("conn_counts")
        .and_then(|v| v.as_array())
        .and_then(|a| a.iter().filter_map(|v| v.as_u64()).min())
        .ok_or("baseline has no conn_counts")?;
    let floor = lookup("epoll", Config::K23Default.label(), min_conns)
        .ok_or("baseline missing epoll K23 floor cell")?;
    let cell = ScaleCell {
        variant: Variant::Epoll,
        conns: min_conns as u32,
        config: Config::K23Default,
    };
    let mut logs = BTreeMap::new();
    logs.insert(
        Variant::Epoll.label(),
        collect_offline_log_scale(Variant::Epoll, &committed),
    );
    let fresh = run_cell(&cell, &committed, &logs);
    if fresh.throughput < floor * (1.0 - tol) {
        return Err(format!(
            "epoll K23 throughput fell below floor: {:.1} < {floor:.1} * (1 - {tol})",
            fresh.throughput
        ));
    }
    Ok(format!(
        "scale gate ok: criterion {e:.1} >= 5x {p:.1} at c={max_conns}; floor cell {:.1} vs {floor:.1} (tol {tol})",
        fresh.throughput
    ))
}
