//! # bench — regenerating every table and figure of the paper
//!
//! Binaries (`cargo run -p bench --release --bin <name>`):
//!
//! | bin | reproduces |
//! |---|---|
//! | `table2` | unique offline-logged syscall sites per application |
//! | `table3` | the pitfall matrix |
//! | `table5` | microbenchmark overheads vs native |
//! | `table6` | macrobenchmark relative throughput |
//! | `fig1`   | instruction misidentification demo |
//! | `fig2`   | offline-phase walkthrough |
//! | `fig3`   | the `ls` offline log |
//! | `fig4`   | online-phase walkthrough |
//! | `all`    | everything above, in order |
//!
//! Diagnostics binaries (`simtrace`, `simperf`, `simprof`, `simfault`,
//! `simstack`, `simrecord`, `simaudit`) live alongside; `simaudit`
//! regenerates the committed `MATRIX_simaudit.txt` coverage ledger.
//!
//! Scale with `K23_BENCH_SCALE` (default 10; 1 = full size, larger = faster).

pub mod audit;
pub mod config;
pub mod figures;
pub mod macros_;
pub mod micro;
pub mod scale;
pub mod table2;

pub use config::Config;

/// Reads the scale divisor from `K23_BENCH_SCALE` (default 10).
pub fn scale() -> u64 {
    std::env::var("K23_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|s| *s > 0)
        .unwrap_or(10)
}

/// Formats a ratio like the paper's Table 5 ("1.2788x").
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.4}x")
}

/// Formats a relative-throughput percentage like Table 6 ("98.62").
pub fn fmt_rel(r: f64) -> String {
    format!("{:.2}", r * 100.0)
}
