//! The `simaudit` sweep: quantified interposition coverage per mechanism.
//!
//! Where Table 3 answers "does the mechanism *defend* against pitfall X?"
//! with a PoC verdict, this sweep answers "how many syscalls did the
//! mechanism actually see?" with the kernel-side audit ledger
//! (`sim_kernel::audit`): every registry mechanism — plus a set of
//! composed stacks — runs a coreutil, a client/server workload, and the
//! epoll server under scale load (readiness-based dispatch) with
//! an [`sim_kernel::AuditSession`] correlating the dispatch choke point
//! against the mechanism's declared [`sim_kernel::AuditSpec`]. The
//! result is one row per (mechanism, workload) cell: coverage in
//! permille, interposed-via-path / via-control / double counts, and
//! bypass counts broken down by pitfall signature.
//!
//! Everything here is byte-deterministic: identical across consecutive
//! runs and across the stepwise/block/trace engines (the ledger only
//! consumes architectural state), so `MATRIX_simaudit.txt` is committed
//! and CI diffs two fresh invocations against each other and gates
//! coverage against the committed floor.

use apps::MacroSpec;
use interpose::Interposer;
use k23::OfflineSession;
use sim_kernel::{AuditLedger, EngineConfig, ProcAudit, RunExit, Signature};
use sim_loader::boot_kernel;
use std::collections::BTreeSet;

/// Cycle budget per audited run (matches the macro harness).
pub const BUDGET: u64 = 40_000_000_000_000;

/// The audited coreutil workload.
pub const COREUTIL: &str = "/usr/bin/ls-sim";

/// Fixed request-count divisor for the audited server workload. The
/// committed matrix must not follow `K23_BENCH_SCALE`, so this is a
/// constant rather than [`crate::scale`].
pub const SERVER_SCALE: u64 = 200;

/// Composed stacks audited beyond the bare registry mechanisms
/// (observation layers on preload, SUD, and hybrid bases).
pub const AUDIT_STACKS: [&str; 4] = [
    "zpoline+tracer",
    "zpoline+recorder",
    "ptrace+recorder",
    "k23+tracer",
];

/// One (mechanism, workload) cell of the coverage matrix.
#[derive(Debug, Clone)]
pub struct AuditRow {
    /// Mechanism spec (registry name or composed `base+layer` spec).
    pub spec: String,
    /// Workload label (`coreutil` or `server`).
    pub workload: &'static str,
    /// All processes folded into one accounting row.
    pub totals: ProcAudit,
    /// Number of audited processes.
    pub procs: usize,
}

/// Whether a mechanism spec's base needs the K23 offline phase.
pub fn needs_offline(spec: &str) -> bool {
    spec.split('+').next().unwrap_or(spec).starts_with("k23")
}

/// Every audited mechanism spec, in report order: the full registry
/// (canonical order) followed by the composed stacks.
pub fn audit_specs() -> Vec<String> {
    pitfalls::register_all();
    let mut out: Vec<String> = interpose::names().iter().map(|n| n.to_string()).collect();
    out.extend(AUDIT_STACKS.iter().map(|s| s.to_string()));
    out
}

/// The audited server workload (smallest Table 6 row at the fixed scale).
pub fn server_spec() -> MacroSpec {
    apps::table6_specs(SERVER_SCALE).remove(0)
}

/// Fixed shape of the audited epoll-server workload. Small but real:
/// the server parks in `epoll_wait` between bursts, so the cell
/// exercises coverage attribution across blocked-wakeup dispatch — a
/// path the polling servers never take.
fn epollsrv_params() -> crate::scale::ScaleParams {
    crate::scale::ScaleParams {
        requests: 64,
        active: 16,
        resp64: 2,
        server_work: 2,
        workers: 1,
    }
}

/// The audited epoll-server workload (readiness-multiplexed dispatch).
pub fn epollsrv_spec() -> MacroSpec {
    let p = epollsrv_params();
    apps::scale_spec(true, p.workers, 64, p.active, p.requests, p.resp64, p.server_work, false)
}

fn make(spec: &str) -> Box<dyn Interposer> {
    pitfalls::register_all();
    interpose::by_name_spec(spec).expect("known mechanism spec")
}

/// Runs the coreutil under `spec` with auditing on; returns the ledger.
pub fn run_coreutil_audit(spec: &str, cfg: EngineConfig) -> AuditLedger {
    let ip = make(spec);
    let mut k = boot_kernel();
    apps::install_world(&mut k.vfs);
    let argv = vec![COREUTIL.to_string()];
    if needs_offline(spec) {
        // The offline phase is methodology, not the measured run: it
        // executes before the audit session is configured.
        let session = OfflineSession::new(&mut k, COREUTIL);
        let (_pid, exit) = session
            .run_once(&mut k, &argv, &[], BUDGET)
            .expect("offline phase");
        assert_eq!(exit, RunExit::AllExited);
        session.finish(&mut k);
    }
    k.configure(cfg.audit(ip.coverage()));
    ip.install(&mut k);
    let pid = ip.spawn(&mut k, COREUTIL, &argv, &[]).expect("spawn");
    let exit = k.run(BUDGET);
    assert_eq!(exit, RunExit::AllExited, "{spec}: coreutil did not finish");
    assert_eq!(
        k.process(pid).and_then(|p| p.exit_status),
        Some(0),
        "{spec}: coreutil failed"
    );
    k.audit_ledger().expect("audit configured")
}

/// The hostile workload's PoC binaries, in run order: the P1a
/// env-clearing exec pair, the P1b `prctl` selector rewrite, and the P2b
/// vDSO clock read.
pub const HOSTILE_POCS: [&str; 3] = [
    "/usr/bin/p1a-parent",
    "/usr/bin/p1b-poc",
    "/usr/bin/p2b-poc",
];

/// Runs the hostile workload under `spec` with auditing on: the three
/// PoCs execute sequentially in one audited kernel, so the cell's bypass
/// column shows exactly which attacks shadow the mechanism (`P1a-exec`,
/// `P1b-selector`, `vdso`). Exit statuses are not asserted — a defended
/// P1b PoC dies with SIGABRT by design.
pub fn run_hostile_audit(spec: &str, cfg: EngineConfig) -> AuditLedger {
    let ip = make(spec);
    let mut k = boot_kernel();
    pitfalls::install_pocs(&mut k.vfs);
    if needs_offline(spec) {
        for app in HOSTILE_POCS {
            let session = OfflineSession::new(&mut k, app);
            let _ = session.run_once(&mut k, &[app.to_string()], &[], BUDGET);
            session.finish(&mut k);
        }
    }
    k.configure(cfg.audit(ip.coverage()));
    ip.install(&mut k);
    for app in HOSTILE_POCS {
        let _pid = ip
            .spawn(&mut k, app, &[app.to_string()], &[])
            .unwrap_or_else(|e| panic!("{spec}: spawn {app}: {e}"));
        let exit = k.run(BUDGET);
        assert_ne!(exit, RunExit::Budget, "{spec}: {app} ran out of budget");
    }
    k.audit_ledger().expect("audit configured")
}

/// Runs the server workload under `spec` with auditing on; K23 bases get
/// `offline_log` transplanted (collected once, as the bench harness does).
pub fn run_server_audit(
    spec: &str,
    cfg: EngineConfig,
    mspec: &MacroSpec,
    offline_log: &Option<(String, Vec<u8>)>,
) -> AuditLedger {
    let ip = make(spec);
    let mut k = boot_kernel();
    apps::install_world(&mut k.vfs);
    if needs_offline(spec) {
        let (path, bytes) = offline_log.as_ref().expect("offline log collected");
        k.vfs.mkdir_p(k23::LOG_DIR).expect("log dir");
        k.vfs.write_file(path, bytes).expect("log install");
        k.vfs.set_immutable(k23::LOG_DIR, true).expect("seal");
    }
    k.configure(cfg.audit(ip.coverage()));
    let res = apps::run_macro(&mut k, ip.as_ref(), mspec, BUDGET);
    res.unwrap_or_else(|e| panic!("{} under {spec}: {e:?}", mspec.name));
    let mut ledger = k.audit_ledger().expect("audit configured");
    // The clients run natively by methodology (§6.2) — only the server's
    // process tree is audited against the mechanism's claim, otherwise
    // every server row would carry the harness's uninterposed clients as
    // phantom shadows.
    let tree = server_tree(&k, mspec.server);
    ledger.per_proc.retain(|pid, _| tree.contains(pid));
    ledger
}

/// Runs the epoll-server scale workload under `spec` with auditing on.
/// Same methodology as [`run_server_audit`]: the load generator runs
/// natively, so the ledger is filtered to the server's process tree —
/// the row isolates how well the mechanism covers readiness-based
/// dispatch (`epoll_wait` parks and blocked wakeups included).
pub fn run_epollsrv_audit(
    spec: &str,
    cfg: EngineConfig,
    offline_log: &Option<(String, Vec<u8>)>,
) -> AuditLedger {
    let ip = make(spec);
    let mut k = boot_kernel();
    apps::install_world(&mut k.vfs);
    if needs_offline(spec) {
        let (path, bytes) = offline_log.as_ref().expect("offline log collected");
        k.vfs.mkdir_p(k23::LOG_DIR).expect("log dir");
        k.vfs.write_file(path, bytes).expect("log install");
        k.vfs.set_immutable(k23::LOG_DIR, true).expect("seal");
    }
    k.configure(cfg.audit(ip.coverage()));
    let mspec = epollsrv_spec();
    let res = apps::run_scale(&mut k, ip.as_ref(), &mspec, BUDGET);
    res.unwrap_or_else(|e| panic!("{} under {spec}: {e:?}", mspec.name));
    let mut ledger = k.audit_ledger().expect("audit configured");
    let tree = server_tree(&k, mspec.server);
    ledger.per_proc.retain(|pid, _| tree.contains(pid));
    ledger
}

/// The epoll variant's offline site log for the audited workload shape.
pub fn collect_epollsrv_offline() -> (String, Vec<u8>) {
    crate::scale::collect_offline_log_scale(crate::scale::Variant::Epoll, &epollsrv_params())
}

/// The server's process subtree: every process running the server binary
/// plus all their descendants (forked workers).
fn server_tree(k: &sim_kernel::Kernel, server: &str) -> BTreeSet<sim_kernel::Pid> {
    let mut tree: BTreeSet<sim_kernel::Pid> = k
        .pids()
        .into_iter()
        .filter(|p| k.process(*p).is_some_and(|pr| pr.exe == server))
        .collect();
    loop {
        let add: Vec<sim_kernel::Pid> = k
            .pids()
            .into_iter()
            .filter(|p| !tree.contains(p))
            .filter(|p| k.process(*p).is_some_and(|pr| tree.contains(&pr.ppid)))
            .collect();
        if add.is_empty() {
            return tree;
        }
        tree.extend(add);
    }
}

/// Runs one (mechanism, workload) cell; `workload` is `coreutil` or
/// `server`.
pub fn run_cell(spec: &str, workload: &str, cfg: EngineConfig) -> AuditLedger {
    match workload {
        "coreutil" => run_coreutil_audit(spec, cfg),
        "hostile" => run_hostile_audit(spec, cfg),
        "server" => {
            let mspec = server_spec();
            let offline = needs_offline(spec).then(|| crate::macros_::collect_offline_log(&mspec));
            run_server_audit(spec, cfg, &mspec, &offline)
        }
        "epollsrv" => {
            let offline = needs_offline(spec).then(collect_epollsrv_offline);
            run_epollsrv_audit(spec, cfg, &offline)
        }
        other => panic!("unknown workload {other:?} (coreutil|server|epollsrv|hostile)"),
    }
}

/// The full coverage matrix: every audited spec across both workloads,
/// under engines produced by `cfg`.
pub fn full_audit_matrix(cfg: impl Fn() -> EngineConfig) -> Vec<AuditRow> {
    let mspec = server_spec();
    let mut offline: Option<(String, Vec<u8>)> = None;
    let mut epoll_offline: Option<(String, Vec<u8>)> = None;
    let mut rows = Vec::new();
    for spec in audit_specs() {
        if needs_offline(&spec) && offline.is_none() {
            offline = Some(crate::macros_::collect_offline_log(&mspec));
            epoll_offline = Some(collect_epollsrv_offline());
        }
        let l = run_coreutil_audit(&spec, cfg());
        rows.push(AuditRow {
            spec: spec.clone(),
            workload: "coreutil",
            totals: l.totals(),
            procs: l.per_proc.len(),
        });
        let l = run_server_audit(&spec, cfg(), &mspec, &offline);
        rows.push(AuditRow {
            spec: spec.clone(),
            workload: "server",
            totals: l.totals(),
            procs: l.per_proc.len(),
        });
        let l = run_epollsrv_audit(&spec, cfg(), &epoll_offline);
        rows.push(AuditRow {
            spec: spec.clone(),
            workload: "epollsrv",
            totals: l.totals(),
            procs: l.per_proc.len(),
        });
        let l = run_hostile_audit(&spec, cfg());
        rows.push(AuditRow {
            spec,
            workload: "hostile",
            totals: l.totals(),
            procs: l.per_proc.len(),
        });
    }
    rows
}

fn fmt_permille(p: u64) -> String {
    format!("{}.{}%", p / 10, p % 10)
}

fn sig_cells(t: &ProcAudit) -> String {
    let parts: Vec<String> = Signature::ALL
        .iter()
        .filter_map(|s| {
            let n = t.bypassed_by(*s);
            (n > 0).then(|| format!("{}={n}", s.code()))
        })
        .collect();
    if parts.is_empty() {
        "-".to_string()
    } else {
        parts.join(" ")
    }
}

/// Renders the committed coverage matrix (byte-deterministic).
pub fn render_audit_matrix(rows: &[AuditRow], server_name: &str) -> String {
    let mut out = String::new();
    out.push_str("simaudit: interposition coverage ledger (kernel dispatch ground truth vs mechanism claims)\n");
    out.push_str(&format!(
        "workloads: coreutil={COREUTIL}; server={server_name} (scale {SERVER_SCALE}, server process tree only);\n\
         \x20          epollsrv=epollsrv-sim under scale load (readiness dispatch, server tree only);\n\
         \x20          hostile=P1a env-clearing exec + P1b prctl rewrite + P2b vDSO read\n"
    ));
    out.push_str(
        "replay one cell: cargo run --release -p bench --bin simaudit -- --replay <mechanism> <coreutil|server|epollsrv|hostile>\n\n",
    );
    out.push_str(&format!(
        "{:<18} {:<8} {:>8} {:>8} {:>6} {:>7} {:>6} {:>6}  {}\n",
        "mechanism", "workload", "syscalls", "coverage", "path", "control", "double", "bypass", "signatures"
    ));
    for r in rows {
        let t = &r.totals;
        out.push_str(&format!(
            "{:<18} {:<8} {:>8} {:>8} {:>6} {:>7} {:>6} {:>6}  {}\n",
            r.spec,
            r.workload,
            t.total(),
            fmt_permille(t.coverage_permille()),
            t.interposed_path,
            t.interposed_control,
            t.double,
            t.bypassed_total(),
            sig_cells(t),
        ));
    }
    // Legend: every signature that appears anywhere in the matrix.
    let mut seen: Vec<Signature> = Vec::new();
    for s in Signature::ALL {
        if rows.iter().any(|r| r.totals.bypassed_by(s) > 0) {
            seen.push(s);
        }
    }
    if !seen.is_empty() {
        out.push_str("\nsignatures:\n");
        for s in seen {
            out.push_str(&format!(
                "  {:<13} {}\n",
                s.code(),
                pitfalls::signature_describe(s)
            ));
        }
    }
    out
}

/// Renders one cell's full ledger for `--replay`: the audited claim,
/// per-process rows, composed-layer participation, and every bypass site
/// with its pitfall signature.
pub fn render_cell(spec: &str, workload: &str, ledger: &AuditLedger) -> String {
    let mut out = String::new();
    let s = &ledger.spec;
    out.push_str(&format!("cell: {spec} / {workload}\n"));
    out.push_str(&format!(
        "claim: handler_regions={:?} via_tracer={} via_sigsys={} covers_vdso={}\n",
        s.handler_regions, s.via_tracer, s.via_sigsys, s.covers_vdso
    ));
    let t = ledger.totals();
    out.push_str(&format!(
        "totals: {} syscalls, coverage {}, path={} control={} double={} bypass={}\n",
        t.total(),
        fmt_permille(t.coverage_permille()),
        t.interposed_path,
        t.interposed_control,
        t.double,
        t.bypassed_total(),
    ));
    out.push_str("\nper-process:\n");
    for (pid, p) in &ledger.per_proc {
        out.push_str(&format!(
            "  pid {pid}: {} syscalls, coverage {}, path={} control={} double={} bypass={} [{}]\n",
            p.total(),
            fmt_permille(p.coverage_permille()),
            p.interposed_path,
            p.interposed_control,
            p.double,
            p.bypassed_total(),
            sig_cells(p),
        ));
        if p.chained > 0 {
            out.push_str(&format!("    chained: {}\n", p.chained));
            for (layer, n) in &p.layer_hits {
                out.push_str(&format!("    layer {layer}: {n}\n"));
            }
        }
    }
    let mut shadows = false;
    for (pid, p) in &ledger.per_proc {
        let mut by_sig: std::collections::BTreeMap<Signature, Vec<(u64, u64)>> =
            std::collections::BTreeMap::new();
        for ((sig, site), n) in &p.bypass_sites {
            by_sig.entry(*sig).or_default().push((*site, *n));
        }
        for (sig, sites) in by_sig {
            if !shadows {
                out.push_str("\nbypass sites:\n");
                shadows = true;
            }
            let total: u64 = sites.iter().map(|(_, n)| n).sum();
            let shown: Vec<String> = sites
                .iter()
                .take(6)
                .map(|(s, n)| {
                    if *n > 1 {
                        format!("{s:#x}x{n}")
                    } else {
                        format!("{s:#x}")
                    }
                })
                .collect();
            let more = sites.len().saturating_sub(6);
            let more = if more > 0 {
                format!(" (+{more} more)")
            } else {
                String::new()
            };
            out.push_str(&format!(
                "  pid {pid} {}: {total} calls at {} sites: {}{more}\n      {}\n",
                sig.code(),
                sites.len(),
                shown.join(" "),
                pitfalls::signature_describe(sig)
            ));
        }
    }
    out
}

/// JSON export of the matrix (stable key order via `sjson`'s `BTreeMap`).
pub fn matrix_json(rows: &[AuditRow], server_name: &str) -> sjson::Value {
    let rows_json: Vec<sjson::Value> = rows
        .iter()
        .map(|r| {
            let t = &r.totals;
            let bypassed: Vec<(&str, sjson::Value)> = Signature::ALL
                .iter()
                .filter_map(|s| {
                    let n = t.bypassed_by(*s);
                    (n > 0).then(|| (s.code(), sjson::Value::UInt(n)))
                })
                .collect();
            sjson::Value::object(vec![
                ("mechanism", sjson::Value::Str(r.spec.clone())),
                ("workload", sjson::Value::Str(r.workload.to_string())),
                ("procs", sjson::Value::UInt(r.procs as u64)),
                ("syscalls", sjson::Value::UInt(t.total())),
                ("coverage_permille", sjson::Value::UInt(t.coverage_permille())),
                ("interposed_path", sjson::Value::UInt(t.interposed_path)),
                ("interposed_control", sjson::Value::UInt(t.interposed_control)),
                ("double", sjson::Value::UInt(t.double)),
                ("bypassed", sjson::Value::object(bypassed)),
            ])
        })
        .collect();
    sjson::Value::object(vec![
        ("coreutil", sjson::Value::Str(COREUTIL.to_string())),
        ("server", sjson::Value::Str(server_name.to_string())),
        ("scale", sjson::Value::UInt(SERVER_SCALE)),
        ("rows", sjson::Value::Array(rows_json)),
    ])
}

/// Parses `(mechanism, workload, coverage-permille)` rows back out of a
/// rendered matrix (the committed baseline, for the bench gate).
pub fn parse_matrix_rows(text: &str) -> Vec<(String, String, u64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let f: Vec<&str> = line.split_whitespace().collect();
        if f.len() >= 8 && f[0] != "mechanism" {
            if let Some(p) = parse_pct(f[3]) {
                out.push((f[0].to_string(), f[1].to_string(), p));
            }
        }
    }
    out
}

fn parse_pct(s: &str) -> Option<u64> {
    let s = s.strip_suffix('%')?;
    let (whole, tenth) = s.split_once('.')?;
    Some(whole.parse::<u64>().ok()? * 10 + tenth.parse::<u64>().ok()?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_rows_roundtrip_through_the_renderer() {
        let rows = vec![
            AuditRow {
                spec: "zpoline".into(),
                workload: "coreutil",
                totals: {
                    let mut t = ProcAudit {
                        interposed_path: 97,
                        ..ProcAudit::default()
                    };
                    t.bypassed.insert(Signature::PreInit, 3);
                    t
                },
                procs: 1,
            },
            AuditRow {
                spec: "native".into(),
                workload: "server",
                totals: {
                    let mut t = ProcAudit::default();
                    t.bypassed.insert(Signature::Uncovered, 50);
                    t
                },
                procs: 2,
            },
        ];
        let text = render_audit_matrix(&rows, "nginx (1 worker, 0 KB)");
        let parsed = parse_matrix_rows(&text);
        assert_eq!(
            parsed,
            vec![
                ("zpoline".to_string(), "coreutil".to_string(), 970),
                ("native".to_string(), "server".to_string(), 0),
            ]
        );
        assert!(text.contains("P2b-preinit=3"));
        assert!(text.contains("uncovered=50"));
        assert!(text.contains("signatures:"));
    }

    #[test]
    fn audit_spec_list_covers_registry_and_stacks() {
        let specs = audit_specs();
        for name in ["native", "ptrace", "sud", "sud-armed", "zpoline", "k23"] {
            assert!(specs.iter().any(|s| s == name), "missing {name}");
        }
        for stack in AUDIT_STACKS {
            assert!(specs.iter().any(|s| s == stack), "missing {stack}");
        }
        assert!(needs_offline("k23+tracer"));
        assert!(!needs_offline("zpoline+recorder"));
    }
}
