//! Table 2: unique `syscall`/`sysenter` sites the offline phase logs per
//! application.

use apps::{install_world, MacroSpec};
use k23::OfflineSession;
use sim_kernel::RunExit;
use sim_loader::boot_kernel;

/// One Table 2 row.
#[derive(Debug, Clone)]
pub struct SiteRow {
    /// Application name.
    pub app: String,
    /// Measured unique sites.
    pub measured: usize,
    /// The paper's count.
    pub paper: usize,
}

const BUDGET: u64 = 40_000_000_000_000;

/// Offline-phase site count for a run-to-completion binary.
pub fn sites_for_simple(app: &str) -> usize {
    let mut k = boot_kernel();
    install_world(&mut k.vfs);
    let session = OfflineSession::new(&mut k, app);
    let (_pid, exit) = session
        .run_once(&mut k, &[app.to_string()], &[], BUDGET)
        .expect("offline run");
    assert_eq!(exit, RunExit::AllExited, "{app}");
    session.finish(&mut k).len()
}

/// Offline-phase site count for a server spec (driven by its clients).
pub fn sites_for_server(spec: &MacroSpec) -> usize {
    let mut k = boot_kernel();
    install_world(&mut k.vfs);
    apps::install_spec_config(&mut k, spec);
    let session = OfflineSession::new(&mut k, spec.server);
    session
        .spawn(&mut k, &[spec.server.to_string()], &[])
        .expect("spawn server");
    assert_eq!(k.run(BUDGET), RunExit::Deadlock, "server ready");
    for _ in 0..spec.clients {
        k.spawn(spec.client, &[], &[], None).expect("client");
    }
    let exit = k.run(BUDGET);
    assert_ne!(exit, RunExit::Budget);
    session.finish(&mut k).len()
}

/// Offline site count for sqlite.
pub fn sites_for_sqlite(scale: u64) -> usize {
    let mut k = boot_kernel();
    install_world(&mut k.vfs);
    k.vfs
        .write_file("/etc/sqlite-sim.conf", &apps::sqlite_cfg(scale))
        .expect("cfg");
    let session = OfflineSession::new(&mut k, "/usr/bin/sqlite-sim");
    let (_pid, exit) = session.run_once(&mut k, &[], &[], BUDGET).expect("run");
    assert_eq!(exit, RunExit::AllExited);
    session.finish(&mut k).len()
}

/// Runs the whole Table 2.
pub fn run_table2(scale: u64) -> Vec<SiteRow> {
    let mut rows = Vec::new();
    for (app, paper) in apps::EXPECTED_SITES {
        rows.push(SiteRow {
            app: app.rsplit('/').next().unwrap_or(app).to_string(),
            measured: sites_for_simple(app),
            paper,
        });
    }
    rows.push(SiteRow {
        app: "sqlite-sim".into(),
        measured: sites_for_sqlite(scale),
        paper: 20,
    });
    let specs = apps::table6_specs(scale.max(20));
    for (idx, name, paper) in [(2usize, "nginx-sim", 43), (6, "lighttpd-sim", 44), (9, "redis-sim", 92)] {
        rows.push(SiteRow {
            app: name.to_string(),
            measured: sites_for_server(&specs[idx]),
            paper,
        });
    }
    rows
}

/// Renders Table 2.
pub fn render_table2(rows: &[SiteRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<14}{:>12}{:>10}\n", "Application", "#sites", "paper"));
    for r in rows {
        out.push_str(&format!("{:<14}{:>12}{:>10}\n", r.app, r.measured, r.paper));
    }
    out
}
