//! Criterion benches of the substrate components, including the P4b
//! ablation: zpoline's address-space bitmap vs K23's bounded hash set.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sim_isa::{decode, disasm, Asm, Reg};
use sim_mem::Bitmap;
use std::collections::HashSet;

fn codec(c: &mut Criterion) {
    let insts = [
        sim_isa::Inst::MovImm(Reg::Rax, 0xdead_beef),
        sim_isa::Inst::Syscall,
        sim_isa::Inst::Load(Reg::Rbx, Reg::Rsp, 16),
        sim_isa::Inst::Jcc(sim_isa::Cond::Ne, -64),
    ];
    c.bench_function("encode_4_instructions", |b| {
        b.iter(|| {
            let mut v = Vec::with_capacity(32);
            for i in &insts {
                i.encode_into(&mut v);
            }
            black_box(v)
        })
    });
    let mut bytes = Vec::new();
    for i in &insts {
        i.encode_into(&mut bytes);
    }
    c.bench_function("decode_4_instructions", |b| {
        b.iter(|| {
            let mut off = 0;
            while off < bytes.len() {
                let (_, len) = decode(black_box(&bytes[off..])).unwrap();
                off += len;
            }
        })
    });
}

fn disassembly(c: &mut Criterion) {
    // A libc-sized image.
    let libc = sim_loader::build_libc();
    c.bench_function("linear_sweep_libc_image", |b| {
        b.iter(|| disasm::sweep_syscall_sites(black_box(&libc.bytes), 0))
    });
    c.bench_function("byte_scan_libc_image", |b| {
        b.iter(|| disasm::scan_syscall_bytes(black_box(&libc.bytes), 0))
    });
}

fn site_checks(c: &mut Criterion) {
    // The P4b ablation: full-address-space bitmap vs bounded hash set, with
    // 92 sites (the paper's redis count).
    let sites: Vec<u64> = (0..92u64).map(|i| 0x7f00_0000_0000 + i * 13).collect();
    let mut bitmap = Bitmap::new();
    let mut set: HashSet<u64> = HashSet::new();
    for &s in &sites {
        bitmap.set(s);
        set.insert(s);
    }
    c.bench_function("bitmap_check_hit", |b| {
        b.iter(|| black_box(bitmap.test(black_box(sites[41]))))
    });
    c.bench_function("hashset_check_hit", |b| {
        b.iter(|| black_box(set.contains(&black_box(sites[41]))))
    });
    c.bench_function("bitmap_check_miss", |b| {
        b.iter(|| black_box(bitmap.test(black_box(0x1234_5678))))
    });
    c.bench_function("hashset_check_miss", |b| {
        b.iter(|| black_box(set.contains(&black_box(0x1234_5678u64))))
    });
}

fn cpu_throughput(c: &mut Criterion) {
    use sim_cpu::{CostModel, Cpu, StepEvent};
    use sim_mem::{AddressSpace, Perms};
    let mut a = Asm::new();
    a.mov_imm(Reg::Rcx, 1_000);
    a.label("loop");
    a.add_imm(Reg::Rax, 3);
    a.sub_imm(Reg::Rcx, 1);
    a.jnz("loop");
    a.inst(sim_isa::Inst::Hlt);
    let code = a.finish();
    c.bench_function("cpu_simulate_3k_instructions", |b| {
        b.iter(|| {
            let mut mem = AddressSpace::new();
            mem.map(0x1000, 0x1000, Perms::RX, "code").unwrap();
            mem.write_raw(0x1000, &code).unwrap();
            let mut cpu = Cpu::new();
            cpu.rip = 0x1000;
            let cost = CostModel::DEFAULT;
            loop {
                if let StepEvent::Hlt = cpu.step(&mut mem, 0, &cost).event {
                    break;
                }
            }
            black_box(cpu.regs[0])
        })
    });
}

criterion_group!(benches, codec, disassembly, site_checks, cpu_throughput);
criterion_main!(benches);
