//! Criterion benches of whole interposition mechanisms: host wall-clock per
//! simulated stress run, one per Table 5 configuration, plus the kernel-path
//! primitives (SUD signal round trip, ptrace stop round trip).

use bench::Config;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn stress_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("micro_stress_1k_syscalls");
    g.sample_size(10);
    for cfg in [
        Config::Native,
        Config::ZpolineDefault,
        Config::ZpolineUltra,
        Config::Lazypoline,
        Config::K23Default,
        Config::K23Ultra,
        Config::K23UltraPlus,
        Config::SudNoInterpose,
        Config::Sud,
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(cfg.label()), &cfg, |b, cfg| {
            b.iter(|| black_box(bench::micro::per_iteration_cycles(*cfg, 500)))
        });
    }
    g.finish();
}

fn kernel_paths(c: &mut Criterion) {
    use interpose::{Interposer, PtraceInterposer, SudInterposer};
    let mut g = c.benchmark_group("kernel_paths");
    g.sample_size(10);
    g.bench_function("sud_signal_roundtrip_500", |b| {
        b.iter(|| black_box(bench::micro::per_iteration_cycles_with(&SudInterposer::new(), 500)))
    });
    g.bench_function("ptrace_stop_roundtrip_500", |b| {
        b.iter(|| {
            black_box(bench::micro::per_iteration_cycles_with(
                &PtraceInterposer::new(),
                500,
            ))
        })
    });
    let _ = &g;
    g.finish();
    let _: Option<Box<dyn Interposer>> = None;
}

criterion_group!(benches, stress_runs, kernel_paths);
criterion_main!(benches);
