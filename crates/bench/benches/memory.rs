//! Criterion benches of the simulator memory hot path: the page-run fast
//! engine vs the retained byte-at-a-time reference, for data access and
//! instruction fetch.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sim_mem::{AddressSpace, MemMode, Perms, Pkru, PAGE_SIZE};

fn arena() -> AddressSpace {
    let mut s = AddressSpace::new();
    s.map(0x1_0000, 64 * PAGE_SIZE, Perms::RWX, "arena").unwrap();
    let fill: Vec<u8> = (0..64 * PAGE_SIZE).map(|i| (i % 251) as u8).collect();
    s.write_raw(0x1_0000, &fill).unwrap();
    s
}

/// Page-crossing bulk reads and writes: the shape syscall argument copies
/// and guest memcpy take.
fn data_access(c: &mut Criterion) {
    let mut fast = arena();
    let mut legacy = arena();
    legacy.set_mem_mode(MemMode::Legacy);
    let mut buf = vec![0u8; 4 * PAGE_SIZE as usize];
    let data = vec![0xabu8; 4 * PAGE_SIZE as usize];
    let mut g = c.benchmark_group("mem_access_16k_page_crossing");
    g.bench_function("fast", |b| {
        b.iter(|| {
            fast.write(0x1_0800, black_box(&data), Pkru::ALL_ACCESS).unwrap();
            fast.read(0x1_0800, black_box(&mut buf), Pkru::ALL_ACCESS).unwrap();
        })
    });
    g.bench_function("reference", |b| {
        b.iter(|| {
            legacy.write(0x1_0800, black_box(&data), Pkru::ALL_ACCESS).unwrap();
            legacy.read(0x1_0800, black_box(&mut buf), Pkru::ALL_ACCESS).unwrap();
        })
    });
    g.finish();
}

/// Small (decode-window-sized) fetches hopping across pages: the shape the
/// CPU front end takes after an icache flush.
fn fetch_throughput(c: &mut Criterion) {
    let mut fast = arena();
    let mut legacy = arena();
    legacy.set_mem_mode(MemMode::Legacy);
    let mut window = [0u8; 10];
    let rips: Vec<u64> = (0..512u64).map(|i| 0x1_0000 + i * 37 % (63 * PAGE_SIZE)).collect();
    let mut g = c.benchmark_group("fetch_512_decode_windows");
    g.bench_function("fast", |b| {
        b.iter(|| {
            for &rip in &rips {
                fast.fetch(black_box(rip), &mut window, Pkru::ALL_ACCESS).unwrap();
            }
        })
    });
    g.bench_function("reference", |b| {
        b.iter(|| {
            for &rip in &rips {
                legacy.fetch(black_box(rip), &mut window, Pkru::ALL_ACCESS).unwrap();
            }
        })
    });
    g.finish();
}

criterion_group!(memory, data_access, fetch_throughput);
criterion_main!(memory);
