//! Property-based tests for the address space and the zpoline bitmap.

use proptest::prelude::*;
use sim_mem::{AddressSpace, Bitmap, Perms, Pkru, PAGE_SIZE};

proptest! {
    /// Bitmap agrees with a reference HashSet under arbitrary set/test mixes.
    #[test]
    fn bitmap_matches_reference(addrs in proptest::collection::vec(0u64..(1 << 47), 1..200)) {
        let mut bm = Bitmap::new();
        let mut set = std::collections::HashSet::new();
        for (i, a) in addrs.iter().enumerate() {
            if i % 3 != 2 {
                bm.set(*a);
                set.insert(*a);
            }
        }
        for a in &addrs {
            prop_assert_eq!(bm.test(*a), set.contains(a));
            prop_assert_eq!(bm.test(a ^ 1), set.contains(&(a ^ 1)));
        }
    }

    /// Writes then reads through the checked API round-trip, and resident
    /// pages never exceed the touched page count.
    #[test]
    fn write_read_roundtrip(
        offsets in proptest::collection::vec(0u64..(64 * PAGE_SIZE - 16), 1..64),
        val in any::<u64>(),
    ) {
        let mut s = AddressSpace::new();
        s.map(PAGE_SIZE, 64 * PAGE_SIZE, Perms::RW, "arena").unwrap();
        for (i, off) in offsets.iter().enumerate() {
            let addr = PAGE_SIZE + off;
            let v = val.wrapping_add(i as u64);
            s.write_u64(addr, v, Pkru::ALL_ACCESS).unwrap();
            prop_assert_eq!(s.read_u64(addr, Pkru::ALL_ACCESS).unwrap(), v);
        }
        prop_assert!(s.resident_bytes() <= (offsets.len() as u64 + 1) * 2 * PAGE_SIZE);
    }

    /// Raw (kernel) writes are visible to checked reads and vice versa.
    #[test]
    fn raw_and_checked_views_agree(addr_off in 0u64..(8 * PAGE_SIZE - 8), v in any::<u64>()) {
        let mut s = AddressSpace::new();
        s.map(0x10000, 8 * PAGE_SIZE, Perms::RW, "m").unwrap();
        let addr = 0x10000 + addr_off;
        s.write_raw(addr, &v.to_le_bytes()).unwrap();
        prop_assert_eq!(s.read_u64(addr, Pkru::ALL_ACCESS).unwrap(), v);
    }

    /// Unmapped addresses always fault, mapped ones never (for RW maps).
    #[test]
    fn mapping_boundaries_are_exact(pages in 1u64..16) {
        let mut s = AddressSpace::new();
        let base = 0x4000;
        s.map(base, pages * PAGE_SIZE, Perms::RW, "m").unwrap();
        prop_assert!(s.read_u8(base, Pkru::ALL_ACCESS).is_ok());
        prop_assert!(s.read_u8(base + pages * PAGE_SIZE - 1, Pkru::ALL_ACCESS).is_ok());
        prop_assert!(s.read_u8(base - 1, Pkru::ALL_ACCESS).is_err());
        prop_assert!(s.read_u8(base + pages * PAGE_SIZE, Pkru::ALL_ACCESS).is_err());
    }
}
