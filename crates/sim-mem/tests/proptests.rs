//! Property-based tests for the address space and the zpoline bitmap.

use proptest::prelude::*;
use sim_mem::{AddressSpace, Bitmap, Perms, Pkru, PAGE_SIZE};

proptest! {
    /// Bitmap agrees with a reference HashSet under arbitrary set/test mixes.
    #[test]
    fn bitmap_matches_reference(addrs in proptest::collection::vec(0u64..(1 << 47), 1..200)) {
        let mut bm = Bitmap::new();
        let mut set = std::collections::HashSet::new();
        for (i, a) in addrs.iter().enumerate() {
            if i % 3 != 2 {
                bm.set(*a);
                set.insert(*a);
            }
        }
        for a in &addrs {
            prop_assert_eq!(bm.test(*a), set.contains(a));
            prop_assert_eq!(bm.test(a ^ 1), set.contains(&(a ^ 1)));
        }
    }

    /// Writes then reads through the checked API round-trip, and resident
    /// pages never exceed the touched page count.
    #[test]
    fn write_read_roundtrip(
        offsets in proptest::collection::vec(0u64..(64 * PAGE_SIZE - 16), 1..64),
        val in any::<u64>(),
    ) {
        let mut s = AddressSpace::new();
        s.map(PAGE_SIZE, 64 * PAGE_SIZE, Perms::RW, "arena").unwrap();
        for (i, off) in offsets.iter().enumerate() {
            let addr = PAGE_SIZE + off;
            let v = val.wrapping_add(i as u64);
            s.write_u64(addr, v, Pkru::ALL_ACCESS).unwrap();
            prop_assert_eq!(s.read_u64(addr, Pkru::ALL_ACCESS).unwrap(), v);
        }
        prop_assert!(s.resident_bytes() <= (offsets.len() as u64 + 1) * 2 * PAGE_SIZE);
    }

    /// Raw (kernel) writes are visible to checked reads and vice versa.
    #[test]
    fn raw_and_checked_views_agree(addr_off in 0u64..(8 * PAGE_SIZE - 8), v in any::<u64>()) {
        let mut s = AddressSpace::new();
        s.map(0x10000, 8 * PAGE_SIZE, Perms::RW, "m").unwrap();
        let addr = 0x10000 + addr_off;
        s.write_raw(addr, &v.to_le_bytes()).unwrap();
        prop_assert_eq!(s.read_u64(addr, Pkru::ALL_ACCESS).unwrap(), v);
    }

    /// Unmapped addresses always fault, mapped ones never (for RW maps).
    #[test]
    fn mapping_boundaries_are_exact(pages in 1u64..16) {
        let mut s = AddressSpace::new();
        let base = 0x4000;
        s.map(base, pages * PAGE_SIZE, Perms::RW, "m").unwrap();
        prop_assert!(s.read_u8(base, Pkru::ALL_ACCESS).is_ok());
        prop_assert!(s.read_u8(base + pages * PAGE_SIZE - 1, Pkru::ALL_ACCESS).is_ok());
        prop_assert!(s.read_u8(base - 1, Pkru::ALL_ACCESS).is_err());
        prop_assert!(s.read_u8(base + pages * PAGE_SIZE, Pkru::ALL_ACCESS).is_err());
    }
}

/// A hostile layout for the fast-path/reference equivalence properties:
/// a patchwork of RW, RO, RX, XOM (PKU-guarded), and pkey-tagged regions
/// with unmapped holes between them, so random accesses cross page
/// boundaries, protection changes, PKU denials, and holes.
fn hostile_layout() -> AddressSpace {
    let mut s = AddressSpace::new();
    s.map(0x1000, 3 * PAGE_SIZE, Perms::RW, "rw").unwrap();
    // hole at 0x4000
    s.map(0x5000, 2 * PAGE_SIZE, Perms::R, "ro").unwrap();
    s.map(0x7000, 2 * PAGE_SIZE, Perms::RX, "code").unwrap();
    // XOM: executable but PKU-denied for data access
    s.map(0x9000, PAGE_SIZE, Perms::RX, "xom").unwrap();
    s.set_pkey(0x9000, PAGE_SIZE, 1).unwrap();
    // hole at 0xa000
    s.map(0xb000, 2 * PAGE_SIZE, Perms::RW, "keyed").unwrap();
    s.set_pkey(0xb000, 2 * PAGE_SIZE, 2).unwrap();
    // seed deterministic contents so reads see non-zero data
    for page in [0x1000u64, 0x2000, 0x3000, 0x5000, 0x6000, 0x7000, 0x8000, 0x9000, 0xb000, 0xc000] {
        let fill: Vec<u8> = (0..PAGE_SIZE).map(|i| (page >> 8) as u8 ^ i as u8).collect();
        s.write_raw(page, &fill).unwrap();
    }
    s
}

/// PKRU variants the equivalence properties sample: full access, key-1
/// denied (the XOM setup), key-2 write-denied, key-2 fully denied.
fn pkru_variants() -> Vec<Pkru> {
    let mut deny1 = Pkru::ALL_ACCESS;
    deny1.set_access_disable(1, true);
    let mut wd2 = Pkru::ALL_ACCESS;
    wd2.set_write_disable(2, true);
    let mut deny2 = Pkru::ALL_ACCESS;
    deny2.set_access_disable(2, true);
    vec![Pkru::ALL_ACCESS, deny1, wd2, deny2]
}

proptest! {
    /// The page-run fast path returns byte-identical data, identical
    /// faults, and leaves identical memory as the byte-at-a-time
    /// reference — for reads across every protection flavor.
    #[test]
    fn fast_read_equals_reference(
        addr in 0x0800u64..0xe000,
        len in 0usize..(3 * PAGE_SIZE as usize),
        which_pkru in 0usize..4,
    ) {
        let pkru = pkru_variants()[which_pkru];
        let mut fast = hostile_layout();
        let mut reference = fast.clone();
        let mut a = vec![0u8; len];
        let mut b = vec![0u8; len];
        let ra = fast.read(addr, &mut a, pkru);
        let rb = reference.read_ref(addr, &mut b, pkru);
        prop_assert_eq!(ra, rb);
        if ra.is_ok() {
            prop_assert_eq!(a, b);
        }
    }

    /// Fast writes land the same bytes (including partial transfers up to
    /// the faulting page) and fault identically to the reference.
    #[test]
    fn fast_write_equals_reference(
        addr in 0x0800u64..0xe000,
        len in 0usize..(3 * PAGE_SIZE as usize),
        seed in any::<u64>(),
        which_pkru in 0usize..4,
    ) {
        let pkru = pkru_variants()[which_pkru];
        let data: Vec<u8> = (0..len).map(|i| (seed.wrapping_add(i as u64) % 251) as u8).collect();
        let mut fast = hostile_layout();
        let mut reference = fast.clone();
        let ra = fast.write(addr, &data, pkru);
        let rb = reference.write_ref(addr, &data, pkru);
        prop_assert_eq!(ra, rb);
        // Partial-transfer semantics must match exactly: compare the whole
        // arena through the raw view.
        for page in [0x1000u64, 0x2000, 0x3000, 0x5000, 0x6000, 0x7000, 0x8000, 0x9000, 0xb000, 0xc000] {
            let mut pa = vec![0u8; PAGE_SIZE as usize];
            let mut pb = vec![0u8; PAGE_SIZE as usize];
            fast.read_raw(page, &mut pa).unwrap();
            reference.read_raw(page, &mut pb).unwrap();
            prop_assert_eq!(pa, pb, "page {:#x} diverged", page);
        }
    }

    /// Fast fetch returns the same byte count, bytes, and faults as the
    /// reference — including early stops at non-executable boundaries and
    /// PKU-exempt execution from XOM pages.
    #[test]
    fn fast_fetch_equals_reference(
        addr in 0x0800u64..0xe000,
        len in 1usize..64,
        which_pkru in 0usize..4,
    ) {
        let pkru = pkru_variants()[which_pkru];
        let mut fast = hostile_layout();
        let mut reference = fast.clone();
        let mut a = vec![0u8; len];
        let mut b = vec![0u8; len];
        let ra = fast.fetch(addr, &mut a, pkru);
        let rb = reference.fetch_ref(addr, &mut b, pkru);
        prop_assert_eq!(ra, rb);
        if let Ok(n) = ra {
            prop_assert_eq!(&a[..n], &b[..n]);
        }
    }

    /// Equivalence holds across interleaved mixes of reads, writes, and
    /// fetches on the *same* pair of spaces — exercising TLB reuse,
    /// invalidation by protect/set_pkey, and frame recycling by unmap.
    #[test]
    fn fast_mixed_ops_equal_reference(
        ops in proptest::collection::vec(
            (0u8..6, 0x0800u64..0xe000, 1usize..64, any::<u64>()), 1..40),
    ) {
        let mut fast = hostile_layout();
        let mut reference = fast.clone();
        let pkrus = pkru_variants();
        for (i, (kind, addr, len, seed)) in ops.iter().enumerate() {
            let pkru = pkrus[i % pkrus.len()];
            match kind {
                0 | 1 => {
                    let mut a = vec![0u8; *len];
                    let mut b = vec![0u8; *len];
                    prop_assert_eq!(fast.read(*addr, &mut a, pkru),
                                    reference.read_ref(*addr, &mut b, pkru));
                    prop_assert_eq!(a, b);
                }
                2 | 3 => {
                    let data: Vec<u8> =
                        (0..*len).map(|j| (seed.wrapping_add(j as u64) % 249) as u8).collect();
                    prop_assert_eq!(fast.write(*addr, &data, pkru),
                                    reference.write_ref(*addr, &data, pkru));
                }
                4 => {
                    let mut a = vec![0u8; *len];
                    let mut b = vec![0u8; *len];
                    prop_assert_eq!(fast.fetch(*addr, &mut a, pkru),
                                    reference.fetch_ref(*addr, &mut b, pkru));
                    prop_assert_eq!(a, b);
                }
                _ => {
                    // Protection churn invalidates the TLB; both views get
                    // the same mutation.
                    let page = *addr & !(PAGE_SIZE - 1);
                    let perms = if seed % 2 == 0 { Perms::RW } else { Perms::R };
                    prop_assert_eq!(fast.protect(page, PAGE_SIZE, perms).is_ok(),
                                    reference.protect(page, PAGE_SIZE, perms).is_ok());
                }
            }
        }
    }
}
