//! Page permissions and the PKU rights register.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// Sentinel protection key meaning "no key assigned" (key 0, which on Linux
/// is the default key with full rights).
pub const NO_PKEY: u8 = 0;

/// Page protection bits (a tiny fixed flag set; kept as a custom type rather
/// than `bitflags` to avoid a dependency for three bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Perms(u8);

impl Perms {
    /// No access.
    pub const NONE: Perms = Perms(0);
    /// Readable.
    pub const R: Perms = Perms(1);
    /// Writable.
    pub const W: Perms = Perms(2);
    /// Executable.
    pub const X: Perms = Perms(4);
    /// Read + write.
    pub const RW: Perms = Perms(3);
    /// Read + execute.
    pub const RX: Perms = Perms(5);
    /// Read + write + execute.
    pub const RWX: Perms = Perms(7);

    /// Permissions from raw bits (R=1, W=2, X=4; extra bits ignored) —
    /// the encoding `sim-fault` plans use to stay dependency-free.
    #[inline]
    pub const fn from_bits(bits: u8) -> Perms {
        Perms(bits & 7)
    }

    /// The raw bit encoding (R=1, W=2, X=4).
    #[inline]
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// True if all bits in `other` are present.
    #[inline]
    pub const fn contains(self, other: Perms) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if readable.
    #[inline]
    pub const fn readable(self) -> bool {
        self.contains(Perms::R)
    }
    /// True if writable.
    #[inline]
    pub const fn writable(self) -> bool {
        self.contains(Perms::W)
    }
    /// True if executable.
    #[inline]
    pub const fn executable(self) -> bool {
        self.contains(Perms::X)
    }
}

impl BitOr for Perms {
    type Output = Perms;
    fn bitor(self, rhs: Perms) -> Perms {
        Perms(self.0 | rhs.0)
    }
}

impl BitOrAssign for Perms {
    fn bitor_assign(&mut self, rhs: Perms) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.readable() { 'r' } else { '-' },
            if self.writable() { 'w' } else { '-' },
            if self.executable() { 'x' } else { '-' },
        )
    }
}

/// The kind of memory access being checked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch. Not subject to PKU — the basis of XOM.
    Fetch,
}

/// The per-thread PKU rights register (PKRU): two bits per key.
///
/// Bit `2k` is *access disable* (blocks reads and writes through key `k`);
/// bit `2k+1` is *write disable*. Key 0 conventionally stays enabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pkru(pub u32);

impl Pkru {
    /// All keys fully accessible.
    pub const ALL_ACCESS: Pkru = Pkru(0);

    /// Returns a PKRU with every key *except* key 0 access-disabled —
    /// the hardened default an interposer uses to protect its state.
    pub fn deny_all_but_key0() -> Pkru {
        let mut v = 0u32;
        for k in 1..16 {
            v |= 1 << (2 * k);
        }
        Pkru(v)
    }

    /// True if data reads through `key` are permitted.
    #[inline]
    pub fn may_read(self, key: u8) -> bool {
        key == NO_PKEY || self.0 & (1 << (2 * key)) == 0
    }

    /// True if data writes through `key` are permitted.
    #[inline]
    pub fn may_write(self, key: u8) -> bool {
        if key == NO_PKEY {
            return true;
        }
        let ad = self.0 & (1 << (2 * key)) != 0;
        let wd = self.0 & (1 << (2 * key + 1)) != 0;
        !(ad || wd)
    }

    /// Access-disables `key` (blocks reads and writes).
    pub fn set_access_disable(&mut self, key: u8, disable: bool) {
        let bit = 1u32 << (2 * key);
        if disable {
            self.0 |= bit;
        } else {
            self.0 &= !bit;
        }
    }

    /// Write-disables `key`.
    pub fn set_write_disable(&mut self, key: u8, disable: bool) {
        let bit = 1u32 << (2 * key + 1);
        if disable {
            self.0 |= bit;
        } else {
            self.0 &= !bit;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perms_contains() {
        assert!(Perms::RWX.contains(Perms::R));
        assert!(Perms::RWX.contains(Perms::RW));
        assert!(!Perms::RX.contains(Perms::W));
        assert!(Perms::NONE.contains(Perms::NONE));
        assert_eq!(Perms::R | Perms::W, Perms::RW);
    }

    #[test]
    fn perms_display() {
        assert_eq!(Perms::RX.to_string(), "r-x");
        assert_eq!(Perms::NONE.to_string(), "---");
        assert_eq!(Perms::RWX.to_string(), "rwx");
    }

    #[test]
    fn pkru_key0_always_allowed() {
        let p = Pkru(u32::MAX);
        assert!(p.may_read(0));
        assert!(p.may_write(0));
    }

    #[test]
    fn pkru_access_disable_blocks_read_and_write() {
        let mut p = Pkru::ALL_ACCESS;
        p.set_access_disable(3, true);
        assert!(!p.may_read(3));
        assert!(!p.may_write(3));
        assert!(p.may_read(2));
        p.set_access_disable(3, false);
        assert!(p.may_read(3));
    }

    #[test]
    fn pkru_write_disable_blocks_only_writes() {
        let mut p = Pkru::ALL_ACCESS;
        p.set_write_disable(5, true);
        assert!(p.may_read(5));
        assert!(!p.may_write(5));
    }

    #[test]
    fn deny_all_but_key0() {
        let p = Pkru::deny_all_but_key0();
        assert!(p.may_read(0));
        for k in 1..16 {
            assert!(!p.may_read(k), "key {k}");
        }
    }
}
