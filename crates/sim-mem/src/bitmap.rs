//! A lazily-allocated bitmap over the full canonical address space —
//! zpoline's "NULL execution check" data structure (paper §4.4).
//!
//! zpoline validates at the trampoline entry that the call originated from a
//! known rewritten site, using one bit per byte of virtual address space.
//! Virtual space is reserved up front; physical memory is committed only for
//! chunks that are touched. The *reserved* footprint is what pitfall **P4b**
//! is about: it scales with the address space, not the number of sites, and
//! is duplicated per process.

use std::collections::HashMap;

/// Bits of canonical user virtual address space covered (47 ⇒ 128 TiB).
pub const ADDR_BITS: u32 = 47;

/// Chunk granularity: one allocation covers this many *addresses*.
const CHUNK_ADDRS: u64 = 1 << 15; // 32 Ki addresses -> 4 KiB of bits

/// Sparse bitmap with one bit per virtual address.
#[derive(Debug, Clone, Default)]
pub struct Bitmap {
    chunks: HashMap<u64, Box<[u8]>>,
}

impl Bitmap {
    /// Creates an empty bitmap (no chunks committed).
    pub fn new() -> Bitmap {
        Bitmap::default()
    }

    fn locate(addr: u64) -> (u64, usize, u8) {
        let chunk = addr / CHUNK_ADDRS;
        let within = addr % CHUNK_ADDRS;
        ((chunk), (within / 8) as usize, 1u8 << (within % 8))
    }

    /// Sets the bit for `addr`, committing its chunk if needed.
    pub fn set(&mut self, addr: u64) {
        let (chunk, byte, bit) = Self::locate(addr);
        let c = self
            .chunks
            .entry(chunk)
            .or_insert_with(|| vec![0u8; (CHUNK_ADDRS / 8) as usize].into_boxed_slice());
        c[byte] |= bit;
    }

    /// Tests the bit for `addr` (false if the chunk was never committed).
    pub fn test(&self, addr: u64) -> bool {
        let (chunk, byte, bit) = Self::locate(addr);
        self.chunks
            .get(&chunk)
            .map(|c| c[byte] & bit != 0)
            .unwrap_or(false)
    }

    /// Physical bytes committed to back touched chunks.
    pub fn committed_bytes(&self) -> u64 {
        self.chunks.len() as u64 * (CHUNK_ADDRS / 8)
    }

    /// Virtual bytes the full-address-space reservation requires
    /// (the P4b overhead: 2^47 addresses / 8 bits-per-byte = 16 TiB of
    /// reserved virtual space per process).
    pub const fn reserved_bytes() -> u64 {
        (1u64 << ADDR_BITS) / 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_test() {
        let mut b = Bitmap::new();
        assert!(!b.test(0x1234));
        b.set(0x1234);
        assert!(b.test(0x1234));
        assert!(!b.test(0x1235));
        assert!(!b.test(0x1233));
    }

    #[test]
    fn adjacent_bits_independent() {
        let mut b = Bitmap::new();
        for a in 0x7f00_0000_0000u64..0x7f00_0000_0010 {
            b.set(a);
        }
        for a in 0x7f00_0000_0000u64..0x7f00_0000_0010 {
            assert!(b.test(a));
        }
        assert!(!b.test(0x7f00_0000_0010));
    }

    #[test]
    fn commitment_is_lazy_and_chunked() {
        let mut b = Bitmap::new();
        assert_eq!(b.committed_bytes(), 0);
        b.set(0);
        assert_eq!(b.committed_bytes(), CHUNK_ADDRS / 8);
        b.set(1); // same chunk
        assert_eq!(b.committed_bytes(), CHUNK_ADDRS / 8);
        b.set(1 << 40); // far-away chunk
        assert_eq!(b.committed_bytes(), 2 * (CHUNK_ADDRS / 8));
    }

    #[test]
    fn reservation_is_address_space_scaled() {
        // 16 TiB reserved regardless of how few sites exist — the P4b point.
        assert_eq!(Bitmap::reserved_bytes(), 1u64 << 44);
    }

    #[test]
    fn high_addresses() {
        let mut b = Bitmap::new();
        let a = (1u64 << ADDR_BITS) - 1;
        b.set(a);
        assert!(b.test(a));
    }
}
