//! # sim-mem — the guest address space
//!
//! A paged, lazily-materialized virtual address space with per-page
//! permissions and Protection Keys for Userspace (PKU), mirroring the Linux
//! x86-64 facilities the paper's interposers rely on:
//!
//! * pages are 4 KiB; mappings are named (so `/proc/$PID/maps` can be
//!   rendered for K23's offline logger);
//! * PKU: sixteen protection keys, a per-thread PKRU rights register with
//!   access-disable / write-disable bits per key. **Instruction fetch is not
//!   subject to PKU** — which is exactly how eXecute-Only Memory (XOM) is
//!   built for the page-0 trampoline (paper §4.4, §5.3);
//! * mappings reserve virtual space without allocating backing pages, so a
//!   zpoline-style bitmap spanning the whole canonical address space can be
//!   "mapped" cheaply and its *materialized* footprint measured (pitfall
//!   P4b).
//!
//! The [`Bitmap`] type is the measurement-friendly host-side twin of that
//! guest bitmap, used by the P4b ablation bench.

pub mod bitmap;
pub mod perms;
pub mod space;

pub use bitmap::Bitmap;
pub use perms::{Access, Perms, Pkru, NO_PKEY};
pub use space::{AddressSpace, Fault, FaultReason, MapError, Mapping, MemMode, PAGE_SIZE};
