//! The paged guest address space.

use crate::perms::{Access, Perms, Pkru, NO_PKEY};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Page size in bytes (4 KiB, as on x86-64).
pub const PAGE_SIZE: u64 = 4096;

/// Which memory engine services guest accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemMode {
    /// Page-run fast path: one permission check and one `copy_from_slice`
    /// per page touched.
    #[default]
    PageRun,
    /// Byte-at-a-time reference implementation (the pre-optimization
    /// engine, kept for benchmarking and as the semantic oracle).
    Legacy,
}

/// Why a guest memory access faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultReason {
    /// No mapping covers the address.
    Unmapped,
    /// The page permissions forbid the access.
    Protection,
    /// The page's protection key is disabled in the active PKRU.
    PkuDenied,
}

/// A guest memory fault (becomes SIGSEGV when raised during execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Faulting guest virtual address.
    pub addr: u64,
    /// What kind of access faulted.
    pub access: Access,
    /// Why.
    pub reason: FaultReason,
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} fault at {:#x} ({:?})",
            self.access, self.addr, self.reason
        )
    }
}

impl std::error::Error for Fault {}

/// Errors from mapping operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// Requested range overlaps an existing mapping.
    Overlap { addr: u64 },
    /// Address or length is not page-aligned / is zero.
    BadRange,
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Overlap { addr } => write!(f, "mapping overlaps at {addr:#x}"),
            MapError::BadRange => write!(f, "unaligned or empty range"),
        }
    }
}

impl std::error::Error for MapError {}

/// A named region of the address space — one line of `/proc/$PID/maps`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    /// First address.
    pub start: u64,
    /// One past the last address.
    pub end: u64,
    /// Permissions the region was mapped/mprotected with.
    pub perms: Perms,
    /// Region name, e.g. `/usr/lib/libc-sim.so.6` or `[stack]`.
    pub name: String,
    /// Protection key applied to the whole region.
    pub pkey: u8,
}

impl Mapping {
    /// True if `addr` falls inside the region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end
    }
}

/// One materialized page frame, stored in the slab ([`AddressSpace::frames`]).
#[derive(Debug, Clone)]
struct Frame {
    data: Box<[u8]>, // PAGE_SIZE bytes
    perms: Perms,
    pkey: u8,
    /// Content version: stamped from the space-wide monotonic counter on
    /// every write touching this page (and on allocation), so two observations
    /// of equal version guarantee byte-identical page contents. Lets the CPU
    /// revalidate cached decodes at serialization points instead of
    /// re-fetching and re-decoding unchanged code.
    version: u64,
}

/// Software-TLB size. Power of two; indexed by page-number low bits.
const TLB_SIZE: usize = 64;

/// One software-TLB slot: a page translation plus the page's protection
/// attributes. Valid only while `stamp` equals the space's current
/// generation — any map/unmap/protect/set_pkey bumps the generation and
/// thereby invalidates the whole TLB in O(1).
#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    base: u64,
    slot: u32,
    perms: Perms,
    pkey: u8,
    stamp: u64,
}

impl Default for TlbEntry {
    fn default() -> TlbEntry {
        TlbEntry {
            base: 0,
            slot: 0,
            perms: Perms::NONE,
            pkey: NO_PKEY,
            stamp: 0, // generations start at 1, so default entries never hit
        }
    }
}

/// A lazily-materialized paged address space.
///
/// `map` records a [`Mapping`] without allocating page frames; frames are
/// created on first touch. This matches `mmap` semantics and keeps a
/// 2^44-byte zpoline bitmap reservation affordable (P4b).
///
/// # Fast path
///
/// Page frames live in a slab (`frames` + `free_frames`) and the page table
/// maps page base → slab slot. A direct-mapped software TLB caches the last
/// translations so the hot path (straight-line fetch/load/store loops)
/// skips the `BTreeMap` walk entirely. Accesses are performed in *page
/// runs* — one permission check and one `copy_from_slice` per page touched
/// rather than per byte. The byte-at-a-time `*_ref` twins of each accessor
/// are kept as the semantic reference: equivalence is enforced by property
/// tests, and [`AddressSpace::set_mem_mode`] routes the public API
/// through them to reproduce the pre-fast-path engine for benchmarking.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    /// Page table: page base → slab slot of the materialized frame.
    pages: BTreeMap<u64, u32>,
    /// Frame slab; slots are stable until the page is unmapped.
    frames: Vec<Frame>,
    /// Recyclable slab slots (pages that were unmapped).
    free_frames: Vec<u32>,
    /// Direct-mapped software TLB.
    tlb: [TlbEntry; TLB_SIZE],
    /// TLB generation; bumped by any operation that changes translations or
    /// protection attributes.
    tlb_gen: u64,
    /// Route the public accessors through the byte-at-a-time reference
    /// implementations (pre-optimization engine; for benchmarking only).
    legacy: bool,
    /// Monotonic source for [`Frame::version`] stamps; never repeats, so a
    /// version can be compared across unmap/remap cycles.
    version_counter: u64,
    mappings: Vec<Mapping>,
    /// Written-page set for incremental snapshots (`None` = tracking off,
    /// the default; the write fast paths then pay a single branch).
    dirty: Option<BTreeSet<u64>>,
}

impl Default for AddressSpace {
    fn default() -> AddressSpace {
        AddressSpace {
            pages: BTreeMap::new(),
            frames: Vec::new(),
            free_frames: Vec::new(),
            tlb: [TlbEntry::default(); TLB_SIZE],
            // Generation 1 so default (stamp-0) TLB entries can never hit.
            tlb_gen: 1,
            legacy: false,
            version_counter: 0,
            mappings: Vec::new(),
            dirty: None,
        }
    }
}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> AddressSpace {
        AddressSpace::default()
    }

    /// Selects the memory engine: [`MemMode::PageRun`] is the page-run fast
    /// path; [`MemMode::Legacy`] routes `read`/`write`/`fetch`/`read_raw`/
    /// `write_raw` through the byte-at-a-time reference implementations
    /// (for benchmarking the fast path against the original engine).
    pub fn set_mem_mode(&mut self, mode: MemMode) {
        self.legacy = mode == MemMode::Legacy;
    }

    /// The currently selected memory engine.
    pub fn mem_mode(&self) -> MemMode {
        if self.legacy {
            MemMode::Legacy
        } else {
            MemMode::PageRun
        }
    }

    /// Bumps the TLB generation, invalidating every cached translation.
    #[inline]
    fn tlb_flush(&mut self) {
        self.tlb_gen = self.tlb_gen.wrapping_add(1).max(1);
    }

    #[inline]
    fn tlb_index(base: u64) -> usize {
        ((base / PAGE_SIZE) as usize) & (TLB_SIZE - 1)
    }

    /// Translation/protection generation: changes whenever any mapping,
    /// protection, or pkey changes. Consumers caching derived state (region
    /// names, decoded code) compare generations to detect staleness.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.tlb_gen
    }

    /// Fresh, never-repeating content-version stamp.
    #[inline]
    fn next_version(&mut self) -> u64 {
        self.version_counter += 1;
        self.version_counter
    }

    /// Enables or disables written-page tracking. Enabling clears any
    /// previously accumulated set; disabling drops it. While enabled, every
    /// write path (checked, raw, and the byte-at-a-time reference twins)
    /// and every protection/pkey change records the affected page bases for
    /// [`AddressSpace::take_dirty_pages`].
    pub fn set_dirty_tracking(&mut self, on: bool) {
        self.dirty = if on { Some(BTreeSet::new()) } else { None };
    }

    /// True while written-page tracking is enabled. A space created after
    /// tracking was configured (e.g. by `execve`) reports `false` until
    /// re-enabled — checkpointing uses this to detect that its incremental
    /// page deltas no longer cover the process.
    pub fn dirty_tracking(&self) -> bool {
        self.dirty.is_some()
    }

    /// Drains the set of page bases written (or re-protected) since the
    /// last drain, sorted ascending. Empty when tracking is off.
    pub fn take_dirty_pages(&mut self) -> Vec<u64> {
        match self.dirty.as_mut() {
            Some(d) => std::mem::take(d).into_iter().collect(),
            None => Vec::new(),
        }
    }

    #[inline]
    fn mark_dirty(&mut self, base: u64) {
        if let Some(d) = self.dirty.as_mut() {
            d.insert(base);
        }
    }

    /// Marks every page base in `[addr, addr+len)` dirty (protection and
    /// pkey changes must reach incremental snapshots too).
    fn mark_range_dirty(&mut self, addr: u64, len: u64) {
        if self.dirty.is_none() {
            return;
        }
        let start = Self::page_base(addr);
        let end = addr
            .checked_add(len)
            .map(|e| Self::page_base(e + PAGE_SIZE - 1))
            .unwrap_or(u64::MAX);
        let mut base = start;
        while base < end {
            self.mark_dirty(base);
            base += PAGE_SIZE;
        }
    }

    /// Snapshot of the materialized page at `base`: protection attributes
    /// plus a copy of its 4 KiB contents. `None` if the page was never
    /// touched (it is still implicitly zero and needs no snapshot).
    pub fn snapshot_page(&self, base: u64) -> Option<(Perms, u8, Vec<u8>)> {
        let &slot = self.pages.get(&base)?;
        let f = &self.frames[slot as usize];
        Some((f.perms, f.pkey, f.data.to_vec()))
    }

    /// Serialization stamp: `(generation, last issued content version)`.
    /// Two equal stamps guarantee that *no* write, mapping, protection, or
    /// pkey change happened in between — every write path draws a fresh
    /// version from the monotonic counter, and every translation change
    /// bumps the generation. Cores use this to coalesce serialization
    /// points: a flush between two equal stamps could not publish anything
    /// new, so revalidating cached decodes against it would trivially
    /// succeed.
    #[inline]
    pub fn write_stamp(&self) -> (u64, u64) {
        (self.tlb_gen, self.version_counter)
    }

    /// Content version of the materialized page at `base` (`None` if the
    /// page is unmapped or was never touched). Equal versions guarantee
    /// byte-identical contents — see [`Frame::version`].
    #[inline]
    pub fn page_version(&mut self, base: u64) -> Option<u64> {
        let e = self.tlb[Self::tlb_index(base)];
        if e.stamp == self.tlb_gen && e.base == base {
            return Some(self.frames[e.slot as usize].version);
        }
        self.pages.get(&base).map(|&s| self.frames[s as usize].version)
    }

    fn page_base(addr: u64) -> u64 {
        addr & !(PAGE_SIZE - 1)
    }

    /// The mapping covering `addr`, if any.
    pub fn mapping_at(&self, addr: u64) -> Option<&Mapping> {
        self.mappings.iter().find(|m| m.contains(addr))
    }

    /// All mappings, sorted by start address (the `/proc/maps` view).
    pub fn mappings(&self) -> Vec<&Mapping> {
        let mut v: Vec<&Mapping> = self.mappings.iter().collect();
        v.sort_by_key(|m| m.start);
        v
    }

    /// Renders the `/proc/$PID/maps`-style listing.
    pub fn render_maps(&self) -> String {
        let mut s = String::new();
        for m in self.mappings() {
            s.push_str(&format!(
                "{:012x}-{:012x} {} {}\n",
                m.start, m.end, m.perms, m.name
            ));
        }
        s
    }

    /// Total bytes of *materialized* page frames (the P4b metric).
    pub fn resident_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }

    /// Total bytes of *reserved* virtual address space.
    pub fn reserved_bytes(&self) -> u64 {
        self.mappings.iter().map(|m| m.end - m.start).sum()
    }

    /// Materialized bytes within `[start, end)` (the per-structure P4b
    /// memory metric).
    pub fn resident_bytes_in(&self, start: u64, end: u64) -> u64 {
        self.pages.range(start..end).count() as u64 * PAGE_SIZE
    }

    /// True if some mapping covers `addr`.
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.mapping_at(addr).is_some()
    }

    /// Maps `[addr, addr+len)` with `perms`, named `name`.
    ///
    /// # Errors
    ///
    /// [`MapError::BadRange`] if `addr`/`len` are unaligned or `len == 0`;
    /// [`MapError::Overlap`] if the range intersects an existing mapping.
    pub fn map(&mut self, addr: u64, len: u64, perms: Perms, name: &str) -> Result<(), MapError> {
        if len == 0 || !addr.is_multiple_of(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) {
            return Err(MapError::BadRange);
        }
        let end = addr.checked_add(len).ok_or(MapError::BadRange)?;
        for m in &self.mappings {
            if addr < m.end && m.start < end {
                return Err(MapError::Overlap { addr: m.start });
            }
        }
        self.mappings.push(Mapping {
            start: addr,
            end,
            perms,
            name: name.to_string(),
            pkey: NO_PKEY,
        });
        self.tlb_flush();
        Ok(())
    }

    /// Finds a free page-aligned range of `len` bytes at or above `hint`.
    pub fn find_free(&self, hint: u64, len: u64) -> u64 {
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let mut cand = Self::page_base(hint.max(PAGE_SIZE));
        let mut sorted = self.mappings();
        sorted.retain(|m| m.end > cand);
        loop {
            let conflict = sorted
                .iter()
                .find(|m| cand < m.end && m.start < cand + len)
                .copied();
            match conflict {
                None => return cand,
                Some(m) => cand = m.end,
            }
        }
    }

    /// Unmaps every mapping fully contained in `[addr, addr+len)` and frees
    /// its page frames. Partial overlaps trim the mapping.
    pub fn unmap(&mut self, addr: u64, len: u64) {
        let end = addr.saturating_add(len);
        let mut keep = Vec::new();
        for mut m in std::mem::take(&mut self.mappings) {
            if m.end <= addr || m.start >= end {
                keep.push(m);
            } else if m.start >= addr && m.end <= end {
                // fully covered: drop
            } else if m.start < addr && m.end > end {
                // split
                let tail = Mapping {
                    start: end,
                    end: m.end,
                    perms: m.perms,
                    name: m.name.clone(),
                    pkey: m.pkey,
                };
                m.end = addr;
                keep.push(m);
                keep.push(tail);
            } else if m.start < addr {
                m.end = addr;
                keep.push(m);
            } else {
                m.start = end;
                keep.push(m);
            }
        }
        self.mappings = keep;
        let bases: Vec<u64> = self
            .pages
            .range(Self::page_base(addr)..end)
            .map(|(b, _)| *b)
            .collect();
        for b in bases {
            if let Some(slot) = self.pages.remove(&b) {
                self.free_frames.push(slot);
            }
        }
        self.tlb_flush();
    }

    /// Changes permissions for all pages in `[addr, addr+len)`.
    ///
    /// Pages are materialized so the change sticks; the covering mapping's
    /// display permissions are updated when fully covered.
    ///
    /// # Errors
    ///
    /// Faults with [`FaultReason::Unmapped`] if part of the range is
    /// unmapped.
    pub fn protect(&mut self, addr: u64, len: u64, perms: Perms) -> Result<(), Fault> {
        self.mark_range_dirty(addr, len);
        self.for_each_page(addr, len, |page| page.perms = perms)?;
        for m in &mut self.mappings {
            if m.start >= addr && m.end <= addr.saturating_add(len) {
                m.perms = perms;
            }
        }
        self.tlb_flush();
        Ok(())
    }

    /// Assigns protection key `pkey` to all pages in the range.
    ///
    /// # Errors
    ///
    /// Faults if part of the range is unmapped.
    pub fn set_pkey(&mut self, addr: u64, len: u64, pkey: u8) -> Result<(), Fault> {
        self.mark_range_dirty(addr, len);
        self.for_each_page(addr, len, |page| page.pkey = pkey)?;
        for m in &mut self.mappings {
            if m.start >= addr && m.end <= addr.saturating_add(len) {
                m.pkey = pkey;
            }
        }
        self.tlb_flush();
        Ok(())
    }

    /// Current permissions of the page containing `addr`.
    pub fn page_perms(&self, addr: u64) -> Option<Perms> {
        let base = Self::page_base(addr);
        if let Some(&slot) = self.pages.get(&base) {
            return Some(self.frames[slot as usize].perms);
        }
        self.mapping_at(addr).map(|m| m.perms)
    }

    fn for_each_page(
        &mut self,
        addr: u64,
        len: u64,
        mut f: impl FnMut(&mut Frame),
    ) -> Result<(), Fault> {
        let start = Self::page_base(addr);
        let end = addr
            .checked_add(len)
            .map(|e| Self::page_base(e + PAGE_SIZE - 1))
            .unwrap_or(u64::MAX);
        let mut base = start;
        while base < end {
            let slot = self.materialize_slot(base).ok_or(Fault {
                addr: base,
                access: Access::Write,
                reason: FaultReason::Unmapped,
            })?;
            f(&mut self.frames[slot as usize]);
            base += PAGE_SIZE;
        }
        Ok(())
    }

    /// Takes a frame from the free list (re-zeroed) or grows the slab.
    fn alloc_frame(&mut self, perms: Perms, pkey: u8) -> u32 {
        let version = self.next_version();
        match self.free_frames.pop() {
            Some(slot) => {
                let f = &mut self.frames[slot as usize];
                f.data.fill(0);
                f.perms = perms;
                f.pkey = pkey;
                f.version = version;
                slot
            }
            None => {
                let slot = u32::try_from(self.frames.len()).expect("frame slab overflow");
                self.frames.push(Frame {
                    data: vec![0u8; PAGE_SIZE as usize].into_boxed_slice(),
                    perms,
                    pkey,
                    version,
                });
                slot
            }
        }
    }

    /// Slab slot of the frame for `base`, materializing on first touch.
    /// Does not consult or fill the TLB (slow/reference path).
    fn materialize_slot(&mut self, base: u64) -> Option<u32> {
        if let Some(&slot) = self.pages.get(&base) {
            return Some(slot);
        }
        let m = self.mapping_at(base)?;
        let (perms, pkey) = (m.perms, m.pkey);
        let slot = self.alloc_frame(perms, pkey);
        self.pages.insert(base, slot);
        Some(slot)
    }

    /// Fast-path page lookup: TLB first, then page table, then lazy
    /// materialization. Fills the TLB on miss. Returns the slab slot plus
    /// the page's protection attributes.
    #[inline]
    fn load_page(&mut self, base: u64) -> Option<(u32, Perms, u8)> {
        let idx = Self::tlb_index(base);
        let e = self.tlb[idx];
        if e.stamp == self.tlb_gen && e.base == base {
            sim_obs::tlb_hit();
            return Some((e.slot, e.perms, e.pkey));
        }
        let slot = self.materialize_slot(base)?;
        sim_obs::tlb_fill(base);
        let f = &self.frames[slot as usize];
        let (perms, pkey) = (f.perms, f.pkey);
        self.tlb[idx] = TlbEntry {
            base,
            slot,
            perms,
            pkey,
            stamp: self.tlb_gen,
        };
        Some((slot, perms, pkey))
    }

    /// Per-page permission + PKU check (one check covers a whole page run:
    /// protection attributes are uniform within a page).
    #[inline]
    fn check_attrs(
        perms: Perms,
        pkey: u8,
        addr: u64,
        access: Access,
        pkru: Pkru,
    ) -> Result<(), Fault> {
        let ok_perms = match access {
            Access::Read => perms.readable(),
            Access::Write => perms.writable(),
            Access::Fetch => perms.executable(),
        };
        if !ok_perms {
            return Err(Fault {
                addr,
                access,
                reason: FaultReason::Protection,
            });
        }
        let ok_pku = match access {
            Access::Read => pkru.may_read(pkey),
            Access::Write => pkru.may_write(pkey),
            Access::Fetch => true,
        };
        if !ok_pku {
            return Err(Fault {
                addr,
                access,
                reason: FaultReason::PkuDenied,
            });
        }
        Ok(())
    }

    /// Checked access used by the CPU and by syscall argument copying,
    /// performed in page runs. For writes, pass the data as `write_src`
    /// (`buf` may be empty); for reads, the length is `buf.len()`.
    ///
    /// # Errors
    ///
    /// Returns the first [`Fault`] encountered; preceding bytes may have been
    /// transferred (like a partial hardware access).
    pub fn access(
        &mut self,
        addr: u64,
        buf: &mut [u8],
        access: Access,
        pkru: Pkru,
        write_src: Option<&[u8]>,
    ) -> Result<(), Fault> {
        let len = write_src.map_or(buf.len(), <[u8]>::len);
        let mut done = 0usize;
        while done < len {
            let a = addr.wrapping_add(done as u64);
            let base = Self::page_base(a);
            let off = (a - base) as usize;
            let run = (PAGE_SIZE as usize - off).min(len - done);
            sim_obs::page_run(run as u64);
            let (slot, perms, pkey) = self.load_page(base).ok_or(Fault {
                addr: a,
                access,
                reason: FaultReason::Unmapped,
            })?;
            Self::check_attrs(perms, pkey, a, access, pkru)?;
            match write_src {
                Some(src) => {
                    let v = self.next_version();
                    self.mark_dirty(base);
                    let frame = &mut self.frames[slot as usize];
                    frame.data[off..off + run].copy_from_slice(&src[done..done + run]);
                    frame.version = v;
                }
                None => {
                    let frame = &self.frames[slot as usize];
                    buf[done..done + run].copy_from_slice(&frame.data[off..off + run]);
                }
            }
            done += run;
        }
        Ok(())
    }

    /// Byte-at-a-time twin of [`AddressSpace::access`] — the original
    /// (pre-fast-path) engine, kept as the semantic reference. Property
    /// tests assert byte-for-byte and fault-for-fault equivalence.
    ///
    /// # Errors
    ///
    /// Identical to [`AddressSpace::access`].
    pub fn access_ref(
        &mut self,
        addr: u64,
        buf: &mut [u8],
        access: Access,
        pkru: Pkru,
        write_src: Option<&[u8]>,
    ) -> Result<(), Fault> {
        let len = write_src.map_or(buf.len(), <[u8]>::len);
        for i in 0..len {
            let a = addr.wrapping_add(i as u64);
            let base = Self::page_base(a);
            let off = (a - base) as usize;
            let slot = self.materialize_slot(base).ok_or(Fault {
                addr: a,
                access,
                reason: FaultReason::Unmapped,
            })? as usize;
            let (perms, pkey) = (self.frames[slot].perms, self.frames[slot].pkey);
            Self::check_attrs(perms, pkey, a, access, pkru)?;
            match write_src {
                Some(src) => {
                    let v = self.next_version();
                    self.mark_dirty(base);
                    self.frames[slot].data[off] = src[i];
                    self.frames[slot].version = v;
                }
                None => buf[i] = self.frames[slot].data[off],
            }
        }
        Ok(())
    }

    /// Checked read.
    ///
    /// # Errors
    ///
    /// Faults on unmapped/unreadable/PKU-denied pages.
    pub fn read(&mut self, addr: u64, buf: &mut [u8], pkru: Pkru) -> Result<(), Fault> {
        if self.legacy {
            return self.access_ref(addr, buf, Access::Read, pkru, None);
        }
        self.access(addr, buf, Access::Read, pkru, None)
    }

    /// Checked write.
    ///
    /// # Errors
    ///
    /// Faults on unmapped/unwritable/PKU-denied pages.
    pub fn write(&mut self, addr: u64, data: &[u8], pkru: Pkru) -> Result<(), Fault> {
        if self.legacy {
            return self.write_ref(addr, data, pkru);
        }
        self.access(addr, &mut [], Access::Write, pkru, Some(data))
    }

    /// Byte-at-a-time reference twin of [`AddressSpace::write`] (includes
    /// the original scratch-buffer allocation, for faithful benchmarking).
    ///
    /// # Errors
    ///
    /// Identical to [`AddressSpace::write`].
    pub fn write_ref(&mut self, addr: u64, data: &[u8], pkru: Pkru) -> Result<(), Fault> {
        let mut scratch = vec![0u8; data.len()];
        self.access_ref(addr, &mut scratch, Access::Write, pkru, Some(data))
    }

    /// Byte-at-a-time reference twin of [`AddressSpace::read`].
    ///
    /// # Errors
    ///
    /// Identical to [`AddressSpace::read`].
    pub fn read_ref(&mut self, addr: u64, buf: &mut [u8], pkru: Pkru) -> Result<(), Fault> {
        self.access_ref(addr, buf, Access::Read, pkru, None)
    }

    /// Checked instruction fetch of up to `buf.len()` bytes; stops early at
    /// an unmapped/non-executable page boundary and returns how many bytes
    /// were fetched (≥ 1 on success).
    ///
    /// # Errors
    ///
    /// Faults if even the first byte cannot be fetched.
    pub fn fetch(&mut self, addr: u64, buf: &mut [u8], pkru: Pkru) -> Result<usize, Fault> {
        if self.legacy {
            return self.fetch_ref(addr, buf, pkru);
        }
        let len = buf.len();
        let mut done = 0usize;
        while done < len {
            let a = addr.wrapping_add(done as u64);
            let base = Self::page_base(a);
            let off = (a - base) as usize;
            let run = (PAGE_SIZE as usize - off).min(len - done);
            sim_obs::page_run(run as u64);
            let checked = self
                .load_page(base)
                .ok_or(Fault {
                    addr: a,
                    access: Access::Fetch,
                    reason: FaultReason::Unmapped,
                })
                .and_then(|(slot, perms, pkey)| {
                    Self::check_attrs(perms, pkey, a, Access::Fetch, pkru)?;
                    Ok(slot)
                });
            match checked {
                Ok(slot) => {
                    let frame = &self.frames[slot as usize];
                    buf[done..done + run].copy_from_slice(&frame.data[off..off + run]);
                    done += run;
                }
                Err(f) if done == 0 => return Err(f),
                Err(_) => return Ok(done),
            }
        }
        Ok(len)
    }

    /// Byte-at-a-time reference twin of [`AddressSpace::fetch`].
    ///
    /// # Errors
    ///
    /// Identical to [`AddressSpace::fetch`].
    pub fn fetch_ref(&mut self, addr: u64, buf: &mut [u8], pkru: Pkru) -> Result<usize, Fault> {
        #[allow(clippy::needless_range_loop)] // early-return index semantics
        for i in 0..buf.len() {
            let mut one = [0u8; 1];
            match self.access_ref(addr.wrapping_add(i as u64), &mut one, Access::Fetch, pkru, None)
            {
                Ok(()) => buf[i] = one[0],
                Err(f) => {
                    if i == 0 {
                        return Err(f);
                    }
                    return Ok(i);
                }
            }
        }
        Ok(buf.len())
    }

    /// Checked u64 read (little-endian).
    ///
    /// # Errors
    ///
    /// Faults like [`AddressSpace::read`].
    pub fn read_u64(&mut self, addr: u64, pkru: Pkru) -> Result<u64, Fault> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b, pkru)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Checked u64 write (little-endian).
    ///
    /// # Errors
    ///
    /// Faults like [`AddressSpace::write`].
    pub fn write_u64(&mut self, addr: u64, v: u64, pkru: Pkru) -> Result<(), Fault> {
        self.write(addr, &v.to_le_bytes(), pkru)
    }

    /// Checked u8 read.
    ///
    /// # Errors
    ///
    /// Faults like [`AddressSpace::read`].
    pub fn read_u8(&mut self, addr: u64, pkru: Pkru) -> Result<u8, Fault> {
        let mut b = [0u8; 1];
        self.read(addr, &mut b, pkru)?;
        Ok(b[0])
    }

    /// Checked u8 write.
    ///
    /// # Errors
    ///
    /// Faults like [`AddressSpace::write`].
    pub fn write_u8(&mut self, addr: u64, v: u8, pkru: Pkru) -> Result<(), Fault> {
        self.write(addr, &[v], pkru)
    }

    /// Kernel-privileged read ignoring permissions and PKU (used by syscall
    /// argument copying, ptrace peeks, and loaders). Still faults on
    /// unmapped addresses.
    ///
    /// # Errors
    ///
    /// Faults with [`FaultReason::Unmapped`] only.
    pub fn read_raw(&mut self, addr: u64, buf: &mut [u8]) -> Result<(), Fault> {
        if self.legacy {
            return self.raw_access_ref(addr, buf, Access::Read, None);
        }
        self.raw_access(addr, buf, Access::Read, None)
    }

    /// Kernel-privileged write, ignoring permissions and PKU.
    ///
    /// # Errors
    ///
    /// Faults with [`FaultReason::Unmapped`] only.
    pub fn write_raw(&mut self, addr: u64, data: &[u8]) -> Result<(), Fault> {
        if self.legacy {
            return self.raw_access_ref(addr, &mut [], Access::Write, Some(data));
        }
        self.raw_access(addr, &mut [], Access::Write, Some(data))
    }

    /// Page-run unchecked access backing `read_raw`/`write_raw`.
    fn raw_access(
        &mut self,
        addr: u64,
        buf: &mut [u8],
        access: Access,
        write_src: Option<&[u8]>,
    ) -> Result<(), Fault> {
        let len = write_src.map_or(buf.len(), <[u8]>::len);
        let mut done = 0usize;
        while done < len {
            let a = addr.wrapping_add(done as u64);
            let base = Self::page_base(a);
            let off = (a - base) as usize;
            let run = (PAGE_SIZE as usize - off).min(len - done);
            sim_obs::page_run(run as u64);
            let (slot, _, _) = self.load_page(base).ok_or(Fault {
                addr: a,
                access,
                reason: FaultReason::Unmapped,
            })?;
            match write_src {
                Some(src) => {
                    let v = self.next_version();
                    self.mark_dirty(base);
                    let frame = &mut self.frames[slot as usize];
                    frame.data[off..off + run].copy_from_slice(&src[done..done + run]);
                    frame.version = v;
                }
                None => {
                    let frame = &self.frames[slot as usize];
                    buf[done..done + run].copy_from_slice(&frame.data[off..off + run]);
                }
            }
            done += run;
        }
        Ok(())
    }

    /// Byte-at-a-time reference twin of [`AddressSpace::raw_access`].
    fn raw_access_ref(
        &mut self,
        addr: u64,
        buf: &mut [u8],
        access: Access,
        write_src: Option<&[u8]>,
    ) -> Result<(), Fault> {
        let len = write_src.map_or(buf.len(), <[u8]>::len);
        for i in 0..len {
            let a = addr.wrapping_add(i as u64);
            let base = Self::page_base(a);
            let off = (a - base) as usize;
            let slot = self.materialize_slot(base).ok_or(Fault {
                addr: a,
                access,
                reason: FaultReason::Unmapped,
            })? as usize;
            match write_src {
                Some(src) => {
                    let v = self.next_version();
                    self.mark_dirty(base);
                    self.frames[slot].data[off] = src[i];
                    self.frames[slot].version = v;
                }
                None => buf[i] = self.frames[slot].data[off],
            }
        }
        Ok(())
    }

    /// Kernel-privileged NUL-terminated string read (bounded at 4096 bytes).
    ///
    /// Scans page runs for the terminator rather than issuing one
    /// `read_raw` per byte.
    ///
    /// # Errors
    ///
    /// Faults on unmapped addresses; non-UTF-8 bytes are replaced.
    pub fn read_cstr(&mut self, addr: u64) -> Result<String, Fault> {
        let mut out = Vec::new();
        let mut pos = 0u64;
        'scan: while pos < 4096 {
            let a = addr + pos;
            let base = Self::page_base(a);
            let off = (a - base) as usize;
            let run = (PAGE_SIZE as usize - off).min((4096 - pos) as usize);
            let (slot, _, _) = self.load_page(base).ok_or(Fault {
                addr: a,
                access: Access::Read,
                reason: FaultReason::Unmapped,
            })?;
            let chunk = &self.frames[slot as usize].data[off..off + run];
            match chunk.iter().position(|&b| b == 0) {
                Some(n) => {
                    out.extend_from_slice(&chunk[..n]);
                    break 'scan;
                }
                None => out.extend_from_slice(chunk),
            }
            pos += run as u64;
        }
        Ok(String::from_utf8_lossy(&out).into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space_with(addr: u64, len: u64, perms: Perms) -> AddressSpace {
        let mut s = AddressSpace::new();
        s.map(addr, len, perms, "test").unwrap();
        s
    }

    #[test]
    fn map_read_write_roundtrip() {
        let mut s = space_with(0x1000, 0x2000, Perms::RW);
        s.write(0x1ffc, &[1, 2, 3, 4, 5, 6, 7, 8], Pkru::ALL_ACCESS)
            .unwrap(); // crosses a page boundary
        let mut buf = [0u8; 8];
        s.read(0x1ffc, &mut buf, Pkru::ALL_ACCESS).unwrap();
        assert_eq!(buf, [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn unmapped_access_faults() {
        let mut s = AddressSpace::new();
        let err = s.read_u64(0x5000, Pkru::ALL_ACCESS).unwrap_err();
        assert_eq!(err.reason, FaultReason::Unmapped);
        assert_eq!(err.addr, 0x5000);
    }

    #[test]
    fn permission_checks() {
        let mut s = space_with(0x1000, 0x1000, Perms::R);
        assert!(s.read_u8(0x1000, Pkru::ALL_ACCESS).is_ok());
        let err = s.write_u8(0x1000, 1, Pkru::ALL_ACCESS).unwrap_err();
        assert_eq!(err.reason, FaultReason::Protection);
        let mut buf = [0u8; 1];
        let err = s.fetch(0x1000, &mut buf, Pkru::ALL_ACCESS).unwrap_err();
        assert_eq!(err.reason, FaultReason::Protection);
    }

    #[test]
    fn overlap_rejected() {
        let mut s = space_with(0x1000, 0x1000, Perms::RW);
        assert_eq!(
            s.map(0x1000, 0x1000, Perms::RW, "x"),
            Err(MapError::Overlap { addr: 0x1000 })
        );
        assert_eq!(s.map(0x800, 0x1000, Perms::RW, "x"), Err(MapError::BadRange));
        assert!(s.map(0x2000, 0x1000, Perms::RW, "x").is_ok());
    }

    #[test]
    fn xom_page_executes_but_faults_on_read() {
        // The P4/P4a scenario: page 0 trampoline is execute-only via PKU.
        let mut s = space_with(0x0, 0x1000, Perms::RX);
        s.set_pkey(0x0, 0x1000, 1).unwrap();
        s.write_raw(0, &[0x90, 0x90]).unwrap(); // kernel-side install
        let mut pkru = Pkru::ALL_ACCESS;
        pkru.set_access_disable(1, true);
        // Fetch succeeds (PKU does not gate execution)…
        let mut buf = [0u8; 2];
        assert_eq!(s.fetch(0, &mut buf, pkru).unwrap(), 2);
        // …but data reads fault.
        let err = s.read_u8(0, pkru).unwrap_err();
        assert_eq!(err.reason, FaultReason::PkuDenied);
    }

    #[test]
    fn lazy_materialization_tracks_resident_bytes() {
        // Reserve 1 GiB, touch 3 pages: resident stays tiny (P4b).
        let mut s = space_with(0x100_0000, 1 << 30, Perms::RW);
        assert_eq!(s.resident_bytes(), 0);
        assert_eq!(s.reserved_bytes(), 1 << 30);
        s.write_u8(0x100_0000, 1, Pkru::ALL_ACCESS).unwrap();
        s.write_u8(0x100_0000 + (100 << 12), 1, Pkru::ALL_ACCESS).unwrap();
        s.write_u8(0x100_0000 + (9000 << 12), 1, Pkru::ALL_ACCESS).unwrap();
        assert_eq!(s.resident_bytes(), 3 * PAGE_SIZE);
    }

    #[test]
    fn protect_changes_page_perms() {
        let mut s = space_with(0x1000, 0x3000, Perms::RW);
        s.protect(0x2000, 0x1000, Perms::R).unwrap();
        assert!(s.write_u8(0x1000, 1, Pkru::ALL_ACCESS).is_ok());
        assert!(s.write_u8(0x2000, 1, Pkru::ALL_ACCESS).is_err());
        assert!(s.write_u8(0x3000, 1, Pkru::ALL_ACCESS).is_ok());
        assert_eq!(s.page_perms(0x2000), Some(Perms::R));
    }

    #[test]
    fn unmap_full_and_partial() {
        let mut s = space_with(0x1000, 0x4000, Perms::RW);
        s.write_u8(0x2000, 7, Pkru::ALL_ACCESS).unwrap();
        s.unmap(0x2000, 0x1000);
        assert!(s.read_u8(0x2000, Pkru::ALL_ACCESS).is_err());
        assert!(s.read_u8(0x1000, Pkru::ALL_ACCESS).is_ok());
        assert!(s.read_u8(0x3000, Pkru::ALL_ACCESS).is_ok());
        // The split produced two mappings.
        assert_eq!(s.mappings().len(), 2);
    }

    #[test]
    fn find_free_skips_existing() {
        let mut s = AddressSpace::new();
        s.map(0x1000, 0x1000, Perms::RW, "a").unwrap();
        s.map(0x3000, 0x1000, Perms::RW, "b").unwrap();
        let f = s.find_free(0x1000, 0x1000);
        assert_eq!(f, 0x2000);
        let f2 = s.find_free(0x1000, 0x2000);
        assert_eq!(f2, 0x4000);
    }

    #[test]
    fn render_maps_lists_regions() {
        let mut s = AddressSpace::new();
        s.map(0x1000, 0x1000, Perms::RX, "/usr/bin/ls-sim").unwrap();
        s.map(0x7000, 0x1000, Perms::RW, "[stack]").unwrap();
        let maps = s.render_maps();
        assert!(maps.contains("/usr/bin/ls-sim"));
        assert!(maps.contains("r-x"));
        assert!(maps.contains("[stack]"));
    }

    #[test]
    fn read_cstr() {
        let mut s = space_with(0x1000, 0x1000, Perms::RW);
        s.write_raw(0x1100, b"LD_PRELOAD=libk23.so\0").unwrap();
        assert_eq!(s.read_cstr(0x1100).unwrap(), "LD_PRELOAD=libk23.so");
    }

    #[test]
    fn fetch_stops_at_boundary() {
        let mut s = AddressSpace::new();
        s.map(0x1000, 0x1000, Perms::RX, "code").unwrap();
        // 10-byte fetch starting 4 bytes before the end of the mapping.
        let mut buf = [0u8; 10];
        let n = s.fetch(0x1ffc, &mut buf, Pkru::ALL_ACCESS).unwrap();
        assert_eq!(n, 4);
    }
}
