//! # sjson — a minimal, dependency-free JSON library
//!
//! The repository builds in a fully offline container, so it cannot pull
//! `serde`/`serde_json` from crates.io. The only serialization needs are
//! small and structural (SimElf images in the VFS, offline site logs, and
//! benchmark result files), so this crate provides exactly that: a JSON
//! [`Value`], a strict parser, and compact/pretty writers.
//!
//! Numbers are kept as `u64`/`i64`/`f64` variants so guest addresses (up to
//! 2^47) round-trip exactly rather than through a lossy double.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Non-negative integer (the common case for addresses and counts).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Any number written with a fraction or exponent.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; keys are kept sorted for deterministic output.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: Vec<(&str, Value)>) -> Value {
        Value::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// String content, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Unsigned integer content (accepting exact non-negative `Int`s too).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(v) => Some(*v),
            Value::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Float content (accepting integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::UInt(v) => Some(*v as f64),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Bool content, if a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array content, if an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Array of bytes (`[0..=255]` integers), if shaped like one.
    pub fn as_bytes(&self) -> Option<Vec<u8>> {
        let arr = self.as_array()?;
        let mut out = Vec::with_capacity(arr.len());
        for v in arr {
            let b = v.as_u64()?;
            if b > 255 {
                return None;
            }
            out.push(b as u8);
        }
        Some(out)
    }

    /// Serializes compactly (no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Serializes with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s
    }

    /// Compact serialization as bytes (the `serde_json::to_vec` shape).
    pub fn to_vec(&self) -> Vec<u8> {
        self.to_string_compact().into_bytes()
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(true) => out.push_str("true"),
            Value::Bool(false) => out.push_str("false"),
            Value::UInt(v) => out.push_str(&v.to_string()),
            Value::Int(v) => out.push_str(&v.to_string()),
            Value::Float(v) => {
                if v.is_finite() {
                    // Keep a fraction marker so floats re-parse as floats.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Value::Object(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// What went wrong.
    pub msg: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document.
///
/// # Errors
///
/// [`ParseError`] on malformed input or trailing garbage.
pub fn parse(input: &[u8]) -> Result<Value, ParseError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.input.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Parses a JSON document from a string.
///
/// # Errors
///
/// [`ParseError`] like [`parse`].
pub fn parse_str(input: &str) -> Result<Value, ParseError> {
    parse(input.as_bytes())
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &'static str) -> ParseError {
        ParseError { at: self.pos, msg }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8, msg: &'static str) -> Result<(), ParseError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(msg))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, ParseError> {
        if self.input[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"', "expected '\"'")?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'b') => s.push('\u{8}'),
                    Some(b'f') => s.push('\u{c}'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: read the low half if present.
                        let c = if (0xd800..0xdc00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("lone high surrogate"));
                            }
                            let lo = self.hex4()?;
                            if !(0xdc00..0xe000).contains(&lo) {
                                return Err(self.err("bad low surrogate"));
                            }
                            0x10000 + ((cp - 0xd800) << 10) + (lo - 0xdc00)
                        } else {
                            cp
                        };
                        s.push(char::from_u32(c).ok_or_else(|| self.err("bad codepoint"))?);
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x80 => s.push(b as char),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences.
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(self.err("bad utf-8")),
                    };
                    let start = self.pos - 1;
                    let end = start + len;
                    if end > self.input.len() {
                        return Err(self.err("truncated utf-8"));
                    }
                    let chunk = std::str::from_utf8(&self.input[start..end])
                        .map_err(|_| self.err("bad utf-8"))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a' + 10) as u32,
                Some(b @ b'A'..=b'F') => (b - b'A' + 10) as u32,
                _ => return Err(self.err("bad \\u escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if text.is_empty() || text == "-" {
            return Err(self.err("bad number"));
        }
        if !is_float {
            if let Some(stripped) = text.strip_prefix('-') {
                if let Ok(v) = stripped.parse::<u64>() {
                    if v <= i64::MAX as u64 {
                        return Ok(Value::Int(-(v as i64)));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("bad number"))
    }
}

// ---- convenience conversions ------------------------------------------------

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::Str(s)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::UInt(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

/// Encodes a byte slice as a JSON array of integers.
pub fn bytes_value(data: &[u8]) -> Value {
    Value::Array(data.iter().map(|b| Value::UInt(*b as u64)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = Value::object(vec![
            ("name", "/usr/lib/libc-sim.so.6".into()),
            ("len", Value::UInt(12345)),
            ("neg", Value::Int(-7)),
            ("ok", Value::Bool(true)),
            ("ratio", Value::Float(1.25)),
            ("bytes", bytes_value(&[0, 127, 255])),
            ("nothing", Value::Null),
        ]);
        let compact = v.to_string_compact();
        assert_eq!(parse_str(&compact).unwrap(), v);
        let pretty = v.to_string_pretty();
        assert_eq!(parse_str(&pretty).unwrap(), v);
    }

    #[test]
    fn large_u64_exact() {
        let v = Value::UInt(1 << 47);
        let s = v.to_string_compact();
        assert_eq!(parse_str(&s).unwrap().as_u64(), Some(1 << 47));
    }

    #[test]
    fn string_escapes() {
        let v = Value::Str("a\"b\\c\nd\ttab\u{1}".to_string());
        let s = v.to_string_compact();
        assert_eq!(parse_str(&s).unwrap(), v);
    }

    #[test]
    fn unicode_strings() {
        let v = Value::Str("héllo ⊕ wörld".to_string());
        let s = v.to_string_compact();
        assert_eq!(parse_str(&s).unwrap(), v);
        assert_eq!(
            parse_str("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            Value::Str("é😀".to_string())
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_str("{").is_err());
        assert!(parse_str("[1,]").is_err());
        assert!(parse_str("12 34").is_err());
        assert!(parse_str("nul").is_err());
        assert!(parse_str("\"abc").is_err());
    }

    #[test]
    fn floats_reparse_as_floats() {
        let s = Value::Float(2.0).to_string_compact();
        assert_eq!(s, "2.0");
        assert!(matches!(parse_str(&s).unwrap(), Value::Float(_)));
    }

    #[test]
    fn nested_arrays() {
        let s = "[[1,2],[3],[],[{\"k\":[true]}]]";
        let v = parse_str(s).unwrap();
        assert_eq!(v.to_string_compact(), s);
    }
}
