//! The ptrace interface: host-implemented cross-process tracers.
//!
//! The paper's `ptracer` (K23's online-phase startup component) is a separate
//! process that controls the target through the `ptrace(2)` API. We model the
//! tracer as host code implementing [`Tracer`], attached to a process with
//! [`TraceOpts`]. The kernel generates the same stop events Linux would
//! (syscall-enter, syscall-exit, exec, fork, exit) and charges the same kind
//! of costs: **two context switches per stop** plus one syscall-round-trip
//! per tracer request — which is precisely why ptrace-based interposition is
//! prohibitively slow (paper §2.1).

use crate::process::{Pid, Tid};
use crate::Kernel;

/// Tracing options (the union of `PTRACE_O_*` and our exec-side controls).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceOpts {
    /// Stop at syscall entry and exit (PTRACE_SYSCALL-style).
    pub trace_syscalls: bool,
    /// Stop at successful `execve` (PTRACE_O_TRACEEXEC).
    pub trace_exec: bool,
    /// Auto-attach to forked children (PTRACE_O_TRACEFORK).
    pub trace_fork: bool,
    /// Disable the vDSO in images exec'd while attached, forcing vDSO users
    /// onto real `syscall` instructions (paper §5.2).
    pub disable_vdso: bool,
}

/// A stop event reported to the tracer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stop {
    /// About to execute syscall `nr` from instruction address `site`.
    SyscallEnter {
        /// Syscall number (`rax`).
        nr: u64,
        /// The six argument registers.
        args: [u64; 6],
        /// Address of the `syscall`/`sysenter` instruction.
        site: u64,
    },
    /// A syscall completed with `ret`.
    SyscallExit {
        /// Syscall number.
        nr: u64,
        /// Return value (or `-errno`).
        ret: u64,
    },
    /// The process successfully exec'd `path`.
    Exec {
        /// New executable path.
        path: String,
    },
    /// The process forked `child` (already attached if `trace_fork`).
    Fork {
        /// The new child pid.
        child: Pid,
    },
    /// The process exited with `status`.
    Exit {
        /// Exit status (or 128+signal).
        status: i64,
    },
    /// A fatal signal is about to be delivered.
    FatalSignal {
        /// Signal number.
        sig: u64,
    },
}

impl Stop {
    /// Static name of the stop kind (trace-event labels).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Stop::SyscallEnter { .. } => "syscall-enter",
            Stop::SyscallExit { .. } => "syscall-exit",
            Stop::Exec { .. } => "exec",
            Stop::Fork { .. } => "fork",
            Stop::Exit { .. } => "exit",
            Stop::FatalSignal { .. } => "fatal-signal",
        }
    }
}

/// What the tracer wants the kernel to do after a stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracerAction {
    /// Resume normally.
    Continue,
    /// (Syscall-enter only) do not execute the syscall; set `rax = ret` and
    /// continue after the instruction.
    SkipSyscall {
        /// The value to place in `rax`.
        ret: u64,
    },
    /// Detach: no further stops are delivered.
    Detach,
    /// Kill the tracee.
    Kill,
}

/// A host-implemented tracer. Implementations receive `&mut Kernel` so they
/// can issue tracer requests (read/write tracee memory, registers); each
/// request is charged like the syscalls a real tracer would make.
pub trait Tracer {
    /// Handles one stop event for tracee `(pid, tid)`.
    fn on_stop(&mut self, k: &mut Kernel, pid: Pid, tid: Tid, stop: &Stop) -> TracerAction;
}

/// A no-op tracer that counts stops — the "empty interposition function"
/// baseline for ptrace-based interposition.
#[derive(Debug, Default)]
pub struct CountingTracer {
    /// Number of syscall-enter stops observed.
    pub syscall_enters: u64,
    /// Number of syscall-exit stops observed.
    pub syscall_exits: u64,
}

impl Tracer for CountingTracer {
    fn on_stop(&mut self, _k: &mut Kernel, _pid: Pid, _tid: Tid, stop: &Stop) -> TracerAction {
        match stop {
            Stop::SyscallEnter { .. } => self.syscall_enters += 1,
            Stop::SyscallExit { .. } => self.syscall_exits += 1,
            _ => {}
        }
        TracerAction::Continue
    }
}
