//! The kernel: scheduler, trap handling, signal delivery, SUD, ptrace stops,
//! and process lifecycle. Syscall implementations live in the private
//! `sys` module.

use crate::config::{Engine, EngineConfig, FaultSession, ProfSession};
use crate::net::Net;
use crate::nr;
use crate::process::{FdEntry, Pid, Process, SeccompAction, SigAction, Thread, ThreadState, Tid, Wait};
use crate::ptrace_if::{Stop, TraceOpts, Tracer, TracerAction};
use crate::record::{
    inject_passthrough, BoundaryAction, Checkpoint, PageSnap, RecordModeKind, RecordSession,
};
use crate::signal::{self, SigInfo};
use crate::vfs::Vfs;
use sim_cpu::{BlockExit, CostModel, Cpu, HookAction, IcacheMode, Step, StepEvent};
use sim_fault::{FaultKind, FaultPlan, PermFlip};
use sim_record::{Divergence, Rec};
use sim_isa::Reg;
use sim_mem::{AddressSpace, MemMode, Perms, PAGE_SIZE};
use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

/// Folds a run of `count` identical trivial syscalls (`nr_` issued from
/// `site`) into the process statistics — the same updates, in the same
/// order, as `handle_syscall_slow`'s count block, resolved through the
/// same per-`(site, mapping generation)` region memo. Used by the hot
/// slice loop, which batches consecutive identical syscalls and flushes
/// before anything else can observe the stats.
fn flush_syscall_stats(
    stats: &mut crate::process::ProcStats,
    region_cache: &mut sim_cpu::FastMap<u64, (u64, String)>,
    space: &AddressSpace,
    interposer_live: bool,
    nr_: u64,
    site: u64,
    count: u64,
) {
    stats.syscalls += count;
    *stats.per_syscall.entry(nr_).or_insert(0) += count;
    let gen = space.generation();
    if !matches!(region_cache.get(&site), Some((g, _)) if *g == gen) {
        let name = space
            .mapping_at(site)
            .map(|m| m.name.clone())
            .unwrap_or_else(|| "?".to_string());
        region_cache.insert(site, (gen, name));
    }
    let region = &region_cache[&site].1;
    match stats.syscalls_via.get_mut(region.as_str()) {
        Some(c) => *c += count,
        None => {
            stats.syscalls_via.insert(region.clone(), count);
        }
    }
    *stats.per_site.entry(site).or_insert(0) += count;
    if !interposer_live {
        stats.syscalls_before_interposer += count;
    }
}

/// A host function invocable from guest code via an `int3` hostcall site.
pub type HostcallFn = Rc<RefCell<dyn FnMut(&mut Kernel, Pid, Tid)>>;

/// Options passed to the loader at exec time.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecOpts {
    /// Map a vDSO whose fast paths are replaced by real syscalls
    /// (set when an attached tracer requested vDSO disabling, §5.2).
    pub disable_vdso: bool,
    /// Seed for address space layout randomization.
    pub aslr_seed: u64,
}

/// A fully-loaded process image produced by an [`ExecLoader`].
#[derive(Debug, Clone)]
pub struct LoadedImage {
    /// The populated address space.
    pub space: AddressSpace,
    /// Initial instruction pointer (the loader's startup stub).
    pub entry: u64,
    /// Initial stack pointer.
    pub rsp: u64,
    /// Hostcall sites: (registered handler name, guest vaddr of `int3`).
    pub hostcall_sites: Vec<(String, u64)>,
    /// Global symbols: `"region:name"` → vaddr.
    pub symbols: BTreeMap<String, u64>,
    /// Base address of each loaded region (region name → base).
    pub lib_bases: BTreeMap<String, u64>,
    /// Base of the mapped vDSO (0 if absent).
    pub vdso_base: u64,
}

/// Loads executables into address spaces. Implemented by `sim-loader`;
/// defined here so the kernel does not depend on the loader crate.
pub trait ExecLoader {
    /// Builds the image for `path` with the given arguments and environment.
    ///
    /// # Errors
    ///
    /// Returns a negative errno (e.g. `-ENOENT`) on failure.
    fn load(
        &self,
        vfs: &mut Vfs,
        path: &str,
        argv: &[String],
        env: &[String],
        opts: &ExecOpts,
    ) -> Result<LoadedImage, i64>;
}

struct TracerSlot {
    tracer: Rc<RefCell<dyn Tracer>>,
    opts: TraceOpts,
}

/// Why [`Kernel::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// Every process exited.
    AllExited,
    /// Runnable work exists but the cycle budget was exhausted.
    Budget,
    /// No thread can make progress (all blocked with no wake source).
    Deadlock,
    /// The record/replay session halted the run: a [`Kernel::run_to_retired`]
    /// target was reached, a verifying replay found a divergence, or an
    /// injecting replay exhausted its log.
    Stop,
}

/// A pending deferred byte write — models the visibility window of a
/// non-atomic multi-byte code rewrite (pitfall P5).
#[derive(Debug, Clone, Copy)]
struct DeferredWrite {
    due: u64,
    pid: Pid,
    addr: u64,
    byte: u8,
}

/// One record of the instruction-level execution trace (see
/// [`Kernel::start_exec_trace`]): which thread stepped, where, what
/// happened, and the global clock after the step was charged. Used by the
/// determinism regression tests to prove the block-based scheduler fast
/// path is cycle- and event-identical to the stepwise engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Process that executed.
    pub pid: Pid,
    /// Thread that executed.
    pub tid: Tid,
    /// `rip` before the step.
    pub rip: u64,
    /// Global clock after the step's cycles were charged.
    pub clock: u64,
    /// The step's outcome.
    pub event: StepEvent,
}

/// The simulated kernel.
pub struct Kernel {
    /// Cycle cost model.
    pub cost: CostModel,
    /// Global cycle clock.
    pub clock: u64,
    /// The filesystem.
    pub vfs: Vfs,
    /// Loopback networking state.
    pub net: Net,
    /// Scheduler slice, in instructions.
    pub slice: u32,
    procs: BTreeMap<Pid, Process>,
    next_pid: Pid,
    next_tid: Tid,
    tracers: HashMap<Pid, TracerSlot>,
    hostcall_impls: HashMap<String, HostcallFn>,
    hostcall_sites: HashMap<(Pid, u64), String>,
    loader: Option<Rc<dyn ExecLoader>>,
    deferred: Vec<DeferredWrite>,
    /// Optional strace-style log of executed syscalls.
    pub trace_log: Option<Vec<String>>,
    /// Deterministic seed for `getrandom` and ASLR.
    pub seed: u64,
    rng_state: u64,
    /// Cycles consumed attributed per thread (wall-clock estimation for
    /// multi-worker workloads).
    pub thread_cycles: sim_cpu::FastMap<(Pid, Tid), u64>,
    current: Option<(Pid, Tid)>,
    /// Clock deadline of the current [`Kernel::run`] call; the in-slice
    /// direct-path syscall loop checks it so `RunExit::Budget` still
    /// fires at the same granularity as the scheduler loop.
    run_deadline: u64,
    /// Scheduler engine (see [`EngineConfig`]).
    engine: Engine,
    /// Icache policy stamped onto each core at slice entry.
    icache: IcacheMode,
    /// Trace-cache knobs stamped onto each core under [`Engine::Trace`].
    trace_params: sim_cpu::TraceParams,
    /// Memory access mode stamped onto every address space.
    mem_mode: MemMode,
    /// Live fault-injection session, when configured.
    fault: Option<FaultSession>,
    /// Installed interposer stack (composed interposition), when any.
    stack: Option<crate::stack::StackSession>,
    /// Live sampling-profiler session, when configured.
    prof: Option<ProfSession>,
    /// Live record/replay session, when configured.
    record: Option<RecordSession>,
    /// Live coverage-audit session, when configured.
    audit: Option<crate::audit::AuditSession>,
    /// When `Some`, every step is recorded (both scheduler modes).
    exec_trace: Option<Vec<TraceEntry>>,
}

impl Kernel {
    /// A kernel with an empty filesystem and the default cost model.
    pub fn new() -> Kernel {
        Kernel {
            cost: CostModel::DEFAULT,
            clock: 0,
            vfs: Vfs::new(),
            net: Net::default(),
            slice: 64,
            procs: BTreeMap::new(),
            next_pid: 1,
            next_tid: 1,
            tracers: HashMap::new(),
            hostcall_impls: HashMap::new(),
            hostcall_sites: HashMap::new(),
            loader: None,
            deferred: Vec::new(),
            trace_log: None,
            seed: 0x5eed,
            rng_state: 0x5eed,
            thread_cycles: sim_cpu::FastMap::default(),
            current: None,
            run_deadline: u64::MAX,
            engine: Engine::Block,
            icache: IcacheMode::Revalidate,
            trace_params: sim_cpu::TraceParams::default(),
            mem_mode: MemMode::PageRun,
            fault: None,
            stack: None,
            prof: None,
            record: None,
            audit: None,
            exec_trace: None,
        }
    }

    /// Applies a typed engine configuration. The memory mode propagates
    /// to every existing address space; spaces created by later execs
    /// inherit it too. Installing a [`FaultPlan`] resets its session
    /// state (retired counts, occurrence counters), so configuring is
    /// the replay point.
    pub fn configure(&mut self, cfg: EngineConfig) {
        self.engine = cfg.engine;
        self.icache = cfg.icache;
        self.trace_params = cfg.trace;
        self.mem_mode = cfg.mem;
        self.fault = cfg.fault.map(FaultSession::new);
        self.prof = cfg.profile.map(ProfSession::new);
        self.record = cfg.record.map(RecordSession::new);
        self.audit = cfg.audit.map(crate::audit::AuditSession::new);
        if let Some(cap) = cfg.obs_ring_capacity {
            sim_obs::set_ring_capacity(cap);
        }
        // Navigation-grade recording needs written-page tracking for its
        // per-syscall write snapshots and incremental checkpoint deltas.
        let track_dirty = self
            .record
            .as_ref()
            .is_some_and(|rs| rs.mode == RecordModeKind::Record && rs.ckpt_period > 0);
        for p in self.procs.values_mut() {
            p.space.set_mem_mode(cfg.mem);
            if track_dirty {
                p.space.set_dirty_tracking(true);
            }
        }
    }

    /// Retired-instruction count of the profiler session (0 when not
    /// profiling) — the engine-invariant workload size simprof gates on.
    pub fn prof_retired(&self) -> u64 {
        self.prof.as_ref().map_or(0, |p| p.retired)
    }

    /// The active fault-injection plan, if one was configured (replay
    /// and failure reporting).
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref().map(|f| &f.plan)
    }

    /// Starts recording an instruction-level execution trace.
    pub fn start_exec_trace(&mut self) {
        self.exec_trace = Some(Vec::new());
    }

    /// Stops tracing and returns the records collected so far.
    pub fn take_exec_trace(&mut self) -> Vec<TraceEntry> {
        self.exec_trace.take().unwrap_or_default()
    }

    /// Installs the exec loader (done once at startup by `sim-loader`).
    pub fn set_loader(&mut self, loader: Rc<dyn ExecLoader>) {
        self.loader = Some(loader);
    }

    /// Registers a named hostcall implementation. Guest images declare
    /// `__host_*` symbols; at exec, matching sites are wired to these
    /// handlers.
    pub fn register_hostcall(
        &mut self,
        name: &str,
        f: impl FnMut(&mut Kernel, Pid, Tid) + 'static,
    ) {
        self.hostcall_impls
            .insert(name.to_string(), Rc::new(RefCell::new(f)));
    }

    /// Registers a hostcall site manually (outside of exec wiring).
    pub fn bind_hostcall_site(&mut self, pid: Pid, addr: u64, name: &str) {
        self.hostcall_sites.insert((pid, addr), name.to_string());
    }

    // ---- accessors --------------------------------------------------------

    /// The process with `pid`.
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.procs.get(&pid)
    }

    /// The process with `pid`, mutably.
    pub fn process_mut(&mut self, pid: Pid) -> Option<&mut Process> {
        self.procs.get_mut(&pid)
    }

    /// All live pids.
    pub fn pids(&self) -> Vec<Pid> {
        self.procs.keys().copied().collect()
    }

    /// CPU state of `(pid, tid)`, mutably (hostcall/tracer use).
    pub fn cpu_mut(&mut self, pid: Pid, tid: Tid) -> Option<&mut Cpu> {
        self.procs
            .get_mut(&pid)?
            .thread_mut(tid)
            .map(|t| &mut t.cpu)
    }

    /// Charges cycles to the global clock, attributing them to the thread
    /// currently executing (if any).
    pub fn charge(&mut self, cycles: u64) {
        self.clock += cycles;
        if sim_obs::enabled() {
            sim_obs::set_clock(self.clock);
        }
        if let Some(key) = self.current {
            *self.thread_cycles.entry(key).or_insert(0) += cycles;
        }
    }

    /// Cycles attributed to one thread so far.
    pub fn cycles_of(&self, pid: Pid, tid: Tid) -> u64 {
        self.thread_cycles.get(&(pid, tid)).copied().unwrap_or(0)
    }

    /// Deterministic pseudo-random u64 (xorshift) for getrandom/ASLR.
    pub fn next_random(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    // ---- tracer-side (ptrace) operations ----------------------------------

    /// Attaches a tracer to `pid` (PTRACE_ATTACH / PTRACE_TRACEME).
    pub fn attach_tracer(&mut self, pid: Pid, tracer: Rc<RefCell<dyn Tracer>>, opts: TraceOpts) {
        self.tracers.insert(pid, TracerSlot { tracer, opts });
    }

    /// Detaches the tracer from `pid` (PTRACE_DETACH).
    pub fn detach_tracer(&mut self, pid: Pid) {
        self.tracers.remove(&pid);
    }

    /// True if `pid` is currently traced.
    pub fn is_traced(&self, pid: Pid) -> bool {
        self.tracers.contains_key(&pid)
    }

    /// Tracer memory read (charged as one ptrace round trip).
    ///
    /// # Errors
    ///
    /// `Err(())` on unmapped addresses or dead pid (like ptrace's single
    /// `ESRCH`/`EFAULT`-or-nothing contract).
    #[allow(clippy::result_unit_err)]
    pub fn tr_read(&mut self, pid: Pid, addr: u64, len: usize) -> Result<Vec<u8>, ()> {
        let obs = sim_obs::enabled();
        if obs {
            sim_obs::span_enter(self.clock, "ptrace/peek");
        }
        self.charge(self.cost.ptrace_op);
        let res = (|| {
            let p = self.procs.get_mut(&pid).ok_or(())?;
            let mut buf = vec![0u8; len];
            p.space.read_raw(addr, &mut buf).map_err(|_| ())?;
            Ok(buf)
        })();
        if obs {
            sim_obs::span_exit(self.clock);
        }
        res
    }

    /// Tracer memory write (`process_vm_writev`-style; charged).
    ///
    /// # Errors
    ///
    /// `Err(())` on unmapped addresses or dead pid.
    #[allow(clippy::result_unit_err)]
    pub fn tr_write(&mut self, pid: Pid, addr: u64, data: &[u8]) -> Result<(), ()> {
        let obs = sim_obs::enabled();
        if obs {
            sim_obs::span_enter(self.clock, "ptrace/poke");
        }
        self.charge(self.cost.ptrace_op);
        let res = match self.procs.get_mut(&pid) {
            Some(p) => p.space.write_raw(addr, data).map_err(|_| ()),
            None => Err(()),
        };
        if obs {
            sim_obs::span_exit(self.clock);
        }
        res
    }

    /// Tracer register snapshot (PTRACE_GETREGS; charged).
    pub fn tr_getregs(&mut self, pid: Pid, tid: Tid) -> Option<Cpu> {
        let obs = sim_obs::enabled();
        if obs {
            sim_obs::span_enter(self.clock, "ptrace/regs");
        }
        self.charge(self.cost.ptrace_op);
        let res = self.procs.get(&pid).and_then(|p| p.thread(tid)).map(|t| t.cpu.clone());
        if obs {
            sim_obs::span_exit(self.clock);
        }
        res
    }

    /// Tracer register write-back (PTRACE_SETREGS; charged).
    pub fn tr_setregs(&mut self, pid: Pid, tid: Tid, cpu: Cpu) {
        let obs = sim_obs::enabled();
        if obs {
            sim_obs::span_enter(self.clock, "ptrace/regs");
        }
        self.charge(self.cost.ptrace_op);
        if obs {
            sim_obs::span_exit(self.clock);
        }
        if let Some(t) = self.procs.get_mut(&pid).and_then(|p| p.thread_mut(tid)) {
            t.cpu = cpu;
        }
    }

    /// Tracer NUL-terminated string read (charged).
    pub fn tr_read_cstr(&mut self, pid: Pid, addr: u64) -> Option<String> {
        let obs = sim_obs::enabled();
        if obs {
            sim_obs::span_enter(self.clock, "ptrace/peek");
        }
        self.charge(self.cost.ptrace_op);
        let res = self
            .procs
            .get_mut(&pid)
            .and_then(|p| p.space.read_cstr(addr).ok());
        if obs {
            sim_obs::span_exit(self.clock);
        }
        res
    }

    // ---- deferred writes (P5 torn-rewrite modeling) ------------------------

    /// Schedules a single guest byte write to land `delay` cycles from now —
    /// the second half of a non-atomic two-byte rewrite. Until it lands, other
    /// cores can observe (and execute) the torn intermediate state.
    pub fn defer_write_u8(&mut self, pid: Pid, addr: u64, byte: u8, delay: u64) {
        self.deferred.push(DeferredWrite {
            due: self.clock + delay,
            pid,
            addr,
            byte,
        });
    }

    fn flush_due_writes(&mut self) {
        let clock = self.clock;
        let mut rest = Vec::new();
        for w in std::mem::take(&mut self.deferred) {
            if w.due <= clock {
                if let Some(p) = self.procs.get_mut(&w.pid) {
                    let _ = p.space.write_raw(w.addr, &[w.byte]);
                }
            } else {
                rest.push(w);
            }
        }
        self.deferred = rest;
    }

    // ---- process lifecycle -------------------------------------------------

    /// Spawns a new process from `path`, optionally under a tracer attached
    /// *before* the first instruction (the only way to interpose startup
    /// syscalls — paper §5.2).
    ///
    /// # Errors
    ///
    /// Returns `-errno` if the image cannot be loaded.
    pub fn spawn(
        &mut self,
        path: &str,
        argv: &[String],
        env: &[String],
        tracer: Option<(Rc<RefCell<dyn Tracer>>, TraceOpts)>,
    ) -> Result<Pid, i64> {
        let pid = self.next_pid;
        self.next_pid += 1;
        let tid = self.next_tid;
        self.next_tid += 1;
        let proc = Process::new(pid, 0, tid);
        self.procs.insert(pid, proc);
        if let Some((t, opts)) = tracer {
            self.attach_tracer(pid, t, opts);
        }
        match self.exec_into(pid, path, argv.to_vec(), env.to_vec()) {
            Ok(()) => Ok(pid),
            Err(e) => {
                self.procs.remove(&pid);
                self.tracers.remove(&pid);
                Err(e)
            }
        }
    }

    /// Replaces the image of `pid` (the tail of `execve`).
    ///
    /// # Errors
    ///
    /// Returns `-errno` from the loader; the old image is untouched on error.
    pub fn exec_into(
        &mut self,
        pid: Pid,
        path: &str,
        argv: Vec<String>,
        env: Vec<String>,
    ) -> Result<(), i64> {
        let loader = self.loader.clone().ok_or(-nr::ENOENT)?;
        let disable_vdso = self
            .tracers
            .get(&pid)
            .map(|t| t.opts.disable_vdso)
            .unwrap_or(false);
        let aslr_seed = self.next_random();
        let opts = ExecOpts {
            disable_vdso,
            aslr_seed,
        };
        let img = loader.load(&mut self.vfs, path, &argv, &env, &opts)?;
        let exec_mask = self.stack.as_ref().map_or(0, |s| s.exec_mask());

        let (tid, was_live) = {
            let p = self.procs.get_mut(&pid).ok_or(-nr::ENOENT)?;
            let tid = p.threads[0].tid;
            let was_live = p.interposer_live;
            p.exe = path.to_string();
            p.space = img.space;
            p.space.set_mem_mode(self.mem_mode);
            p.threads = vec![Thread::new(tid)];
            p.threads[0].cpu.rip = img.entry;
            p.threads[0].cpu.set(Reg::Rsp, img.rsp);
            p.argv = argv;
            p.env = env;
            p.sigactions.clear();
            p.interposer_live = false;
            p.vdso_enabled = !disable_vdso;
            p.vdso_base = img.vdso_base;
            p.symbols = img.symbols;
            p.lib_bases = img.lib_bases;
            p.symcache = None;
            // Stack layers survive exec only if they opted in, and the
            // chain-site resolution is stale either way (the new image may
            // not even carry the base's handler library — the P1a
            // env-clearing gap then leaves the chain inert).
            p.stack_mask &= exec_mask;
            p.chain_sites = None;
            (tid, was_live)
        };
        if let Some(a) = self.audit.as_mut() {
            // P1a: a covered image exec'd away; bypasses now classify as
            // the post-exec gap until the mechanism re-marks itself live.
            a.note_exec(pid, was_live);
        }

        self.hostcall_sites.retain(|(p, _), _| *p != pid);
        for (name, addr) in img.hostcall_sites {
            self.hostcall_sites.insert((pid, addr), name);
        }

        // PTRACE_EVENT_EXEC
        self.tracer_stop(
            pid,
            tid,
            Stop::Exec {
                path: path.to_string(),
            },
            |o| o.trace_exec,
        );
        Ok(())
    }

    // ---- interposer stacks -----------------------------------------------

    /// Installs a composed interposer stack. At most one stack is live per
    /// kernel (it shares the single underlying mechanism slot); installing
    /// replaces any previous session. Processes opt in via
    /// [`Kernel::bind_stack`]; membership then propagates across
    /// fork/execve per the layers' propagation flags.
    pub fn install_stack(&mut self, session: crate::stack::StackSession) {
        self.stack = Some(session);
    }

    /// Removes the installed stack (existing masks become inert).
    pub fn clear_stack(&mut self) {
        self.stack = None;
    }

    /// The installed stack session, if any.
    pub fn stack(&self) -> Option<&crate::stack::StackSession> {
        self.stack.as_ref()
    }

    /// Activates every layer of the installed stack for `pid` (called by
    /// the stack's spawn path, once the base mechanism spawned the
    /// process).
    pub fn bind_stack(&mut self, pid: Pid) {
        let mask = self.stack.as_ref().map_or(0, |s| s.full_mask());
        if let Some(p) = self.procs.get_mut(&pid) {
            p.stack_mask = mask;
        }
    }

    /// True when the chain must intercept this dispatch: a stack is
    /// installed, `pid` has active layers, and `site` passes the
    /// session's filter (resolving and caching the base's forwarding
    /// sites against the process symbol table on first use per image).
    fn chain_applies(&mut self, pid: Pid, site: u64) -> bool {
        let Some(sess) = self.stack.as_ref() else {
            return false;
        };
        if sess.layers.is_empty() {
            return false;
        }
        let filter = sess.filter.clone();
        let Some(p) = self.procs.get_mut(&pid) else {
            return false;
        };
        if p.stack_mask == 0 {
            return false;
        }
        match filter {
            crate::stack::ChainFilter::All => true,
            crate::stack::ChainFilter::Sites(syms) => {
                let key = p.symbols.len();
                if p.chain_sites.as_ref().map(|(k2, _)| *k2) != Some(key) {
                    let mut v: Vec<u64> =
                        syms.iter().filter_map(|s| p.symbols.get(s).copied()).collect();
                    v.sort_unstable();
                    v.dedup();
                    p.chain_sites = Some((key, v));
                }
                p.chain_sites
                    .as_ref()
                    .is_some_and(|(_, v)| v.binary_search(&site).is_ok())
            }
        }
    }

    /// Routes one syscall through the layer chain (see `stack.rs` for the
    /// dispatch contract) and applies whatever the chain's top produced.
    fn chain_dispatch(&mut self, mut ctx: crate::stack::SyscallCtx, injected: Option<FaultKind>, obs: bool) {
        use crate::stack::{Chain, RealOutcome, SysResult};
        let crate::stack::SyscallCtx { pid, tid, nr: nr_, site, .. } = ctx;
        let (layers, order) = {
            let sess = self.stack.as_ref().expect("chain_applies checked");
            let mask = self.procs.get(&pid).map_or(0, |p| p.stack_mask);
            let order: Vec<usize> = (0..sess.layers.len())
                .filter(|i| mask & (1u64 << i) != 0)
                .collect();
            (sess.layers.clone(), order)
        };
        if let Some(a) = self.audit.as_mut() {
            // Per-layer coverage: layers a fork/exec propagation flag
            // stripped from this process show up as `chained` minus their
            // own hit count.
            let names: Vec<String> =
                order.iter().map(|&i| layers[i].name.clone()).collect();
            a.note_chain(pid, &names);
        }
        let mut chain = Chain::new(layers, order, injected, obs);
        let fin = chain.call_next(self, &mut ctx);
        match (chain.real_outcome(), fin) {
            (Some(RealOutcome::Sigreturn), SysResult::Value(_)) => {
                // The composition hazard (nested sigreturn × chained
                // handlers): a layer marshalled "the return value" of a
                // control transfer, so its epilogue runs on the frame the
                // sigreturn below it already abandoned. On hardware the
                // stale return address faults; modeled as a deterministic
                // SIGSEGV kill.
                self.kill_process(pid, 128 + nr::SIGSEGV as i64);
            }
            (Some(RealOutcome::Ret(v)), SysResult::Value(w)) if w != v => {
                // A layer rewrote the result on the way out.
                if let Some(t) = self.procs.get_mut(&pid).and_then(|p| p.thread_mut(tid)) {
                    t.cpu.set(Reg::Rax, w);
                }
            }
            (None, SysResult::Value(w)) => {
                // Short-circuit: no layer dispatched. Skip-syscall
                // semantics, like a tracer's SkipSyscall.
                if let Some(t) = self.procs.get_mut(&pid).and_then(|p| p.thread_mut(tid)) {
                    t.cpu.rip = site + 2;
                    t.cpu.set(Reg::Rax, w);
                    t.cpu.apply_syscall_clobbers(site + 2);
                }
                if obs {
                    sim_obs::syscall_exit(self.clock, nr_, w, nr::syscall_name(nr_));
                }
            }
            (None, SysResult::Control) => {
                // Contract violation: no layer dispatched and none
                // produced a value. Fall back to the real dispatch so the
                // guest makes forward progress.
                chain.call_real(self, &mut ctx);
            }
            _ => {}
        }
    }

    /// Marks a process's interposer as live (called by interposer init paths;
    /// feeds the P2b "syscalls before interposition" metric).
    pub fn mark_interposer_live(&mut self, pid: Pid) {
        if let Some(p) = self.procs.get_mut(&pid) {
            p.interposer_live = true;
        }
        if let Some(a) = self.audit.as_mut() {
            a.note_live(pid);
        }
    }

    /// The live audit session, if auditing was configured.
    pub fn audit_session(&self) -> Option<&crate::audit::AuditSession> {
        self.audit.as_ref()
    }

    /// The coverage ledger with vDSO shadows folded in (vDSO calls never
    /// reach the dispatch choke point, so they are merged from each
    /// process's architectural `vdso_calls` counter at report time).
    pub fn audit_ledger(&self) -> Option<crate::audit::AuditLedger> {
        let session = self.audit.as_ref()?;
        let mut ledger = session.ledger.clone();
        for (pid, p) in &self.procs {
            crate::audit::AuditSession::fold_vdso(&mut ledger, *pid, p.stats.vdso_calls);
        }
        Some(ledger)
    }

    /// Terminates a whole process with `status`.
    pub fn kill_process(&mut self, pid: Pid, status: i64) {
        let ppid_chans_ports = {
            let Some(p) = self.procs.get_mut(&pid) else {
                return;
            };
            if p.exit_status.is_some() {
                return;
            }
            p.exit_status = Some(status);
            for t in &mut p.threads {
                t.state = ThreadState::Exited;
            }
            let chans: Vec<(usize, crate::net::End)> = p
                .fds
                .values()
                .filter_map(|fd| match fd {
                    FdEntry::ChannelRead { chan, end }
                    | FdEntry::ChannelWrite { chan, end }
                    | FdEntry::Socket { chan, end } => Some((*chan, *end)),
                    _ => None,
                })
                .collect();
            let ports: Vec<u16> = p
                .fds
                .values()
                .filter_map(|fd| match fd {
                    FdEntry::Listener { port } => Some(*port),
                    _ => None,
                })
                .collect();
            p.fds.clear();
            (p.ppid, chans, ports)
        };
        let (ppid, chans, ports) = (ppid_chans_ports.0, ppid_chans_ports.1, ppid_chans_ports.2);
        if let Some(rs) = self.record.as_mut() {
            let retired = rs.retired;
            rs.emit(Rec::Exit {
                retired,
                pid,
                status: status as u64,
            });
        }
        for port in ports {
            if let Some(l) = self.net.listeners.get_mut(&port) {
                l.refs = l.refs.saturating_sub(1);
                if l.refs == 0 {
                    self.net.listeners.remove(&port);
                    // Parked connectors retry and observe ECONNREFUSED.
                    self.wake_backlog(port);
                    self.wake_accept(port);
                }
            }
        }
        for (chan, end) in chans {
            self.net.drop_ref(chan, end);
            self.wake_channel(chan);
        }
        if let Some(parent) = self.procs.get_mut(&ppid) {
            parent.zombies.push((pid, status));
            parent.children.retain(|c| *c != pid);
        }
        self.wake_child_waiters(ppid);
        let tid = self
            .procs
            .get(&pid)
            .map(|p| p.threads[0].tid)
            .unwrap_or(0);
        self.tracer_stop(pid, tid, Stop::Exit { status }, |_| true);
        self.tracers.remove(&pid);
    }

    // ---- wakeups -----------------------------------------------------------

    fn wake_where(&mut self, mut pred: impl FnMut(Pid, &Wait) -> bool) {
        for (pid, p) in self.procs.iter_mut() {
            for t in &mut p.threads {
                if let ThreadState::Blocked(w) = t.state {
                    if pred(*pid, &w) {
                        t.state = ThreadState::Runnable;
                    }
                }
            }
        }
    }

    /// Wakes threads blocked on `chan` (readers and bounded-buffer writers),
    /// plus every `epoll_wait` parker: readiness on the channel may satisfy
    /// an interest set, and parked epoll waiters deterministically recompute
    /// and re-block when it doesn't (cheap spurious wakeups instead of
    /// kernel-side waiter bookkeeping).
    pub fn wake_channel(&mut self, chan: usize) {
        self.wake_where(|_, w| {
            matches!(w,
                Wait::ChannelReadable { chan: c, .. } | Wait::ChannelWritable { chan: c, .. }
                    if *c == chan)
                || matches!(w, Wait::Epoll)
        });
    }

    /// Wakes threads blocked accepting on `port` (and epoll waiters, for
    /// listeners registered in an interest set).
    pub fn wake_accept(&mut self, port: u16) {
        self.wake_where(|_, w| {
            matches!(w, Wait::Accept { port: p } if *p == port) || matches!(w, Wait::Epoll)
        });
    }

    /// Wakes connectors parked on a full accept backlog for `port`.
    pub fn wake_backlog(&mut self, port: u16) {
        self.wake_where(|_, w| matches!(w, Wait::Backlog { port: p } if *p == port));
    }

    /// Wakes every thread parked in `epoll_wait` (readiness recompute).
    pub fn wake_epoll_waiters(&mut self) {
        self.wake_where(|_, w| matches!(w, Wait::Epoll));
    }

    /// Wakes readers of eventfd `id` (ids are per-process, but cross-process
    /// collisions only cause a harmless deterministic recompute) and epoll
    /// waiters.
    pub fn wake_eventfd(&mut self, id: usize) {
        self.wake_where(|_, w| {
            matches!(w, Wait::EventFd { id: i } if *i == id) || matches!(w, Wait::Epoll)
        });
    }

    /// Wakes `wait4` blockers in process `ppid`.
    pub fn wake_child_waiters(&mut self, ppid: Pid) {
        self.wake_where(|pid, w| pid == ppid && matches!(w, Wait::Child));
    }

    /// Wakes up to `max` futex waiters in `pid` on `addr`; returns the count.
    pub fn wake_futex(&mut self, pid: Pid, addr: u64, max: u64) -> u64 {
        let mut woken = 0;
        if let Some(p) = self.procs.get_mut(&pid) {
            for t in &mut p.threads {
                if woken >= max {
                    break;
                }
                if let ThreadState::Blocked(Wait::Futex { addr: a }) = t.state {
                    if a == addr {
                        t.state = ThreadState::Runnable;
                        woken += 1;
                    }
                }
            }
        }
        woken
    }

    // ---- tracer stop plumbing ----------------------------------------------

    /// Delivers `stop` to the tracer of `pid` if its options match; returns
    /// the action (Continue when untraced). Charges two context switches —
    /// the fundamental ptrace cost (paper §2.1).
    fn tracer_stop(
        &mut self,
        pid: Pid,
        tid: Tid,
        stop: Stop,
        want: impl Fn(&TraceOpts) -> bool,
    ) -> TracerAction {
        let Some(slot) = self.tracers.get(&pid) else {
            return TracerAction::Continue;
        };
        if !want(&slot.opts) {
            return TracerAction::Continue;
        }
        let tracer = slot.tracer.clone();
        let obs = sim_obs::enabled();
        if obs {
            // Whole round-trip span: switch-out, tracer work (nesting its
            // own peek/poke/regs spans), switch back in.
            sim_obs::span_enter(self.clock, &format!("ptrace/stop-{}", stop.kind_name()));
        }
        self.charge(2 * self.cost.context_switch);
        if obs {
            sim_obs::tracer_stop(self.clock, stop.kind_name());
        }
        let action = tracer.borrow_mut().on_stop(self, pid, tid, &stop);
        if obs {
            sim_obs::span_exit(self.clock);
        }
        match action {
            TracerAction::Detach => {
                self.tracers.remove(&pid);
            }
            TracerAction::Kill => {
                self.kill_process(pid, 137);
            }
            _ => {}
        }
        action
    }

    /// Lets host code (interposer frameworks) deliver a synthetic tracer
    /// attach for a child pid (used for TRACEFORK wiring).
    fn maybe_trace_fork(&mut self, parent: Pid, child: Pid, tid: Tid) {
        let Some(slot) = self.tracers.get(&parent) else {
            return;
        };
        if !slot.opts.trace_fork {
            return;
        }
        let (tracer, opts) = (slot.tracer.clone(), slot.opts);
        self.tracers.insert(
            child,
            TracerSlot {
                tracer: tracer.clone(),
                opts,
            },
        );
        self.tracer_stop(parent, tid, Stop::Fork { child }, |o| o.trace_fork);
    }

    // ---- signal delivery ----------------------------------------------------

    /// Delivers `sig` to `(pid, tid)`: pushes a frame and redirects to the
    /// registered handler, or applies the default action (kill).
    pub fn deliver_signal(&mut self, pid: Pid, tid: Tid, info: SigInfo) {
        let cost_sig = self.cost.signal_delivery;
        let Some(p) = self.procs.get_mut(&pid) else {
            return;
        };
        // While a handler registered with SIGACT_MASK_ALL runs,
        // asynchronous signals queue until sigreturn. Synchronous faults
        // (SIGSEGV) and SUD's SIGSYS must deliver immediately: deferring
        // them would decouple them from the instruction that caused them.
        if info.signo != nr::SIGSEGV && info.signo != nr::SIGSYS {
            if let Some(t) = p.thread_mut(tid) {
                if t.frame_masked.iter().any(|m| *m) {
                    t.pending_signals.push(info);
                    return;
                }
            }
        }
        p.stats.signals += 1;
        let Some(SigAction { handler, mask_all }) = p.sigactions.get(&info.signo).copied() else {
            // Default action: terminate.
            let status = 128 + info.signo as i64;
            self.tracer_stop(pid, tid, Stop::FatalSignal { sig: info.signo }, |_| true);
            self.kill_process(pid, status);
            return;
        };
        self.charge(cost_sig);
        let p = self.procs.get_mut(&pid).expect("proc vanished");
        let Process { space, threads, .. } = p;
        let Some(t) = threads.iter_mut().find(|t| t.tid == tid) else {
            return;
        };
        // Signal delivery serializes the core (coalesced when nothing was
        // written since the last serialization point).
        t.cpu.serialize(space);
        let rsp = t.cpu.get(Reg::Rsp);
        let base = (rsp - signal::FRAME_SIZE) & !15;
        let mut frame = vec![0u8; signal::FRAME_SIZE as usize];
        frame[0..8].copy_from_slice(&t.cpu.rip.to_le_bytes());
        frame[8..16].copy_from_slice(&t.cpu.packed_flags().to_le_bytes());
        frame[16..24].copy_from_slice(&(t.cpu.pkru.0 as u64).to_le_bytes());
        for (i, v) in t.cpu.regs.iter().enumerate() {
            let at = (signal::UC_REGS as usize) + 8 * i;
            frame[at..at + 8].copy_from_slice(&v.to_le_bytes());
        }
        frame[signal::SI_SIGNO as usize..signal::SI_SIGNO as usize + 8]
            .copy_from_slice(&info.signo.to_le_bytes());
        frame[signal::SI_SYSCALL as usize..signal::SI_SYSCALL as usize + 8]
            .copy_from_slice(&info.syscall.to_le_bytes());
        frame[signal::SI_CALL_ADDR as usize..signal::SI_CALL_ADDR as usize + 8]
            .copy_from_slice(&info.call_addr.to_le_bytes());
        frame[signal::SI_FAULT_ADDR as usize..signal::SI_FAULT_ADDR as usize + 8]
            .copy_from_slice(&info.fault_addr.to_le_bytes());
        if space.write_raw(base, &frame).is_err() {
            // Unwritable stack: fatal.
            self.kill_process(pid, 128 + nr::SIGSEGV as i64);
            return;
        }
        let t = self
            .procs
            .get_mut(&pid)
            .and_then(|p| p.thread_mut(tid))
            .expect("thread vanished");
        t.sig_frames.push(base);
        t.frame_masked.push(mask_all);
        t.cpu.set(Reg::Rsp, base);
        t.cpu.set(Reg::Rdi, info.signo);
        t.cpu.set(Reg::Rsi, base + signal::SI_SIGNO);
        t.cpu.set(Reg::Rdx, base);
        t.cpu.rip = handler;
    }

    // ---- the run loop --------------------------------------------------------

    /// Runs until every process exits, no progress is possible, or
    /// `max_cycles` have elapsed.
    pub fn run(&mut self, max_cycles: u64) -> RunExit {
        let deadline = self.clock.saturating_add(max_cycles);
        self.run_deadline = deadline;
        // The runnable list is rebuilt every scheduler round (i.e. after
        // every slice-ending event, so typically once per syscall); reuse
        // one buffer across rounds to keep the round allocation-free.
        let mut runnable: Vec<(Pid, Tid)> = Vec::new();
        loop {
            if self.record_stopped() {
                return RunExit::Stop;
            }
            self.flush_due_writes();
            runnable.clear();
            for (pid, p) in &self.procs {
                for t in &p.threads {
                    if t.state == ThreadState::Runnable {
                        runnable.push((*pid, t.tid));
                    }
                }
            }
            if runnable.is_empty() {
                // Advance time to the next sleeper or deferred write.
                let next_sleep = self
                    .procs
                    .values()
                    .flat_map(|p| p.threads.iter())
                    .filter_map(|t| match t.state {
                        ThreadState::Blocked(Wait::Sleep { until }) => Some(until),
                        _ => None,
                    })
                    .min();
                let next_write = self.deferred.iter().map(|w| w.due).min();
                match (next_sleep, next_write) {
                    (None, None) => {
                        return if self.procs.values().all(|p| p.exit_status.is_some()) {
                            RunExit::AllExited
                        } else {
                            RunExit::Deadlock
                        };
                    }
                    (a, b) => {
                        let due = a.unwrap_or(u64::MAX).min(b.unwrap_or(u64::MAX));
                        self.clock = self.clock.max(due);
                        self.wake_where(|_, w| matches!(w, Wait::Sleep { until } if *until <= due));
                        continue;
                    }
                }
            }
            // Adversarial scheduler perturbation: rotate the fair runnable
            // order by a seed-derived amount on plan-chosen rounds. The
            // round number is architectural (one per rebuild), so both
            // engines rotate identically.
            let rotated = if let Some(fs) = self.fault.as_mut() {
                fs.round += 1;
                let rot = fs.plan.sched_rotation(fs.round, runnable.len());
                if rot > 0 {
                    runnable.rotate_left(rot);
                    Some((fs.round, rot as u64, runnable.len() as u64))
                } else {
                    None
                }
            } else {
                None
            };
            // A real scheduler perturbation is nondeterminism worth a log
            // record; unperturbed rounds are derived state and recording
            // them would dwarf the log (one round per syscall).
            if let Some((round, rot, n)) = rotated {
                if let Some(rs) = self.record.as_mut() {
                    rs.sched_rounds += 1;
                    let retired = rs.retired;
                    rs.emit(Rec::Sched {
                        retired,
                        round,
                        rot,
                        n,
                    });
                }
            }
            for &(pid, tid) in &runnable {
                self.run_slice(pid, tid);
                if self.record_stopped() {
                    return RunExit::Stop;
                }
                if self.clock >= deadline {
                    return RunExit::Budget;
                }
            }
        }
    }

    /// The slice budget for `tid` this round: the configured slice, or
    /// the fault plan's adversarial preemption cap when one is active.
    fn effective_slice(&self, tid: Tid) -> u64 {
        let base = self.slice as u64;
        match &self.fault {
            Some(fs) => match fs.plan.slice_cap(fs.round, tid) {
                Some(cap) => cap.min(base),
                None => base,
            },
            None => base,
        }
    }

    /// True if a fault boundary (signal injection, permission flip, or
    /// scheduled restore) is due at the current retired count.
    fn fault_boundary_due(&self) -> bool {
        self.fault.as_ref().is_some_and(FaultSession::due)
    }

    /// Caps an execution budget so the engine stops exactly at the next
    /// fault boundary — both engines then observe it at the identical
    /// architectural instruction.
    fn fault_capped(&self, budget: u64) -> u64 {
        match &self.fault {
            Some(fs) => match fs.next_stop() {
                Some(s) => budget.min(s.saturating_sub(fs.retired).max(1)),
                None => budget,
            },
            None => budget,
        }
    }

    /// Credits retired instructions to the fault session.
    fn fault_retire(&mut self, steps: u64) {
        if let Some(fs) = self.fault.as_mut() {
            fs.retired += steps;
        }
    }

    /// Caps an execution budget so the engine stops exactly at the next
    /// profiler sample boundary; both engines then sample at the
    /// identical architectural instruction. No-op when not profiling, so
    /// block execution is untouched in ordinary runs.
    fn prof_capped(&self, budget: u64) -> u64 {
        match &self.prof {
            Some(ps) => budget.min(ps.next.saturating_sub(ps.retired).max(1)),
            None => budget,
        }
    }

    /// Credits retired instructions to the profiler session and takes a
    /// sample when a boundary is reached. Sampling reads guest state but
    /// never writes it and charges no cycles: the profiled run's clock
    /// stream is identical to the unprofiled one.
    fn prof_retire_and_sample(&mut self, pid: Pid, tid: Tid, steps: u64) {
        let Some(ps) = self.prof.as_mut() else {
            return;
        };
        ps.retired += steps;
        let mut due = false;
        while ps.due() {
            ps.next += ps.period;
            due = true;
        }
        if due && sim_obs::enabled() {
            self.take_prof_sample(pid, tid);
        }
    }

    /// Captures one profiler sample: the post-step RIP plus a
    /// conservative return-address scan of the guest stack, symbolized
    /// against the process's image maps.
    fn take_prof_sample(&mut self, pid: Pid, tid: Tid) {
        let clock = self.clock;
        let frames = self.symbolized_stack(pid, tid);
        if frames.is_empty() {
            return;
        }
        sim_obs::profile_sample(clock, &frames);
    }

    /// The symbolized guest stack of `(pid, tid)`: the current RIP plus a
    /// conservative return-address scan (values in the first
    /// [`Self::PROF_SCAN_SLOTS`] stack slots that point into executable
    /// mappings), resolved through the process's symbol cache. Shared by
    /// the sampling profiler and the replay divergence reporter; reads
    /// guest state but never writes it and charges no cycles. Empty when
    /// the thread is gone.
    pub fn symbolized_stack(&mut self, pid: Pid, tid: Tid) -> Vec<String> {
        const MAX_FRAMES: usize = 16;
        let Some(p) = self.procs.get_mut(&pid) else {
            return Vec::new();
        };
        let Some((rip, rsp)) = p
            .threads
            .iter()
            .find(|t| t.tid == tid)
            .map(|t| (t.cpu.rip, t.cpu.get(Reg::Rsp)))
        else {
            return Vec::new();
        };
        let mut addrs = vec![rip];
        for i in 0..Self::PROF_SCAN_SLOTS {
            if addrs.len() >= MAX_FRAMES {
                break;
            }
            let Some(at) = rsp.checked_add(8 * i) else {
                break;
            };
            let mut b = [0u8; 8];
            if p.space.read_raw(at, &mut b).is_err() {
                break;
            }
            let v = u64::from_le_bytes(b);
            if v != 0 && p.space.mapping_at(v).is_some_and(|m| m.perms.executable()) {
                addrs.push(v);
            }
        }
        p.symbolize_frames(&addrs)
    }

    /// Stack slots scanned per sample by the return-address walker.
    const PROF_SCAN_SLOTS: u64 = 64;

    // ---- record/replay session plumbing ------------------------------------

    /// True if a record-session boundary (stop target, checkpoint, or
    /// inject-mode asynchrony) is due at the current retired count.
    fn record_boundary_due(&self) -> bool {
        self.record.as_ref().is_some_and(|rs| {
            rs.stopped
                || rs.stop_at.is_some_and(|s| s <= rs.retired)
                || rs.next_ckpt.is_some_and(|n| n <= rs.retired)
                || rs.next_boundary().is_some_and(|b| b <= rs.retired)
        })
    }

    /// Caps an execution budget so the engine stops exactly at the next
    /// record-session boundary — like [`Kernel::fault_capped`], this puts
    /// checkpoints, stop targets, and injected asynchrony at identical
    /// architectural instructions under every engine.
    fn record_capped(&self, budget: u64) -> u64 {
        let Some(rs) = self.record.as_ref() else {
            return budget;
        };
        let mut b = budget;
        for stop in [rs.stop_at, rs.next_ckpt, rs.next_boundary()]
            .into_iter()
            .flatten()
        {
            b = b.min(stop.saturating_sub(rs.retired).max(1));
        }
        b
    }

    /// Credits retired instructions to the record session.
    fn record_retire(&mut self, steps: u64) {
        if let Some(rs) = self.record.as_mut() {
            rs.retired += steps;
        }
    }

    /// True when the record session halted the run.
    fn record_stopped(&self) -> bool {
        self.record.as_ref().is_some_and(|rs| rs.stopped)
    }

    /// Records (or verifies) one produced record.
    fn record_emit(&mut self, rec: Rec) {
        if let Some(rs) = self.record.as_mut() {
            rs.emit(rec);
        }
    }

    /// Handles a due record-session boundary. Checkpoints are taken
    /// without ending the slice (a slice end would advance the fault
    /// session's round counter, making a checkpointed recording diverge
    /// from its checkpoint-free replay); stop targets and injected
    /// asynchrony end the slice, mirroring [`Kernel::apply_fault_boundary`].
    /// Returns `true` when the slice must end.
    fn apply_record_boundary(&mut self, pid: Pid, tid: Tid) -> bool {
        let due_ckpt = self.record.as_ref().is_some_and(|rs| {
            rs.mode == RecordModeKind::Record && rs.next_ckpt.is_some_and(|n| n <= rs.retired)
        });
        if due_ckpt {
            self.take_record_checkpoint();
        }
        let mut due_actions: Vec<BoundaryAction> = Vec::new();
        {
            let Some(rs) = self.record.as_mut() else {
                return false;
            };
            if rs.stopped {
                return true;
            }
            if rs.stop_at.is_some_and(|s| s <= rs.retired) {
                rs.stopped = true;
                return true;
            }
            while rs.bcursor < rs.boundaries.len() && rs.boundaries[rs.bcursor].0 <= rs.retired {
                due_actions.push(rs.boundaries[rs.bcursor].1);
                rs.bcursor += 1;
            }
        }
        for act in &due_actions {
            match *act {
                BoundaryAction::Signal { signo, delivered } => {
                    // `delivered: false` recorded a skipped injection (no
                    // handler); re-skipping reproduces it.
                    if delivered {
                        self.deliver_signal(
                            pid,
                            tid,
                            SigInfo {
                                signo,
                                ..SigInfo::default()
                            },
                        );
                    }
                }
                BoundaryAction::Flip { page, perms } => {
                    let base = page & !(PAGE_SIZE - 1);
                    if let Some(p) = self.procs.get_mut(&pid) {
                        let _ = p.space.protect(base, PAGE_SIZE, Perms::from_bits(perms));
                        let Process { space, threads, .. } = p;
                        if let Some(t) = threads.iter_mut().find(|t| t.tid == tid) {
                            t.cpu.serialize(space);
                        }
                    }
                }
            }
        }
        !due_actions.is_empty()
    }

    /// Record bookkeeping at kernel entry: stamps the clock the recorded
    /// service cycles are measured from (skipped for in-kernel restarts,
    /// which resume the original entry) and, for navigation-grade
    /// recording, drains guest-execution dirty pages into the pending
    /// checkpoint delta so the post-dispatch drain isolates the pages the
    /// syscall itself writes.
    fn record_syscall_entry(&mut self, pid: Pid, tid: Tid, restarting: bool) {
        let clock = self.clock;
        let Some(rs) = self.record.as_mut() else {
            return;
        };
        if !restarting {
            rs.entry_clock.insert((pid, tid), clock);
        }
        if rs.mode == RecordModeKind::Record && rs.ckpt_period > 0 {
            if let Some(p) = self.procs.get_mut(&pid) {
                rs.pending_pages.extend(p.space.take_dirty_pages());
            }
        }
    }

    /// Record bookkeeping at syscall completion (`Disp::Ret` /
    /// `RetThenBlock`): captures (record), verifies (verify), or consumes
    /// (inject passthrough) the completion record. Recorded cycles are
    /// the clock delta from kernel entry — for restarted calls that
    /// includes blocked time, which is exactly what injection must charge
    /// since the blocking never re-occurs. Navigation-grade recording
    /// additionally snapshots the pages the syscall wrote.
    fn record_syscall_ret(&mut self, pid: Pid, tid: Tid, nr_: u64, site: u64, ret: u64) {
        let clock = self.clock;
        let Some(rs) = self.record.as_mut() else {
            return;
        };
        match rs.mode {
            RecordModeKind::Inject => {
                // Passthrough completion: consume the matching record so
                // the cursor stays aligned with injected syscalls.
                let _ = rs.take_syscall();
            }
            RecordModeKind::Record | RecordModeKind::Verify => {
                let entry = rs.entry_clock.remove(&(pid, tid)).unwrap_or(clock);
                let cycles = clock.saturating_sub(entry);
                let retired = rs.retired;
                let nav = rs.mode == RecordModeKind::Record && rs.ckpt_period > 0;
                let mut writes: Vec<(u64, Vec<u8>)> = Vec::new();
                if nav {
                    if let Some(p) = self.procs.get_mut(&pid) {
                        for base in p.space.take_dirty_pages() {
                            if !inject_passthrough(nr_) {
                                if let Some((_, _, data)) = p.space.snapshot_page(base) {
                                    writes.push((base, data));
                                }
                            }
                            rs.pending_pages.push(base);
                        }
                    }
                }
                rs.emit(Rec::Syscall {
                    retired,
                    nr: nr_,
                    site,
                    ret,
                    cycles,
                    writes,
                });
            }
        }
    }

    /// Takes one periodic navigation checkpoint: register files, signal
    /// dispositions, seccomp state, and the pages dirtied since the
    /// previous checkpoint. Invariant (DESIGN.md §11): the chain only
    /// reconstructs a *single-process* run whose address space still
    /// carries the dirty tracking enabled at configure time — fork and
    /// exec permanently break the chain, and navigation then replays from
    /// the start instead.
    fn take_record_checkpoint(&mut self) {
        let clock = self.clock;
        let single = self.procs.len() == 1;
        let Some(rs) = self.record.as_mut() else {
            return;
        };
        let retired = rs.retired;
        while let Some(n) = rs.next_ckpt {
            if n <= retired {
                rs.next_ckpt = Some(n + rs.ckpt_period);
            } else {
                break;
            }
        }
        if !rs.chain_ok {
            return;
        }
        if !single {
            rs.chain_ok = false;
            return;
        }
        let p = self.procs.values_mut().next().expect("single process");
        if p.exit_status.is_some() {
            return;
        }
        if !p.space.dirty_tracking() {
            // execve replaced the space; the delta baseline is gone.
            rs.chain_ok = false;
            return;
        }
        let mut bases: std::collections::BTreeSet<u64> = rs.pending_pages.drain(..).collect();
        bases.extend(p.space.take_dirty_pages());
        let pages: Vec<PageSnap> = bases
            .into_iter()
            .filter_map(|base| {
                p.space.snapshot_page(base).map(|(perms, pkey, data)| PageSnap {
                    base,
                    perms: perms.bits(),
                    pkey,
                    data,
                })
            })
            .collect();
        rs.checkpoints.push(Checkpoint {
            retired,
            clock,
            cursor: rs.recs.len(),
            pid: p.pid,
            threads: p.threads.clone(),
            sigactions: p.sigactions.clone(),
            seccomp: p.seccomp.clone(),
            interposer_live: p.interposer_live,
            pages,
        });
    }

    /// Restores the process state captured by `chain[..=idx]` onto this
    /// kernel, which must hold the same deterministically re-booted
    /// process the chain was recorded from. Page snapshots of every
    /// checkpoint in the prefix are applied in order (later deltas win),
    /// then the last checkpoint's thread/signal/seccomp state. CPU caches
    /// are reset — clock-invisible, since the cost model charges per
    /// instruction regardless of decode-cache state — and the record
    /// session's retired/log coordinates are aligned to the boundary.
    ///
    /// # Errors
    ///
    /// A human-readable reason when the chain cannot reconstruct the
    /// state (missing process, cross-process chain, or a snapshot page
    /// that no longer maps — e.g. recorded after a runtime `mmap`). The
    /// caller falls back to replaying from the start.
    pub fn restore_to_checkpoint(&mut self, chain: &[Checkpoint], idx: usize) -> Result<(), String> {
        let ckpt = chain.get(idx).ok_or("checkpoint index out of range")?;
        let pid = ckpt.pid;
        {
            let p = self
                .procs
                .get_mut(&pid)
                .ok_or("checkpointed process is not booted")?;
            for c in chain.iter().take(idx + 1) {
                if c.pid != pid {
                    return Err("checkpoint chain crosses processes".to_string());
                }
                for ps in &c.pages {
                    p.space
                        .write_raw(ps.base, &ps.data)
                        .map_err(|_| format!("page {:#x} is not mapped at restore time", ps.base))?;
                    p.space
                        .protect(ps.base, PAGE_SIZE, Perms::from_bits(ps.perms))
                        .map_err(|_| format!("page {:#x} rejects protection restore", ps.base))?;
                    p.space
                        .set_pkey(ps.base, PAGE_SIZE, ps.pkey)
                        .map_err(|_| format!("page {:#x} rejects pkey restore", ps.base))?;
                }
            }
            p.threads = ckpt.threads.clone();
            p.sigactions = ckpt.sigactions.clone();
            p.seccomp = ckpt.seccomp.clone();
            p.interposer_live = ckpt.interposer_live;
            for t in &mut p.threads {
                t.cpu.reset_caches();
            }
        }
        self.clock = ckpt.clock;
        if sim_obs::enabled() {
            sim_obs::set_clock(self.clock);
        }
        if let Some(rs) = self.record.as_mut() {
            rs.retired = ckpt.retired;
            rs.cursor = ckpt.cursor;
            rs.bcursor = rs
                .boundaries
                .iter()
                .position(|b| b.0 >= ckpt.retired)
                .unwrap_or(rs.boundaries.len());
            rs.stopped = false;
            rs.entry_clock.clear();
        }
        Ok(())
    }

    /// Runs until the record session has retired `target` guest
    /// instructions (or the run otherwise ends): the time-travel seek
    /// primitive. Returns [`RunExit::Stop`] when the target was reached.
    pub fn run_to_retired(&mut self, target: u64, max_cycles: u64) -> RunExit {
        if let Some(rs) = self.record.as_mut() {
            rs.stop_at = Some(target);
            rs.stopped = rs.retired >= target;
        }
        let exit = self.run(max_cycles);
        if let Some(rs) = self.record.as_mut() {
            rs.stop_at = None;
            if rs.divergence.is_none() && rs.retired >= target {
                rs.stopped = false;
            }
        }
        exit
    }

    // ---- record/replay public accessors ------------------------------------

    /// Retired-instruction count of the record session (0 when not
    /// recording) — the engine-invariant coordinate logs are keyed by.
    pub fn record_retired(&self) -> u64 {
        self.record.as_ref().map_or(0, |rs| rs.retired)
    }

    /// The first mismatch a verifying replay found, if any.
    pub fn record_divergence(&self) -> Option<&Divergence> {
        self.record.as_ref().and_then(|rs| rs.divergence.as_ref())
    }

    /// Number of log records consumed (verify/inject) so far.
    pub fn record_cursor(&self) -> usize {
        self.record.as_ref().map_or(0, |rs| rs.cursor)
    }

    /// Drains the captured log (record mode).
    pub fn take_recording(&mut self) -> Vec<Rec> {
        self.record
            .as_mut()
            .map(|rs| std::mem::take(&mut rs.recs))
            .unwrap_or_default()
    }

    /// Drains the checkpoint chain (navigation-grade record mode). Empty
    /// when the chain was broken by fork/exec — see
    /// [`Kernel::record_chain_ok`].
    pub fn take_checkpoints(&mut self) -> Vec<Checkpoint> {
        self.record
            .as_mut()
            .map(|rs| std::mem::take(&mut rs.checkpoints))
            .unwrap_or_default()
    }

    /// True while the checkpoint chain soundly reconstructs the run.
    pub fn record_chain_ok(&self) -> bool {
        self.record.as_ref().is_some_and(|rs| rs.chain_ok)
    }

    /// Applies every injection due at the current boundary: permission
    /// restorations first, then new flips, then the asynchronous signal.
    /// The slice ends after a boundary fires (both engines agree on
    /// that), and `fired_until` advances so a boundary — which retires no
    /// instructions — cannot re-fire at the same retired count.
    fn apply_fault_boundary(&mut self, pid: Pid, tid: Tid) {
        let clock = self.clock;
        let obs = sim_obs::enabled();
        let Some(fs) = self.fault.as_mut() else {
            return;
        };
        let at = fs.retired;
        fs.fired_until = at + 1;
        let mut due_restores = Vec::new();
        fs.restores.retain(|r| {
            if r.0 <= at {
                due_restores.push(*r);
                false
            } else {
                true
            }
        });
        let flips: Vec<PermFlip> = fs.plan.flips_at(at).copied().collect();
        let signo = fs.plan.boundary_signal(at);

        let mut serialized = false;
        for (_, rpid, base, saved) in due_restores {
            if let Some(p) = self.procs.get_mut(&rpid) {
                let _ = p.space.protect(base, PAGE_SIZE, saved);
                serialized = true;
            }
            if obs {
                sim_obs::fault_flip(clock, base, true);
            }
            // A restore is logged as a flip to the restored protection:
            // replay does not need to know the pre-flip history.
            self.record_emit(Rec::Flip {
                retired: at,
                page: base,
                perms: saved.bits(),
                restore: true,
            });
        }
        for f in flips {
            let base = f.page & !(PAGE_SIZE - 1);
            let saved = self.procs.get_mut(&pid).and_then(|p| {
                let saved = p.space.page_perms(base)?;
                p.space
                    .protect(base, PAGE_SIZE, Perms::from_bits(f.perms))
                    .ok()?;
                Some(saved)
            });
            if let Some(saved) = saved {
                serialized = true;
                if obs {
                    sim_obs::fault_flip(clock, base, false);
                }
                self.record_emit(Rec::Flip {
                    retired: at,
                    page: base,
                    perms: Perms::from_bits(f.perms).bits(),
                    restore: false,
                });
                if let Some(fs) = self.fault.as_mut() {
                    fs.restores.push((at + f.duration.max(1), pid, base, saved));
                }
            }
        }
        if serialized {
            // A permission change behaves like an mprotect IPI: the
            // running core serializes its instruction stream. (`protect`
            // bumped the space generation, so this is never coalesced.)
            if let Some(p) = self.procs.get_mut(&pid) {
                let Process { space, threads, .. } = p;
                if let Some(t) = threads.iter_mut().find(|t| t.tid == tid) {
                    t.cpu.serialize(space);
                }
            }
        }
        if let Some(signo) = signo {
            // Only deliverable signals are injected: with no handler the
            // default action would kill the guest, turning every cell of a
            // sweep into a trivial death instead of a stress result. The
            // skip is recorded so the decision stays visible.
            let has_handler = self
                .procs
                .get(&pid)
                .is_some_and(|p| p.sigactions.contains_key(&signo));
            if obs {
                sim_obs::fault_signal(clock, signo, has_handler);
            }
            self.record_emit(Rec::Signal {
                retired: at,
                signo,
                delivered: has_handler,
            });
            if has_handler {
                self.deliver_signal(
                    pid,
                    tid,
                    SigInfo {
                        signo,
                        ..SigInfo::default()
                    },
                );
            }
        }
    }

    /// Runs `(pid, tid)` for up to one scheduler slice.
    ///
    /// Dispatches to the block-based fast engine or, when
    /// [`EngineConfig`] selected it, the original per-step loop. Both
    /// produce identical clocks, stats, and guest-visible behavior —
    /// enforced by the determinism regression tests.
    fn run_slice(&mut self, pid: Pid, tid: Tid) {
        if sim_obs::enabled() {
            if self.current != Some((pid, tid)) {
                sim_obs::context_switch(self.clock, pid, tid);
            } else {
                sim_obs::set_cpu(pid, tid);
            }
        }
        match self.engine {
            Engine::Stepwise => self.run_slice_stepwise(pid, tid),
            // The trace engine shares the block slice loop: the same
            // budget capping makes fault, profiler, and slice boundaries
            // land on identical instructions; only the core-level
            // execution strategy differs.
            Engine::Block | Engine::Trace => self.run_slice_blocks(pid, tid),
        }
    }

    /// Block-based slice: [`Cpu::run_block`] executes straight-line guest
    /// code without per-instruction scheduler overhead, returning at
    /// kernel-relevant events. A slice can span several blocks when
    /// hostcalls (`int3`) occur mid-slice, since hostcalls may mutate any
    /// kernel or guest state.
    fn run_slice_blocks(&mut self, pid: Pid, tid: Tid) {
        self.current = Some((pid, tid));
        let icache = self.icache;
        let tparams = (self.engine == Engine::Trace).then_some(self.trace_params);
        let mut remaining = self.effective_slice(tid);
        while remaining > 0 {
            // Record boundaries come first: a checkpoint captures the
            // pre-asynchrony state, so signal/flip records landing at the
            // same retired count re-apply after a restore.
            if self.record_boundary_due() && self.apply_record_boundary(pid, tid) {
                return;
            }
            if self.fault_boundary_due() {
                self.apply_fault_boundary(pid, tid);
                return;
            }
            // Single-threaded hot path: alternate block/trace execution
            // and direct-path syscall handling under one process borrow,
            // with clock/cycle/stat accounting batched and flushed at
            // exact retired-instruction boundaries. Falls out with a
            // pending block exit when anything needs the general path;
            // the loop below then handles that exit exactly as if it had
            // produced it itself.
            let hot = if self.hot_slice_ok(pid, tid) {
                let Some(block) = self.run_slice_hot(pid, tid, icache, tparams, &mut remaining)
                else {
                    return; // slice (or run deadline) ended inside the hot loop
                };
                Some(block)
            } else {
                None
            };
            let budget = self.record_capped(self.prof_capped(self.fault_capped(remaining)));
            let clock = self.clock;
            let cost = self.cost;
            let mut trace = self.exec_trace.take();
            let block = if let Some(block) = hot {
                block
            } else {
                let Some(p) = self.procs.get_mut(&pid) else {
                    self.exec_trace = trace;
                    return;
                };
                if p.exit_status.is_some() {
                    self.exec_trace = trace;
                    return;
                }
                let Process { space, threads, .. } = p;
                let Some(t) = threads.iter_mut().find(|t| t.tid == tid) else {
                    self.exec_trace = trace;
                    return;
                };
                if t.state != ThreadState::Runnable {
                    self.exec_trace = trace;
                    return;
                }
                let mut traced_clock = clock;
                t.cpu.set_icache_mode(icache);
                t.cpu.set_trace_mode(tparams);
                t.cpu
                    .run_block(space, clock, &cost, budget, |rip, step: &Step| {
                        if let Some(rec) = trace.as_mut() {
                            traced_clock += step.cycles;
                            rec.push(TraceEntry {
                                pid,
                                tid,
                                rip,
                                clock: traced_clock,
                                event: step.event,
                            });
                        }
                    })
            };
            self.exec_trace = trace;
            self.charge(block.cycles);
            remaining -= block.steps;
            self.fault_retire(block.steps);
            self.record_retire(block.steps);
            self.prof_retire_and_sample(pid, tid, block.steps);
            if block.vdso_calls > 0 {
                if let Some(p) = self.procs.get_mut(&pid) {
                    p.stats.vdso_calls += block.vdso_calls;
                }
            }
            match block.event {
                StepEvent::Executed => {} // budget exhausted: slice over
                StepEvent::Syscall { site, .. } => {
                    // When the direct path handled the syscall and this
                    // is the only runnable thread in the machine, the
                    // scheduler round that would follow is a no-op
                    // (nothing to wake, nothing to rotate, nothing else
                    // to run): start the thread's next slice immediately
                    // instead of unwinding to `run`. Architecturally
                    // invisible — slice boundaries only matter for
                    // scheduling order, fault rounds, and the run
                    // deadline, all of which `fast_loop_ok` rules out.
                    if self.handle_syscall(pid, tid, site) && self.fast_loop_ok(pid) {
                        remaining = self.effective_slice(tid);
                        continue;
                    }
                    return; // end the slice at kernel entry
                }
                StepEvent::Hlt => {
                    self.kill_process(pid, 0);
                    return;
                }
                StepEvent::Int3 => {
                    self.handle_int3(pid, tid);
                }
                StepEvent::Fault(f) => {
                    if sim_obs::enabled() && f.reason == sim_mem::FaultReason::PkuDenied {
                        sim_obs::pku_fault(self.clock, f.addr);
                    }
                    self.deliver_signal(
                        pid,
                        tid,
                        SigInfo {
                            signo: nr::SIGSEGV,
                            fault_addr: f.addr,
                            ..SigInfo::default()
                        },
                    );
                    return;
                }
            }
        }
    }

    /// True when ending the current slice and re-entering the scheduler
    /// loop would provably change nothing: no deferred writes to flush,
    /// no fault session advancing its round counter, the run deadline
    /// not reached, and exactly one process with exactly one (runnable)
    /// thread — so the rebuilt runnable list would contain only the
    /// current thread.
    fn fast_loop_ok(&self, pid: Pid) -> bool {
        self.deferred.is_empty()
            && self.fault.is_none()
            && self.clock < self.run_deadline
            && self.procs.len() == 1
            && self.procs.get(&pid).is_some_and(|p| {
                p.exit_status.is_none()
                    && p.threads.len() == 1
                    && p.threads[0].state == ThreadState::Runnable
            })
    }

    /// True when [`Kernel::run_slice_hot`] may run: no instrumentation
    /// (obs, fault session, interposer stack, profiler, syscall log,
    /// tracers) is armed, the
    /// machine has exactly one process with exactly one runnable thread
    /// (the current one), no seccomp filter is installed, no deferred
    /// writes are queued, and the run deadline is not reached. Everything
    /// that could invalidate these conditions — arming syscalls,
    /// hostcalls, thread creation — exits the hot loop first.
    fn hot_slice_ok(&self, pid: Pid, tid: Tid) -> bool {
        !sim_obs::enabled()
            && self.fault.is_none()
            && self.stack.is_none()
            && self.prof.is_none()
            && self.record.is_none()
            && self.audit.is_none()
            && self.trace_log.is_none()
            && self.tracers.is_empty()
            && self.deferred.is_empty()
            && self.clock < self.run_deadline
            && self.procs.len() == 1
            && self.procs.get(&pid).is_some_and(|p| {
                p.exit_status.is_none()
                    && p.seccomp.is_none()
                    && p.threads.len() == 1
                    && p.threads[0].tid == tid
                    && p.threads[0].state == ThreadState::Runnable
            })
    }

    /// The single-threaded hot loop: alternates block/trace execution and
    /// direct-path handling of trivial syscalls under **one** process
    /// borrow, batching clock, per-thread cycle, and syscall-statistic
    /// accounting in locals that are flushed at exact retired-instruction
    /// boundaries (before any state the general path could observe).
    ///
    /// Guarded by [`Kernel::hot_slice_ok`]; nothing the loop handles can
    /// invalidate those conditions, so they are checked once. Slice
    /// exhaustion and direct-path syscalls restart the slice in place —
    /// architecturally identical to unwinding into the scheduler loop,
    /// which [`Kernel::fast_loop_ok`]'s reasoning shows would be a no-op.
    ///
    /// Returns `Some(block)` when a block ended with an exit the general
    /// loop must handle — that block's accounting has **not** been
    /// applied yet (the caller's normal bookkeeping applies it), though
    /// its exec-trace entries are already recorded. Returns `None` when
    /// the slice ended cleanly (run deadline reached); the caller returns
    /// to the scheduler.
    fn run_slice_hot(
        &mut self,
        pid: Pid,
        tid: Tid,
        icache: IcacheMode,
        tparams: Option<sim_cpu::TraceParams>,
        remaining: &mut u64,
    ) -> Option<BlockExit> {
        let cost = self.cost;
        let deadline = self.run_deadline;
        let slice = self.slice as u64;
        let mut exec_trace = self.exec_trace.take();
        let mut clock = self.clock;
        let mut cycles_acc = 0u64;
        let mut vdso_acc = 0u64;
        // Pending syscall-statistics run: `pend` occurrences of syscall
        // `pend_nr` issued from `pend_site`, not yet folded into
        // `ProcStats`. The stress loops this path serves issue the same
        // syscall from the same site, so the fold is one memoized region
        // lookup and five counter adds per run instead of per call.
        let mut pend_nr = 0u64;
        let mut pend_site = 0u64;
        let mut pend = 0u64;
        let result;
        {
            let p = self.procs.get_mut(&pid).expect("hot_slice_ok checked");
            let Process {
                space,
                threads,
                stats,
                region_cache,
                interposer_live,
                ..
            } = p;
            let t = &mut threads[0];
            t.cpu.set_icache_mode(icache);
            t.cpu.set_trace_mode(tparams);
            // Constant for the whole hot slice: only non-trivial syscalls
            // (which exit this loop) can arm SUD or set `restarting`.
            let restarting = t.restarting;
            let sud_armed = t.sud.is_some();
            result = loop {
                let budget = *remaining;
                // Shared between the step hook and the syscall hook (a
                // handled syscall's charge must show up in the clocks of
                // the trace entries that follow it), hence a Cell.
                let traced_clock = std::cell::Cell::new(clock);
                // Direct-path syscall entry inside trace replay: the
                // same trivial-syscall service as the block-exit arm
                // below, with identical register, serialization, clock,
                // and statistics effects — so a self-looping trace
                // handles its syscall without ever leaving `run_block`.
                let mut syscall_fast =
                    |cpu: &mut Cpu, space: &mut AddressSpace, site: u64, abs: u64| {
                        if restarting || sud_armed {
                            return HookAction::Pass;
                        }
                        let nr_ = cpu.get(Reg::Rax);
                        let ret = match nr_ {
                            nr::SYS_NONEXISTENT => nr::err(nr::ENOSYS),
                            nr::SYS_GETPID => pid,
                            nr::SYS_GETTID => tid,
                            nr::SYS_GETUID => 1000,
                            nr::SYS_SCHED_YIELD => 0,
                            _ => return HookAction::Pass,
                        };
                        cpu.serialize(space);
                        cpu.rip = site + 2;
                        cpu.set(Reg::Rax, ret);
                        cpu.apply_syscall_clobbers(site + 2);
                        if pend > 0 && (pend_nr != nr_ || pend_site != site) {
                            flush_syscall_stats(
                                stats,
                                region_cache,
                                space,
                                *interposer_live,
                                pend_nr,
                                pend_site,
                                pend,
                            );
                            pend = 0;
                        }
                        pend_nr = nr_;
                        pend_site = site;
                        pend += 1;
                        let charge = cost.kernel_entry + crate::sys::service_cost(nr_, 0);
                        traced_clock.set(traced_clock.get() + charge);
                        HookAction::Handled {
                            charge,
                            stop: abs + charge >= deadline,
                        }
                    };
                // Monomorphize the replay loop on whether an exec trace
                // is being recorded: the no-trace instantiation's step
                // hook is a true no-op instead of a per-op branch.
                let block = if exec_trace.is_none() {
                    t.cpu.run_block_hooked(
                        space,
                        clock,
                        &cost,
                        budget,
                        |_, _: &Step| {},
                        &mut syscall_fast,
                    )
                } else {
                    t.cpu.run_block_hooked(
                        space,
                        clock,
                        &cost,
                        budget,
                        |rip, step: &Step| {
                            if let Some(rec) = exec_trace.as_mut() {
                                traced_clock.set(traced_clock.get() + step.cycles);
                                rec.push(TraceEntry {
                                    pid,
                                    tid,
                                    rip,
                                    clock: traced_clock.get(),
                                    event: step.event,
                                });
                            }
                        },
                        &mut syscall_fast,
                    )
                };
                match block.event {
                    StepEvent::Syscall { site, .. } if !t.restarting && t.sud.is_none() => {
                        let nr_ = t.cpu.get(Reg::Rax);
                        // Same trivial-syscall set as handle_syscall_fast:
                        // a pure return value, no kernel state beyond the
                        // statistics.
                        let ret = match nr_ {
                            nr::SYS_NONEXISTENT => nr::err(nr::ENOSYS),
                            nr::SYS_GETPID => pid,
                            nr::SYS_GETTID => tid,
                            nr::SYS_GETUID => 1000,
                            nr::SYS_SCHED_YIELD => 0,
                            _ => break Some(block),
                        };
                        clock += block.cycles;
                        cycles_acc += block.cycles;
                        vdso_acc += block.vdso_calls;
                        // Kernel entry serializes the instruction stream
                        // (coalesced to a stamp compare while nothing in
                        // the space was written).
                        t.cpu.serialize(space);
                        t.cpu.rip = site + 2;
                        t.cpu.set(Reg::Rax, ret);
                        t.cpu.apply_syscall_clobbers(site + 2);
                        if pend > 0 && (pend_nr != nr_ || pend_site != site) {
                            flush_syscall_stats(
                                stats,
                                region_cache,
                                space,
                                *interposer_live,
                                pend_nr,
                                pend_site,
                                pend,
                            );
                            pend = 0;
                        }
                        pend_nr = nr_;
                        pend_site = site;
                        pend += 1;
                        let c = cost.kernel_entry + crate::sys::service_cost(nr_, 0);
                        clock += c;
                        cycles_acc += c;
                        if clock >= deadline {
                            *remaining = 0;
                            break None;
                        }
                        // Direct-path return: start the next slice here.
                        *remaining = slice;
                    }
                    StepEvent::Executed => {
                        // Budget exhausted: the slice is over, and the
                        // scheduler round that follows is a no-op, so
                        // start the next slice in place.
                        clock += block.cycles;
                        cycles_acc += block.cycles;
                        vdso_acc += block.vdso_calls;
                        if clock >= deadline {
                            *remaining = 0;
                            break None;
                        }
                        *remaining = slice;
                    }
                    // Hlt, Int3, Fault, restarting or SUD-armed syscalls:
                    // hand the exit (accounting unapplied) to the caller.
                    _ => break Some(block),
                }
            };
            if pend > 0 {
                flush_syscall_stats(
                    stats,
                    region_cache,
                    space,
                    *interposer_live,
                    pend_nr,
                    pend_site,
                    pend,
                );
            }
            stats.vdso_calls += vdso_acc;
        }
        self.exec_trace = exec_trace;
        self.clock = clock;
        if cycles_acc > 0 {
            *self.thread_cycles.entry((pid, tid)).or_insert(0) += cycles_acc;
        }
        result
    }

    /// The original per-step slice loop, retained verbatim as the
    /// determinism oracle and benchmarking baseline.
    fn run_slice_stepwise(&mut self, pid: Pid, tid: Tid) {
        self.current = Some((pid, tid));
        let icache = self.icache;
        let slice = self.effective_slice(tid);
        for _ in 0..slice {
            // Same ordering as the block engine: checkpoint before any
            // asynchrony due at the same retired count.
            if self.record_boundary_due() && self.apply_record_boundary(pid, tid) {
                return;
            }
            if self.fault_boundary_due() {
                self.apply_fault_boundary(pid, tid);
                return;
            }
            let clock = self.clock;
            let cost = self.cost;
            let (step, rip) = {
                let Some(p) = self.procs.get_mut(&pid) else {
                    return;
                };
                if p.exit_status.is_some() {
                    return;
                }
                let Process { space, threads, .. } = p;
                let Some(t) = threads.iter_mut().find(|t| t.tid == tid) else {
                    return;
                };
                if t.state != ThreadState::Runnable {
                    return;
                }
                let rip = t.cpu.rip;
                t.cpu.set_icache_mode(icache);
                (t.cpu.step(space, clock, &cost), rip)
            };
            self.charge(step.cycles);
            self.fault_retire(1);
            self.record_retire(1);
            if sim_obs::enabled() {
                // Post-step RIP, matching the per-step hook inside
                // `run_block` — the range-span streams are identical.
                if let Some(rip_after) = self.cpu_mut(pid, tid).map(|c| c.rip) {
                    sim_obs::span_step(self.clock, rip_after);
                }
            }
            self.prof_retire_and_sample(pid, tid, 1);
            if let Some(rec) = self.exec_trace.as_mut() {
                rec.push(TraceEntry {
                    pid,
                    tid,
                    rip,
                    clock: self.clock,
                    event: step.event,
                });
            }
            match step.event {
                StepEvent::Executed => {
                    if matches!(step.inst, Some(sim_isa::Inst::Vsyscall)) {
                        if let Some(p) = self.procs.get_mut(&pid) {
                            p.stats.vdso_calls += 1;
                        }
                    }
                }
                StepEvent::Syscall { site, .. } => {
                    self.handle_syscall(pid, tid, site);
                    return; // end the slice at kernel entry
                }
                StepEvent::Hlt => {
                    self.kill_process(pid, 0);
                    return;
                }
                StepEvent::Int3 => {
                    self.handle_int3(pid, tid);
                }
                StepEvent::Fault(f) => {
                    if sim_obs::enabled() && f.reason == sim_mem::FaultReason::PkuDenied {
                        sim_obs::pku_fault(self.clock, f.addr);
                    }
                    self.deliver_signal(
                        pid,
                        tid,
                        SigInfo {
                            signo: nr::SIGSEGV,
                            fault_addr: f.addr,
                            ..SigInfo::default()
                        },
                    );
                    return;
                }
            }
        }
    }

    fn handle_int3(&mut self, pid: Pid, tid: Tid) {
        // The int3 has retired: the site address is rip - 1.
        let site = match self.cpu_mut(pid, tid) {
            Some(cpu) => cpu.rip.wrapping_sub(1),
            None => return,
        };
        let Some(name) = self.hostcall_sites.get(&(pid, site)).cloned() else {
            // Unregistered breakpoint: fatal SIGTRAP.
            self.kill_process(pid, 128 + nr::SIGTRAP as i64);
            return;
        };
        let Some(f) = self.hostcall_impls.get(&name).cloned() else {
            self.kill_process(pid, 128 + nr::SIGTRAP as i64);
            return;
        };
        self.charge(self.cost.hostcall);
        (f.borrow_mut())(self, pid, tid);
    }

    /// Resolves the mapped-region name containing `site` through the same
    /// per-process memo the stats path uses (one mapping walk per
    /// `(site, mapping generation)`).
    fn site_region(&mut self, pid: Pid, site: u64) -> String {
        let Some(p) = self.procs.get_mut(&pid) else {
            return "?".to_string();
        };
        let Process {
            space,
            region_cache,
            ..
        } = p;
        let gen = space.generation();
        if !matches!(region_cache.get(&site), Some((g, _)) if *g == gen) {
            let name = space
                .mapping_at(site)
                .map(|m| m.name.clone())
                .unwrap_or_else(|| "?".to_string());
            region_cache.insert(site, (gen, name));
        }
        region_cache[&site].1.clone()
    }

    /// Direct-path kernel entry for trivial process-local syscalls.
    ///
    /// When no interposition or instrumentation machinery is armed (no
    /// tracer on the process, no SUD on the thread, no seccomp filter,
    /// no fault session, no syscall log, obs disabled, not an in-kernel
    /// restart) and the syscall's only effects are a return value plus
    /// counter updates, the full [`Kernel::handle_syscall`] walk — five
    /// separate process borrows, two tracer-stop probes, a seccomp
    /// lookup, and a register re-read — collapses to one borrow. Every
    /// architectural effect (clock charges, per-thread cycle
    /// attribution, syscall statistics, register clobbers) is identical
    /// to the slow path; the determinism suite diffs the two.
    ///
    /// Returns `false` (without side effects) when any condition fails;
    /// the caller then takes the slow path.
    fn handle_syscall_fast(&mut self, pid: Pid, tid: Tid, site: u64) -> bool {
        if sim_obs::enabled()
            || self.fault.is_some()
            || self.stack.is_some()
            || self.record.is_some()
            || self.audit.is_some()
            || self.trace_log.is_some()
            || self.tracers.contains_key(&pid)
        {
            return false;
        }
        let cost = self.cost;
        let Some(p) = self.procs.get_mut(&pid) else {
            return false;
        };
        if p.seccomp.is_some() {
            return false;
        }
        let Process {
            space,
            threads,
            stats,
            region_cache,
            interposer_live,
            ..
        } = p;
        let Some(t) = threads.iter_mut().find(|t| t.tid == tid) else {
            return false;
        };
        if t.restarting || t.sud.is_some() {
            return false;
        }
        let nr_ = t.cpu.get(Reg::Rax);
        // Only syscalls whose slow-path dispatch is a pure `Disp::Ret`
        // with no kernel state touched beyond the statistics; anything
        // else falls back. `SYS_NONEXISTENT` is the Table 5 stress nr.
        let ret = match nr_ {
            nr::SYS_NONEXISTENT => nr::err(nr::ENOSYS),
            nr::SYS_GETPID => pid,
            nr::SYS_GETTID => tid,
            nr::SYS_GETUID => 1000,
            nr::SYS_SCHED_YIELD => 0,
            _ => return false,
        };
        // Kernel entry serializes the instruction stream (coalesced to a
        // stamp compare while nothing in the space was written).
        t.cpu.serialize(space);
        t.cpu.rip = site + 2;
        t.cpu.set(Reg::Rax, ret);
        t.cpu.apply_syscall_clobbers(site + 2);
        // Statistics — the same updates, in the same order, as the slow
        // path's count block.
        stats.syscalls += 1;
        *stats.per_syscall.entry(nr_).or_insert(0) += 1;
        let gen = space.generation();
        if !matches!(region_cache.get(&site), Some((g, _)) if *g == gen) {
            let name = space
                .mapping_at(site)
                .map(|m| m.name.clone())
                .unwrap_or_else(|| "?".to_string());
            region_cache.insert(site, (gen, name));
        }
        let region = &region_cache[&site].1;
        match stats.syscalls_via.get_mut(region.as_str()) {
            Some(c) => *c += 1,
            None => {
                stats.syscalls_via.insert(region.clone(), 1);
            }
        }
        *stats.per_site.entry(site).or_insert(0) += 1;
        if !*interposer_live {
            stats.syscalls_before_interposer += 1;
        }
        // One folded clock charge: entry cost plus the service cost the
        // dispatch layer would add. Obs is off (checked above), so
        // `charge`'s set_clock call would be a no-op anyway.
        let cycles = cost.kernel_entry + crate::sys::service_cost(nr_, 0);
        self.clock += cycles;
        *self.thread_cycles.entry((pid, tid)).or_insert(0) += cycles;
        true
    }

    /// Kernel entry for a `syscall`/`sysenter` at `site`.
    /// Returns `true` when the direct path handled the syscall — the
    /// block engines use that to skip the no-op scheduler round that
    /// would otherwise follow.
    fn handle_syscall(&mut self, pid: Pid, tid: Tid, site: u64) -> bool {
        if self.handle_syscall_fast(pid, tid, site) {
            return true;
        }
        self.handle_syscall_slow(pid, tid, site);
        false
    }

    /// The full kernel-entry walk: SUD dispatch, ptrace stops, seccomp,
    /// statistics, fault injection, and the syscall table.
    fn handle_syscall_slow(&mut self, pid: Pid, tid: Tid, site: u64) {
        let cost = self.cost;
        // Gather thread state.
        let (nr_, args, sud, selector, restarting) = {
            let Some(p) = self.procs.get_mut(&pid) else {
                return;
            };
            let Process { space, threads, .. } = p;
            let Some(t) = threads.iter_mut().find(|t| t.tid == tid) else {
                return;
            };
            let restarting = std::mem::take(&mut t.restarting);
            // Kernel entry serializes the core's instruction stream
            // (coalesced to a no-op while nothing in the space was
            // written — the common case for a tight syscall loop).
            t.cpu.serialize(space);
            let nr_ = t.cpu.get(Reg::Rax);
            let args = [
                t.cpu.get(Reg::Rdi),
                t.cpu.get(Reg::Rsi),
                t.cpu.get(Reg::Rdx),
                t.cpu.get(Reg::R10),
                t.cpu.get(Reg::R8),
                t.cpu.get(Reg::R9),
            ];
            let sud = t.sud;
            let selector = sud.and_then(|s| {
                let mut b = [0u8; 1];
                space.read_raw(s.selector_addr, &mut b).ok().map(|_| b[0])
            });
            (nr_, args, sud, selector, restarting)
        };

        // Observability: open the syscall span (one per architectural
        // syscall — a restart resumes the span opened at first entry) and
        // observe the SUD selector byte for flip detection.
        let obs = sim_obs::enabled();
        if obs && !restarting {
            let region = self.site_region(pid, site);
            sim_obs::syscall_enter(self.clock, nr_, site, &region, nr::syscall_name(nr_));
            if let Some(sel) = selector {
                sim_obs::sud_selector(self.clock, sel);
            }
        }

        // Kernel entry cost; SUD arming puts every entry on the slow path.
        // A restarted (previously blocked) syscall resumes in-kernel: no
        // second entry, no re-dispatch, no second tracer stop.
        if !restarting {
            self.charge(cost.kernel_entry);
            if sud.is_some() {
                self.charge(cost.sud_slowpath);
            }
        }
        self.record_syscall_entry(pid, tid, restarting);

        // Coverage audit: tag each architectural syscall once, at first
        // entry (a restart resumes in-kernel — the tag stands). The SUD
        // outcome is predicted from the same state the dispatch check
        // below reads, so tagging here also covers the SIGSYS early
        // return.
        if !restarting && self.audit.is_some() {
            let region = self.site_region(pid, site);
            let traced = self
                .tracers
                .get(&pid)
                .is_some_and(|t| t.opts.trace_syscalls);
            let live = self.procs.get(&pid).is_some_and(|p| p.interposer_live);
            let in_allowlist = sud.is_some_and(|s| s.in_allowlist(site));
            let view = crate::audit::SyscallView {
                region: &region,
                traced,
                live,
                sud_armed: sud.is_some(),
                in_allowlist,
                will_sigsys: sud.is_some()
                    && !in_allowlist
                    && selector == Some(nr::SYSCALL_DISPATCH_FILTER_BLOCK),
                selector_allow: selector == Some(nr::SYSCALL_DISPATCH_FILTER_ALLOW),
            };
            let tag = self
                .audit
                .as_mut()
                .expect("checked above")
                .classify(pid, site, &view);
            if obs {
                let mark = match tag {
                    crate::audit::AuditTag::Path => sim_obs::AuditMark::Path,
                    crate::audit::AuditTag::Control => sim_obs::AuditMark::Control,
                    crate::audit::AuditTag::Double => sim_obs::AuditMark::Double,
                    crate::audit::AuditTag::Bypassed(sig) => {
                        sim_obs::AuditMark::Bypass(sig.code())
                    }
                };
                sim_obs::audit_tag(self.clock, nr_, site, &region, mark);
            }
        }

        // SUD dispatch check (before anything else, as in Linux).
        let sud_check = if restarting { None } else { sud };
        if let Some(s) = sud_check {
            if !s.in_allowlist(site) {
                match selector {
                    Some(nr::SYSCALL_DISPATCH_FILTER_BLOCK) => {
                        // Deliver SIGSYS; saved context resumes after the
                        // syscall instruction.
                        if let Some(t) = self.procs.get_mut(&pid).and_then(|p| p.thread_mut(tid)) {
                            t.cpu.rip = site + 2;
                        }
                        if let Some(p) = self.procs.get_mut(&pid) {
                            p.stats.sigsys_count += 1;
                        }
                        if obs {
                            sim_obs::sigsys(self.clock, nr_, site, nr::syscall_name(nr_));
                            sim_obs::span_enter(self.clock, "sud/sigsys-deliver");
                        }
                        self.deliver_signal(
                            pid,
                            tid,
                            SigInfo {
                                signo: nr::SIGSYS,
                                syscall: nr_,
                                call_addr: site,
                                ..SigInfo::default()
                            },
                        );
                        if obs {
                            sim_obs::span_exit(self.clock);
                        }
                        return;
                    }
                    Some(_) => {}
                    None => {
                        // Unreadable selector: Linux kills the task.
                        self.kill_process(pid, 128 + nr::SIGSYS as i64);
                        return;
                    }
                }
            }
        }

        // ptrace syscall-enter stop (not repeated for in-kernel restarts).
        // The tracer may rewrite the tracee's registers (PTRACE_SETREGS) —
        // the syscall then executes with the *modified* arguments, exactly
        // as on Linux.
        let enter_action = if restarting {
            TracerAction::Continue
        } else {
            self.tracer_stop(
            pid,
            tid,
            Stop::SyscallEnter {
                nr: nr_,
                args,
                site,
            },
            |o| o.trace_syscalls,
            )
        };
        match enter_action {
            TracerAction::Continue | TracerAction::Detach => {}
            TracerAction::Kill => return,
            TracerAction::SkipSyscall { ret } => {
                if let Some(t) = self.procs.get_mut(&pid).and_then(|p| p.thread_mut(tid)) {
                    t.cpu.rip = site + 2;
                    t.cpu.set(Reg::Rax, ret);
                    let rip = t.cpu.rip;
                    t.cpu.apply_syscall_clobbers(rip);
                }
                if obs {
                    sim_obs::syscall_exit(self.clock, nr_, ret, nr::syscall_name(nr_));
                }
                return;
            }
        }

        // seccomp filter (installed filters survive execve, as on Linux).
        let seccomp_action = self
            .procs
            .get(&pid)
            .and_then(|p| p.seccomp.as_ref())
            .map(|f| f.action(nr_));
        match seccomp_action {
            Some(SeccompAction::Kill) => {
                self.kill_process(pid, 128 + nr::SIGSYS as i64);
                return;
            }
            Some(SeccompAction::Errno(e)) => {
                if let Some(t) = self.procs.get_mut(&pid).and_then(|p| p.thread_mut(tid)) {
                    t.cpu.rip = site + 2;
                    t.cpu.set(Reg::Rax, nr::err(e));
                    t.cpu.apply_syscall_clobbers(site + 2);
                }
                if obs {
                    sim_obs::syscall_exit(self.clock, nr_, nr::err(e), nr::syscall_name(nr_));
                }
                return;
            }
            _ => {}
        }

        // Re-read registers: a tracer may have changed them at the stop.
        let (nr_, args) = {
            let Some(t) = self.procs.get(&pid).and_then(|p| p.thread(tid)) else {
                return;
            };
            (
                t.cpu.get(Reg::Rax),
                [
                    t.cpu.get(Reg::Rdi),
                    t.cpu.get(Reg::Rsi),
                    t.cpu.get(Reg::Rdx),
                    t.cpu.get(Reg::R10),
                    t.cpu.get(Reg::R8),
                    t.cpu.get(Reg::R9),
                ],
            )
        };

        // Count + trace.
        {
            let Some(p) = self.procs.get_mut(&pid) else {
                return;
            };
            p.stats.syscalls += 1;
            *p.stats.per_syscall.entry(nr_).or_insert(0) += 1;
            // Resolve the issuing region through the per-site memo: the
            // linear mapping walk and the name allocation happen once per
            // (site, mapping generation), not once per syscall.
            let Process {
                stats,
                space,
                region_cache,
                interposer_live,
                ..
            } = p;
            let gen = space.generation();
            if !matches!(region_cache.get(&site), Some((g, _)) if *g == gen) {
                let name = space
                    .mapping_at(site)
                    .map(|m| m.name.clone())
                    .unwrap_or_else(|| "?".to_string());
                region_cache.insert(site, (gen, name));
            }
            let region = &region_cache[&site].1;
            match stats.syscalls_via.get_mut(region.as_str()) {
                Some(c) => *c += 1,
                None => {
                    stats.syscalls_via.insert(region.clone(), 1);
                }
            }
            *stats.per_site.entry(site).or_insert(0) += 1;
            if !*interposer_live {
                stats.syscalls_before_interposer += 1;
            }
        }
        if self.trace_log.is_some() {
            let line = format!(
                "[pid {pid}] {}({:#x}, {:#x}, {:#x}) @ {site:#x}",
                nr::syscall_name(nr_),
                args[0],
                args[1],
                args[2]
            );
            if let Some(log) = self.trace_log.as_mut() {
                log.push(line);
            }
        }

        // sim-fault errno injection: decided purely by (plan, nr,
        // executed-occurrence index). Occurrences count only once the
        // interposer is live and never for in-kernel restarts, so the
        // numbering is architectural — identical under both engines.
        let injected = if self.fault.is_some() && !restarting {
            let live = self.procs.get(&pid).is_some_and(|p| p.interposer_live);
            match self.fault.as_mut() {
                Some(fs) if live => {
                    let occ = fs.occurrences.entry(nr_).or_insert(0);
                    let idx = *occ;
                    *occ += 1;
                    fs.plan.syscall_fault(nr_, idx)
                }
                _ => None,
            }
        } else {
            None
        };
        if let Some(kind) = injected {
            if obs {
                sim_obs::fault_errno(self.clock, nr_, kind.tag());
            }
        }

        // Injecting replay: a non-process-local syscall is not re-executed;
        // its recorded completion (return value, service cycles, page
        // writes) is applied instead, so navigation after a checkpoint
        // restore needs no VFS/net/RNG state.
        if self
            .record
            .as_ref()
            .is_some_and(|rs| rs.mode == RecordModeKind::Inject)
            && !inject_passthrough(nr_)
        {
            let rec = self.record.as_mut().and_then(RecordSession::take_syscall);
            match rec {
                Some(Rec::Syscall {
                    nr: rnr,
                    ret,
                    cycles,
                    writes,
                    ..
                }) if rnr == nr_ => {
                    if let Some(p) = self.procs.get_mut(&pid) {
                        for (base, data) in &writes {
                            let _ = p.space.write_raw(*base, data);
                        }
                        if let Some(t) = p.thread_mut(tid) {
                            t.cpu.rip = site + 2;
                            t.cpu.set(Reg::Rax, ret);
                            t.cpu.apply_syscall_clobbers(site + 2);
                        }
                    }
                    self.charge(cycles);
                    if obs {
                        sim_obs::syscall_exit(self.clock, nr_, ret, nr::syscall_name(nr_));
                    }
                }
                _ => {
                    // Log exhausted or misaligned: halt navigation.
                    if let Some(rs) = self.record.as_mut() {
                        rs.stopped = true;
                    }
                }
            }
            return;
        }

        // Dispatch — through the interposer chain when a composed stack
        // covers this (process, site), otherwise straight to the kernel.
        // In-kernel restarts never re-enter the chain: the layers ran at
        // first entry; the retry completes below them.
        if !restarting && self.chain_applies(pid, site) {
            let ctx = crate::stack::SyscallCtx { pid, tid, nr: nr_, args, site };
            self.chain_dispatch(ctx, injected, obs);
        } else {
            self.chain_real_dispatch(pid, tid, nr_, args, site, injected);
        }
    }

    /// The real kernel dispatch and its architectural effects (registers,
    /// blocking, record/trace/obs exits) — the bottom of the interposer
    /// chain, and the whole dispatch step when no chain applies. Applies
    /// `injected` exactly as the pre-chain dispatch did.
    pub(crate) fn chain_real_dispatch(
        &mut self,
        pid: Pid,
        tid: Tid,
        nr_: u64,
        args: [u64; 6],
        site: u64,
        injected: Option<FaultKind>,
    ) -> crate::stack::RealOutcome {
        let obs = sim_obs::enabled();
        let disp = match injected {
            Some(FaultKind::Eintr) => crate::sys::Disp::Ret(nr::err(nr::EINTR)),
            Some(FaultKind::Eagain) => crate::sys::Disp::Ret(nr::err(nr::EAGAIN)),
            Some(FaultKind::Enomem) => crate::sys::Disp::Ret(nr::err(nr::ENOMEM)),
            Some(FaultKind::Partial) => {
                // Cap the transfer length: the call executes with faithful
                // side effects and itself returns the short count.
                let mut capped = args;
                if capped[2] > 1 {
                    capped[2] /= 2;
                }
                self.sys_dispatch(pid, tid, nr_, capped, site)
            }
            None => self.sys_dispatch(pid, tid, nr_, args, site),
        };
        match disp {
            crate::sys::Disp::Ret(ret) => {
                if let Some(t) = self.procs.get_mut(&pid).and_then(|p| p.thread_mut(tid)) {
                    t.cpu.rip = site + 2;
                    t.cpu.set(Reg::Rax, ret);
                    t.cpu.apply_syscall_clobbers(site + 2);
                }
                self.record_syscall_ret(pid, tid, nr_, site, ret);
                self.tracer_stop(pid, tid, Stop::SyscallExit { nr: nr_, ret }, |o| {
                    o.trace_syscalls
                });
                if obs {
                    sim_obs::syscall_exit(self.clock, nr_, ret, nr::syscall_name(nr_));
                }
                crate::stack::RealOutcome::Ret(ret)
            }
            crate::sys::Disp::RetThenBlock(ret, wait) => {
                if let Some(t) = self.procs.get_mut(&pid).and_then(|p| p.thread_mut(tid)) {
                    t.cpu.rip = site + 2;
                    t.cpu.set(Reg::Rax, ret);
                    t.cpu.apply_syscall_clobbers(site + 2);
                    t.state = ThreadState::Blocked(wait);
                }
                self.record_syscall_ret(pid, tid, nr_, site, ret);
                if obs {
                    sim_obs::syscall_exit(self.clock, nr_, ret, nr::syscall_name(nr_));
                }
                crate::stack::RealOutcome::Ret(ret)
            }
            crate::sys::Disp::Block(wait) => {
                // rip stays at the syscall instruction: the thread retries on
                // wake. Undo the "executed" count — it will be recounted.
                if let Some(p) = self.procs.get_mut(&pid) {
                    p.stats.syscalls -= 1;
                    *p.stats.per_syscall.entry(nr_).or_insert(1) -= 1;
                    let region = p
                        .space
                        .mapping_at(site)
                        .map(|m| m.name.clone())
                        .unwrap_or_else(|| "?".to_string());
                    *p.stats.syscalls_via.entry(region).or_insert(1) -= 1;
                    *p.stats.per_site.entry(site).or_insert(1) -= 1;
                    if p.stats.per_site.get(&site) == Some(&0) {
                        p.stats.per_site.remove(&site);
                    }
                    if !p.interposer_live {
                        p.stats.syscalls_before_interposer -= 1;
                    }
                    if let Some(t) = p.thread_mut(tid) {
                        t.state = ThreadState::Blocked(wait);
                        // On wake the syscall resumes in-kernel.
                        t.restarting = true;
                    }
                }
                crate::stack::RealOutcome::Opaque
            }
            crate::sys::Disp::NoReturn => {
                if nr_ == nr::SYS_RT_SIGRETURN {
                    crate::stack::RealOutcome::Sigreturn
                } else {
                    crate::stack::RealOutcome::Opaque
                }
            }
        }
    }

    // ---- fork/clone helpers used by sys.rs -----------------------------------

    pub(crate) fn do_fork(&mut self, pid: Pid, tid: Tid, site: u64) -> u64 {
        let child_pid = self.next_pid;
        self.next_pid += 1;
        let child_tid = self.next_tid;
        self.next_tid += 1;

        let Some(parent) = self.procs.get(&pid) else {
            return nr::err(nr::ENOENT);
        };
        let Some(t) = parent.thread(tid) else {
            return nr::err(nr::ENOENT);
        };
        let mut child = Process::new(child_pid, pid, child_tid);
        child.exe = parent.exe.clone();
        child.space = parent.space.clone();
        child.fds = parent.fds.clone();
        child.env = parent.env.clone();
        child.argv = parent.argv.clone();
        child.cwd = parent.cwd.clone();
        child.sigactions = parent.sigactions.clone();
        child.vdso_enabled = parent.vdso_enabled;
        child.vdso_base = parent.vdso_base;
        child.symbols = parent.symbols.clone();
        child.lib_bases = parent.lib_bases.clone();
        child.interposer_live = parent.interposer_live;
        child.seccomp = parent.seccomp.clone();
        // Stack-layer membership: only layers that opted into fork
        // propagation follow the child.
        let fork_mask = self.stack.as_ref().map_or(0, |s| s.fork_mask());
        child.stack_mask = parent.stack_mask & fork_mask;
        child.chain_sites = parent.chain_sites.clone();
        // Readiness state follows the fd table: epoll instances and eventfd
        // counters are duplicated (each side then mutates its own copy, the
        // same as two processes holding independent descriptions), and the
        // per-fd O_NONBLOCK set carries over.
        child.epolls = parent.epolls.clone();
        child.next_epoll = parent.next_epoll;
        child.eventfds = parent.eventfds.clone();
        child.next_eventfd = parent.next_eventfd;
        child.nonblock = parent.nonblock.clone();
        let mut ccpu = t.cpu.clone();
        ccpu.rip = site + 2;
        ccpu.set(Reg::Rax, 0);
        ccpu.apply_syscall_clobbers(site + 2);
        child.threads[0].cpu = ccpu;
        child.threads[0].sud = t.sud;
        // A fork from inside a signal handler inherits the handler context:
        // the child's stack is a copy, so its live signal frames — and any
        // masking state and deferred signals — are too.
        child.threads[0].sig_frames = t.sig_frames.clone();
        child.threads[0].frame_masked = t.frame_masked.clone();
        child.threads[0].pending_signals = t.pending_signals.clone();

        // Channel and listener refcounts for duplicated descriptors.
        let chans: Vec<(usize, crate::net::End)> = child
            .fds
            .values()
            .filter_map(|fd| match fd {
                FdEntry::ChannelRead { chan, end }
                | FdEntry::ChannelWrite { chan, end }
                | FdEntry::Socket { chan, end } => Some((*chan, *end)),
                _ => None,
            })
            .collect();
        let ports: Vec<u16> = child
            .fds
            .values()
            .filter_map(|fd| match fd {
                FdEntry::Listener { port } => Some(*port),
                _ => None,
            })
            .collect();
        for (c, e) in chans {
            self.net.add_ref(c, e);
        }
        for port in ports {
            if let Some(l) = self.net.listeners.get_mut(&port) {
                l.refs += 1;
            }
        }

        self.procs.insert(child_pid, child);
        if let Some(p) = self.procs.get_mut(&pid) {
            p.children.push(child_pid);
        }
        // Duplicate hostcall wiring (same image).
        let copies: Vec<(u64, String)> = self
            .hostcall_sites
            .iter()
            .filter(|((p, _), _)| *p == pid)
            .map(|((_, a), n)| (*a, n.clone()))
            .collect();
        for (a, n) in copies {
            self.hostcall_sites.insert((child_pid, a), n);
        }
        self.maybe_trace_fork(pid, child_pid, tid);
        if let Some(a) = &mut self.audit {
            // Fork-propagation audit: a child born outside the mechanism's
            // reach (no inherited liveness, no tracer follow) while the
            // parent was covered is a fork-gap shadow.
            let parent_covered = self.procs.get(&pid).is_some_and(|p| p.interposer_live)
                || self
                    .tracers
                    .get(&pid)
                    .is_some_and(|t| t.opts.trace_syscalls);
            let child_covered = self
                .procs
                .get(&child_pid)
                .is_some_and(|p| p.interposer_live)
                || self
                    .tracers
                    .get(&child_pid)
                    .is_some_and(|t| t.opts.trace_syscalls);
            a.note_fork(child_pid, parent_covered, child_covered);
        }
        child_pid
    }

    pub(crate) fn do_clone_thread(&mut self, pid: Pid, tid: Tid, site: u64, stack: u64) -> u64 {
        let new_tid = self.next_tid;
        self.next_tid += 1;
        let Some(p) = self.procs.get_mut(&pid) else {
            return nr::err(nr::ENOENT);
        };
        let Some(t) = p.thread(tid) else {
            return nr::err(nr::ENOENT);
        };
        let (cpu_clone, sud, frame) = (t.cpu.clone(), t.sud, t.sig_frames.last().copied());
        let mut nt = Thread::new(new_tid);
        nt.cpu = cpu_clone;
        nt.sud = sud;
        // If the clone was forwarded from inside a signal handler (an
        // SUD-based interposer emulating the app's clone), the child must
        // start from the *saved application context*, not from the middle
        // of the handler — the fixup every real SUD interposer implements
        // for clone. We model that corrected behavior here.
        let (resume_rip, base_regs) = match frame {
            Some(f) => {
                let mut rip = [0u8; 8];
                let _ = p.space.read_raw(f + signal::UC_RIP, &mut rip);
                let mut regs = [0u64; 16];
                for (i, r) in regs.iter_mut().enumerate() {
                    let mut b = [0u8; 8];
                    let _ = p
                        .space
                        .read_raw(f + signal::UC_REGS + 8 * i as u64, &mut b);
                    *r = u64::from_le_bytes(b);
                }
                (u64::from_le_bytes(rip), Some(regs))
            }
            None => (site + 2, None),
        };
        if let Some(regs) = base_regs {
            nt.cpu.regs = regs;
        }
        nt.cpu.rip = resume_rip;
        nt.cpu.set(Reg::Rax, 0);
        nt.cpu.set(Reg::Rsp, stack);
        nt.cpu.apply_syscall_clobbers(resume_rip);
        let Some(p) = self.procs.get_mut(&pid) else {
            return nr::err(nr::ENOENT);
        };
        p.threads.push(nt);
        new_tid
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Kernel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nr;
    use sim_isa::{Asm, Reg};

    /// Minimal loader stub for kernel-level tests: maps raw code at a fixed
    /// base with a stack.
    struct RawLoader(Vec<u8>);

    impl ExecLoader for RawLoader {
        fn load(
            &self,
            _vfs: &mut Vfs,
            _path: &str,
            _argv: &[String],
            _env: &[String],
            _opts: &ExecOpts,
        ) -> Result<LoadedImage, i64> {
            let mut space = AddressSpace::new();
            space
                .map(0x1000, 0x10000, sim_mem::Perms::RX, "/bin/raw")
                .map_err(|_| -nr::ENOMEM)?;
            space.write_raw(0x1000, &self.0).map_err(|_| -nr::ENOMEM)?;
            space
                .map(0x8_0000, 0x10000, sim_mem::Perms::RW, "[stack]")
                .map_err(|_| -nr::ENOMEM)?;
            Ok(LoadedImage {
                space,
                entry: 0x1000,
                rsp: 0x9_0000 - 64,
                hostcall_sites: Vec::new(),
                symbols: BTreeMap::new(),
                lib_bases: BTreeMap::new(),
                vdso_base: 0,
            })
        }
    }

    fn kernel_with(code: Vec<u8>) -> (Kernel, Pid) {
        let mut k = Kernel::new();
        k.set_loader(Rc::new(RawLoader(code)));
        let pid = k.spawn("/bin/raw", &[], &[], None).expect("spawn");
        (k, pid)
    }

    /// A blocked syscall resumes in-kernel: exactly one kernel entry is
    /// charged even though the instruction re-executes after the wake.
    #[test]
    fn blocked_syscall_pays_single_kernel_entry() {
        // pipe(fds); read(rfd) [blocks]; parent thread writes after a sleep…
        // simpler: nanosleep-based wake isn't a retry; use a pipe via two
        // threads. Thread A reads (blocks); thread B writes one byte.
        let mut a = Asm::new();
        // pipe(&fds)
        a.mov_imm(Reg::Rdi, 0x8_0100);
        a.mov_imm(Reg::Rax, nr::SYS_PIPE);
        a.syscall();
        // spawn thread B: stack at 0x8_8000, entry seeded on its stack
        a.mov_imm(Reg::Rsi, 0x8_8000);
        a.lea_label(Reg::Rcx, "thread_b");
        a.inst(sim_isa::Inst::Store(Reg::Rsi, 0, Reg::Rcx));
        a.mov_imm(Reg::Rax, nr::SYS_CLONE);
        a.syscall();
        a.test_reg(Reg::Rax, Reg::Rax);
        a.jz("thread_b_entry");
        // thread A: read(rfd, buf, 1) — blocks until B writes.
        a.mov_imm(Reg::R11, 0x8_0100);
        a.inst(sim_isa::Inst::Load(Reg::Rdi, Reg::R11, 0));
        a.shl_imm(Reg::Rdi, 32);
        a.shr_imm(Reg::Rdi, 32);
        a.mov_imm(Reg::Rsi, 0x8_0200);
        a.mov_imm(Reg::Rdx, 1);
        a.mov_imm(Reg::Rax, nr::SYS_READ);
        a.label("read_site");
        a.syscall();
        a.mov_imm(Reg::Rdi, 0);
        a.mov_imm(Reg::Rax, nr::SYS_EXIT_GROUP);
        a.syscall();
        a.label("thread_b_entry");
        a.label("thread_b");
        // burn some time, then write one byte
        a.mov_imm(Reg::Rcx, 500);
        a.label("spin");
        a.sub_imm(Reg::Rcx, 1);
        a.jnz("spin");
        a.mov_imm(Reg::R11, 0x8_0100);
        a.inst(sim_isa::Inst::Load(Reg::Rdi, Reg::R11, 0));
        a.shr_imm(Reg::Rdi, 32);
        a.mov_imm(Reg::Rsi, 0x8_0200);
        a.mov_imm(Reg::Rdx, 1);
        a.mov_imm(Reg::Rax, nr::SYS_WRITE);
        a.syscall();
        a.label("halt");
        a.jmp("halt");
        let prog = a.finish_program();
        let read_site = 0x1000 + prog.sym("read_site");
        let (mut k, pid) = kernel_with(prog.bytes);
        let exit = k.run(10_000_000_000);
        assert_eq!(exit, RunExit::AllExited);
        let p = k.process(pid).expect("proc");
        assert_eq!(p.exit_status, Some(0));
        // The read executed exactly once in the stats even though it blocked
        // and retried.
        assert_eq!(p.stats.syscalls_at_site(read_site), 1);
    }

    /// Deferred writes land exactly at their due time.
    #[test]
    fn deferred_write_lands_on_schedule() {
        let mut a = Asm::new();
        a.label("loop");
        a.mov_imm(Reg::R11, 0x8_0300);
        a.inst(sim_isa::Inst::Load(Reg::Rax, Reg::R11, 0));
        a.cmp_imm(Reg::Rax, 0);
        a.jz("loop");
        a.mov_imm(Reg::Rdi, 7);
        a.mov_imm(Reg::Rax, nr::SYS_EXIT_GROUP);
        a.syscall();
        let (mut k, pid) = kernel_with(a.finish());
        k.defer_write_u8(pid, 0x8_0300, 1, 5_000);
        let exit = k.run(10_000_000_000);
        assert_eq!(exit, RunExit::AllExited);
        assert_eq!(k.process(pid).unwrap().exit_status, Some(7));
        assert!(k.clock >= 5_000);
    }

    /// Emits `pipe(&0x8_0100)`, one byte written into it, and an epoll
    /// instance watching the read end with `events`. Leaves rfd in r12,
    /// wfd in r13, epfd in rbp.
    fn emit_watched_pipe(a: &mut Asm, events: u64) {
        a.mov_imm(Reg::Rdi, 0x8_0100);
        a.mov_imm(Reg::Rax, nr::SYS_PIPE);
        a.syscall();
        a.mov_imm(Reg::R11, 0x8_0100);
        a.inst(sim_isa::Inst::Load(Reg::R12, Reg::R11, 0));
        a.mov_reg(Reg::R13, Reg::R12);
        a.shl_imm(Reg::R12, 32);
        a.shr_imm(Reg::R12, 32); // rfd
        a.shr_imm(Reg::R13, 32); // wfd
        a.mov_reg(Reg::Rdi, Reg::R13);
        a.mov_imm(Reg::Rsi, 0x8_0200);
        a.mov_imm(Reg::Rdx, 1);
        a.mov_imm(Reg::Rax, nr::SYS_WRITE);
        a.syscall();
        a.mov_imm(Reg::Rdi, 0);
        a.mov_imm(Reg::Rax, nr::SYS_EPOLL_CREATE1);
        a.syscall();
        a.mov_reg(Reg::Rbp, Reg::Rax);
        a.mov_reg(Reg::Rdi, Reg::Rbp);
        a.mov_imm(Reg::Rsi, nr::EPOLL_CTL_ADD);
        a.mov_reg(Reg::Rdx, Reg::R12);
        a.mov_imm(Reg::R10, events);
        a.mov_imm(Reg::Rax, nr::SYS_EPOLL_CTL);
        a.syscall();
    }

    /// `epoll_wait(rbp, 0x8_0400, 8)`; exits with `bad` unless it
    /// returned exactly one event.
    fn emit_wait_expect_one(a: &mut Asm, bad: u64, ok: &str) {
        a.mov_reg(Reg::Rdi, Reg::Rbp);
        a.mov_imm(Reg::Rsi, 0x8_0400);
        a.mov_imm(Reg::Rdx, 8);
        a.mov_imm(Reg::Rax, nr::SYS_EPOLL_WAIT);
        a.syscall();
        a.cmp_imm(Reg::Rax, 1);
        a.jz(ok);
        a.mov_imm(Reg::Rdi, bad);
        a.mov_imm(Reg::Rax, nr::SYS_EXIT_GROUP);
        a.syscall();
        a.label(ok);
    }

    /// Level-triggered interest re-delivers as long as the fd stays
    /// readable: two consecutive waits without draining both return the
    /// event.
    #[test]
    fn level_triggered_epoll_redelivers_until_drained() {
        let mut a = Asm::new();
        emit_watched_pipe(&mut a, nr::EPOLLIN);
        emit_wait_expect_one(&mut a, 1, "w1");
        emit_wait_expect_one(&mut a, 2, "w2");
        // The delivered record is [fd u64][events u64] with our rfd.
        a.mov_imm(Reg::R11, 0x8_0400);
        a.inst(sim_isa::Inst::Load(Reg::Rcx, Reg::R11, 0));
        a.cmp_reg(Reg::Rcx, Reg::R12);
        a.jz("fd_ok");
        a.mov_imm(Reg::Rdi, 3);
        a.mov_imm(Reg::Rax, nr::SYS_EXIT_GROUP);
        a.syscall();
        a.label("fd_ok");
        a.mov_imm(Reg::Rdi, 0);
        a.mov_imm(Reg::Rax, nr::SYS_EXIT_GROUP);
        a.syscall();
        let (mut k, pid) = kernel_with(a.finish());
        assert_eq!(k.run(10_000_000_000), RunExit::AllExited);
        assert_eq!(k.process(pid).unwrap().exit_status, Some(0));
    }

    /// Edge-triggered interest fires once per not-ready -> ready
    /// transition: the second wait on undrained data parks forever, and a
    /// drain + rewrite produces a fresh edge.
    #[test]
    fn edge_triggered_epoll_fires_once_per_edge() {
        let mut a = Asm::new();
        emit_watched_pipe(&mut a, nr::EPOLLIN | nr::EPOLLET);
        emit_wait_expect_one(&mut a, 1, "w1");
        // Drain the byte (readiness drops: the edge re-arms), write a new
        // one, and expect a second delivery.
        a.mov_reg(Reg::Rdi, Reg::R12);
        a.mov_imm(Reg::Rsi, 0x8_0200);
        a.mov_imm(Reg::Rdx, 1);
        a.mov_imm(Reg::Rax, nr::SYS_READ);
        a.syscall();
        a.mov_reg(Reg::Rdi, Reg::R13);
        a.mov_imm(Reg::Rsi, 0x8_0200);
        a.mov_imm(Reg::Rdx, 1);
        a.mov_imm(Reg::Rax, nr::SYS_WRITE);
        a.syscall();
        emit_wait_expect_one(&mut a, 2, "w2");
        // Same edge again, no drain: this wait must park forever.
        a.mov_reg(Reg::Rdi, Reg::Rbp);
        a.mov_imm(Reg::Rsi, 0x8_0400);
        a.mov_imm(Reg::Rdx, 8);
        a.mov_imm(Reg::Rax, nr::SYS_EPOLL_WAIT);
        a.syscall();
        a.mov_imm(Reg::Rdi, 9);
        a.mov_imm(Reg::Rax, nr::SYS_EXIT_GROUP);
        a.syscall();
        let (mut k, pid) = kernel_with(a.finish());
        assert_eq!(k.run(10_000_000_000), RunExit::Deadlock);
        // Parked, not exited: the checks before the final wait passed.
        assert_eq!(k.process(pid).unwrap().exit_status, None);
    }

    /// EPOLLONESHOT disarms after one delivery (the second wait parks on
    /// still-readable data) and EPOLL_CTL_MOD re-arms.
    #[test]
    fn epoll_oneshot_disarms_until_mod_rearms() {
        let mut a = Asm::new();
        emit_watched_pipe(&mut a, nr::EPOLLIN | nr::EPOLLONESHOT);
        emit_wait_expect_one(&mut a, 1, "w1");
        // Re-arm with MOD; level-triggered readiness redelivers.
        a.mov_reg(Reg::Rdi, Reg::Rbp);
        a.mov_imm(Reg::Rsi, nr::EPOLL_CTL_MOD);
        a.mov_reg(Reg::Rdx, Reg::R12);
        a.mov_imm(Reg::R10, nr::EPOLLIN | nr::EPOLLONESHOT);
        a.mov_imm(Reg::Rax, nr::SYS_EPOLL_CTL);
        a.syscall();
        emit_wait_expect_one(&mut a, 2, "w2");
        // Disarmed again, still readable: park forever.
        a.mov_reg(Reg::Rdi, Reg::Rbp);
        a.mov_imm(Reg::Rsi, 0x8_0400);
        a.mov_imm(Reg::Rdx, 8);
        a.mov_imm(Reg::Rax, nr::SYS_EPOLL_WAIT);
        a.syscall();
        a.mov_imm(Reg::Rdi, 9);
        a.mov_imm(Reg::Rax, nr::SYS_EXIT_GROUP);
        a.syscall();
        let (mut k, pid) = kernel_with(a.finish());
        assert_eq!(k.run(10_000_000_000), RunExit::Deadlock);
        assert_eq!(k.process(pid).unwrap().exit_status, None);
    }

    /// Closing a watched fd removes it from every interest set: a
    /// subsequent DEL reports ENOENT, ADD on a never-open fd reports
    /// EBADF, and a wait on the emptied instance parks despite the byte
    /// still sitting in the (now closed) pipe.
    #[test]
    fn epoll_on_closed_fd_is_removed_and_rejected() {
        let mut a = Asm::new();
        emit_watched_pipe(&mut a, nr::EPOLLIN);
        a.mov_reg(Reg::Rdi, Reg::R12);
        a.mov_imm(Reg::Rax, nr::SYS_CLOSE);
        a.syscall();
        // DEL on the closed fd: the close already dropped the entry AND
        // the fd, so the fd lookup itself reports EBADF.
        a.mov_reg(Reg::Rdi, Reg::Rbp);
        a.mov_imm(Reg::Rsi, nr::EPOLL_CTL_DEL);
        a.mov_reg(Reg::Rdx, Reg::R12);
        a.mov_imm(Reg::R10, 0);
        a.mov_imm(Reg::Rax, nr::SYS_EPOLL_CTL);
        a.syscall();
        a.cmp_imm(Reg::Rax, -(nr::EBADF as i32));
        a.jz("del_ok");
        a.mov_imm(Reg::Rdi, 1);
        a.mov_imm(Reg::Rax, nr::SYS_EXIT_GROUP);
        a.syscall();
        a.label("del_ok");
        // ADD on a never-open fd: EBADF.
        a.mov_reg(Reg::Rdi, Reg::Rbp);
        a.mov_imm(Reg::Rsi, nr::EPOLL_CTL_ADD);
        a.mov_imm(Reg::Rdx, 99);
        a.mov_imm(Reg::R10, nr::EPOLLIN);
        a.mov_imm(Reg::Rax, nr::SYS_EPOLL_CTL);
        a.syscall();
        a.cmp_imm(Reg::Rax, -(nr::EBADF as i32));
        a.jz("add_ok");
        a.mov_imm(Reg::Rdi, 2);
        a.mov_imm(Reg::Rax, nr::SYS_EXIT_GROUP);
        a.syscall();
        a.label("add_ok");
        // Empty interest set: the wait parks forever.
        a.mov_reg(Reg::Rdi, Reg::Rbp);
        a.mov_imm(Reg::Rsi, 0x8_0400);
        a.mov_imm(Reg::Rdx, 8);
        a.mov_imm(Reg::Rax, nr::SYS_EPOLL_WAIT);
        a.syscall();
        a.mov_imm(Reg::Rdi, 9);
        a.mov_imm(Reg::Rax, nr::SYS_EXIT_GROUP);
        a.syscall();
        let (mut k, pid) = kernel_with(a.finish());
        assert_eq!(k.run(10_000_000_000), RunExit::Deadlock);
        assert_eq!(k.process(pid).unwrap().exit_status, None);
    }
}
