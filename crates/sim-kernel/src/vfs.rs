//! An in-memory virtual filesystem.
//!
//! Holds guest binaries (serialized SimElf images), configuration, workload
//! data, and K23's offline log directory — which can be marked **immutable**
//! once the offline phase completes, exactly as the paper hardens its logs
//! (§5.3).

use crate::nr::{self, err};
use std::collections::BTreeMap;

/// Node identifier within a [`Vfs`].
pub type NodeId = usize;

#[derive(Debug, Clone)]
enum Node {
    File { data: Vec<u8>, immutable: bool },
    Dir { entries: BTreeMap<String, NodeId>, immutable: bool },
}

/// The in-memory filesystem.
#[derive(Debug, Clone)]
pub struct Vfs {
    nodes: Vec<Node>,
}

impl Default for Vfs {
    fn default() -> Self {
        Vfs::new()
    }
}

fn split_path(path: &str) -> Vec<&str> {
    path.split('/').filter(|c| !c.is_empty() && *c != ".").collect()
}

impl Vfs {
    /// A filesystem containing only the root directory.
    pub fn new() -> Vfs {
        Vfs {
            nodes: vec![Node::Dir {
                entries: BTreeMap::new(),
                immutable: false,
            }],
        }
    }

    fn resolve(&self, path: &str) -> Option<NodeId> {
        let mut cur = 0;
        for comp in split_path(path) {
            match &self.nodes[cur] {
                Node::Dir { entries, .. } => cur = *entries.get(comp)?,
                Node::File { .. } => return None,
            }
        }
        Some(cur)
    }

    fn resolve_parent(&self, path: &str) -> Option<(NodeId, String)> {
        let comps = split_path(path);
        let (last, dirs) = comps.split_last()?;
        let mut cur = 0;
        for comp in dirs {
            match &self.nodes[cur] {
                Node::Dir { entries, .. } => cur = *entries.get(*comp)?,
                Node::File { .. } => return None,
            }
        }
        Some((cur, last.to_string()))
    }

    /// True if `path` exists.
    pub fn exists(&self, path: &str) -> bool {
        self.resolve(path).is_some()
    }

    /// True if `path` is a directory.
    pub fn is_dir(&self, path: &str) -> bool {
        matches!(
            self.resolve(path).map(|id| &self.nodes[id]),
            Some(Node::Dir { .. })
        )
    }

    /// Creates a directory (and any missing ancestors).
    ///
    /// # Errors
    ///
    /// Returns `-ENOTDIR` if a path component already exists as a file.
    pub fn mkdir_p(&mut self, path: &str) -> Result<(), u64> {
        let mut cur = 0;
        for comp in split_path(path) {
            let next = match &self.nodes[cur] {
                Node::Dir { entries, .. } => entries.get(comp).copied(),
                Node::File { .. } => return Err(err(nr::ENOTDIR)),
            };
            cur = match next {
                Some(id) => id,
                None => {
                    let id = self.nodes.len();
                    self.nodes.push(Node::Dir {
                        entries: BTreeMap::new(),
                        immutable: false,
                    });
                    match &mut self.nodes[cur] {
                        Node::Dir { entries, .. } => {
                            entries.insert(comp.to_string(), id);
                        }
                        Node::File { .. } => unreachable!(),
                    }
                    id
                }
            };
        }
        Ok(())
    }

    /// Writes (creates or truncates) a file, creating parent directories.
    ///
    /// # Errors
    ///
    /// Returns `-EPERM` if the file or its directory is immutable.
    pub fn write_file(&mut self, path: &str, data: &[u8]) -> Result<(), u64> {
        if let Some((dir, _)) = self.resolve_parent(path) {
            if let Node::Dir { immutable: true, .. } = &self.nodes[dir] {
                return Err(err(nr::EPERM));
            }
        } else {
            // Create ancestors then retry parent resolution.
            let comps = split_path(path);
            if comps.len() > 1 {
                let parent = comps[..comps.len() - 1].join("/");
                self.mkdir_p(&parent)?;
            }
        }
        let (dir, name) = self.resolve_parent(path).ok_or(err(nr::ENOENT))?;
        if let Node::Dir { immutable: true, .. } = &self.nodes[dir] {
            return Err(err(nr::EPERM));
        }
        if let Some(id) = self.resolve(path) {
            match &mut self.nodes[id] {
                Node::File { data: d, immutable } => {
                    if *immutable {
                        return Err(err(nr::EPERM));
                    }
                    *d = data.to_vec();
                    return Ok(());
                }
                Node::Dir { .. } => return Err(err(nr::EISDIR)),
            }
        }
        let id = self.nodes.len();
        self.nodes.push(Node::File {
            data: data.to_vec(),
            immutable: false,
        });
        match &mut self.nodes[dir] {
            Node::Dir { entries, .. } => {
                entries.insert(name, id);
            }
            Node::File { .. } => return Err(err(nr::ENOTDIR)),
        }
        Ok(())
    }

    /// Appends to a file, creating it if missing.
    ///
    /// # Errors
    ///
    /// Returns `-EPERM` on immutable targets.
    pub fn append_file(&mut self, path: &str, data: &[u8]) -> Result<(), u64> {
        if let Some(id) = self.resolve(path) {
            match &mut self.nodes[id] {
                Node::File { data: d, immutable } => {
                    if *immutable {
                        return Err(err(nr::EPERM));
                    }
                    d.extend_from_slice(data);
                    Ok(())
                }
                Node::Dir { .. } => Err(err(nr::EISDIR)),
            }
        } else {
            self.write_file(path, data)
        }
    }

    /// Reads a file's contents.
    ///
    /// # Errors
    ///
    /// `-ENOENT` if missing, `-EISDIR` for directories.
    pub fn read_file(&self, path: &str) -> Result<&[u8], u64> {
        let id = self.resolve(path).ok_or(err(nr::ENOENT))?;
        match &self.nodes[id] {
            Node::File { data, .. } => Ok(data),
            Node::Dir { .. } => Err(err(nr::EISDIR)),
        }
    }

    /// Directory entries (names) of `path`.
    ///
    /// # Errors
    ///
    /// `-ENOENT`/`-ENOTDIR`.
    pub fn read_dir(&self, path: &str) -> Result<Vec<String>, u64> {
        let id = self.resolve(path).ok_or(err(nr::ENOENT))?;
        match &self.nodes[id] {
            Node::Dir { entries, .. } => Ok(entries.keys().cloned().collect()),
            Node::File { .. } => Err(err(nr::ENOTDIR)),
        }
    }

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// `-ENOENT`, `-EPERM` (immutable), `-EISDIR`.
    pub fn unlink(&mut self, path: &str) -> Result<(), u64> {
        let (dir, name) = self.resolve_parent(path).ok_or(err(nr::ENOENT))?;
        let id = match &self.nodes[dir] {
            Node::Dir {
                entries,
                immutable,
            } => {
                if *immutable {
                    return Err(err(nr::EPERM));
                }
                *entries.get(&name).ok_or(err(nr::ENOENT))?
            }
            Node::File { .. } => return Err(err(nr::ENOTDIR)),
        };
        match &self.nodes[id] {
            Node::File { immutable: true, .. } => return Err(err(nr::EPERM)),
            Node::Dir { .. } => return Err(err(nr::EISDIR)),
            Node::File { .. } => {}
        }
        match &mut self.nodes[dir] {
            Node::Dir { entries, .. } => {
                entries.remove(&name);
            }
            Node::File { .. } => unreachable!(),
        }
        Ok(())
    }

    /// Marks a file or directory (recursively) immutable — the `chattr +i`
    /// K23 applies to its offline log directory (§5.3).
    pub fn set_immutable(&mut self, path: &str, value: bool) -> Result<(), u64> {
        let id = self.resolve(path).ok_or(err(nr::ENOENT))?;
        let mut stack = vec![id];
        while let Some(id) = stack.pop() {
            match &mut self.nodes[id] {
                Node::File { immutable, .. } => *immutable = value,
                Node::Dir {
                    immutable,
                    entries,
                } => {
                    *immutable = value;
                    stack.extend(entries.values().copied());
                }
            }
        }
        Ok(())
    }

    /// File length.
    ///
    /// # Errors
    ///
    /// `-ENOENT`/`-EISDIR`.
    pub fn file_len(&self, path: &str) -> Result<u64, u64> {
        Ok(self.read_file(path)?.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let mut v = Vfs::new();
        v.write_file("/etc/nginx/nginx.conf", b"worker_processes 1;")
            .unwrap();
        assert_eq!(v.read_file("/etc/nginx/nginx.conf").unwrap(), b"worker_processes 1;");
        assert!(v.is_dir("/etc/nginx"));
        assert!(v.exists("/etc"));
    }

    #[test]
    fn missing_file_enoent() {
        let v = Vfs::new();
        assert_eq!(v.read_file("/nope").unwrap_err(), err(nr::ENOENT));
    }

    #[test]
    fn append_creates_and_extends() {
        let mut v = Vfs::new();
        v.append_file("/log", b"a").unwrap();
        v.append_file("/log", b"b").unwrap();
        assert_eq!(v.read_file("/log").unwrap(), b"ab");
    }

    #[test]
    fn immutable_blocks_writes_unlink_and_creation() {
        let mut v = Vfs::new();
        v.write_file("/k23/logs/ls.log", b"x").unwrap();
        v.set_immutable("/k23/logs", true).unwrap();
        assert_eq!(v.write_file("/k23/logs/ls.log", b"y").unwrap_err(), err(nr::EPERM));
        assert_eq!(v.append_file("/k23/logs/ls.log", b"y").unwrap_err(), err(nr::EPERM));
        assert_eq!(v.unlink("/k23/logs/ls.log").unwrap_err(), err(nr::EPERM));
        assert_eq!(v.write_file("/k23/logs/new.log", b"z").unwrap_err(), err(nr::EPERM));
        // Contents untouched.
        assert_eq!(v.read_file("/k23/logs/ls.log").unwrap(), b"x");
        // And can be lifted.
        v.set_immutable("/k23/logs", false).unwrap();
        assert!(v.write_file("/k23/logs/ls.log", b"y").is_ok());
    }

    #[test]
    fn read_dir_lists() {
        let mut v = Vfs::new();
        v.write_file("/dir/a", b"").unwrap();
        v.write_file("/dir/b", b"").unwrap();
        assert_eq!(v.read_dir("/dir").unwrap(), vec!["a", "b"]);
        assert_eq!(v.read_dir("/dir/a").unwrap_err(), err(nr::ENOTDIR));
    }

    #[test]
    fn unlink_removes() {
        let mut v = Vfs::new();
        v.write_file("/f", b"1").unwrap();
        v.unlink("/f").unwrap();
        assert!(!v.exists("/f"));
        assert_eq!(v.unlink("/f").unwrap_err(), err(nr::ENOENT));
    }
}
