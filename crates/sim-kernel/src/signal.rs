//! Signal frame layout.
//!
//! When the kernel delivers a signal to a registered handler it pushes a
//! frame onto the thread's stack containing the saved context (ucontext) and
//! the siginfo. The handler receives:
//!
//! * `rdi` = signal number
//! * `rsi` = pointer to the siginfo block
//! * `rdx` = pointer to the ucontext (== frame base)
//!
//! Handlers may *modify* the saved context in guest memory before calling
//! `rt_sigreturn` — this is how SUD-based interposers perform the
//! "interposer logic entirely outside the signal handler by modifying the
//! signal context directly" trick (paper §2.1): e.g. writing the emulated
//! syscall's return value into the saved `rax` slot.

use sim_isa::Reg;

/// Byte offset of the saved resume `rip` within the frame.
pub const UC_RIP: u64 = 0;
/// Byte offset of the saved packed flags.
pub const UC_FLAGS: u64 = 8;
/// Byte offset of the saved PKRU value.
pub const UC_PKRU: u64 = 16;
/// Byte offset of the saved general-purpose registers (16 × u64, indexed by
/// [`Reg::index`]).
pub const UC_REGS: u64 = 24;
/// Byte offset of `si_signo`.
pub const SI_SIGNO: u64 = 152;
/// Byte offset of `si_syscall` (the syscall number, for SIGSYS).
pub const SI_SYSCALL: u64 = 160;
/// Byte offset of `si_call_addr` (address of the trapping `syscall`
/// instruction, for SIGSYS — what lazypoline rewrites).
pub const SI_CALL_ADDR: u64 = 168;
/// Byte offset of `si_fault_addr` (for SIGSEGV).
pub const SI_FAULT_ADDR: u64 = 176;
/// Total frame size (16-byte aligned).
pub const FRAME_SIZE: u64 = 192;

/// Offset of a specific saved register within the frame.
pub const fn uc_reg(r: Reg) -> u64 {
    UC_REGS + 8 * r.index() as u64
}

/// The siginfo payload stored in a frame.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SigInfo {
    /// Signal number.
    pub signo: u64,
    /// Trapping syscall number (SIGSYS).
    pub syscall: u64,
    /// Address of the trapping syscall instruction (SIGSYS).
    pub call_addr: u64,
    /// Faulting data address (SIGSEGV).
    pub fault_addr: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_layout_is_disjoint_and_fits() {
        // Bind through locals so the layout relations are checked as values
        // (and clippy does not fold them away as constant assertions).
        let (rip, flags) = (UC_RIP, UC_FLAGS);
        assert!(rip < flags);
        assert_eq!(uc_reg(Reg::Rax), 24);
        assert_eq!(uc_reg(Reg::R15), 24 + 8 * 15);
        let (last_reg_end, signo) = (uc_reg(Reg::R15) + 8, SI_SIGNO);
        assert!(last_reg_end <= signo);
        let (fault_end, size) = (SI_FAULT_ADDR + 8, FRAME_SIZE);
        assert!(fault_end <= size);
        assert_eq!(size % 16, 0);
    }
}
