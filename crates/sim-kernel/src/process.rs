//! Processes, threads, file descriptors, and per-thread SUD state.

use sim_cpu::Cpu;
use sim_mem::AddressSpace;
use std::collections::BTreeMap;

/// Process identifier.
pub type Pid = u64;
/// Thread identifier (global, not per-process).
pub type Tid = u64;

/// Per-thread Syscall User Dispatch configuration (the `prctl` interface,
/// paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sud {
    /// Guest address of the selector byte (0 = allow, 1 = block).
    pub selector_addr: u64,
    /// Start of the allowlisted range that always bypasses dispatch.
    pub range_start: u64,
    /// Length of the allowlisted range.
    pub range_len: u64,
}

impl Sud {
    /// True if a syscall issued from `rip` bypasses dispatch regardless of
    /// the selector.
    pub fn in_allowlist(&self, rip: u64) -> bool {
        rip >= self.range_start && rip < self.range_start.saturating_add(self.range_len)
    }
}

/// A seccomp filter action for one syscall number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeccompAction {
    /// Let the syscall run.
    Allow,
    /// Fail the syscall with `-errno` without executing it.
    Errno(i64),
    /// Kill the process (SECCOMP_RET_KILL_PROCESS).
    Kill,
}

/// A minimal seccomp filter: per-number actions plus a default.
#[derive(Debug, Clone)]
pub struct SeccompFilter {
    /// Actions for specific syscall numbers.
    pub rules: std::collections::BTreeMap<u64, SeccompAction>,
    /// Action for numbers not in `rules`.
    pub default: SeccompAction,
}

impl SeccompFilter {
    /// The action for syscall `nr`.
    pub fn action(&self, nr: u64) -> SeccompAction {
        self.rules.get(&nr).copied().unwrap_or(self.default)
    }
}

/// A registered signal handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SigAction {
    /// Guest address of the handler entry point.
    pub handler: u64,
    /// Registered with [`crate::nr::SIGACT_MASK_ALL`]: while this handler
    /// runs, further asynchronous signals queue until `rt_sigreturn`
    /// (the simplified stand-in for `sa_mask = all`). Synchronous faults
    /// (SIGSEGV, SIGSYS) still deliver immediately.
    pub mask_all: bool,
}

/// What a blocked thread is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wait {
    /// Readable data (or EOF) on a channel end.
    ChannelReadable {
        /// Channel index in the kernel's channel table.
        chan: usize,
        /// Which end this thread reads from.
        end: crate::net::End,
    },
    /// A connection arriving on a listening port.
    Accept {
        /// The listening port.
        port: u16,
    },
    /// Any child to exit (`wait4`).
    Child,
    /// The global clock to reach a deadline (`nanosleep`).
    Sleep {
        /// Absolute cycle deadline.
        until: u64,
    },
    /// A futex wake on the given guest address.
    Futex {
        /// The futex word address.
        addr: u64,
    },
    /// Buffer space to write into a channel end (bounded buffers).
    ChannelWritable {
        /// Channel index in the kernel's channel table.
        chan: usize,
        /// Which end this thread writes from.
        end: crate::net::End,
    },
    /// Room in a listening port's accept backlog (`connect` on a full
    /// backlog parks until an `accept` drains a slot).
    Backlog {
        /// The listening port.
        port: u16,
    },
    /// Readiness on any member of an epoll interest set. Deliberately
    /// payload-free: readiness transitions wake *all* epoll waiters, which
    /// deterministically recompute their ready sets and re-block if still
    /// empty (spurious wakeups are cheap; waiter bookkeeping is not).
    Epoll,
    /// A nonzero eventfd counter (`read` on an empty eventfd).
    EventFd {
        /// Eventfd object index in the owning process.
        id: usize,
    },
}

/// Thread run state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Eligible to run.
    Runnable,
    /// Waiting on [`Wait`].
    Blocked(Wait),
    /// Finished.
    Exited,
}

/// A guest thread: one CPU core's worth of state plus kernel bookkeeping.
#[derive(Debug, Clone)]
pub struct Thread {
    /// Global thread id.
    pub tid: Tid,
    /// Architectural state.
    pub cpu: Cpu,
    /// Run state.
    pub state: ThreadState,
    /// SUD configuration, if armed. Arming puts *every* kernel entry by this
    /// thread on the slow path (paper §6.2.1).
    pub sud: Option<Sud>,
    /// Stack of live signal-frame base addresses (innermost last).
    pub sig_frames: Vec<u64>,
    /// Parallel to `sig_frames`: whether each live frame's handler was
    /// registered with `SIGACT_MASK_ALL` (defers async signals).
    pub frame_masked: Vec<bool>,
    /// Asynchronous signals deferred while a masking handler runs,
    /// delivered FIFO at `rt_sigreturn`.
    pub pending_signals: Vec<crate::signal::SigInfo>,
    /// Set while the thread is re-executing a syscall it blocked in: the
    /// retry resumes *in-kernel* (no second entry cost, no re-dispatch).
    pub restarting: bool,
}

impl Thread {
    /// A fresh runnable thread.
    pub fn new(tid: Tid) -> Thread {
        Thread {
            tid,
            cpu: Cpu::new(),
            state: ThreadState::Runnable,
            sud: None,
            sig_frames: Vec::new(),
            frame_masked: Vec::new(),
            pending_signals: Vec::new(),
            restarting: false,
        }
    }
}

/// One open file description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdEntry {
    /// Console (stdin reads EOF; stdout/stderr append to the process's
    /// captured output).
    Console,
    /// A VFS-backed file.
    File {
        /// Absolute path.
        path: String,
        /// Read/write offset.
        offset: u64,
    },
    /// A snapshot pseudo-file (e.g. `/proc/$PID/maps` captured at open).
    Snapshot {
        /// Contents frozen at open time.
        data: Vec<u8>,
        /// Read offset.
        offset: u64,
    },
    /// Read end of a pipe/socketpair channel.
    ChannelRead {
        /// Channel index.
        chan: usize,
        /// Which end.
        end: crate::net::End,
    },
    /// Write end of a channel.
    ChannelWrite {
        /// Channel index.
        chan: usize,
        /// Which end.
        end: crate::net::End,
    },
    /// A connected socket (bidirectional channel end).
    Socket {
        /// Channel index.
        chan: usize,
        /// Which end.
        end: crate::net::End,
    },
    /// An unbound/unconnected socket placeholder.
    SocketUnbound,
    /// A listening socket.
    Listener {
        /// Bound port.
        port: u16,
    },
    /// An epoll instance (readiness multiplexer).
    Epoll {
        /// Index into the owning process's `epolls` table.
        id: usize,
    },
    /// An eventfd counter object.
    EventFd {
        /// Index into the owning process's `eventfds` table.
        id: usize,
    },
}

/// One fd's membership in an epoll interest set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EpollEntry {
    /// Requested event mask (`EPOLLIN`/`EPOLLOUT` plus `EPOLLET` /
    /// `EPOLLONESHOT` modifiers).
    pub events: u64,
    /// Cleared by a delivered `EPOLLONESHOT` event until re-armed via
    /// `EPOLL_CTL_MOD`.
    pub armed: bool,
    /// Edge-trigger memory: bits already reported while continuously
    /// ready. A bit leaves this set when the fd stops being ready for it,
    /// re-arming the edge.
    pub seen: u64,
}

/// An epoll instance: interest set keyed by member fd (BTreeMap iteration
/// order makes `epoll_wait` output deterministic and fd-ordered).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Epoll {
    /// Member fd → registration.
    pub interest: BTreeMap<i64, EpollEntry>,
    /// Open descriptor count (dup shares the instance).
    pub refs: u32,
}

/// Per-process statistics (observability for tests and experiments).
#[derive(Debug, Clone, Default)]
pub struct ProcStats {
    /// Syscalls the kernel executed on behalf of this process.
    pub syscalls: u64,
    /// Executed syscalls broken down by number.
    pub per_syscall: std::collections::BTreeMap<u64, u64>,
    /// Executed syscalls broken down by the region containing the issuing
    /// `syscall` instruction. Syscalls attributed to an interposer library's
    /// region were, by construction, interposed — the measurement the
    /// pitfall matrix uses.
    pub syscalls_via: std::collections::BTreeMap<String, u64>,
    /// Executed syscalls broken down by exact issuing site address.
    pub per_site: std::collections::BTreeMap<u64, u64>,
    /// Syscalls executed before the process's interposer announced itself
    /// (see [`Process::interposer_live`]); the P2b metric.
    pub syscalls_before_interposer: u64,
    /// SIGSYS deliveries (SUD traps).
    pub sigsys_count: u64,
    /// vDSO fast-path calls (never enter the kernel).
    pub vdso_calls: u64,
    /// Signal deliveries of any kind.
    pub signals: u64,
}

impl ProcStats {
    /// Executed count of one syscall number.
    pub fn syscall_count_of(&self, nr: u64) -> u64 {
        self.per_syscall.get(&nr).copied().unwrap_or(0)
    }

    /// Executed syscalls whose issuing instruction lives in `region`.
    pub fn syscalls_via_region(&self, region: &str) -> u64 {
        self.syscalls_via.get(region).copied().unwrap_or(0)
    }

    /// Executed syscalls issued from the exact instruction at `site`.
    pub fn syscalls_at_site(&self, site: u64) -> u64 {
        self.per_site.get(&site).copied().unwrap_or(0)
    }

    /// Number of distinct `syscall` instruction addresses that executed —
    /// the Table 2 metric.
    pub fn unique_sites(&self) -> usize {
        self.per_site.len()
    }
}

/// A guest process.
#[derive(Debug, Clone)]
pub struct Process {
    /// Process id.
    pub pid: Pid,
    /// Parent pid (0 for the initial process).
    pub ppid: Pid,
    /// Executable path (latest `execve`).
    pub exe: String,
    /// Address space (shared by all threads).
    pub space: AddressSpace,
    /// Threads (index 0 is the main thread).
    pub threads: Vec<Thread>,
    /// Open file descriptors.
    pub fds: BTreeMap<i64, FdEntry>,
    next_fd: i64,
    /// Environment (`KEY=value` strings), as passed to `execve`.
    pub env: Vec<String>,
    /// Arguments.
    pub argv: Vec<String>,
    /// Working directory.
    pub cwd: String,
    /// Registered signal handlers.
    pub sigactions: BTreeMap<u64, SigAction>,
    /// Exit status once the process has fully exited.
    pub exit_status: Option<i64>,
    /// Children that exited and have not been reaped: (pid, status).
    pub zombies: Vec<(Pid, i64)>,
    /// Live children.
    pub children: Vec<Pid>,
    /// Captured stdout/stderr bytes.
    pub output: Vec<u8>,
    /// Next protection key for `pkey_alloc`.
    pub next_pkey: u8,
    /// Statistics.
    pub stats: ProcStats,
    /// Set by interposers once their in-process component is initialized;
    /// used to measure how many syscalls escaped before that point (P2b).
    pub interposer_live: bool,
    /// Whether vDSO acceleration is enabled for this image (a tracer can
    /// disable it at exec so vDSO calls fall back to real syscalls, §5.2).
    pub vdso_enabled: bool,
    /// Base address of the mapped vDSO (0 when absent).
    pub vdso_base: u64,
    /// Symbol table of the loaded image: `"region:symbol"` → vaddr.
    pub symbols: BTreeMap<String, u64>,
    /// Base address of each loaded region, keyed by region name.
    pub lib_bases: BTreeMap<String, u64>,
    /// Installed seccomp filter, if any (checked on every dispatch; like
    /// Linux, it cannot be removed once installed).
    pub seccomp: Option<SeccompFilter>,
    /// Active-layer bitmask of the installed interposer stack: bit *i*
    /// set means layer *i* of the session interposes this process. Zero
    /// (the default) leaves the chain inert. Fork/execve filter it by the
    /// layers' propagation flags.
    pub stack_mask: u64,
    /// Cached chain-site resolution for the stack's site filter:
    /// `(symbols.len() key, sorted site addresses)`, invalidated on exec
    /// and whenever the symbol table changes size.
    pub(crate) chain_sites: Option<(usize, Vec<u64>)>,
    /// Memoized `site → containing-region name` for per-syscall accounting:
    /// `site → (space generation, region name)`. Entries are valid only
    /// while the space generation is unchanged, so mapping churn can never
    /// yield stale attribution.
    pub(crate) region_cache: sim_cpu::FastMap<u64, (u64, String)>,
    /// Lazily built address-sorted symbol table for profiler
    /// symbolization, keyed by `symbols.len()` for invalidation and
    /// explicitly cleared on exec.
    pub(crate) symcache: Option<(usize, Vec<(u64, String)>)>,
    /// Epoll instances owned by this process, keyed by the `id` inside
    /// `FdEntry::Epoll`. Slots persist after close (ids stay stable);
    /// `refs == 0` marks a dead instance.
    pub epolls: BTreeMap<usize, Epoll>,
    /// Next epoll instance id.
    pub(crate) next_epoll: usize,
    /// Eventfd counters, keyed by the `id` inside `FdEntry::EventFd`:
    /// `(counter value, open descriptor count)`.
    pub eventfds: BTreeMap<usize, (u64, u32)>,
    /// Next eventfd id.
    pub(crate) next_eventfd: usize,
    /// Fds with `O_NONBLOCK` set via `fcntl(F_SETFL)`.
    pub nonblock: std::collections::BTreeSet<i64>,
}

impl Process {
    /// A new single-threaded process shell (the loader fills the space).
    pub fn new(pid: Pid, ppid: Pid, main_tid: Tid) -> Process {
        let mut fds = BTreeMap::new();
        fds.insert(0, FdEntry::Console);
        fds.insert(1, FdEntry::Console);
        fds.insert(2, FdEntry::Console);
        Process {
            pid,
            ppid,
            exe: String::new(),
            space: AddressSpace::new(),
            threads: vec![Thread::new(main_tid)],
            fds,
            next_fd: 3,
            env: Vec::new(),
            argv: Vec::new(),
            cwd: "/".to_string(),
            sigactions: BTreeMap::new(),
            exit_status: None,
            zombies: Vec::new(),
            children: Vec::new(),
            output: Vec::new(),
            next_pkey: 1,
            stats: ProcStats::default(),
            interposer_live: false,
            vdso_enabled: true,
            vdso_base: 0,
            symbols: BTreeMap::new(),
            lib_bases: BTreeMap::new(),
            seccomp: None,
            stack_mask: 0,
            chain_sites: None,
            region_cache: sim_cpu::FastMap::default(),
            symcache: None,
            epolls: BTreeMap::new(),
            next_epoll: 0,
            eventfds: BTreeMap::new(),
            next_eventfd: 0,
            nonblock: std::collections::BTreeSet::new(),
        }
    }

    /// Allocates a fresh epoll instance with one descriptor reference.
    pub fn alloc_epoll(&mut self) -> usize {
        let id = self.next_epoll;
        self.next_epoll += 1;
        self.epolls.insert(
            id,
            Epoll {
                interest: BTreeMap::new(),
                refs: 1,
            },
        );
        id
    }

    /// Allocates a fresh eventfd with the given initial counter.
    pub fn alloc_eventfd(&mut self, initval: u64) -> usize {
        let id = self.next_eventfd;
        self.next_eventfd += 1;
        self.eventfds.insert(id, (initval, 1));
        id
    }

    /// Allocates the lowest free fd ≥ 3.
    pub fn alloc_fd(&mut self, entry: FdEntry) -> i64 {
        let fd = self.next_fd;
        self.next_fd += 1;
        self.fds.insert(fd, entry);
        fd
    }

    /// Looks up an environment variable.
    pub fn getenv(&self, key: &str) -> Option<&str> {
        let prefix = format!("{key}=");
        self.env
            .iter()
            .find(|e| e.starts_with(&prefix))
            .map(|e| &e[prefix.len()..])
    }

    /// The thread with `tid`.
    pub fn thread(&self, tid: Tid) -> Option<&Thread> {
        self.threads.iter().find(|t| t.tid == tid)
    }

    /// The thread with `tid`, mutably.
    pub fn thread_mut(&mut self, tid: Tid) -> Option<&mut Thread> {
        self.threads.iter_mut().find(|t| t.tid == tid)
    }

    /// True when every thread has exited.
    pub fn all_threads_exited(&self) -> bool {
        self.threads.iter().all(|t| t.state == ThreadState::Exited)
    }

    /// Captured output as lossy UTF-8.
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.output).into_owned()
    }

    /// Symbolizes guest addresses for the profiler: the greatest symbol
    /// at or below each address *within the same mapping*, else
    /// `basename+0xoffset` of the containing mapping, else the raw
    /// address. Names omit the intra-symbol offset so folded stacks
    /// aggregate by function.
    pub(crate) fn symbolize_frames(&mut self, addrs: &[u64]) -> Vec<String> {
        let n = self.symbols.len();
        if self.symcache.as_ref().map(|(k, _)| *k) != Some(n) {
            let mut tab: Vec<(u64, String)> = self
                .symbols
                .iter()
                .map(|(name, &addr)| (addr, name.clone()))
                .collect();
            tab.sort();
            // Aliased addresses keep the alphabetically first name.
            tab.dedup_by(|a, b| a.0 == b.0);
            self.symcache = Some((n, tab));
        }
        let tab = &self.symcache.as_ref().expect("just built").1;
        addrs
            .iter()
            .map(|&addr| {
                let mapping = self.space.mapping_at(addr);
                let idx = tab.partition_point(|e| e.0 <= addr);
                if idx > 0 {
                    let (sym_addr, name) = &tab[idx - 1];
                    if mapping.is_none_or(|m| *sym_addr >= m.start) {
                        return name.clone();
                    }
                }
                match mapping {
                    Some(m) => {
                        let base = m.name.rsplit('/').next().unwrap_or(&m.name);
                        format!("{}+{:#x}", base, addr - m.start)
                    }
                    None => format!("{addr:#x}"),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fds_start_after_stdio() {
        let mut p = Process::new(1, 0, 1);
        let fd = p.alloc_fd(FdEntry::SocketUnbound);
        assert_eq!(fd, 3);
        assert_eq!(p.fds.len(), 4);
    }

    #[test]
    fn getenv_finds_exact_key() {
        let mut p = Process::new(1, 0, 1);
        p.env = vec![
            "LD_PRELOAD=/lib/libk23.so".into(),
            "PATH=/bin".into(),
            "LD_PRELOAD_EXTRA=x".into(),
        ];
        assert_eq!(p.getenv("LD_PRELOAD"), Some("/lib/libk23.so"));
        assert_eq!(p.getenv("PATH"), Some("/bin"));
        assert_eq!(p.getenv("HOME"), None);
    }

    #[test]
    fn sud_allowlist() {
        let s = Sud {
            selector_addr: 0x100,
            range_start: 0x7000,
            range_len: 0x1000,
        };
        assert!(s.in_allowlist(0x7000));
        assert!(s.in_allowlist(0x7fff));
        assert!(!s.in_allowlist(0x8000));
        assert!(!s.in_allowlist(0x6fff));
    }
}
