//! # sim-kernel — a miniature Linux-like kernel
//!
//! The substrate every interposer in this reproduction runs on. It provides
//! the Linux interfaces the paper's analysis revolves around:
//!
//! * a syscall table with real x86-64 numbers ([`nr`]), including the
//!   nonexistent syscall 500 used by the Table 5 microbenchmark and K23's
//!   fake handoff syscalls (600/601);
//! * **Syscall User Dispatch** (per-thread selector byte + allowlisted
//!   range + SIGSYS delivery), including the global kernel-entry slow path
//!   once SUD is armed — the effect behind the paper's
//!   "SUD-no-interposition" row;
//! * **ptrace** as host-implemented [`ptrace_if::Tracer`]s with
//!   per-stop context-switch costs and per-request syscall costs;
//! * signals with guest-visible, modifiable contexts ([`signal`]);
//! * fork / execve (with environments and `LD_PRELOAD` semantics via the
//!   pluggable [`kernel::ExecLoader`]), threads, futexes, pipes, loopback
//!   sockets, an in-memory VFS with immutable files, `/proc/$PID/maps`,
//!   PKU syscalls, and a deterministic scheduler with cycle accounting.
//!
//! Guest code calls host logic through *hostcall sites* (`int3` at a
//! registered address) — how interposer libraries bridge to their host-side
//! runtime.

pub mod audit;
pub mod config;
pub mod kernel;
pub mod net;
pub mod nr;
pub mod process;
pub mod ptrace_if;
pub mod record;
pub mod signal;
pub mod stack;
mod sys;
pub mod vfs;

pub use audit::{AuditLedger, AuditSession, AuditSpec, AuditTag, ProcAudit, Signature};
pub use config::{Engine, EngineConfig};
pub use record::{Checkpoint, RecordSpec};
pub use kernel::{ExecLoader, ExecOpts, HostcallFn, Kernel, LoadedImage, RunExit, TraceEntry};
// Configuration building blocks re-exported so callers assemble an
// `EngineConfig` from this crate alone.
pub use sim_cpu::{IcacheMode, TraceParams};
pub use sim_fault::FaultPlan;
pub use sim_mem::MemMode;
pub use net::{Channel, End, Net};
pub use process::{Epoll, EpollEntry, FdEntry, Pid, ProcStats, Process, SeccompAction, SeccompFilter, SigAction, Sud, Thread, ThreadState, Tid, Wait};
pub use ptrace_if::{CountingTracer, Stop, TraceOpts, Tracer, TracerAction};
pub use signal::SigInfo;
pub use vfs::Vfs;
