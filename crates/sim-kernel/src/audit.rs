//! sim-audit: the kernel-side interposition coverage ledger.
//!
//! The simulator's dispatch choke point sees every syscall that actually
//! enters the kernel — the ground truth no interposer has. An
//! [`AuditSession`] correlates that stream with what the configured
//! mechanism *claims* to cover (its [`AuditSpec`], declared per mechanism
//! via `interpose::Interposer::coverage`) and tags each architectural
//! syscall exactly once, at first entry:
//!
//! - **interposed-via-path** — issued from one of the mechanism's handler
//!   regions (the forwarded re-issue of an application call);
//! - **interposed-via-control** — intercepted by a control transfer the
//!   mechanism owns (a SUD SIGSYS delivery, a ptrace syscall-enter stop);
//! - **double-interposed** — observed by two channels at once (e.g. a
//!   handler-region syscall under an attached tracer, or a handler site
//!   outside the SUD allowlist trapping recursively);
//! - **bypassed** — the kernel saw it, the mechanism did not. Each bypass
//!   is classified into a pitfall [`Signature`].
//!
//! The ledger is purely architectural: every input (issuing region,
//! `interposer_live`, SUD thread state, the selector byte, tracer
//! attachment, stack masks) advances identically under the stepwise,
//! block, and trace engines, so coverage tables are byte-deterministic
//! across engines and runs. When no session is configured the fast
//! syscall paths stay enabled and nothing changes — auditing off is
//! zero-overhead (see the invisibility proptests in `tests/audit.rs`).
//!
//! vDSO calls never enter the kernel at all; they are folded into the
//! ledger at report time ([`crate::Kernel::audit_ledger`]) from the
//! per-process `vdso_calls` counter, as [`Signature::Vdso`] bypasses,
//! unless the mechanism disables the vDSO ([`AuditSpec::covers_vdso`]).

use crate::process::Pid;
use std::collections::{BTreeMap, BTreeSet};

/// What coverage a mechanism claims — the auditor's expectation, declared
/// once per mechanism. An empty spec (the default) expects no
/// interposition at all: every syscall audits as
/// [`Signature::Uncovered`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditSpec {
    /// Display label for reports (the mechanism's registry spec).
    pub mechanism: String,
    /// Basenames of the handler libraries whose issued syscalls count as
    /// interposed-via-path (e.g. `"libzpoline.so"`).
    pub handler_regions: Vec<String>,
    /// A ptrace syscall-enter stop counts as interposition (ptrace-based
    /// mechanisms, including K23's startup phase).
    pub via_tracer: bool,
    /// A SUD SIGSYS delivery counts as interposition (SUD-based
    /// mechanisms).
    pub via_sigsys: bool,
    /// The mechanism redirects vDSO users onto real syscall instructions
    /// (ptrace/K23 spawn with `disable_vdso`), so vDSO calls are not a
    /// shadow.
    pub covers_vdso: bool,
}

impl AuditSpec {
    /// A spec expecting no interposition (native,
    /// SUD-no-interposition): coverage audits as 0%.
    pub fn none(mechanism: &str) -> AuditSpec {
        AuditSpec {
            mechanism: mechanism.to_string(),
            ..AuditSpec::default()
        }
    }

    /// Whether the mechanism claims any coverage at all.
    pub fn expects_any(&self) -> bool {
        self.via_tracer || self.via_sigsys || !self.handler_regions.is_empty()
    }

    fn in_handler(&self, region: &str) -> bool {
        let base = region.rsplit('/').next().unwrap_or(region);
        self.handler_regions.iter().any(|r| r == base)
    }
}

/// Why a bypassed syscall escaped the mechanism — the pitfall taxonomy
/// shared with the PoC matrix (`pitfalls::matrix`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Signature {
    /// Pre-init window: the interposer never went live in this process
    /// (ld.so startup syscalls under LD_PRELOAD mechanisms) — P2b.
    PreInit,
    /// Post-exec gap: the interposer was live, then `execve` replaced the
    /// image and it never came back (env-clearing exec) — P1a.
    ExecGap,
    /// SUD armed but the selector byte reads ALLOW at a non-allowlist
    /// site: application code rewrote the selector — P1b.
    SelectorRewrite,
    /// SUD-based mechanism, but this thread's SUD is disarmed —
    /// application code issued `prctl(PR_SET_SYSCALL_USER_DISPATCH, OFF)`
    /// (Listing 2) — P1b.
    SudOff,
    /// Child of a covered process born outside the mechanism's
    /// propagation (fork/clone without tracer follow or layer masks).
    ForkGap,
    /// Live interposer, but the issuing site is outside every
    /// instrumented region (dynamically generated code) — P2a.
    Blind,
    /// vDSO call: serviced in userspace, never entered the kernel, and
    /// the mechanism does not redirect the vDSO.
    Vdso,
    /// The mechanism claims no coverage (native baseline,
    /// SUD-no-interposition).
    Uncovered,
}

impl Signature {
    /// All signatures, in report-column order.
    pub const ALL: [Signature; 8] = [
        Signature::PreInit,
        Signature::ExecGap,
        Signature::SelectorRewrite,
        Signature::SudOff,
        Signature::ForkGap,
        Signature::Blind,
        Signature::Vdso,
        Signature::Uncovered,
    ];

    /// Short column code, pitfall-first (stable: committed matrices and
    /// the bench gate key on these strings).
    pub fn code(&self) -> &'static str {
        match self {
            Signature::PreInit => "P2b-preinit",
            Signature::ExecGap => "P1a-exec",
            Signature::SelectorRewrite => "P1b-selector",
            Signature::SudOff => "P1b-sudoff",
            Signature::ForkGap => "fork-gap",
            Signature::Blind => "P2a-blind",
            Signature::Vdso => "vdso",
            Signature::Uncovered => "uncovered",
        }
    }
}

impl std::fmt::Display for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.code())
    }
}

/// How one syscall was (or wasn't) interposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditTag {
    /// Issued from a declared handler region.
    Path,
    /// Intercepted by a control transfer (SIGSYS or ptrace stop).
    Control,
    /// Observed by two interposition channels at once.
    Double,
    /// The kernel saw it; the mechanism did not.
    Bypassed(Signature),
}

/// The distilled per-syscall inputs the classifier consumes. All fields
/// are architectural state at kernel entry.
#[derive(Debug, Clone, Copy)]
pub struct SyscallView<'a> {
    /// Mapped-region name containing the syscall site.
    pub region: &'a str,
    /// A tracer with `trace_syscalls` is attached to the process.
    pub traced: bool,
    /// The process's interposer marked itself live.
    pub live: bool,
    /// This thread has SUD armed.
    pub sud_armed: bool,
    /// The site falls inside the SUD allowlist range.
    pub in_allowlist: bool,
    /// SUD will deliver SIGSYS for this entry (armed, outside the
    /// allowlist, selector reads BLOCK).
    pub will_sigsys: bool,
    /// The selector byte reads ALLOW.
    pub selector_allow: bool,
}

/// Per-process coverage accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProcAudit {
    /// Syscalls interposed via a handler region.
    pub interposed_path: u64,
    /// Syscalls interposed via a control transfer.
    pub interposed_control: u64,
    /// Syscalls observed by two channels at once.
    pub double: u64,
    /// Bypassed syscalls, by pitfall signature.
    pub bypassed: BTreeMap<Signature, u64>,
    /// Bypass detail for replay: `(signature, site) -> count`.
    pub bypass_sites: BTreeMap<(Signature, u64), u64>,
    /// Syscalls routed through the composed-stack chain.
    pub chained: u64,
    /// Per-layer chain participation (layer name -> syscalls the layer's
    /// hook ran for). A layer stripped from the process's mask by a
    /// fork/exec propagation flag stays behind `chained`.
    pub layer_hits: BTreeMap<String, u64>,
}

impl ProcAudit {
    /// Total bypassed syscalls across signatures.
    pub fn bypassed_total(&self) -> u64 {
        self.bypassed.values().sum()
    }

    /// Bypasses carrying one signature.
    pub fn bypassed_by(&self, sig: Signature) -> u64 {
        self.bypassed.get(&sig).copied().unwrap_or(0)
    }

    /// All audited syscalls (covered + bypassed).
    pub fn total(&self) -> u64 {
        self.interposed_path + self.interposed_control + self.double + self.bypassed_total()
    }

    /// Covered syscalls (path + control + double).
    pub fn covered(&self) -> u64 {
        self.interposed_path + self.interposed_control + self.double
    }

    /// Coverage in tenths of a percent (integer, so reports stay
    /// byte-deterministic without float formatting concerns). 1000 =
    /// 100.0%.
    pub fn coverage_permille(&self) -> u64 {
        (self.covered() * 1000).checked_div(self.total()).unwrap_or(0)
    }

    fn fold(&mut self, other: &ProcAudit) {
        self.interposed_path += other.interposed_path;
        self.interposed_control += other.interposed_control;
        self.double += other.double;
        for (sig, n) in &other.bypassed {
            *self.bypassed.entry(*sig).or_insert(0) += n;
        }
        for (k, n) in &other.bypass_sites {
            *self.bypass_sites.entry(*k).or_insert(0) += n;
        }
        self.chained += other.chained;
        for (l, n) in &other.layer_hits {
            *self.layer_hits.entry(l.clone()).or_insert(0) += n;
        }
    }
}

/// The coverage ledger: per-process accounting plus the spec it was
/// audited against.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AuditLedger {
    /// The expectation the run was audited against.
    pub spec: AuditSpec,
    /// Per-process coverage rows.
    pub per_proc: BTreeMap<Pid, ProcAudit>,
}

impl AuditLedger {
    /// All processes folded into one row.
    pub fn totals(&self) -> ProcAudit {
        let mut t = ProcAudit::default();
        for p in self.per_proc.values() {
            t.fold(p);
        }
        t
    }
}

/// Live kernel-side audit state for one configured run.
#[derive(Debug, Clone, Default)]
pub struct AuditSession {
    /// The running ledger (vDSO rows are folded in at report time).
    pub ledger: AuditLedger,
    /// Processes whose interposer was live and then lost to an `execve`
    /// (cleared again if the mechanism re-marks itself live, as K23's
    /// re-attach does).
    exec_gap: BTreeSet<Pid>,
    /// Children born uncovered from a covered parent.
    fork_gap: BTreeSet<Pid>,
}

impl AuditSession {
    /// A session auditing against `spec`.
    pub fn new(spec: AuditSpec) -> AuditSession {
        AuditSession {
            ledger: AuditLedger {
                spec,
                per_proc: BTreeMap::new(),
            },
            exec_gap: BTreeSet::new(),
            fork_gap: BTreeSet::new(),
        }
    }

    /// Classifies one architectural syscall and records it. Returns the
    /// tag for observability counters.
    pub fn classify(&mut self, pid: Pid, site: u64, view: &SyscallView<'_>) -> AuditTag {
        let spec = &self.ledger.spec;
        let tag = if !spec.expects_any() {
            AuditTag::Bypassed(Signature::Uncovered)
        } else {
            let in_handler = spec.in_handler(view.region);
            let traced = spec.via_tracer && view.traced;
            let sigsys = spec.via_sigsys && view.will_sigsys;
            let channels = [in_handler, traced, sigsys].iter().filter(|&&c| c).count();
            if channels >= 2 {
                AuditTag::Double
            } else if in_handler {
                AuditTag::Path
            } else if traced || sigsys {
                AuditTag::Control
            } else {
                AuditTag::Bypassed(self.bypass_signature(pid, view))
            }
        };
        let p = self.ledger.per_proc.entry(pid).or_default();
        match tag {
            AuditTag::Path => p.interposed_path += 1,
            AuditTag::Control => p.interposed_control += 1,
            AuditTag::Double => p.double += 1,
            AuditTag::Bypassed(sig) => {
                *p.bypassed.entry(sig).or_insert(0) += 1;
                *p.bypass_sites.entry((sig, site)).or_insert(0) += 1;
            }
        }
        tag
    }

    /// Why did the mechanism miss this one? Ordered most-specific first.
    fn bypass_signature(&self, pid: Pid, view: &SyscallView<'_>) -> Signature {
        let spec = &self.ledger.spec;
        if spec.via_sigsys && view.live {
            // The mechanism interposes through SUD and believes itself
            // installed — the gap is in the SUD state itself.
            if !view.sud_armed {
                return Signature::SudOff;
            }
            if !view.in_allowlist && view.selector_allow {
                return Signature::SelectorRewrite;
            }
        }
        if !view.live {
            if self.exec_gap.contains(&pid) {
                return Signature::ExecGap;
            }
            if self.fork_gap.contains(&pid) {
                return Signature::ForkGap;
            }
            return Signature::PreInit;
        }
        Signature::Blind
    }

    /// `execve` hook: the process was covered and the new image cleared
    /// that. Until the mechanism re-marks itself live, its bypasses
    /// classify as P1a.
    pub fn note_exec(&mut self, pid: Pid, was_live: bool) {
        if was_live {
            self.exec_gap.insert(pid);
        }
        self.fork_gap.remove(&pid);
    }

    /// Fork hook: a child born outside the mechanism's propagation while
    /// the parent was covered.
    pub fn note_fork(&mut self, child: Pid, parent_covered: bool, child_covered: bool) {
        if parent_covered && !child_covered {
            self.fork_gap.insert(child);
        }
    }

    /// Liveness hook: the mechanism (re-)installed itself in `pid`; any
    /// exec/fork gap is closed.
    pub fn note_live(&mut self, pid: Pid) {
        self.exec_gap.remove(&pid);
        self.fork_gap.remove(&pid);
    }

    /// Chain hook: one syscall ran through the composed stack for `pid`
    /// with `layers` active.
    pub fn note_chain(&mut self, pid: Pid, layers: &[String]) {
        let p = self.ledger.per_proc.entry(pid).or_default();
        p.chained += 1;
        for l in layers {
            *p.layer_hits.entry(l.clone()).or_insert(0) += 1;
        }
    }

    /// Folds `n` vDSO calls for `pid` into the ledger (report-time;
    /// vDSO calls never reach the dispatch choke point).
    pub fn fold_vdso(ledger: &mut AuditLedger, pid: Pid, n: u64) {
        if n == 0 || ledger.spec.covers_vdso {
            return;
        }
        let p = ledger.per_proc.entry(pid).or_default();
        *p.bypassed.entry(Signature::Vdso).or_insert(0) += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn preload_spec() -> AuditSpec {
        AuditSpec {
            mechanism: "zpoline".into(),
            handler_regions: vec!["libzpoline.so".into()],
            ..AuditSpec::default()
        }
    }

    fn view<'a>(region: &'a str, live: bool) -> SyscallView<'a> {
        SyscallView {
            region,
            traced: false,
            live,
            sud_armed: false,
            in_allowlist: false,
            will_sigsys: false,
            selector_allow: false,
        }
    }

    #[test]
    fn preinit_exec_and_fork_gaps_classify_distinctly() {
        let mut s = AuditSession::new(preload_spec());
        assert_eq!(
            s.classify(1, 0x1000, &view("/usr/lib/ld-sim.so", false)),
            AuditTag::Bypassed(Signature::PreInit)
        );
        assert_eq!(
            s.classify(1, 0x2000, &view("/usr/lib/libzpoline.so", true)),
            AuditTag::Path
        );
        s.note_exec(1, true);
        assert_eq!(
            s.classify(1, 0x3000, &view("/usr/bin/victim", false)),
            AuditTag::Bypassed(Signature::ExecGap)
        );
        // Re-marking live (K23 re-attach) closes the gap.
        s.note_live(1);
        assert_eq!(
            s.classify(1, 0x3000, &view("/usr/bin/victim", false)),
            AuditTag::Bypassed(Signature::PreInit)
        );
        s.note_fork(2, true, false);
        assert_eq!(
            s.classify(2, 0x4000, &view("/usr/bin/child", false)),
            AuditTag::Bypassed(Signature::ForkGap)
        );
        // A child born covered is never flagged.
        s.note_fork(3, true, true);
        assert_eq!(
            s.classify(3, 0x5000, &view("/usr/bin/child", false)),
            AuditTag::Bypassed(Signature::PreInit)
        );
    }

    #[test]
    fn sud_selector_rewrite_and_disarm_classify_as_p1b_and_sudoff() {
        let spec = AuditSpec {
            mechanism: "sud".into(),
            handler_regions: vec!["libsud-interpose.so".into()],
            via_sigsys: true,
            ..AuditSpec::default()
        };
        let mut s = AuditSession::new(spec);
        // Selector rewritten to ALLOW at an app site: P1b.
        let mut v = view("/usr/bin/p1b-poc", true);
        v.sud_armed = true;
        v.selector_allow = true;
        assert_eq!(
            s.classify(1, 0x1000, &v),
            AuditTag::Bypassed(Signature::SelectorRewrite)
        );
        // SUD disarmed entirely: the disarmed-window signature.
        let v = view("/usr/bin/p1b-poc", true);
        assert_eq!(s.classify(1, 0x1000, &v), AuditTag::Bypassed(Signature::SudOff));
        // Armed and trapping: control-transfer interposition.
        let mut v = view("/usr/bin/app", true);
        v.sud_armed = true;
        v.will_sigsys = true;
        assert_eq!(s.classify(1, 0x1000, &v), AuditTag::Control);
    }

    #[test]
    fn double_interposition_needs_two_channels() {
        let spec = AuditSpec {
            mechanism: "k23".into(),
            handler_regions: vec!["libk23.so".into()],
            via_tracer: true,
            via_sigsys: true,
            covers_vdso: true,
        };
        let mut s = AuditSession::new(spec);
        let mut v = view("/usr/lib/libk23.so", true);
        v.traced = true;
        assert_eq!(s.classify(1, 0x1000, &v), AuditTag::Double);
        v.traced = false;
        assert_eq!(s.classify(1, 0x1000, &v), AuditTag::Path);
        let t = s.ledger.totals();
        assert_eq!((t.double, t.interposed_path, t.total()), (1, 1, 2));
        assert_eq!(t.coverage_permille(), 1000);
    }

    #[test]
    fn empty_spec_audits_everything_uncovered() {
        let mut s = AuditSession::new(AuditSpec::none("native"));
        let v = view("/usr/bin/app", true);
        assert_eq!(s.classify(1, 0x1000, &v), AuditTag::Bypassed(Signature::Uncovered));
        assert_eq!(s.ledger.totals().coverage_permille(), 0);
    }

    #[test]
    fn vdso_folds_unless_covered() {
        let mut l = AuditLedger {
            spec: preload_spec(),
            ..AuditLedger::default()
        };
        AuditSession::fold_vdso(&mut l, 1, 5);
        assert_eq!(l.totals().bypassed_by(Signature::Vdso), 5);
        let mut covered = AuditLedger {
            spec: AuditSpec {
                covers_vdso: true,
                ..preload_spec()
            },
            ..AuditLedger::default()
        };
        AuditSession::fold_vdso(&mut covered, 1, 5);
        assert_eq!(covered.totals().total(), 0);
    }

    #[test]
    fn blind_sites_classify_as_p2a_when_live() {
        let mut s = AuditSession::new(preload_spec());
        assert_eq!(
            s.classify(1, 0x9000, &view("[anon]", true)),
            AuditTag::Bypassed(Signature::Blind)
        );
    }
}
