//! Kernel-side record/replay sessions and checkpoints (DESIGN.md §11).
//!
//! The portable log format, codec, and bisection live in `sim-record`;
//! this module owns the live state threaded through the kernel's
//! fault-plan choke points: the [`RecordSession`] that captures (or
//! verifies, or injects) [`Rec`]s at retired-instruction boundaries, and
//! the in-memory [`Checkpoint`] chain that seeds time-travel navigation.
//!
//! Three modes share one session type:
//!
//! * **Record** — every syscall result, injected fault/signal/permission
//!   flip, scheduler decision, and process exit is appended to the log,
//!   keyed by the session's retired-instruction counter (credited at the
//!   same call sites as the fault and profiler sessions, so the keys are
//!   engine-invariant). With a checkpoint period set, the session also
//!   snapshots registers + dirty pages every N retired instructions.
//! * **Verify** — the run re-executes in full (any engine; the fault plan
//!   from the log header must be re-installed) and every record the run
//!   produces is compared against the log in order. The first mismatch is
//!   stashed as a [`sim_record::Divergence`] and the run halts with
//!   [`crate::RunExit::Stop`].
//! * **Inject** — navigation-grade replay: non-process-local syscalls are
//!   short-circuited with their recorded results (return value, kernel
//!   residency cycles, page writes) and recorded signals/flips are
//!   re-applied at their retired-instruction boundaries, so a run can be
//!   resumed from a restored checkpoint without any VFS/net state.

use crate::process::{Pid, SeccompFilter, SigAction, Thread, Tid};
use sim_record::{Divergence, Rec};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Record/replay request, carried by [`crate::EngineConfig`].
#[derive(Debug, Clone)]
pub enum RecordSpec {
    /// Capture a log. `checkpoint_period` > 0 additionally takes periodic
    /// checkpoints (and per-syscall page-write snapshots), making the
    /// recording navigation-grade.
    Record { checkpoint_period: u64 },
    /// Re-execute and compare every produced record against `log`,
    /// halting at the first mismatch.
    Verify { log: Rc<Vec<Rec>> },
    /// Short-circuit non-process-local syscalls and re-apply recorded
    /// asynchrony from `log` (time-travel navigation).
    Inject { log: Rc<Vec<Rec>> },
}

/// An asynchronous boundary action extracted from a log for inject-mode
/// replay.
#[derive(Debug, Clone, Copy)]
pub(crate) enum BoundaryAction {
    Signal { signo: u64, delivered: bool },
    /// Set `page`'s protection to `perms` — flips and their restores both
    /// reduce to this (the log stores the resulting protection, not the
    /// pre-flip history).
    Flip { page: u64, perms: u8 },
}

/// One periodic navigation checkpoint: everything needed to reconstruct
/// the (single) process at a retired-instruction boundary by applying the
/// checkpoint chain onto a freshly booted kernel. Deltas are dirty pages
/// since the previous checkpoint; the deterministic boot state is the
/// implicit baseline.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Retired-instruction coordinate of the boundary.
    pub retired: u64,
    /// Global clock at the boundary.
    pub clock: u64,
    /// Log cursor: number of records emitted before the boundary.
    pub cursor: usize,
    /// The (single) process the chain tracks.
    pub pid: Pid,
    pub(crate) threads: Vec<Thread>,
    pub(crate) sigactions: BTreeMap<u64, SigAction>,
    pub(crate) seccomp: Option<SeccompFilter>,
    pub(crate) interposer_live: bool,
    pub(crate) pages: Vec<PageSnap>,
}

/// A snapshotted dirty page: contents + protection attributes at
/// checkpoint time.
#[derive(Debug, Clone)]
pub(crate) struct PageSnap {
    pub base: u64,
    pub perms: u8,
    pub pkey: u8,
    pub data: Vec<u8>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecordModeKind {
    Record,
    Verify,
    Inject,
}

/// Live kernel state for one [`RecordSpec`].
pub(crate) struct RecordSession {
    pub mode: RecordModeKind,
    /// Retired guest instructions (architectural; engine-invariant —
    /// credited beside the fault/profiler sessions).
    pub retired: u64,
    /// `run_to_retired` target; the engines cap budgets to stop exactly
    /// here and [`crate::Kernel::run`] returns [`crate::RunExit::Stop`].
    pub stop_at: Option<u64>,
    /// Set when the target was reached or a divergence was found.
    pub stopped: bool,
    /// Record mode: the captured log.
    pub recs: Vec<Rec>,
    /// Verify/inject mode: the expected log.
    pub log: Rc<Vec<Rec>>,
    /// Next log index to verify (verify) or consume (inject: syscall
    /// records only).
    pub cursor: usize,
    /// First mismatch found by verify mode.
    pub divergence: Option<Divergence>,
    /// Record mode: checkpoint spacing (0 = off) and next boundary.
    pub ckpt_period: u64,
    pub next_ckpt: Option<u64>,
    pub checkpoints: Vec<Checkpoint>,
    /// Record mode: page bases written since the previous checkpoint
    /// (drained from the space's dirty tracking at every syscall so
    /// per-syscall write snapshots and checkpoint deltas don't race over
    /// one counter).
    pub pending_pages: Vec<u64>,
    /// True while the checkpoint chain soundly reconstructs the run
    /// (single process, no exec surprises). Cleared permanently on
    /// fork/exec/multi-process; navigation then replays from the start.
    pub chain_ok: bool,
    /// Clock right after the kernel-entry charge of the in-flight syscall
    /// per thread: recorded `cycles` = completion clock − this.
    pub entry_clock: BTreeMap<(Pid, Tid), u64>,
    /// Scheduler rounds with a real decision (more than one runnable).
    pub sched_rounds: u64,
    /// Inject mode: asynchronous boundary actions in log order.
    pub boundaries: Vec<(u64, BoundaryAction)>,
    /// Next boundary action to apply.
    pub bcursor: usize,
}

impl RecordSession {
    pub fn new(spec: RecordSpec) -> RecordSession {
        let (mode, log, ckpt_period) = match spec {
            RecordSpec::Record { checkpoint_period } => {
                (RecordModeKind::Record, Rc::new(Vec::new()), checkpoint_period)
            }
            RecordSpec::Verify { log } => (RecordModeKind::Verify, log, 0),
            RecordSpec::Inject { log } => (RecordModeKind::Inject, log, 0),
        };
        let boundaries = if mode == RecordModeKind::Inject {
            log.iter()
                .filter_map(|r| match *r {
                    Rec::Signal {
                        retired,
                        signo,
                        delivered,
                    } => Some((retired, BoundaryAction::Signal { signo, delivered })),
                    Rec::Flip {
                        retired,
                        page,
                        perms,
                        restore: _,
                    } => Some((retired, BoundaryAction::Flip { page, perms })),
                    _ => None,
                })
                .collect()
        } else {
            Vec::new()
        };
        RecordSession {
            mode,
            retired: 0,
            stop_at: None,
            stopped: false,
            recs: Vec::new(),
            log,
            cursor: 0,
            divergence: None,
            ckpt_period,
            next_ckpt: (ckpt_period > 0).then_some(ckpt_period),
            checkpoints: Vec::new(),
            pending_pages: Vec::new(),
            chain_ok: true,
            entry_clock: BTreeMap::new(),
            sched_rounds: 0,
            boundaries,
            bcursor: 0,
        }
    }

    /// Retired coordinate of the next pending inject-mode boundary.
    pub fn next_boundary(&self) -> Option<u64> {
        self.boundaries.get(self.bcursor).map(|b| b.0)
    }

    /// Records (record mode) or verifies (verify mode) one produced
    /// record. Inject mode ignores it: injected effects are consumed via
    /// the cursor directly.
    ///
    /// Verification compares modulo `Rec::Syscall::writes`: page-write
    /// snapshots exist only in navigation-grade recordings (verify never
    /// captures them — they are derived state, fully determined by the
    /// architectural fields that *are* compared), so a nav-grade log
    /// verifies cleanly against a plain re-execution.
    pub fn emit(&mut self, rec: Rec) {
        fn matches_mod_writes(a: &Rec, b: &Rec) -> bool {
            match (a, b) {
                (
                    Rec::Syscall {
                        retired: r1,
                        nr: n1,
                        site: s1,
                        ret: t1,
                        cycles: c1,
                        writes: _,
                    },
                    Rec::Syscall {
                        retired: r2,
                        nr: n2,
                        site: s2,
                        ret: t2,
                        cycles: c2,
                        writes: _,
                    },
                ) => r1 == r2 && n1 == n2 && s1 == s2 && t1 == t2 && c1 == c2,
                _ => a == b,
            }
        }
        match self.mode {
            RecordModeKind::Record => self.recs.push(rec),
            RecordModeKind::Verify => {
                let expected = self.log.get(self.cursor).cloned();
                if !expected.as_ref().is_some_and(|e| matches_mod_writes(e, &rec)) {
                    self.divergence = Some(Divergence {
                        index: self.cursor,
                        retired: rec.retired(),
                        expected,
                        got: Some(rec),
                        probes: 0,
                    });
                    self.stopped = true;
                } else {
                    self.cursor += 1;
                }
            }
            RecordModeKind::Inject => {}
        }
    }

    /// Inject mode: consumes the next syscall record from the log
    /// (skipping interleaved asynchrony records, which are applied via
    /// the boundary cursor).
    pub fn take_syscall(&mut self) -> Option<Rec> {
        while let Some(r) = self.log.get(self.cursor) {
            self.cursor += 1;
            if matches!(r, Rec::Syscall { .. }) {
                return Some(r.clone());
            }
        }
        None
    }
}

/// Syscalls whose effects are entirely process-local (registers, address
/// space, signal dispositions, thread/SUD/seccomp state) or derived from
/// restored state (the clock): inject-mode replay re-executes these for
/// real, because short-circuiting could not reproduce control-flow or
/// mapping effects (`sigreturn`, `mmap`) and does not need to — they are
/// deterministic given the restored process. Everything else (VFS, net,
/// fd-table, kernel RNG) is short-circuited from the log.
pub(crate) fn inject_passthrough(nr_: u64) -> bool {
    use crate::nr::*;
    matches!(
        nr_,
        SYS_MMAP
            | SYS_MPROTECT
            | SYS_MUNMAP
            | SYS_BRK
            | SYS_MADVISE
            | SYS_RT_SIGACTION
            | SYS_RT_SIGPROCMASK
            | SYS_RT_SIGRETURN
            | SYS_PRCTL
            | SYS_ARCH_PRCTL
            | SYS_SET_TID_ADDRESS
            | SYS_CLONE
            | SYS_FORK
            | SYS_EXECVE
            | SYS_EXIT
            | SYS_EXIT_GROUP
            | SYS_FUTEX
            | SYS_SCHED_YIELD
            | SYS_NANOSLEEP
            | SYS_GETTIMEOFDAY
            | SYS_TIME
            | SYS_CLOCK_GETTIME
            | SYS_UNAME
            | SYS_GETCWD
            | SYS_GETPID
            | SYS_GETTID
            | SYS_GETUID
            | SYS_PKEY_MPROTECT
            | SYS_PKEY_ALLOC
            | SYS_PKEY_FREE
            | SYS_NONEXISTENT
            | SYS_K23_HANDOFF
            | SYS_K23_DETACH
    )
}
