//! Syscall numbers (the Linux x86-64 table subset we implement) and errno
//! values. Numbers match the real ABI so that guest code, logs, and tests
//! read like real strace output.

#![allow(missing_docs)]

pub const SYS_READ: u64 = 0;
pub const SYS_WRITE: u64 = 1;
pub const SYS_OPEN: u64 = 2;
pub const SYS_CLOSE: u64 = 3;
pub const SYS_LSEEK: u64 = 8;
pub const SYS_MMAP: u64 = 9;
pub const SYS_MPROTECT: u64 = 10;
pub const SYS_MUNMAP: u64 = 11;
pub const SYS_BRK: u64 = 12;
pub const SYS_RT_SIGACTION: u64 = 13;
pub const SYS_RT_SIGPROCMASK: u64 = 14;
pub const SYS_RT_SIGRETURN: u64 = 15;
pub const SYS_IOCTL: u64 = 16;
pub const SYS_ACCESS: u64 = 21;
pub const SYS_PIPE: u64 = 22;
pub const SYS_SCHED_YIELD: u64 = 24;
pub const SYS_MADVISE: u64 = 28;
pub const SYS_DUP: u64 = 32;
pub const SYS_NANOSLEEP: u64 = 35;
pub const SYS_GETPID: u64 = 39;
pub const SYS_SOCKET: u64 = 41;
pub const SYS_CONNECT: u64 = 42;
pub const SYS_ACCEPT: u64 = 43;
pub const SYS_BIND: u64 = 49;
pub const SYS_LISTEN: u64 = 50;
pub const SYS_CLONE: u64 = 56;
pub const SYS_FORK: u64 = 57;
pub const SYS_EXECVE: u64 = 59;
pub const SYS_EXIT: u64 = 60;
pub const SYS_WAIT4: u64 = 61;
pub const SYS_UNAME: u64 = 63;
pub const SYS_FCNTL: u64 = 72;
pub const SYS_FSYNC: u64 = 74;
pub const SYS_GETCWD: u64 = 79;
pub const SYS_MKDIR: u64 = 83;
pub const SYS_UNLINK: u64 = 87;
pub const SYS_GETTIMEOFDAY: u64 = 96;
pub const SYS_GETUID: u64 = 102;
pub const SYS_PRCTL: u64 = 157;
pub const SYS_ARCH_PRCTL: u64 = 158;
pub const SYS_GETTID: u64 = 186;
pub const SYS_TIME: u64 = 201;
pub const SYS_FUTEX: u64 = 202;
pub const SYS_GETDENTS64: u64 = 217;
pub const SYS_SET_TID_ADDRESS: u64 = 218;
pub const SYS_CLOCK_GETTIME: u64 = 228;
pub const SYS_EXIT_GROUP: u64 = 231;
pub const SYS_EPOLL_WAIT: u64 = 232;
pub const SYS_EPOLL_CTL: u64 = 233;
pub const SYS_OPENAT: u64 = 257;
pub const SYS_NEWFSTATAT: u64 = 262;
pub const SYS_UTIMENSAT: u64 = 280;
pub const SYS_EVENTFD2: u64 = 290;
pub const SYS_EPOLL_CREATE1: u64 = 291;
pub const SYS_PROCESS_VM_READV: u64 = 310;
pub const SYS_PROCESS_VM_WRITEV: u64 = 311;
pub const SYS_GETRANDOM: u64 = 318;
pub const SYS_PKEY_MPROTECT: u64 = 329;
pub const SYS_PKEY_ALLOC: u64 = 330;
pub const SYS_PKEY_FREE: u64 = 331;

/// The nonexistent syscall number used by the paper's Table 5 microbenchmark.
pub const SYS_NONEXISTENT: u64 = 500;
/// K23's first *fake* syscall: state handoff request (paper §5.3).
pub const SYS_K23_HANDOFF: u64 = 600;
/// K23's second *fake* syscall: ptracer detach request (paper §5.3).
pub const SYS_K23_DETACH: u64 = 601;

// epoll event bits (match the Linux ABI so guest code reads like real epoll)
pub const EPOLLIN: u64 = 0x001;
pub const EPOLLOUT: u64 = 0x004;
pub const EPOLLERR: u64 = 0x008;
pub const EPOLLHUP: u64 = 0x010;
pub const EPOLLONESHOT: u64 = 1 << 30;
pub const EPOLLET: u64 = 1 << 31;

// epoll_ctl operations
pub const EPOLL_CTL_ADD: u64 = 1;
pub const EPOLL_CTL_DEL: u64 = 2;
pub const EPOLL_CTL_MOD: u64 = 3;

// fcntl commands + file status flags (the O_NONBLOCK subset we implement)
pub const F_GETFL: u64 = 3;
pub const F_SETFL: u64 = 4;
pub const O_NONBLOCK: u64 = 0x800;

// prctl operations
pub const PR_SET_SYSCALL_USER_DISPATCH: u64 = 59;
pub const PR_SYS_DISPATCH_OFF: u64 = 0;
pub const PR_SYS_DISPATCH_ON: u64 = 1;

// SUD selector states (byte values in guest memory)
pub const SYSCALL_DISPATCH_FILTER_ALLOW: u8 = 0;
pub const SYSCALL_DISPATCH_FILTER_BLOCK: u8 = 1;

// signals
pub const SIGSEGV: u64 = 11;
pub const SIGSYS: u64 = 31;
pub const SIGTRAP: u64 = 5;
pub const SIGCHLD: u64 = 17;
pub const SIGKILL: u64 = 9;
pub const SIGABRT: u64 = 6;
pub const SIGUSR1: u64 = 10;

/// Flag OR-ed into `rt_sigaction`'s signal-number argument (simplified
/// ABI): while the registered handler runs, further asynchronous signals
/// are deferred until `rt_sigreturn` — the stand-in for an all-signals
/// `sa_mask`. Interposer SIGSYS handlers register with this to survive
/// adversarial signal storms (nested-delivery hardening).
pub const SIGACT_MASK_ALL: u64 = 0x100;

// errno (returned as -errno)
pub const EPERM: i64 = 1;
pub const ENOENT: i64 = 2;
pub const ESRCH: i64 = 3;
pub const EINTR: i64 = 4;
pub const EBADF: i64 = 9;
pub const ECHILD: i64 = 10;
pub const EAGAIN: i64 = 11;
pub const ENOMEM: i64 = 12;
pub const EACCES: i64 = 13;
pub const EFAULT: i64 = 14;
pub const EEXIST: i64 = 17;
pub const ENOTDIR: i64 = 20;
pub const EISDIR: i64 = 21;
pub const EINVAL: i64 = 22;
pub const ENOSYS: i64 = 38;
pub const ECONNREFUSED: i64 = 111;
pub const EADDRINUSE: i64 = 98;

/// Encodes `-errno` as the u64 syscall return value.
pub const fn err(e: i64) -> u64 {
    (-e) as u64
}

/// True if a raw return value is in the error range (like libc's check).
pub const fn is_err(v: u64) -> bool {
    v > u64::MAX - 4096
}

/// Human-readable syscall name (for strace-style traces).
pub fn syscall_name(nr: u64) -> &'static str {
    match nr {
        SYS_READ => "read",
        SYS_WRITE => "write",
        SYS_OPEN => "open",
        SYS_CLOSE => "close",
        SYS_LSEEK => "lseek",
        SYS_MMAP => "mmap",
        SYS_MPROTECT => "mprotect",
        SYS_MUNMAP => "munmap",
        SYS_BRK => "brk",
        SYS_RT_SIGACTION => "rt_sigaction",
        SYS_RT_SIGPROCMASK => "rt_sigprocmask",
        SYS_RT_SIGRETURN => "rt_sigreturn",
        SYS_IOCTL => "ioctl",
        SYS_ACCESS => "access",
        SYS_PIPE => "pipe",
        SYS_SCHED_YIELD => "sched_yield",
        SYS_MADVISE => "madvise",
        SYS_DUP => "dup",
        SYS_NANOSLEEP => "nanosleep",
        SYS_GETPID => "getpid",
        SYS_SOCKET => "socket",
        SYS_CONNECT => "connect",
        SYS_ACCEPT => "accept",
        SYS_BIND => "bind",
        SYS_LISTEN => "listen",
        SYS_CLONE => "clone",
        SYS_FORK => "fork",
        SYS_EXECVE => "execve",
        SYS_EXIT => "exit",
        SYS_WAIT4 => "wait4",
        SYS_UNAME => "uname",
        SYS_FCNTL => "fcntl",
        SYS_FSYNC => "fsync",
        SYS_GETCWD => "getcwd",
        SYS_MKDIR => "mkdir",
        SYS_UNLINK => "unlink",
        SYS_GETTIMEOFDAY => "gettimeofday",
        SYS_GETUID => "getuid",
        SYS_PRCTL => "prctl",
        SYS_ARCH_PRCTL => "arch_prctl",
        SYS_GETTID => "gettid",
        SYS_TIME => "time",
        SYS_FUTEX => "futex",
        SYS_GETDENTS64 => "getdents64",
        SYS_SET_TID_ADDRESS => "set_tid_address",
        SYS_CLOCK_GETTIME => "clock_gettime",
        SYS_EXIT_GROUP => "exit_group",
        SYS_EPOLL_WAIT => "epoll_wait",
        SYS_EPOLL_CTL => "epoll_ctl",
        SYS_EVENTFD2 => "eventfd2",
        SYS_EPOLL_CREATE1 => "epoll_create1",
        SYS_OPENAT => "openat",
        SYS_NEWFSTATAT => "newfstatat",
        SYS_UTIMENSAT => "utimensat",
        SYS_PROCESS_VM_READV => "process_vm_readv",
        SYS_PROCESS_VM_WRITEV => "process_vm_writev",
        SYS_GETRANDOM => "getrandom",
        SYS_PKEY_MPROTECT => "pkey_mprotect",
        SYS_PKEY_ALLOC => "pkey_alloc",
        SYS_PKEY_FREE => "pkey_free",
        SYS_NONEXISTENT => "syscall_500",
        SYS_K23_HANDOFF => "k23_handoff",
        SYS_K23_DETACH => "k23_detach",
        _ => "unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn err_encoding() {
        assert_eq!(err(ENOSYS), (-38i64) as u64);
        assert!(is_err(err(ENOSYS)));
        assert!(is_err(err(EPERM)));
        assert!(!is_err(0));
        assert!(!is_err(12345));
    }

    #[test]
    fn names() {
        assert_eq!(syscall_name(SYS_EXECVE), "execve");
        assert_eq!(syscall_name(9999), "unknown");
    }
}
