//! Syscall implementations.

use crate::kernel::Kernel;
use crate::net::End;
use crate::nr::{self, err};
use crate::process::{EpollEntry, FdEntry, Pid, SigAction, ThreadState, Tid, Wait};
use crate::process::{Sud, Wait::*};
use sim_isa::Reg;

/// How a syscall dispatch concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Disp {
    /// Completed with a return value; advance past the instruction.
    Ret(u64),
    /// Would block: leave `rip` on the instruction and park the thread.
    /// The syscall re-executes (and re-pays kernel entry) on wake — matching
    /// a restarted syscall.
    Block(Wait),
    /// Completed with a return value *and* parks the thread (sleep-style:
    /// the syscall must not re-execute on wake).
    RetThenBlock(u64, Wait),
    /// The handler already arranged control flow (exit, execve, sigreturn).
    NoReturn,
}

const O_CREAT: u64 = 0x40;

/// Cycles of in-kernel service work per syscall (on top of
/// `CostModel::kernel_entry`).
pub(crate) fn service_cost(nr_: u64, bytes: u64) -> u64 {
    match nr_ {
        nr::SYS_READ | nr::SYS_WRITE => 60 + bytes / 32,
        nr::SYS_OPEN | nr::SYS_OPENAT | nr::SYS_CLOSE | nr::SYS_NEWFSTATAT | nr::SYS_ACCESS => 80,
        nr::SYS_MMAP | nr::SYS_MPROTECT | nr::SYS_MUNMAP | nr::SYS_PKEY_MPROTECT => 120,
        nr::SYS_FORK => 4000,
        nr::SYS_CLONE => 2500,
        nr::SYS_EXECVE => 25_000,
        nr::SYS_WAIT4 => 120,
        nr::SYS_FSYNC => 400,
        nr::SYS_ACCEPT | nr::SYS_CONNECT => 150,
        nr::SYS_SOCKET | nr::SYS_BIND | nr::SYS_LISTEN => 90,
        nr::SYS_GETDENTS64 => 100,
        nr::SYS_EPOLL_WAIT => 70,
        nr::SYS_EPOLL_CTL => 60,
        nr::SYS_EPOLL_CREATE1 | nr::SYS_EVENTFD2 => 90,
        nr::SYS_RT_SIGRETURN => 0, // costed as CostModel::sigreturn
        nr::SYS_PRCTL | nr::SYS_RT_SIGACTION => 60,
        nr::SYS_GETPID | nr::SYS_GETTID | nr::SYS_GETUID | nr::SYS_SCHED_YIELD => 30,
        nr::SYS_CLOCK_GETTIME | nr::SYS_GETTIMEOFDAY | nr::SYS_TIME => 45,
        nr::SYS_NONEXISTENT => 10,
        _ if nr::syscall_name(nr_) == "unknown" => 10,
        _ => 40,
    }
}

impl Kernel {
    fn guest_read(&mut self, pid: Pid, addr: u64, len: usize) -> Result<Vec<u8>, u64> {
        let p = self.process_mut(pid).ok_or(err(nr::EFAULT))?;
        let mut buf = vec![0u8; len];
        p.space.read_raw(addr, &mut buf).map_err(|_| err(nr::EFAULT))?;
        Ok(buf)
    }

    fn guest_write(&mut self, pid: Pid, addr: u64, data: &[u8]) -> Result<(), u64> {
        let p = self.process_mut(pid).ok_or(err(nr::EFAULT))?;
        p.space.write_raw(addr, data).map_err(|_| err(nr::EFAULT))
    }

    fn guest_cstr(&mut self, pid: Pid, addr: u64) -> Result<String, u64> {
        let p = self.process_mut(pid).ok_or(err(nr::EFAULT))?;
        p.space.read_cstr(addr).map_err(|_| err(nr::EFAULT))
    }

    /// Reads a NULL-terminated array of string pointers (argv/envp).
    fn guest_str_array(&mut self, pid: Pid, addr: u64) -> Result<Vec<String>, u64> {
        if addr == 0 {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        for i in 0..256u64 {
            let b = self.guest_read(pid, addr + i * 8, 8)?;
            let ptr = u64::from_le_bytes(b.try_into().expect("8 bytes"));
            if ptr == 0 {
                break;
            }
            out.push(self.guest_cstr(pid, ptr)?);
        }
        Ok(out)
    }

    fn abs_path(&self, pid: Pid, path: &str) -> String {
        if path.starts_with('/') {
            path.to_string()
        } else {
            let cwd = self
                .process(pid)
                .map(|p| p.cwd.clone())
                .unwrap_or_else(|| "/".into());
            if cwd.ends_with('/') {
                format!("{cwd}{path}")
            } else {
                format!("{cwd}/{path}")
            }
        }
    }

    pub(crate) fn sys_dispatch(
        &mut self,
        pid: Pid,
        tid: Tid,
        nr_: u64,
        args: [u64; 6],
        site: u64,
    ) -> Disp {
        let disp = self.sys_dispatch_inner(pid, tid, nr_, args, site);
        if !matches!(disp, Disp::Block(_)) {
            // I/O work is charged by bytes actually transferred, not by the
            // (possibly garbage) requested length.
            let bytes = match (nr_, &disp) {
                (nr::SYS_READ | nr::SYS_WRITE, Disp::Ret(r)) if !nr::is_err(*r) => *r,
                _ => 0,
            };
            self.charge(service_cost(nr_, bytes));
        }
        disp
    }

    fn sys_dispatch_inner(
        &mut self,
        pid: Pid,
        tid: Tid,
        nr_: u64,
        args: [u64; 6],
        site: u64,
    ) -> Disp {
        match nr_ {
            nr::SYS_READ => self.sys_read(pid, args),
            nr::SYS_WRITE => self.sys_write(pid, args),
            nr::SYS_OPEN | nr::SYS_OPENAT => self.sys_open(pid, nr_, args),
            nr::SYS_CLOSE => self.sys_close(pid, args),
            nr::SYS_LSEEK => self.sys_lseek(pid, args),
            nr::SYS_MMAP => self.sys_mmap(pid, args),
            nr::SYS_MPROTECT => self.sys_mprotect(pid, args, None),
            nr::SYS_PKEY_MPROTECT => self.sys_mprotect(pid, args, Some(args[3] as u8)),
            nr::SYS_MUNMAP => {
                if let Some(p) = self.process_mut(pid) {
                    p.space.unmap(args[0], args[1]);
                }
                Disp::Ret(0)
            }
            nr::SYS_BRK => Disp::Ret(0),
            nr::SYS_RT_SIGACTION => {
                let sig = args[0] & !nr::SIGACT_MASK_ALL;
                let mask_all = args[0] & nr::SIGACT_MASK_ALL != 0;
                let handler = args[1];
                if let Some(p) = self.process_mut(pid) {
                    if handler == 0 {
                        p.sigactions.remove(&sig);
                    } else {
                        p.sigactions.insert(sig, SigAction { handler, mask_all });
                    }
                }
                Disp::Ret(0)
            }
            nr::SYS_RT_SIGPROCMASK => Disp::Ret(0),
            nr::SYS_RT_SIGRETURN => self.sys_sigreturn(pid, tid),
            nr::SYS_IOCTL | nr::SYS_MADVISE | nr::SYS_ARCH_PRCTL
            | nr::SYS_SET_TID_ADDRESS => Disp::Ret(0),
            nr::SYS_FCNTL => self.sys_fcntl(pid, args),
            nr::SYS_EPOLL_CREATE1 => self.sys_epoll_create1(pid),
            nr::SYS_EPOLL_CTL => self.sys_epoll_ctl(pid, args),
            nr::SYS_EPOLL_WAIT => self.sys_epoll_wait(pid, args),
            nr::SYS_EVENTFD2 => self.sys_eventfd2(pid, args),
            nr::SYS_ACCESS => {
                let path = match self.guest_cstr(pid, args[0]) {
                    Ok(p) => self.abs_path(pid, &p),
                    Err(e) => return Disp::Ret(e),
                };
                if self.vfs.exists(&path) {
                    Disp::Ret(0)
                } else {
                    Disp::Ret(err(nr::ENOENT))
                }
            }
            nr::SYS_PIPE => self.sys_pipe(pid, args),
            nr::SYS_SCHED_YIELD => Disp::Ret(0),
            nr::SYS_DUP => self.sys_dup(pid, args),
            nr::SYS_NANOSLEEP => {
                let cycles = args[0]; // simplified ABI: rdi = cycles to sleep
                Disp::RetThenBlock(
                    0,
                    Sleep {
                        until: self.clock + cycles,
                    },
                )
            }
            nr::SYS_GETPID => Disp::Ret(pid),
            nr::SYS_GETTID => Disp::Ret(tid),
            nr::SYS_GETUID => Disp::Ret(1000),
            nr::SYS_SOCKET => {
                let fd = self
                    .process_mut(pid)
                    .map(|p| p.alloc_fd(FdEntry::SocketUnbound))
                    .unwrap_or(-nr::ESRCH);
                Disp::Ret(fd as u64)
            }
            nr::SYS_BIND => self.sys_bind(pid, args),
            nr::SYS_LISTEN => self.sys_listen(pid, args),
            nr::SYS_CONNECT => self.sys_connect(pid, args),
            nr::SYS_ACCEPT => self.sys_accept(pid, args),
            nr::SYS_CLONE => {
                let stack = args[1];
                Disp::Ret(self.do_clone_thread(pid, tid, site, stack))
            }
            nr::SYS_FORK => Disp::Ret(self.do_fork(pid, tid, site)),
            nr::SYS_EXECVE => self.sys_execve(pid, tid, args),
            nr::SYS_EXIT => self.sys_exit(pid, tid, args[0] as i64),
            nr::SYS_EXIT_GROUP => {
                self.kill_process(pid, args[0] as i64);
                Disp::NoReturn
            }
            nr::SYS_WAIT4 => self.sys_wait4(pid, args),
            nr::SYS_UNAME => {
                let _ = self.guest_write(pid, args[0], b"SimLinux 6.8.0-sim x86_64\0");
                Disp::Ret(0)
            }
            nr::SYS_FSYNC => Disp::Ret(0),
            nr::SYS_GETCWD => {
                let cwd = self
                    .process(pid)
                    .map(|p| p.cwd.clone())
                    .unwrap_or_default();
                let mut bytes = cwd.into_bytes();
                bytes.push(0);
                let n = bytes.len().min(args[1] as usize);
                match self.guest_write(pid, args[0], &bytes[..n]) {
                    Ok(()) => Disp::Ret(n as u64),
                    Err(e) => Disp::Ret(e),
                }
            }
            nr::SYS_MKDIR => {
                let path = match self.guest_cstr(pid, args[0]) {
                    Ok(p) => self.abs_path(pid, &p),
                    Err(e) => return Disp::Ret(e),
                };
                match self.vfs.mkdir_p(&path) {
                    Ok(()) => Disp::Ret(0),
                    Err(e) => Disp::Ret(e),
                }
            }
            nr::SYS_UNLINK => {
                let path = match self.guest_cstr(pid, args[0]) {
                    Ok(p) => self.abs_path(pid, &p),
                    Err(e) => return Disp::Ret(e),
                };
                match self.vfs.unlink(&path) {
                    Ok(()) => Disp::Ret(0),
                    Err(e) => Disp::Ret(e),
                }
            }
            nr::SYS_GETTIMEOFDAY => {
                let sec = self.clock / 3_200_000_000;
                let usec = (self.clock % 3_200_000_000) / 3_200;
                let mut buf = [0u8; 16];
                buf[..8].copy_from_slice(&sec.to_le_bytes());
                buf[8..].copy_from_slice(&usec.to_le_bytes());
                let _ = self.guest_write(pid, args[0], &buf);
                Disp::Ret(0)
            }
            nr::SYS_TIME => Disp::Ret(self.clock / 3_200_000_000),
            nr::SYS_CLOCK_GETTIME => {
                let sec = self.clock / 3_200_000_000;
                let nsec = (self.clock % 3_200_000_000) * 10 / 32;
                let mut buf = [0u8; 16];
                buf[..8].copy_from_slice(&sec.to_le_bytes());
                buf[8..].copy_from_slice(&nsec.to_le_bytes());
                let _ = self.guest_write(pid, args[1], &buf);
                Disp::Ret(0)
            }
            nr::SYS_PRCTL => self.sys_prctl(pid, tid, args),
            nr::SYS_FUTEX => self.sys_futex(pid, args),
            nr::SYS_GETDENTS64 => self.sys_getdents(pid, args),
            nr::SYS_NEWFSTATAT => self.sys_fstatat(pid, args),
            nr::SYS_UTIMENSAT => {
                let path = match self.guest_cstr(pid, args[1]) {
                    Ok(p) => self.abs_path(pid, &p),
                    Err(e) => return Disp::Ret(e),
                };
                if self.vfs.exists(&path) {
                    Disp::Ret(0)
                } else {
                    Disp::Ret(err(nr::ENOENT))
                }
            }
            nr::SYS_PROCESS_VM_READV => self.sys_process_vm(pid, args, false),
            nr::SYS_PROCESS_VM_WRITEV => self.sys_process_vm(pid, args, true),
            nr::SYS_GETRANDOM => {
                let len = (args[1] as usize).min(4096);
                let mut data = vec![0u8; len];
                for chunk in data.chunks_mut(8) {
                    let r = self.next_random().to_le_bytes();
                    let n = chunk.len();
                    chunk.copy_from_slice(&r[..n]);
                }
                match self.guest_write(pid, args[0], &data) {
                    Ok(()) => Disp::Ret(len as u64),
                    Err(e) => Disp::Ret(e),
                }
            }
            nr::SYS_PKEY_ALLOC => {
                let key = self.process_mut(pid).map(|p| {
                    let k = p.next_pkey;
                    p.next_pkey += 1;
                    k
                });
                match key {
                    Some(k) if k < 16 => Disp::Ret(k as u64),
                    _ => Disp::Ret(err(nr::ENOMEM)),
                }
            }
            nr::SYS_PKEY_FREE => Disp::Ret(0),
            _ => Disp::Ret(err(nr::ENOSYS)),
        }
    }

    fn sys_read(&mut self, pid: Pid, args: [u64; 6]) -> Disp {
        let (fd, buf, count) = (args[0] as i64, args[1], args[2] as usize);
        let entry = match self.process(pid).and_then(|p| p.fds.get(&fd)).cloned() {
            Some(e) => e,
            None => return Disp::Ret(err(nr::EBADF)),
        };
        match entry {
            FdEntry::Console => Disp::Ret(0),
            FdEntry::File { path, offset } => {
                let data = match self.vfs.read_file(&path) {
                    Ok(d) => d.to_vec(),
                    Err(e) => return Disp::Ret(e),
                };
                let start = (offset as usize).min(data.len());
                let end = (start + count).min(data.len());
                let chunk = data[start..end].to_vec();
                if let Err(e) = self.guest_write(pid, buf, &chunk) {
                    return Disp::Ret(e);
                }
                if let Some(FdEntry::File { offset, .. }) =
                    self.process_mut(pid).and_then(|p| p.fds.get_mut(&fd))
                {
                    *offset += chunk.len() as u64;
                }
                Disp::Ret(chunk.len() as u64)
            }
            FdEntry::Snapshot { data, offset } => {
                let start = (offset as usize).min(data.len());
                let end = (start + count).min(data.len());
                let chunk = data[start..end].to_vec();
                if let Err(e) = self.guest_write(pid, buf, &chunk) {
                    return Disp::Ret(e);
                }
                if let Some(FdEntry::Snapshot { offset, .. }) =
                    self.process_mut(pid).and_then(|p| p.fds.get_mut(&fd))
                {
                    *offset += chunk.len() as u64;
                }
                Disp::Ret(chunk.len() as u64)
            }
            FdEntry::ChannelRead { chan, end } | FdEntry::Socket { chan, end } => {
                let nonblock = self.process(pid).is_some_and(|p| p.nonblock.contains(&fd));
                let c = &mut self.net.channels[chan];
                if c.readable(end) == 0 {
                    if c.peer_closed(end) {
                        return Disp::Ret(0);
                    }
                    if nonblock {
                        return Disp::Ret(err(nr::EAGAIN));
                    }
                    return Disp::Block(ChannelReadable { chan, end });
                }
                let data = c.read(end, count);
                if let Err(e) = self.guest_write(pid, buf, &data) {
                    return Disp::Ret(e);
                }
                // Draining freed buffer space: writers parked on the bound
                // (and epoll waiters watching EPOLLOUT) can retry.
                self.wake_channel(chan);
                Disp::Ret(data.len() as u64)
            }
            FdEntry::EventFd { id } => {
                let nonblock = self.process(pid).is_some_and(|p| p.nonblock.contains(&fd));
                let val = self
                    .process(pid)
                    .and_then(|p| p.eventfds.get(&id))
                    .map(|(v, _)| *v)
                    .unwrap_or(0);
                if val == 0 {
                    if nonblock {
                        return Disp::Ret(err(nr::EAGAIN));
                    }
                    return Disp::Block(EventFd { id });
                }
                if count < 8 {
                    return Disp::Ret(err(nr::EINVAL));
                }
                if let Some((v, _)) = self.process_mut(pid).and_then(|p| p.eventfds.get_mut(&id)) {
                    *v = 0;
                }
                if let Err(e) = self.guest_write(pid, buf, &val.to_le_bytes()) {
                    return Disp::Ret(e);
                }
                Disp::Ret(8)
            }
            _ => Disp::Ret(err(nr::EINVAL)),
        }
    }

    fn sys_write(&mut self, pid: Pid, args: [u64; 6]) -> Disp {
        let (fd, buf, count) = (args[0] as i64, args[1], args[2] as usize);
        let entry = match self.process(pid).and_then(|p| p.fds.get(&fd)).cloned() {
            Some(e) => e,
            None => return Disp::Ret(err(nr::EBADF)),
        };
        let data = match self.guest_read(pid, buf, count) {
            Ok(d) => d,
            Err(e) => return Disp::Ret(e),
        };
        match entry {
            FdEntry::Console => {
                if let Some(p) = self.process_mut(pid) {
                    p.output.extend_from_slice(&data);
                }
                Disp::Ret(count as u64)
            }
            FdEntry::File { path, offset } => {
                let mut content = self.vfs.read_file(&path).map(|d| d.to_vec()).unwrap_or_default();
                let off = offset as usize;
                if content.len() < off + data.len() {
                    content.resize(off + data.len(), 0);
                }
                content[off..off + data.len()].copy_from_slice(&data);
                if let Err(e) = self.vfs.write_file(&path, &content) {
                    return Disp::Ret(e);
                }
                if let Some(FdEntry::File { offset, .. }) =
                    self.process_mut(pid).and_then(|p| p.fds.get_mut(&fd))
                {
                    *offset += data.len() as u64;
                }
                Disp::Ret(count as u64)
            }
            FdEntry::ChannelWrite { chan, end } | FdEntry::Socket { chan, end } => {
                let nonblock = self.process(pid).is_some_and(|p| p.nonblock.contains(&fd));
                let c = &mut self.net.channels[chan];
                let n = c.write(end, &data);
                if n == 0 && !data.is_empty() {
                    if c.peer_closed(end) {
                        // No reader will ever drain the buffer: discard,
                        // as the unbounded channel effectively did.
                        return Disp::Ret(count as u64);
                    }
                    if nonblock {
                        return Disp::Ret(err(nr::EAGAIN));
                    }
                    return Disp::Block(ChannelWritable { chan, end });
                }
                self.wake_channel(chan);
                Disp::Ret(n as u64)
            }
            FdEntry::EventFd { id } => {
                if data.len() < 8 {
                    return Disp::Ret(err(nr::EINVAL));
                }
                let add = u64::from_le_bytes(data[..8].try_into().expect("8 bytes"));
                if let Some((v, _)) = self.process_mut(pid).and_then(|p| p.eventfds.get_mut(&id)) {
                    *v = v.saturating_add(add);
                }
                self.wake_eventfd(id);
                Disp::Ret(8)
            }
            _ => Disp::Ret(err(nr::EINVAL)),
        }
    }

    fn sys_open(&mut self, pid: Pid, nr_: u64, args: [u64; 6]) -> Disp {
        // openat(dirfd, path, flags, mode) vs open(path, flags, mode)
        let (path_ptr, flags) = if nr_ == nr::SYS_OPENAT {
            (args[1], args[2])
        } else {
            (args[0], args[1])
        };
        let raw = match self.guest_cstr(pid, path_ptr) {
            Ok(p) => p,
            Err(e) => return Disp::Ret(e),
        };
        let path = self.abs_path(pid, &raw);
        // /proc/<pid>/maps and /proc/self/maps: snapshot at open.
        if path.starts_with("/proc/") && path.ends_with("/maps") {
            let target: Pid = {
                let mid = &path["/proc/".len()..path.len() - "/maps".len()];
                if mid == "self" {
                    pid
                } else {
                    match mid.parse() {
                        Ok(p) => p,
                        Err(_) => return Disp::Ret(err(nr::ENOENT)),
                    }
                }
            };
            let Some(p) = self.process(target) else {
                return Disp::Ret(err(nr::ENOENT));
            };
            let data = p.space.render_maps().into_bytes();
            let fd = self
                .process_mut(pid)
                .map(|p| p.alloc_fd(FdEntry::Snapshot { data, offset: 0 }))
                .unwrap_or(-nr::ESRCH);
            return Disp::Ret(fd as u64);
        }
        if !self.vfs.exists(&path) {
            if flags & O_CREAT != 0 {
                if let Err(e) = self.vfs.write_file(&path, b"") {
                    return Disp::Ret(e);
                }
            } else {
                return Disp::Ret(err(nr::ENOENT));
            }
        }
        let fd = self
            .process_mut(pid)
            .map(|p| p.alloc_fd(FdEntry::File { path, offset: 0 }))
            .unwrap_or(-nr::ESRCH);
        Disp::Ret(fd as u64)
    }

    fn sys_close(&mut self, pid: Pid, args: [u64; 6]) -> Disp {
        let fd = args[0] as i64;
        let entry = match self.process_mut(pid).and_then(|p| p.fds.remove(&fd)) {
            Some(e) => e,
            None => return Disp::Ret(err(nr::EBADF)),
        };
        // Linux auto-removes a closed description from every epoll interest
        // set; with per-process single-description fds that means: on close.
        if let Some(p) = self.process_mut(pid) {
            p.nonblock.remove(&fd);
            for ep in p.epolls.values_mut() {
                ep.interest.remove(&fd);
            }
        }
        match entry {
            FdEntry::ChannelRead { chan, end }
            | FdEntry::ChannelWrite { chan, end }
            | FdEntry::Socket { chan, end } => {
                self.net.drop_ref(chan, end);
                self.wake_channel(chan);
            }
            FdEntry::Listener { port } => {
                let gone = if let Some(l) = self.net.listeners.get_mut(&port) {
                    l.refs = l.refs.saturating_sub(1);
                    if l.refs == 0 {
                        self.net.listeners.remove(&port);
                        true
                    } else {
                        false
                    }
                } else {
                    false
                };
                if gone {
                    // Parked connectors must wake and observe ECONNREFUSED.
                    self.wake_backlog(port);
                    self.wake_accept(port);
                }
            }
            FdEntry::Epoll { id } => {
                if let Some(p) = self.process_mut(pid) {
                    if let Some(ep) = p.epolls.get_mut(&id) {
                        ep.refs = ep.refs.saturating_sub(1);
                        if ep.refs == 0 {
                            p.epolls.remove(&id);
                        }
                    }
                }
            }
            FdEntry::EventFd { id } => {
                if let Some(p) = self.process_mut(pid) {
                    if let Some((_, refs)) = p.eventfds.get_mut(&id) {
                        *refs = refs.saturating_sub(1);
                        if *refs == 0 {
                            p.eventfds.remove(&id);
                        }
                    }
                }
            }
            _ => {}
        }
        Disp::Ret(0)
    }

    fn sys_lseek(&mut self, pid: Pid, args: [u64; 6]) -> Disp {
        let (fd, off, whence) = (args[0] as i64, args[1], args[2]);
        let flen = match self.process(pid).and_then(|p| p.fds.get(&fd)) {
            Some(FdEntry::File { path, .. }) => self.vfs.file_len(path).unwrap_or(0),
            Some(FdEntry::Snapshot { data, .. }) => data.len() as u64,
            _ => return Disp::Ret(err(nr::EBADF)),
        };
        let p = self.process_mut(pid).expect("checked above");
        let cur = match p.fds.get_mut(&fd) {
            Some(FdEntry::File { offset, .. }) | Some(FdEntry::Snapshot { offset, .. }) => offset,
            _ => return Disp::Ret(err(nr::EBADF)),
        };
        let new = match whence {
            0 => off,                          // SEEK_SET
            1 => cur.wrapping_add(off),        // SEEK_CUR
            2 => flen.wrapping_add(off),       // SEEK_END
            _ => return Disp::Ret(err(nr::EINVAL)),
        };
        *cur = new;
        Disp::Ret(new)
    }

    fn sys_mmap(&mut self, pid: Pid, args: [u64; 6]) -> Disp {
        const MAP_FIXED: u64 = 0x10;
        let (addr, len, prot, flags) = (args[0], args[1], args[2], args[3]);
        let perms = prot_to_perms(prot);
        let Some(p) = self.process_mut(pid) else {
            return Disp::Ret(err(nr::ENOENT));
        };
        let len = len.div_ceil(sim_mem::PAGE_SIZE) * sim_mem::PAGE_SIZE;
        let base = if flags & MAP_FIXED != 0 || (addr != 0 && !p.space.is_mapped(addr)) {
            addr
        } else {
            p.space.find_free(0x7000_0000_0000, len)
        };
        match p.space.map(base, len, perms, "[anon]") {
            Ok(()) => Disp::Ret(base),
            Err(_) => Disp::Ret(err(nr::ENOMEM)),
        }
    }

    fn sys_mprotect(&mut self, pid: Pid, args: [u64; 6], pkey: Option<u8>) -> Disp {
        let (addr, len, prot) = (args[0], args[1], args[2]);
        let perms = prot_to_perms(prot);
        let Some(p) = self.process_mut(pid) else {
            return Disp::Ret(err(nr::ENOENT));
        };
        if p.space.protect(addr, len, perms).is_err() {
            return Disp::Ret(err(nr::ENOMEM));
        }
        if let Some(k) = pkey {
            if p.space.set_pkey(addr, len, k).is_err() {
                return Disp::Ret(err(nr::EINVAL));
            }
        }
        Disp::Ret(0)
    }

    fn sys_sigreturn(&mut self, pid: Pid, tid: Tid) -> Disp {
        self.charge(self.cost.sigreturn);
        let Some(p) = self.process_mut(pid) else {
            return Disp::NoReturn;
        };
        let Some(t) = p.thread_mut(tid) else {
            return Disp::NoReturn;
        };
        let Some(base) = t.sig_frames.pop() else {
            // sigreturn with no frame: fatal (as on Linux).
            self.kill_process(pid, 128 + nr::SIGSEGV as i64);
            return Disp::NoReturn;
        };
        t.frame_masked.pop();
        let mut frame = vec![0u8; crate::signal::FRAME_SIZE as usize];
        if p.space.read_raw(base, &mut frame).is_err() {
            self.kill_process(pid, 128 + nr::SIGSEGV as i64);
            return Disp::NoReturn;
        }
        let rd = |off: u64| {
            let o = off as usize;
            u64::from_le_bytes(frame[o..o + 8].try_into().expect("8 bytes"))
        };
        let p = self.process_mut(pid).expect("proc");
        let crate::process::Process { space, threads, .. } = p;
        let t = threads.iter_mut().find(|t| t.tid == tid).expect("thread");
        t.cpu.rip = rd(crate::signal::UC_RIP);
        t.cpu.flags_from_packed(rd(crate::signal::UC_FLAGS));
        t.cpu.pkru = sim_mem::Pkru(rd(crate::signal::UC_PKRU) as u32);
        for (i, r) in Reg::ALL.iter().enumerate() {
            let v = rd(crate::signal::UC_REGS + 8 * i as u64);
            t.cpu.set(*r, v);
        }
        // Returning from the handler serializes (iret).
        t.cpu.serialize(space);
        // A masking handler just left the stack: deliver the oldest
        // deferred signal (one per sigreturn — each delivery pushes its own
        // frame, whose sigreturn drains the next, keeping delivery points
        // architecturally deterministic).
        let pending = self
            .process_mut(pid)
            .and_then(|p| p.thread_mut(tid))
            .filter(|t| !t.frame_masked.iter().any(|m| *m) && !t.pending_signals.is_empty())
            .map(|t| t.pending_signals.remove(0));
        if let Some(info) = pending {
            self.deliver_signal(pid, tid, info);
        }
        Disp::NoReturn
    }

    fn sys_pipe(&mut self, pid: Pid, args: [u64; 6]) -> Disp {
        let chan = self.net.new_channel();
        let Some(p) = self.process_mut(pid) else {
            return Disp::Ret(err(nr::ENOENT));
        };
        let rfd = p.alloc_fd(FdEntry::ChannelRead { chan, end: End::B });
        let wfd = p.alloc_fd(FdEntry::ChannelWrite { chan, end: End::A });
        let mut buf = [0u8; 8];
        buf[..4].copy_from_slice(&(rfd as i32).to_le_bytes());
        buf[4..].copy_from_slice(&(wfd as i32).to_le_bytes());
        match self.guest_write(pid, args[0], &buf) {
            Ok(()) => Disp::Ret(0),
            Err(e) => Disp::Ret(e),
        }
    }

    fn sys_dup(&mut self, pid: Pid, args: [u64; 6]) -> Disp {
        let fd = args[0] as i64;
        let entry = match self.process(pid).and_then(|p| p.fds.get(&fd)).cloned() {
            Some(e) => e,
            None => return Disp::Ret(err(nr::EBADF)),
        };
        match &entry {
            FdEntry::ChannelRead { chan, end }
            | FdEntry::ChannelWrite { chan, end }
            | FdEntry::Socket { chan, end } => self.net.add_ref(*chan, *end),
            FdEntry::Epoll { id } => {
                if let Some(ep) = self.process_mut(pid).and_then(|p| p.epolls.get_mut(id)) {
                    ep.refs += 1;
                }
            }
            FdEntry::EventFd { id } => {
                if let Some((_, refs)) =
                    self.process_mut(pid).and_then(|p| p.eventfds.get_mut(id))
                {
                    *refs += 1;
                }
            }
            _ => {}
        }
        let nfd = self
            .process_mut(pid)
            .map(|p| p.alloc_fd(entry))
            .unwrap_or(-nr::ESRCH);
        Disp::Ret(nfd as u64)
    }

    fn sys_bind(&mut self, pid: Pid, args: [u64; 6]) -> Disp {
        // Simplified ABI: bind(fd, port).
        let (fd, port) = (args[0] as i64, args[1] as u16);
        if self.net.listeners.contains_key(&port) {
            return Disp::Ret(err(nr::EADDRINUSE));
        }
        let Some(p) = self.process_mut(pid) else {
            return Disp::Ret(err(nr::ENOENT));
        };
        match p.fds.get_mut(&fd) {
            Some(e @ FdEntry::SocketUnbound) => {
                *e = FdEntry::Listener { port };
                Disp::Ret(0)
            }
            Some(_) => Disp::Ret(err(nr::EINVAL)),
            None => Disp::Ret(err(nr::EBADF)),
        }
    }

    fn sys_listen(&mut self, pid: Pid, args: [u64; 6]) -> Disp {
        let fd = args[0] as i64;
        let port = match self.process(pid).and_then(|p| p.fds.get(&fd)) {
            Some(FdEntry::Listener { port }) => *port,
            Some(_) => return Disp::Ret(err(nr::EINVAL)),
            None => return Disp::Ret(err(nr::EBADF)),
        };
        let l = self.net.listeners.entry(port).or_default();
        l.refs += 1;
        l.max_backlog = (args[1] as usize).min(65536);
        Disp::Ret(0)
    }

    fn sys_connect(&mut self, pid: Pid, args: [u64; 6]) -> Disp {
        // Simplified ABI: connect(fd, port).
        let (fd, port) = (args[0] as i64, args[1] as u16);
        if !matches!(
            self.process(pid).and_then(|p| p.fds.get(&fd)),
            Some(FdEntry::SocketUnbound)
        ) {
            return Disp::Ret(err(nr::EINVAL));
        }
        let Some(l) = self.net.listeners.get(&port) else {
            return Disp::Ret(err(nr::ECONNREFUSED));
        };
        if l.backlog_full() {
            // Park until an accept drains a slot (SYN backlog pressure).
            if self.process(pid).is_some_and(|p| p.nonblock.contains(&fd)) {
                return Disp::Ret(err(nr::EAGAIN));
            }
            return Disp::Block(Backlog { port });
        }
        let chan = self.net.new_channel();
        self.net
            .listeners
            .get_mut(&port)
            .expect("listener checked")
            .backlog
            .push_back(chan);
        if let Some(p) = self.process_mut(pid) {
            if let Some(e) = p.fds.get_mut(&fd) {
                *e = FdEntry::Socket { chan, end: End::A };
            }
        }
        self.wake_accept(port);
        Disp::Ret(0)
    }

    fn sys_accept(&mut self, pid: Pid, args: [u64; 6]) -> Disp {
        let fd = args[0] as i64;
        let port = match self.process(pid).and_then(|p| p.fds.get(&fd)) {
            Some(FdEntry::Listener { port }) => *port,
            Some(_) => return Disp::Ret(err(nr::EINVAL)),
            None => return Disp::Ret(err(nr::EBADF)),
        };
        let chan = match self.net.listeners.get_mut(&port).and_then(|l| l.backlog.pop_front()) {
            Some(c) => c,
            None => {
                if self.process(pid).is_some_and(|p| p.nonblock.contains(&fd)) {
                    return Disp::Ret(err(nr::EAGAIN));
                }
                return Disp::Block(Accept { port });
            }
        };
        // A backlog slot freed up: parked connectors retry.
        self.wake_backlog(port);
        let nfd = self
            .process_mut(pid)
            .map(|p| p.alloc_fd(FdEntry::Socket { chan, end: End::B }))
            .unwrap_or(-nr::ESRCH);
        Disp::Ret(nfd as u64)
    }

    fn sys_execve(&mut self, pid: Pid, tid: Tid, args: [u64; 6]) -> Disp {
        let path = match self.guest_cstr(pid, args[0]) {
            Ok(p) => self.abs_path(pid, &p),
            Err(e) => return Disp::Ret(e),
        };
        let argv = match self.guest_str_array(pid, args[1]) {
            Ok(a) => a,
            Err(e) => return Disp::Ret(e),
        };
        let env = match self.guest_str_array(pid, args[2]) {
            Ok(a) => a,
            Err(e) => return Disp::Ret(e),
        };
        let _ = tid;
        match self.exec_into(pid, &path, argv, env) {
            Ok(()) => Disp::NoReturn,
            Err(e) => Disp::Ret((-e) as u64),
        }
    }

    fn sys_exit(&mut self, pid: Pid, tid: Tid, status: i64) -> Disp {
        let last = {
            let Some(p) = self.process_mut(pid) else {
                return Disp::NoReturn;
            };
            if let Some(t) = p.thread_mut(tid) {
                t.state = ThreadState::Exited;
            }
            p.all_threads_exited()
        };
        if last {
            self.kill_process(pid, status);
        }
        Disp::NoReturn
    }

    fn sys_wait4(&mut self, pid: Pid, args: [u64; 6]) -> Disp {
        let Some(p) = self.process_mut(pid) else {
            return Disp::Ret(err(nr::ENOENT));
        };
        if let Some((child, status)) = p.zombies.pop() {
            if args[1] != 0 {
                let _ = self.guest_write(pid, args[1], &(status as u64).to_le_bytes());
            }
            return Disp::Ret(child);
        }
        if p.children.is_empty() {
            return Disp::Ret(err(nr::ECHILD));
        }
        Disp::Block(Child)
    }

    fn sys_prctl(&mut self, pid: Pid, tid: Tid, args: [u64; 6]) -> Disp {
        if args[0] != nr::PR_SET_SYSCALL_USER_DISPATCH {
            return Disp::Ret(err(nr::EINVAL));
        }
        let Some(t) = self.process_mut(pid).and_then(|p| p.thread_mut(tid)) else {
            return Disp::Ret(err(nr::ENOENT));
        };
        match args[1] {
            nr::PR_SYS_DISPATCH_ON => {
                t.sud = Some(Sud {
                    range_start: args[2],
                    range_len: args[3],
                    selector_addr: args[4],
                });
                if sim_obs::enabled() {
                    sim_obs::sud_arm(self.clock, args[4]);
                }
                Disp::Ret(0)
            }
            nr::PR_SYS_DISPATCH_OFF => {
                t.sud = None;
                Disp::Ret(0)
            }
            _ => Disp::Ret(err(nr::EINVAL)),
        }
    }

    fn sys_futex(&mut self, pid: Pid, args: [u64; 6]) -> Disp {
        const FUTEX_WAIT: u64 = 0;
        const FUTEX_WAKE: u64 = 1;
        let (addr, op, val) = (args[0], args[1], args[2]);
        match op {
            FUTEX_WAIT => {
                let cur = match self.guest_read(pid, addr, 4) {
                    Ok(b) => u32::from_le_bytes(b.try_into().expect("4 bytes")),
                    Err(e) => return Disp::Ret(e),
                };
                if cur as u64 == val {
                    Disp::Block(Futex { addr })
                } else {
                    Disp::Ret(err(nr::EAGAIN))
                }
            }
            FUTEX_WAKE => {
                let woken = self.wake_futex(pid, addr, val);
                Disp::Ret(woken)
            }
            _ => Disp::Ret(err(nr::EINVAL)),
        }
    }

    fn sys_getdents(&mut self, pid: Pid, args: [u64; 6]) -> Disp {
        let (fd, buf, count) = (args[0] as i64, args[1], args[2] as usize);
        let (path, offset) = match self.process(pid).and_then(|p| p.fds.get(&fd)) {
            Some(FdEntry::File { path, offset }) => (path.clone(), *offset),
            _ => return Disp::Ret(err(nr::EBADF)),
        };
        let names = match self.vfs.read_dir(&path) {
            Ok(n) => n,
            Err(e) => return Disp::Ret(e),
        };
        // Simplified dirent stream: NUL-terminated names; offset indexes the
        // entry list.
        let mut out = Vec::new();
        let mut idx = offset as usize;
        while idx < names.len() {
            let n = names[idx].as_bytes();
            if out.len() + n.len() + 1 > count {
                break;
            }
            out.extend_from_slice(n);
            out.push(0);
            idx += 1;
        }
        if let Some(FdEntry::File { offset, .. }) =
            self.process_mut(pid).and_then(|p| p.fds.get_mut(&fd))
        {
            *offset = idx as u64;
        }
        if out.is_empty() {
            return Disp::Ret(0);
        }
        match self.guest_write(pid, buf, &out) {
            Ok(()) => Disp::Ret(out.len() as u64),
            Err(e) => Disp::Ret(e),
        }
    }

    fn sys_fstatat(&mut self, pid: Pid, args: [u64; 6]) -> Disp {
        let path = match self.guest_cstr(pid, args[1]) {
            Ok(p) => self.abs_path(pid, &p),
            Err(e) => return Disp::Ret(e),
        };
        if !self.vfs.exists(&path) {
            return Disp::Ret(err(nr::ENOENT));
        }
        let size = self.vfs.file_len(&path).unwrap_or(0);
        let is_dir = self.vfs.is_dir(&path) as u64;
        // stat buffer: mode at +24, size at +48 (matching the real layout's
        // interesting fields).
        let _ = self.guest_write(pid, args[2] + 24, &is_dir.to_le_bytes());
        let _ = self.guest_write(pid, args[2] + 48, &size.to_le_bytes());
        Disp::Ret(0)
    }

    fn sys_process_vm(&mut self, pid: Pid, args: [u64; 6], write: bool) -> Disp {
        // Simplified ABI: (target_pid, local_addr, len, remote_addr).
        let (target, local, len, remote) = (args[0], args[1], args[2] as usize, args[3]);
        let data = if write {
            match self.guest_read(pid, local, len) {
                Ok(d) => d,
                Err(e) => return Disp::Ret(e),
            }
        } else {
            match self.guest_read(target, remote, len) {
                Ok(d) => d,
                Err(e) => return Disp::Ret(e),
            }
        };
        let res = if write {
            self.guest_write(target, remote, &data)
        } else {
            self.guest_write(pid, local, &data)
        };
        match res {
            Ok(()) => Disp::Ret(len as u64),
            Err(e) => Disp::Ret(e),
        }
    }

    /// `fcntl` — implements the `O_NONBLOCK` file-status subset; every
    /// other command stays an inert success (as the old stub was).
    fn sys_fcntl(&mut self, pid: Pid, args: [u64; 6]) -> Disp {
        let (fd, cmd, arg) = (args[0] as i64, args[1], args[2]);
        let Some(p) = self.process_mut(pid) else {
            return Disp::Ret(err(nr::ENOENT));
        };
        if !p.fds.contains_key(&fd) {
            return Disp::Ret(err(nr::EBADF));
        }
        match cmd {
            nr::F_GETFL => {
                let fl = if p.nonblock.contains(&fd) { nr::O_NONBLOCK } else { 0 };
                Disp::Ret(fl)
            }
            nr::F_SETFL => {
                if arg & nr::O_NONBLOCK != 0 {
                    p.nonblock.insert(fd);
                } else {
                    p.nonblock.remove(&fd);
                }
                Disp::Ret(0)
            }
            _ => Disp::Ret(0),
        }
    }

    fn sys_epoll_create1(&mut self, pid: Pid) -> Disp {
        let Some(p) = self.process_mut(pid) else {
            return Disp::Ret(err(nr::ENOENT));
        };
        let id = p.alloc_epoll();
        let fd = p.alloc_fd(FdEntry::Epoll { id });
        Disp::Ret(fd as u64)
    }

    fn sys_eventfd2(&mut self, pid: Pid, args: [u64; 6]) -> Disp {
        let Some(p) = self.process_mut(pid) else {
            return Disp::Ret(err(nr::ENOENT));
        };
        let id = p.alloc_eventfd(args[0]);
        let fd = p.alloc_fd(FdEntry::EventFd { id });
        Disp::Ret(fd as u64)
    }

    /// `epoll_ctl(epfd, op, fd, events)` — simplified ABI: the event mask
    /// rides in the fourth register instead of a struct pointer.
    fn sys_epoll_ctl(&mut self, pid: Pid, args: [u64; 6]) -> Disp {
        let (epfd, op, fd, events) = (args[0] as i64, args[1], args[2] as i64, args[3]);
        let Some(p) = self.process_mut(pid) else {
            return Disp::Ret(err(nr::ENOENT));
        };
        let id = match p.fds.get(&epfd) {
            Some(FdEntry::Epoll { id }) => *id,
            Some(_) => return Disp::Ret(err(nr::EINVAL)),
            None => return Disp::Ret(err(nr::EBADF)),
        };
        if fd == epfd {
            return Disp::Ret(err(nr::EINVAL));
        }
        match p.fds.get(&fd) {
            None => return Disp::Ret(err(nr::EBADF)),
            // No epoll-on-epoll nesting.
            Some(FdEntry::Epoll { .. }) => return Disp::Ret(err(nr::EINVAL)),
            Some(_) => {}
        }
        let ep = p.epolls.get_mut(&id).expect("live epoll behind an open fd");
        let (disp, wake) = match op {
            nr::EPOLL_CTL_ADD => match ep.interest.entry(fd) {
                std::collections::btree_map::Entry::Occupied(_) => {
                    (Disp::Ret(err(nr::EEXIST)), false)
                }
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(EpollEntry {
                        events,
                        armed: true,
                        seen: 0,
                    });
                    (Disp::Ret(0), true)
                }
            },
            nr::EPOLL_CTL_MOD => match ep.interest.get_mut(&fd) {
                Some(e) => {
                    e.events = events;
                    e.armed = true;
                    e.seen = 0;
                    (Disp::Ret(0), true)
                }
                None => (Disp::Ret(err(nr::ENOENT)), false),
            },
            nr::EPOLL_CTL_DEL => match ep.interest.remove(&fd) {
                Some(_) => (Disp::Ret(0), false),
                None => (Disp::Ret(err(nr::ENOENT)), false),
            },
            _ => (Disp::Ret(err(nr::EINVAL)), false),
        };
        if wake {
            // The (re)armed member may already be ready: another thread
            // parked in epoll_wait on this instance must recompute.
            self.wake_epoll_waiters();
        }
        disp
    }

    /// The current readiness mask of one fd (level state; edge memory lives
    /// in the epoll entry).
    fn fd_readiness(&self, pid: Pid, fd: i64) -> u64 {
        let Some(p) = self.process(pid) else {
            return 0;
        };
        let Some(entry) = p.fds.get(&fd) else {
            return 0;
        };
        match entry {
            FdEntry::Console | FdEntry::File { .. } | FdEntry::Snapshot { .. } => {
                nr::EPOLLIN | nr::EPOLLOUT
            }
            FdEntry::ChannelRead { chan, end } | FdEntry::Socket { chan, end } => {
                let c = &self.net.channels[*chan];
                let mut r = 0;
                if c.readable(*end) > 0 {
                    r |= nr::EPOLLIN;
                }
                if c.peer_closed(*end) {
                    // EOF is readable (read returns 0) and a hangup.
                    r |= nr::EPOLLIN | nr::EPOLLHUP;
                }
                if c.space(*end) > 0 {
                    r |= nr::EPOLLOUT;
                }
                r
            }
            FdEntry::ChannelWrite { chan, end } => {
                let c = &self.net.channels[*chan];
                let mut r = 0;
                if c.space(*end) > 0 {
                    r |= nr::EPOLLOUT;
                }
                if c.peer_closed(*end) {
                    r |= nr::EPOLLERR;
                }
                r
            }
            FdEntry::Listener { port } => match self.net.listeners.get(port) {
                Some(l) if !l.backlog.is_empty() => nr::EPOLLIN,
                _ => 0,
            },
            FdEntry::EventFd { id } => {
                let mut r = nr::EPOLLOUT;
                if p.eventfds.get(id).map(|(v, _)| *v > 0).unwrap_or(false) {
                    r |= nr::EPOLLIN;
                }
                r
            }
            FdEntry::SocketUnbound | FdEntry::Epoll { .. } => 0,
        }
    }

    /// `epoll_wait(epfd, buf, maxevents)` — simplified ABI: each ready fd
    /// writes one 16-byte record `[fd: u64][events: u64]`; returns the
    /// record count, or parks on [`Wait::Epoll`] when nothing is ready.
    fn sys_epoll_wait(&mut self, pid: Pid, args: [u64; 6]) -> Disp {
        let (epfd, buf, maxevents) = (args[0] as i64, args[1], args[2] as usize);
        let id = match self.process(pid).and_then(|p| p.fds.get(&epfd)) {
            Some(FdEntry::Epoll { id }) => *id,
            Some(_) => return Disp::Ret(err(nr::EINVAL)),
            None => return Disp::Ret(err(nr::EBADF)),
        };
        if maxevents == 0 {
            return Disp::Ret(err(nr::EINVAL));
        }
        // Snapshot the interest set (BTreeMap order → deterministic,
        // fd-ordered delivery), then compute readiness per member.
        let interest: Vec<(i64, EpollEntry)> = self
            .process(pid)
            .and_then(|p| p.epolls.get(&id))
            .map(|ep| ep.interest.iter().map(|(f, e)| (*f, *e)).collect())
            .unwrap_or_default();
        let mut out: Vec<(i64, u64)> = Vec::new();
        let mut updates: Vec<(i64, u64, bool)> = Vec::new();
        for (fd, ent) in &interest {
            if !ent.armed {
                continue;
            }
            let cur = self.fd_readiness(pid, *fd);
            // A bit that stopped being ready re-arms its edge.
            let mut seen = ent.seen & cur;
            let wanted = cur & (ent.events | nr::EPOLLHUP | nr::EPOLLERR);
            let fresh = if ent.events & nr::EPOLLET != 0 {
                wanted & !seen
            } else {
                wanted
            };
            let mut armed = true;
            if fresh != 0 && out.len() < maxevents {
                out.push((*fd, fresh));
                seen |= fresh;
                if ent.events & nr::EPOLLONESHOT != 0 {
                    armed = false;
                }
            }
            if seen != ent.seen || armed != ent.armed {
                updates.push((*fd, seen, armed));
            }
        }
        if out.is_empty() {
            // Nothing ready: park. Deferred `seen` updates are recomputed
            // identically on the post-wake retry.
            return Disp::Block(Epoll);
        }
        if let Some(ep) = self.process_mut(pid).and_then(|p| p.epolls.get_mut(&id)) {
            for (fd, seen, armed) in updates {
                if let Some(e) = ep.interest.get_mut(&fd) {
                    e.seen = seen;
                    e.armed = armed;
                }
            }
        }
        let mut bytes = Vec::with_capacity(out.len() * 16);
        for (fd, ev) in &out {
            bytes.extend_from_slice(&(*fd as u64).to_le_bytes());
            bytes.extend_from_slice(&ev.to_le_bytes());
        }
        let n = out.len() as u64;
        match self.guest_write(pid, buf, &bytes) {
            Ok(()) => Disp::Ret(n),
            Err(e) => Disp::Ret(e),
        }
    }
}

fn prot_to_perms(prot: u64) -> sim_mem::Perms {
    let mut p = sim_mem::Perms::NONE;
    if prot & 1 != 0 {
        p |= sim_mem::Perms::R;
    }
    if prot & 2 != 0 {
        p |= sim_mem::Perms::W;
    }
    if prot & 4 != 0 {
        p |= sim_mem::Perms::X;
    }
    p
}
