//! Loopback networking: byte channels and listening ports.
//!
//! All benchmark clients and servers run on the same simulated machine and
//! talk over these channels — mirroring the paper's localhost evaluation
//! setup ("we run both clients and servers on the same physical machine",
//! §6.2.2).

use std::collections::{HashMap, VecDeque};

/// Default per-direction channel buffer (bytes). Large enough that the
/// request/response workloads never stall on it, small enough that a
/// runaway writer blocks instead of growing host memory without bound.
pub const DEFAULT_CHANNEL_CAP: usize = 256 * 1024;

/// Default accept-backlog length when `listen` passes 0.
pub const DEFAULT_BACKLOG: usize = 1024;

/// Which end of a channel a descriptor holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum End {
    /// The connecting/client side.
    A,
    /// The accepting/server side.
    B,
}

impl End {
    /// The opposite end.
    pub fn peer(self) -> End {
        match self {
            End::A => End::B,
            End::B => End::A,
        }
    }
}

/// A bidirectional in-kernel byte channel (socketpair / pipe / TCP-over-
/// loopback stand-in).
#[derive(Debug, Clone, Default)]
pub struct Channel {
    /// Bytes travelling A → B.
    pub a_to_b: VecDeque<u8>,
    /// Bytes travelling B → A.
    pub b_to_a: VecDeque<u8>,
    /// Open descriptor count on end A.
    pub refs_a: u32,
    /// Open descriptor count on end B.
    pub refs_b: u32,
    /// Per-direction buffer bound in bytes; 0 means [`DEFAULT_CHANNEL_CAP`].
    pub cap: usize,
}

impl Channel {
    fn rx(&mut self, end: End) -> &mut VecDeque<u8> {
        match end {
            End::A => &mut self.b_to_a,
            End::B => &mut self.a_to_b,
        }
    }

    /// Bytes currently readable from `end`.
    pub fn readable(&self, end: End) -> usize {
        match end {
            End::A => self.b_to_a.len(),
            End::B => self.a_to_b.len(),
        }
    }

    /// The effective per-direction buffer bound.
    pub fn capacity(&self) -> usize {
        if self.cap == 0 {
            DEFAULT_CHANNEL_CAP
        } else {
            self.cap
        }
    }

    /// Bytes `end` may still write toward its peer before blocking.
    pub fn space(&self, end: End) -> usize {
        let queued = match end {
            End::A => self.a_to_b.len(),
            End::B => self.b_to_a.len(),
        };
        self.capacity().saturating_sub(queued)
    }

    /// True if the peer has closed all its descriptors.
    pub fn peer_closed(&self, end: End) -> bool {
        match end {
            End::A => self.refs_b == 0,
            End::B => self.refs_a == 0,
        }
    }

    /// Reads up to `max` bytes from `end`'s receive direction.
    pub fn read(&mut self, end: End, max: usize) -> Vec<u8> {
        let q = self.rx(end);
        let n = max.min(q.len());
        q.drain(..n).collect()
    }

    /// Writes up to `space(end)` bytes toward the peer of `end`; returns
    /// how many were queued (a short count once the buffer bound is hit).
    pub fn write(&mut self, end: End, data: &[u8]) -> usize {
        let n = data.len().min(self.space(end));
        let q = self.rx(end.peer());
        q.extend(data[..n].iter().copied());
        n
    }
}

/// A listening port: a backlog of channels created by `connect`, waiting for
/// `accept`.
#[derive(Debug, Clone, Default)]
pub struct Listener {
    /// Channel indices waiting to be accepted.
    pub backlog: VecDeque<usize>,
    /// Open listener descriptor count.
    pub refs: u32,
    /// Accept-backlog bound; 0 means [`DEFAULT_BACKLOG`].
    pub max_backlog: usize,
}

impl Listener {
    /// The effective backlog bound.
    pub fn capacity(&self) -> usize {
        if self.max_backlog == 0 {
            DEFAULT_BACKLOG
        } else {
            self.max_backlog
        }
    }

    /// True if another `connect` would overflow the backlog.
    pub fn backlog_full(&self) -> bool {
        self.backlog.len() >= self.capacity()
    }
}

/// The kernel's networking state.
#[derive(Debug, Clone, Default)]
pub struct Net {
    /// All channels ever created (indices are stable).
    pub channels: Vec<Channel>,
    /// Listening ports.
    pub listeners: HashMap<u16, Listener>,
}

impl Net {
    /// Creates a channel with one reference on each end; returns its index.
    pub fn new_channel(&mut self) -> usize {
        self.channels.push(Channel {
            refs_a: 1,
            refs_b: 1,
            ..Channel::default()
        });
        self.channels.len() - 1
    }

    /// Drops one reference on `end` of channel `chan`.
    pub fn drop_ref(&mut self, chan: usize, end: End) {
        let c = &mut self.channels[chan];
        match end {
            End::A => c.refs_a = c.refs_a.saturating_sub(1),
            End::B => c.refs_b = c.refs_b.saturating_sub(1),
        }
    }

    /// Adds one reference on `end` (dup/fork).
    pub fn add_ref(&mut self, chan: usize, end: End) {
        let c = &mut self.channels[chan];
        match end {
            End::A => c.refs_a += 1,
            End::B => c.refs_b += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_directions() {
        let mut c = Channel {
            refs_a: 1,
            refs_b: 1,
            ..Channel::default()
        };
        c.write(End::A, b"req");
        assert_eq!(c.readable(End::B), 3);
        assert_eq!(c.readable(End::A), 0);
        assert_eq!(c.read(End::B, 10), b"req");
        c.write(End::B, b"resp");
        assert_eq!(c.read(End::A, 2), b"re");
        assert_eq!(c.read(End::A, 10), b"sp");
    }

    #[test]
    fn peer_close_detection() {
        let mut n = Net::default();
        let id = n.new_channel();
        assert!(!n.channels[id].peer_closed(End::A));
        n.drop_ref(id, End::B);
        assert!(n.channels[id].peer_closed(End::A));
        assert!(!n.channels[id].peer_closed(End::B));
    }

    #[test]
    fn refcounts_dup() {
        let mut n = Net::default();
        let id = n.new_channel();
        n.add_ref(id, End::A);
        n.drop_ref(id, End::A);
        assert!(!n.channels[id].peer_closed(End::B));
        n.drop_ref(id, End::A);
        assert!(n.channels[id].peer_closed(End::B));
    }
}
