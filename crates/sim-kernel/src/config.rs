//! Typed engine configuration and the kernel-side fault-injection session.
//!
//! [`EngineConfig`] replaced the accreted bool setters of earlier
//! revisions with one builder applied through
//! [`crate::Kernel::configure`]; every knob (engine, memory mode, icache
//! policy, trace parameters, fault plan, profiler period, obs ring size)
//! lives here. [`FaultSession`] is the kernel's live
//! state for one [`FaultPlan`]: architectural counters (retired
//! instructions, syscall occurrences, scheduling rounds) plus pending
//! permission restorations — all of which advance identically under the
//! block engine and the stepwise oracle.

use crate::process::Pid;
use crate::record::RecordSpec;
use sim_cpu::{IcacheMode, TraceParams};
use sim_fault::FaultPlan;
use sim_mem::{MemMode, Perms};
use sim_record::Rec;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Which scheduler engine executes guest code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The block-based fast path ([`sim_cpu::Cpu::run_block`]).
    #[default]
    Block,
    /// The block engine plus the trace cache: hot blocks are promoted
    /// into linked superblocks replayed without per-instruction fetches
    /// (see `sim_cpu::trace`).
    Trace,
    /// The original per-step loop, retained as the determinism oracle and
    /// benchmarking baseline.
    Stepwise,
}

/// One typed configuration for the execution engine.
///
/// ```
/// use sim_kernel::{Engine, EngineConfig, IcacheMode, MemMode};
///
/// let fast = EngineConfig::new();
/// assert_eq!(fast.engine, Engine::Block);
/// let traced = EngineConfig::traced();
/// assert_eq!(traced.engine, Engine::Trace);
/// let oracle = EngineConfig::stepwise();
/// assert_eq!(oracle.icache, IcacheMode::SeedFlush);
/// let legacy = EngineConfig::new().mem(MemMode::Legacy);
/// assert_eq!(legacy.mem, MemMode::Legacy);
/// ```
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Scheduler engine.
    pub engine: Engine,
    /// Guest memory access mode (applied to every address space).
    pub mem: MemMode,
    /// Decoded-instruction cache policy (applied to every core).
    pub icache: IcacheMode,
    /// Trace-cache knobs (consulted only under [`Engine::Trace`]).
    pub trace: TraceParams,
    /// Fault-injection plan, if any.
    pub fault: Option<FaultPlan>,
    /// Profiler sample period in retired instructions, if sampling.
    pub profile: Option<u64>,
    /// Observability event-ring capacity override (events per simulated
    /// CPU); `None` keeps the recorder's own configuration. Applied at
    /// [`crate::Kernel::configure`] time when recording is live.
    pub obs_ring_capacity: Option<usize>,
    /// Record/replay mode, if any (see [`crate::record`]).
    pub record: Option<RecordSpec>,
    /// Coverage-audit expectation, if auditing (see [`crate::audit`]).
    pub audit: Option<crate::audit::AuditSpec>,
}

impl EngineConfig {
    /// The default fast configuration: block engine, page-run memory,
    /// revalidating icache, no fault injection.
    pub fn new() -> EngineConfig {
        EngineConfig::default()
    }

    /// The trace-engine configuration: block engine plus superblock
    /// promotion with default [`TraceParams`].
    pub fn traced() -> EngineConfig {
        EngineConfig {
            engine: Engine::Trace,
            ..EngineConfig::default()
        }
    }

    /// The oracle configuration the determinism tests compare against:
    /// the stepwise engine with the original seeded icache flushing.
    pub fn stepwise() -> EngineConfig {
        EngineConfig {
            engine: Engine::Stepwise,
            icache: IcacheMode::SeedFlush,
            ..EngineConfig::default()
        }
    }

    /// Selects the scheduler engine.
    pub fn engine(mut self, engine: Engine) -> EngineConfig {
        self.engine = engine;
        self
    }

    /// Overrides the trace-cache knobs (hotness threshold, max ops per
    /// trace, pool capacity).
    pub fn trace_params(mut self, params: TraceParams) -> EngineConfig {
        self.trace = params;
        self
    }

    /// Overrides the observability event-ring capacity (events per
    /// simulated CPU) while recording is live.
    pub fn obs_ring_capacity(mut self, cap: usize) -> EngineConfig {
        self.obs_ring_capacity = Some(cap);
        self
    }

    /// Selects the guest memory access mode.
    pub fn mem(mut self, mem: MemMode) -> EngineConfig {
        self.mem = mem;
        self
    }

    /// Selects the decoded-instruction cache policy.
    pub fn icache(mut self, icache: IcacheMode) -> EngineConfig {
        self.icache = icache;
        self
    }

    /// Installs a fault-injection plan.
    pub fn fault(mut self, plan: FaultPlan) -> EngineConfig {
        self.fault = Some(plan);
        self
    }

    /// Enables the deterministic sampling profiler: one sample every
    /// `period` retired instructions (clamped to ≥ 1). Samples land at
    /// identical architectural boundaries under both engines.
    pub fn profile(mut self, period: u64) -> EngineConfig {
        self.profile = Some(period.max(1));
        self
    }

    /// Enables recording (no checkpoints): syscall results, injected
    /// faults/signals, scheduler decisions, and exits are captured into a
    /// log keyed by retired-instruction counts.
    pub fn record(mut self) -> EngineConfig {
        self.record = Some(RecordSpec::Record {
            checkpoint_period: 0,
        });
        self
    }

    /// Enables navigation-grade recording: periodic checkpoints every
    /// `period` retired instructions (clamped to ≥ 1) plus per-syscall
    /// page-write snapshots for time-travel seeking.
    pub fn record_with_checkpoints(mut self, period: u64) -> EngineConfig {
        self.record = Some(RecordSpec::Record {
            checkpoint_period: period.max(1),
        });
        self
    }

    /// Enables the interposition coverage ledger, auditing every retired
    /// syscall against `spec` (a mechanism's expected-coverage
    /// declaration, `interpose::Interposer::coverage`). Auditing forces
    /// the full slow path so every syscall reaches the dispatch choke
    /// point; with no session configured the fast paths are untouched.
    pub fn audit(mut self, spec: crate::audit::AuditSpec) -> EngineConfig {
        self.audit = Some(spec);
        self
    }

    /// Enables verifying replay: re-execute in full and compare every
    /// produced record against `log`, halting at the first mismatch.
    pub fn replay_verify(mut self, log: Rc<Vec<Rec>>) -> EngineConfig {
        self.record = Some(RecordSpec::Verify { log });
        self
    }

    /// Enables injecting replay (navigation): short-circuit
    /// non-process-local syscalls and re-apply recorded asynchrony.
    pub fn replay_inject(mut self, log: Rc<Vec<Rec>>) -> EngineConfig {
        self.record = Some(RecordSpec::Inject { log });
        self
    }
}

/// Kernel-side state for applying one [`FaultPlan`].
pub(crate) struct FaultSession {
    /// The plan being applied.
    pub plan: FaultPlan,
    /// Retired guest instructions (architectural; engine-invariant).
    pub retired: u64,
    /// Plan boundaries strictly below this have fired. Injection retires
    /// no instructions, so without the cursor a boundary would re-fire
    /// forever at the same retired count.
    pub fired_until: u64,
    /// Per-syscall-nr executed-occurrence counters (counted only after
    /// `interposer_live`, never for in-kernel restarts).
    pub occurrences: BTreeMap<u64, u64>,
    /// Pending permission restorations:
    /// `(due boundary, pid, page base, saved perms)`.
    pub restores: Vec<(u64, Pid, u64, Perms)>,
    /// Scheduling round counter (drives [`FaultPlan::sched_rotation`]).
    pub round: u64,
}

/// Kernel-side state for the sampling profiler: like [`FaultSession`],
/// it counts retired instructions (engine-invariant) and caps block
/// budgets so sample boundaries land at identical architectural
/// instructions under both engines.
pub(crate) struct ProfSession {
    /// Sample period in retired instructions (≥ 1).
    pub period: u64,
    /// Retired guest instructions.
    pub retired: u64,
    /// Next sample boundary (strictly greater than the last one taken).
    pub next: u64,
}

impl ProfSession {
    pub fn new(period: u64) -> ProfSession {
        let period = period.max(1);
        ProfSession {
            period,
            retired: 0,
            next: period,
        }
    }

    /// True when the boundary is reached; the caller takes the sample
    /// and advances [`ProfSession::next`].
    pub fn due(&self) -> bool {
        self.retired >= self.next
    }
}

impl FaultSession {
    pub fn new(plan: FaultPlan) -> FaultSession {
        FaultSession {
            plan,
            retired: 0,
            fired_until: 0,
            occurrences: BTreeMap::new(),
            restores: Vec::new(),
            round: 0,
        }
    }

    /// The next boundary (plan event or scheduled restore) the engines
    /// must stop at, skipping plan boundaries that already fired.
    pub fn next_stop(&self) -> Option<u64> {
        let from = self.retired.max(self.fired_until);
        let plan_next = self.plan.next_boundary(from);
        let restore_next = self.restores.iter().map(|r| r.0).min();
        match (plan_next, restore_next) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// True if a boundary is due at (or overdue for) the current retired
    /// count.
    pub fn due(&self) -> bool {
        self.next_stop().is_some_and(|s| s <= self.retired)
    }
}
