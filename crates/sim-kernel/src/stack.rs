//! Stackable interposer chains: the kernel half of composed interposition.
//!
//! A [`StackSession`] holds a priority-ordered list of [`StackLayer`]s
//! sharing one underlying interposition mechanism (the *base*). When a
//! syscall reaches the dispatch step of the slow path from one of the
//! base's forwarding sites (or from anywhere, for bases like ptrace that
//! interpose every site), the kernel routes it through the chain instead
//! of dispatching directly: the outermost active layer's hook runs with a
//! [`Chain`] handle whose [`Chain::call_next`] invokes the next layer
//! (falling through to the real kernel dispatch below the last layer) and
//! whose [`Chain::call_real`] forwards to the kernel immediately,
//! skipping the remaining layers.
//!
//! Chain dispatch preserves the architectural contract of the bare slow
//! path: the real dispatch — including any injected fault — runs **at
//! most once** per chained syscall, at the position in the chain where
//! the first `call_real` (or the fall-through below the innermost layer)
//! reaches it. A layer that never calls down short-circuits the syscall
//! with skip-syscall semantics. Control transfers (`rt_sigreturn`,
//! `execve`, exits, in-kernel blocking) surface to the layers as
//! [`SysResult::Control`]; a layer that "marshals" such an outcome into a
//! value reproduces the nested-sigreturn composition hazard — its
//! epilogue runs on a frame the control transfer already abandoned — and
//! the kernel kills the process with SIGSEGV, deterministically.
//!
//! Per-process layer membership is a bitmask ([`Process::stack_mask`]):
//! bit *i* set means layer *i* of the session is active for that process.
//! `fork` propagates the mask filtered by each layer's
//! [`StackLayer::propagate_fork`]; `execve` filters by
//! [`StackLayer::propagate_exec`] and invalidates the cached chain-site
//! resolution (the new image may not even carry the base's handler
//! library — the P1a env-clearing gap then leaves the chain inert).
//!
//! [`Process::stack_mask`]: crate::process::Process::stack_mask

use crate::kernel::Kernel;
use crate::process::{Pid, Tid};
use sim_fault::FaultKind;
use std::rc::Rc;

/// What a layer hook (or the real dispatch, seen through the chain)
/// produces for the layer above it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SysResult {
    /// An ordinary return value: the caller resumes after the syscall
    /// instruction with this in `rax`.
    Value(u64),
    /// A control transfer or in-kernel continuation (`rt_sigreturn`,
    /// `execve`, thread exit, a blocked syscall): there is no return
    /// value to marshal, and the saved frame below the chain is gone.
    Control,
}

/// Outcome of the real kernel dispatch, as recorded by the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RealOutcome {
    /// The syscall returned `rax` normally (registers already applied).
    Ret(u64),
    /// `rt_sigreturn` restored a saved signal context — the specific
    /// control transfer the composition-hazard check keys on.
    Sigreturn,
    /// Any other no-return outcome: exit, successful `execve`, or an
    /// in-kernel block (the syscall completes on wake, below the chain).
    Opaque,
}

impl RealOutcome {
    fn as_result(self) -> SysResult {
        match self {
            RealOutcome::Ret(v) => SysResult::Value(v),
            RealOutcome::Sigreturn | RealOutcome::Opaque => SysResult::Control,
        }
    }
}

/// One layer's syscall hook.
///
/// Hooks run on the host, with full mutable kernel access, exactly once
/// per chained syscall (in priority order). A hook that wants the layers
/// below it (and ultimately the kernel) to run calls
/// [`Chain::call_next`]; one that wants to bypass the remaining layers
/// calls [`Chain::call_real`]; one that calls neither short-circuits the
/// syscall with the [`SysResult::Value`] it returns. Returning
/// [`SysResult::Control`] without having called down is a contract
/// violation; the kernel falls back to the real dispatch to preserve
/// forward progress.
pub trait LayerHook {
    /// Handles one syscall flowing through the chain.
    fn on_syscall(&self, k: &mut Kernel, ctx: &mut SyscallCtx, chain: &mut Chain) -> SysResult;
}

/// The syscall being dispatched through the chain.
#[derive(Debug, Clone, Copy)]
pub struct SyscallCtx {
    /// Issuing process.
    pub pid: Pid,
    /// Issuing thread.
    pub tid: Tid,
    /// Syscall number (post tracer-rewrite).
    pub nr: u64,
    /// Arguments (rdi, rsi, rdx, r10, r8, r9).
    pub args: [u64; 6],
    /// Guest address of the `syscall` instruction.
    pub site: u64,
}

/// One layer of a composed interposer stack.
pub struct StackLayer {
    /// Layer name (registry spec segment; also the simprof span suffix).
    pub name: String,
    /// Dispatch priority: higher runs earlier (outermost).
    pub priority: i32,
    /// Whether forked children inherit this layer.
    pub propagate_fork: bool,
    /// Whether the layer survives `execve` of a covered process.
    pub propagate_exec: bool,
    /// Cycles charged on entry per chained syscall (the wrapper cost the
    /// layer adds to every round trip).
    pub overhead: u64,
    /// Whether the chain emits a `stack/<name>` simprof span around the
    /// hook (disabled for layers that must be observationally invisible).
    pub span: bool,
    /// The hook itself.
    pub hook: Rc<dyn LayerHook>,
}

/// Which syscall sites the chain intercepts.
#[derive(Debug, Clone)]
pub enum ChainFilter {
    /// Every dispatch of a covered process (ptrace/native bases, which
    /// have no in-process forwarding sites).
    All,
    /// Only syscalls issued from the base mechanism's forwarding sites,
    /// named as `"lib basename:symbol"` and resolved (then cached) per
    /// process against its symbol table.
    Sites(Rc<Vec<String>>),
}

/// An installed stack: the shared session state the kernel consults on
/// every slow-path dispatch.
pub struct StackSession {
    /// Display label (the full registry spec, e.g. `"k23+tracer+recorder"`).
    pub label: String,
    pub(crate) layers: Rc<Vec<StackLayer>>,
    pub(crate) filter: ChainFilter,
}

impl StackSession {
    /// A session over `layers` (sorted here by descending priority, so
    /// index order is dispatch order) intercepting at `filter`.
    pub fn new(label: String, mut layers: Vec<StackLayer>, filter: ChainFilter) -> StackSession {
        assert!(layers.len() <= 64, "at most 64 layers per stack");
        layers.sort_by_key(|l| std::cmp::Reverse(l.priority));
        StackSession {
            label,
            layers: Rc::new(layers),
            filter,
        }
    }

    /// Bitmask with one bit per layer.
    pub fn full_mask(&self) -> u64 {
        if self.layers.len() >= 64 {
            u64::MAX
        } else {
            (1u64 << self.layers.len()) - 1
        }
    }

    /// Mask of layers that propagate across `fork`.
    pub fn fork_mask(&self) -> u64 {
        self.flag_mask(|l| l.propagate_fork)
    }

    /// Mask of layers that survive `execve`.
    pub fn exec_mask(&self) -> u64 {
        self.flag_mask(|l| l.propagate_exec)
    }

    fn flag_mask(&self, f: impl Fn(&StackLayer) -> bool) -> u64 {
        self.layers
            .iter()
            .enumerate()
            .filter(|(_, l)| f(l))
            .fold(0u64, |m, (i, _)| m | (1u64 << i))
    }

    /// Layer names in dispatch order.
    pub fn layer_names(&self) -> Vec<String> {
        self.layers.iter().map(|l| l.name.clone()).collect()
    }
}

/// The dispatch handle a layer hook drives.
///
/// Owns a clone of the session's layer list (so hooks may mutate the
/// kernel freely) plus the position cursor and the not-yet-consumed
/// injected fault destined for the real dispatch.
pub struct Chain {
    layers: Rc<Vec<StackLayer>>,
    /// Indices of the layers active for this process, in dispatch order.
    order: Vec<usize>,
    /// Cursor into `order`: the next layer `call_next` invokes.
    pos: usize,
    injected: Option<FaultKind>,
    real: Option<RealOutcome>,
    obs: bool,
}

impl Chain {
    pub(crate) fn new(
        layers: Rc<Vec<StackLayer>>,
        order: Vec<usize>,
        injected: Option<FaultKind>,
        obs: bool,
    ) -> Chain {
        Chain {
            layers,
            order,
            pos: 0,
            injected,
            real: None,
            obs,
        }
    }

    /// Invokes the next active layer below the caller; below the last
    /// layer, falls through to the real kernel dispatch.
    pub fn call_next(&mut self, k: &mut Kernel, ctx: &mut SyscallCtx) -> SysResult {
        let Some(&idx) = self.order.get(self.pos) else {
            return self.call_real(k, ctx);
        };
        self.pos += 1;
        let layers = self.layers.clone();
        let layer = &layers[idx];
        if layer.overhead > 0 {
            k.charge(layer.overhead);
        }
        let span = self.obs && layer.span;
        if span {
            sim_obs::span_enter(k.clock, &format!("stack/{}", layer.name));
        }
        let r = layer.hook.on_syscall(k, ctx, self);
        if span {
            sim_obs::span_exit(k.clock);
        }
        r
    }

    /// Forwards to the real kernel dispatch immediately, skipping every
    /// remaining layer. Idempotent per chained syscall: the real dispatch
    /// (and its injected fault, if any) runs exactly once; later calls
    /// return the cached outcome instead of re-executing the syscall.
    pub fn call_real(&mut self, k: &mut Kernel, ctx: &mut SyscallCtx) -> SysResult {
        if let Some(r) = self.real {
            return r.as_result();
        }
        let injected = self.injected.take();
        let out = k.chain_real_dispatch(ctx.pid, ctx.tid, ctx.nr, ctx.args, ctx.site, injected);
        self.real = Some(out);
        out.as_result()
    }

    /// The real dispatch's outcome, once it ran.
    pub fn real_outcome(&self) -> Option<RealOutcome> {
        self.real
    }
}
