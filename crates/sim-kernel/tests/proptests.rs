//! Property-based tests for the VFS and channel layer.

use proptest::prelude::*;
use sim_kernel::{Channel, End, Vfs};

fn arb_path() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-z]{1,6}", 1..4).prop_map(|c| format!("/{}", c.join("/")))
}

proptest! {
    /// write_file / read_file round-trips arbitrary content at arbitrary
    /// depths; later writes win.
    #[test]
    fn vfs_roundtrip(entries in proptest::collection::vec((arb_path(), proptest::collection::vec(any::<u8>(), 0..64)), 1..16)) {
        let mut vfs = Vfs::new();
        let mut model = std::collections::HashMap::new();
        for (path, data) in &entries {
            // Skip paths that collide with an existing directory prefix.
            if vfs.is_dir(path) {
                continue;
            }
            if vfs.write_file(path, data).is_ok() {
                model.insert(path.clone(), data.clone());
            }
        }
        for (path, data) in &model {
            prop_assert_eq!(vfs.read_file(path).unwrap(), &data[..]);
        }
    }

    /// Channel bytes arrive in order and are never duplicated or lost.
    #[test]
    fn channel_fifo(chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..32), 1..16), reads in proptest::collection::vec(1usize..64, 1..64)) {
        let mut c = Channel::default();
        let mut sent = Vec::new();
        for ch in &chunks {
            c.write(End::A, ch);
            sent.extend_from_slice(ch);
        }
        let mut got = Vec::new();
        for r in reads {
            got.extend(c.read(End::B, r));
        }
        got.extend(c.read(End::B, usize::MAX / 2));
        prop_assert_eq!(got, sent);
        // Nothing leaked to the wrong direction.
        prop_assert_eq!(c.readable(End::A), 0);
    }

    /// Immutability is airtight: no write/append/unlink mutates sealed state.
    #[test]
    fn immutability_holds(data in proptest::collection::vec(any::<u8>(), 0..64), attempt in proptest::collection::vec(any::<u8>(), 0..64)) {
        let mut vfs = Vfs::new();
        vfs.write_file("/sealed/f", &data).unwrap();
        vfs.set_immutable("/sealed", true).unwrap();
        let _ = vfs.write_file("/sealed/f", &attempt);
        let _ = vfs.append_file("/sealed/f", &attempt);
        let _ = vfs.unlink("/sealed/f");
        let _ = vfs.write_file("/sealed/g", &attempt);
        prop_assert_eq!(vfs.read_file("/sealed/f").unwrap(), &data[..]);
        prop_assert!(!vfs.exists("/sealed/g"));
    }
}

mod seccomp_tests {
    use sim_isa::{Asm, Reg};
    use sim_kernel::{nr, SeccompAction, SeccompFilter};

    /// A raw-code loader identical to the kernel unit tests'.
    struct RawLoader(Vec<u8>);
    impl sim_kernel::ExecLoader for RawLoader {
        fn load(
            &self,
            _vfs: &mut sim_kernel::Vfs,
            _path: &str,
            _argv: &[String],
            _env: &[String],
            _opts: &sim_kernel::ExecOpts,
        ) -> Result<sim_kernel::LoadedImage, i64> {
            let mut space = sim_mem::AddressSpace::new();
            space.map(0x1000, 0x10000, sim_mem::Perms::RX, "/bin/raw").unwrap();
            space.write_raw(0x1000, &self.0).unwrap();
            space.map(0x8_0000, 0x10000, sim_mem::Perms::RW, "[stack]").unwrap();
            Ok(sim_kernel::LoadedImage {
                space,
                entry: 0x1000,
                rsp: 0x9_0000 - 64,
                hostcall_sites: Vec::new(),
                symbols: Default::default(),
                lib_bases: Default::default(),
                vdso_base: 0,
            })
        }
    }

    fn app(first_nr: u64) -> Vec<u8> {
        let mut a = Asm::new();
        a.mov_imm(Reg::Rax, first_nr);
        a.syscall();
        a.mov_reg(Reg::Rdi, Reg::Rax); // exit with the first call's result
        a.and_imm(Reg::Rdi, 0xff);
        a.mov_imm(Reg::Rax, nr::SYS_EXIT_GROUP);
        a.syscall();
        a.finish()
    }

    fn run_with_filter(first_nr: u64, filter: SeccompFilter) -> Option<i64> {
        let mut k = sim_kernel::Kernel::new();
        k.set_loader(std::rc::Rc::new(RawLoader(app(first_nr))));
        let pid = k.spawn("/bin/raw", &[], &[], None).unwrap();
        k.process_mut(pid).unwrap().seccomp = Some(filter);
        k.run(1_000_000_000);
        k.process(pid).unwrap().exit_status
    }

    #[test]
    fn errno_rule_fails_syscall_without_executing() {
        let mut rules = std::collections::BTreeMap::new();
        rules.insert(nr::SYS_GETPID, SeccompAction::Errno(nr::EPERM));
        let status = run_with_filter(
            nr::SYS_GETPID,
            SeccompFilter { rules, default: SeccompAction::Allow },
        );
        // getpid returned -EPERM; exit status = low byte of -1 = 0xff.
        assert_eq!(status, Some(0xff));
    }

    #[test]
    fn kill_rule_terminates_with_sigsys() {
        let mut rules = std::collections::BTreeMap::new();
        rules.insert(nr::SYS_GETPID, SeccompAction::Kill);
        let status = run_with_filter(
            nr::SYS_GETPID,
            SeccompFilter { rules, default: SeccompAction::Allow },
        );
        assert_eq!(status, Some(128 + nr::SIGSYS as i64));
    }

    #[test]
    fn allow_passes_through() {
        let status = run_with_filter(
            nr::SYS_GETPID,
            SeccompFilter { rules: Default::default(), default: SeccompAction::Allow },
        );
        assert_eq!(status, Some(1)); // pid 1
    }

    #[test]
    fn default_errno_denies_unknown() {
        let status = run_with_filter(
            nr::SYS_GETUID,
            SeccompFilter { rules: Default::default(), default: SeccompAction::Errno(nr::ENOSYS) },
        );
        // Even exit_group is denied by the default … so the process wedges;
        // instead allow exit_group explicitly.
        let _ = status;
        let mut rules = std::collections::BTreeMap::new();
        rules.insert(nr::SYS_EXIT_GROUP, SeccompAction::Allow);
        let status = run_with_filter(
            nr::SYS_GETUID,
            SeccompFilter { rules, default: SeccompAction::Errno(nr::EACCES) },
        );
        assert_eq!(status, Some(-(nr::EACCES) & 0xff));
    }
}
