//! Property-based tests for the instruction codec and disassembler.

use proptest::prelude::*;
use sim_isa::{decode, linear_sweep, Cond, Inst, Reg};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|i| Reg::from_index(i).unwrap())
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop::sample::select(Cond::ALL.to_vec())
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Syscall),
        Just(Inst::Sysenter),
        Just(Inst::Ret),
        Just(Inst::Hlt),
        Just(Inst::Int3),
        Just(Inst::Cpuid),
        Just(Inst::Fence),
        Just(Inst::Vsyscall),
        Just(Inst::Rdpkru),
        Just(Inst::Wrpkru),
        arb_reg().prop_map(Inst::CallReg),
        arb_reg().prop_map(Inst::JmpReg),
        arb_reg().prop_map(Inst::Push),
        arb_reg().prop_map(Inst::Pop),
        (arb_reg(), any::<u64>()).prop_map(|(r, v)| Inst::MovImm(r, v)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Inst::MovReg(a, b)),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(a, b, d)| Inst::Load(a, b, d)),
        (arb_reg(), any::<i32>(), arb_reg()).prop_map(|(b, d, s)| Inst::Store(b, d, s)),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(a, b, d)| Inst::LoadByte(a, b, d)),
        (arb_reg(), any::<i32>(), arb_reg()).prop_map(|(b, d, s)| Inst::StoreByte(b, d, s)),
        (arb_reg(), any::<i32>()).prop_map(|(r, d)| Inst::Lea(r, d)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Inst::AddReg(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Inst::SubReg(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Inst::AndReg(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Inst::OrReg(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Inst::XorReg(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Inst::CmpReg(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Inst::TestReg(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Inst::ImulReg(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Inst::BtMem(a, b)),
        (arb_reg(), any::<i32>()).prop_map(|(r, i)| Inst::AddImm(r, i)),
        (arb_reg(), any::<i32>()).prop_map(|(r, i)| Inst::SubImm(r, i)),
        (arb_reg(), any::<i32>()).prop_map(|(r, i)| Inst::AndImm(r, i)),
        (arb_reg(), any::<i32>()).prop_map(|(r, i)| Inst::OrImm(r, i)),
        (arb_reg(), any::<i32>()).prop_map(|(r, i)| Inst::XorImm(r, i)),
        (arb_reg(), any::<i32>()).prop_map(|(r, i)| Inst::CmpImm(r, i)),
        (arb_reg(), any::<u8>()).prop_map(|(r, i)| Inst::ShlImm(r, i)),
        (arb_reg(), any::<u8>()).prop_map(|(r, i)| Inst::ShrImm(r, i)),
        arb_reg().prop_map(Inst::ShlCl),
        arb_reg().prop_map(Inst::ShrCl),
        any::<i32>().prop_map(Inst::Jmp),
        any::<i32>().prop_map(Inst::Call),
        (arb_cond(), any::<i32>()).prop_map(|(c, r)| Inst::Jcc(c, r)),
    ]
}

proptest! {
    /// encode → decode is the identity, and the reported length matches.
    #[test]
    fn encode_decode_roundtrip(inst in arb_inst()) {
        let bytes = inst.encode();
        prop_assert!(bytes.len() <= 10);
        let (back, len) = decode(&bytes).expect("decodes");
        prop_assert_eq!(back, inst);
        prop_assert_eq!(len, bytes.len());
    }

    /// Decoding arbitrary byte soup never panics and never over-consumes.
    #[test]
    fn decode_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
        if let Ok((_, len)) = decode(&bytes) { prop_assert!(len >= 1 && len <= bytes.len()) }
    }

    /// A linear sweep partitions the byte stream exactly.
    #[test]
    fn sweep_partitions_stream(bytes in proptest::collection::vec(any::<u8>(), 0..256), base in any::<u32>()) {
        let base = base as u64;
        let items = linear_sweep(&bytes, base);
        let mut cursor = base;
        for item in &items {
            prop_assert_eq!(item.addr, cursor);
            prop_assert!(item.len >= 1);
            cursor += item.len as u64;
        }
        prop_assert_eq!(cursor, base + bytes.len() as u64);
    }

    /// Appended instruction streams decode back in order (self-synchronizing
    /// when starting at an instruction boundary).
    #[test]
    fn stream_of_instructions_decodes_in_order(insts in proptest::collection::vec(arb_inst(), 1..24)) {
        let mut bytes = Vec::new();
        for i in &insts {
            i.encode_into(&mut bytes);
        }
        let mut off = 0usize;
        for expected in &insts {
            let (got, len) = decode(&bytes[off..]).expect("stream decodes");
            prop_assert_eq!(&got, expected);
            off += len;
        }
        prop_assert_eq!(off, bytes.len());
    }
}
