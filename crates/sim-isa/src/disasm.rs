//! Static disassembly — with the same fundamental imprecision as the real
//! tooling zpoline depends on.
//!
//! Two strategies are provided:
//!
//! * [`scan_syscall_bytes`] — a naive byte-pattern scan for `0f 05` / `0f 34`.
//!   It finds every true syscall instruction but also every *partial* syscall
//!   (opcode bytes inside a larger instruction) and every match inside
//!   embedded data: the raw material of pitfall **P3a**.
//! * [`linear_sweep`] — sequential decoding from a starting offset. It is
//!   correct only if the start is instruction-aligned and the region contains
//!   no embedded data; a jump table or string constant desynchronizes it,
//!   after which it may *miss* true syscalls (**P2a**) or fabricate false
//!   ones (**P3a**).
//!
//! Neither problem is an implementation bug — they are the documented
//! limitations of static disassembly on variable-length ISAs (paper §2.2,
//! §4.2, §4.3, and the SoK literature it cites).

use crate::inst::{decode, DecodeError, Inst};

/// Which syscall-entry instruction a site uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyscallKind {
    /// `0f 05`
    Syscall,
    /// `0f 34`
    Sysenter,
}

/// One linear-sweep result: an address and either a decoded instruction or
/// the byte that could not be decoded (the sweep then resynchronizes at the
/// next byte, as objdump-style tools do).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisasmItem {
    /// Address of the first byte.
    pub addr: u64,
    /// Decoded instruction, or the undecodable error.
    pub inst: Result<Inst, DecodeError>,
    /// Bytes consumed (1 if undecodable).
    pub len: usize,
}

/// Linear-sweep disassembly of `bytes` mapped at `base`.
///
/// On an undecodable byte the sweep advances by one byte and tries again —
/// the classic error-recovery strategy that causes desynchronization.
pub fn linear_sweep(bytes: &[u8], base: u64) -> Vec<DisasmItem> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        match decode(&bytes[off..]) {
            Ok((inst, len)) => {
                out.push(DisasmItem {
                    addr: base + off as u64,
                    inst: Ok(inst),
                    len,
                });
                off += len;
            }
            Err(e) => {
                out.push(DisasmItem {
                    addr: base + off as u64,
                    inst: Err(e),
                    len: 1,
                });
                off += 1;
            }
        }
    }
    out
}

/// Addresses (relative to `base`) where a linear sweep believes a syscall
/// or sysenter instruction starts.
pub fn sweep_syscall_sites(bytes: &[u8], base: u64) -> Vec<(u64, SyscallKind)> {
    linear_sweep(bytes, base)
        .into_iter()
        .filter_map(|item| match item.inst {
            Ok(Inst::Syscall) => Some((item.addr, SyscallKind::Syscall)),
            Ok(Inst::Sysenter) => Some((item.addr, SyscallKind::Sysenter)),
            _ => None,
        })
        .collect()
}

/// Byte-pattern scan: every offset where `0f 05` or `0f 34` appears,
/// regardless of instruction alignment. Over-approximates the true syscall
/// sites (finds partial instructions and data matches too).
pub fn scan_syscall_bytes(bytes: &[u8], base: u64) -> Vec<(u64, SyscallKind)> {
    let mut out = Vec::new();
    for (i, w) in bytes.windows(2).enumerate() {
        match w {
            [0x0f, 0x05] => out.push((base + i as u64, SyscallKind::Syscall)),
            [0x0f, 0x34] => out.push((base + i as u64, SyscallKind::Sysenter)),
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::reg::Reg;

    /// Code with one true syscall, one partial syscall (inside an imm64), and
    /// one data match (a jump-table quad containing 0f 05).
    fn ambiguous_image() -> (Vec<u8>, u64) {
        let mut a = Asm::new();
        a.mov_imm(Reg::Rax, 60);
        a.label("true_syscall");
        a.syscall();
        // Partial: the imm64 contains the syscall opcode bytes.
        a.mov_imm(Reg::Rbx, u64::from_le_bytes([1, 2, 0x0f, 0x05, 3, 4, 5, 6]));
        a.ret();
        // Embedded data: a "jump table" whose entry happens to contain 0f 05.
        a.label("table");
        // Little-endian: memory bytes `de c0 0f 05 ...` contain `0f 05`.
        a.quad(0x0000_0000_050f_c0de);
        let prog = a.finish_program();
        let true_site = prog.sym("true_syscall");
        (prog.bytes, true_site)
    }

    #[test]
    fn byte_scan_overapproximates() {
        let (bytes, true_site) = ambiguous_image();
        let hits = scan_syscall_bytes(&bytes, 0);
        // Finds the true site...
        assert!(hits.iter().any(|(a, _)| *a == true_site));
        // ...and at least two false positives (partial inst + data).
        assert!(
            hits.len() >= 3,
            "expected over-approximation, got {hits:?}"
        );
    }

    #[test]
    fn linear_sweep_finds_true_sites_in_clean_code() {
        let mut a = Asm::new();
        a.mov_imm(Reg::Rax, 1);
        a.syscall();
        a.mov_imm(Reg::Rax, 60);
        a.syscall();
        a.ret();
        let bytes = a.finish();
        let sites = sweep_syscall_sites(&bytes, 0x1000);
        assert_eq!(sites.len(), 2);
        assert_eq!(sites[0], (0x1000 + 10, SyscallKind::Syscall));
        assert_eq!(sites[1], (0x1000 + 22, SyscallKind::Syscall));
    }

    #[test]
    fn linear_sweep_desyncs_on_embedded_data() {
        // Data that *starts* with a valid-looking long instruction prefix
        // followed by a true syscall: the sweep eats the syscall bytes as part
        // of the bogus instruction and misses the real site (P2a).
        let mut a = Asm::new();
        a.label("data");
        // 0x48 0xb8: looks like `mov rax, imm64` and swallows the next 8
        // bytes, which include the real syscall below.
        a.bytes(&[0x48, 0xb8]);
        a.label("real_code");
        a.syscall();
        a.ret();
        a.nops(8);
        let prog = a.finish_program();

        let swept = sweep_syscall_sites(&prog.bytes, 0);
        let scanned = scan_syscall_bytes(&prog.bytes, 0);
        // The byte scan sees the true site at offset 2 ...
        assert!(scanned.iter().any(|(a, _)| *a == prog.sym("real_code")));
        // ... but the sweep decoded it away as immediate bytes (P2a).
        assert!(swept.is_empty(), "sweep should miss the site: {swept:?}");
    }

    #[test]
    fn sweep_items_cover_every_byte() {
        let (bytes, _) = ambiguous_image();
        let items = linear_sweep(&bytes, 0);
        let total: usize = items.iter().map(|i| i.len).sum();
        assert_eq!(total, bytes.len());
        // Addresses are strictly increasing.
        for w in items.windows(2) {
            assert!(w[0].addr + w[0].len as u64 == w[1].addr);
        }
    }

    #[test]
    fn empty_input() {
        assert!(linear_sweep(&[], 0).is_empty());
        assert!(scan_syscall_bytes(&[], 0).is_empty());
        assert!(scan_syscall_bytes(&[0x0f], 0).is_empty());
    }
}
