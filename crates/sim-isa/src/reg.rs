//! General-purpose register file layout.

use std::fmt;

/// The sixteen 64-bit general-purpose registers, numbered as on x86-64.
///
/// The numbering matters: the Linux syscall ABI places the system-call number
/// in [`Reg::Rax`] and arguments in `rdi, rsi, rdx, r10, r8, r9`; the kernel
/// clobbers `rcx` and `r11` on syscall entry — a fact K23's trampoline
/// exploits (paper §6.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u8)]
pub enum Reg {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Reg {
    /// All registers in numeric order.
    pub const ALL: [Reg; 16] = [
        Reg::Rax,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rbx,
        Reg::Rsp,
        Reg::Rbp,
        Reg::Rsi,
        Reg::Rdi,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// The six syscall-argument registers in ABI order.
    pub const SYSCALL_ARGS: [Reg; 6] = [Reg::Rdi, Reg::Rsi, Reg::Rdx, Reg::R10, Reg::R8, Reg::R9];

    /// Registers a called function may clobber (caller-saved), per the ABI.
    pub const CALLER_SAVED: [Reg; 9] = [
        Reg::Rax,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rsi,
        Reg::Rdi,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
    ];

    /// Numeric register id in `0..16`.
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Decodes a register id. Returns `None` for values outside `0..16`.
    #[inline]
    pub fn from_index(idx: u8) -> Option<Reg> {
        if (idx as usize) < Self::ALL.len() {
            Some(Self::ALL[idx as usize])
        } else {
            None
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Reg::Rax => "rax",
            Reg::Rcx => "rcx",
            Reg::Rdx => "rdx",
            Reg::Rbx => "rbx",
            Reg::Rsp => "rsp",
            Reg::Rbp => "rbp",
            Reg::Rsi => "rsi",
            Reg::Rdi => "rdi",
            Reg::R8 => "r8",
            Reg::R9 => "r9",
            Reg::R10 => "r10",
            Reg::R11 => "r11",
            Reg::R12 => "r12",
            Reg::R13 => "r13",
            Reg::R14 => "r14",
            Reg::R15 => "r15",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_indices() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_index(r.index() as u8), Some(r));
        }
        assert_eq!(Reg::from_index(16), None);
        assert_eq!(Reg::from_index(255), None);
    }

    #[test]
    fn abi_register_numbers_match_x86_64() {
        assert_eq!(Reg::Rax.index(), 0);
        assert_eq!(Reg::Rsp.index(), 4);
        assert_eq!(Reg::Rdi.index(), 7);
        assert_eq!(Reg::R11.index(), 11);
    }

    #[test]
    fn display_names() {
        assert_eq!(Reg::Rax.to_string(), "rax");
        assert_eq!(Reg::R15.to_string(), "r15");
    }
}
