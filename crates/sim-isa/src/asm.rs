//! A small assembler for authoring guest code.
//!
//! [`Asm`] accumulates instructions and raw data, supports forward label
//! references for the relative branch instructions, and produces a
//! [`Program`]: a flat byte image plus a symbol table.
//!
//! ```
//! use sim_isa::{Asm, Reg};
//!
//! let mut a = Asm::new();
//! a.label("loop");
//! a.sub_imm(Reg::Rcx, 1);
//! a.jnz("loop");
//! a.ret();
//! let prog = a.finish_program();
//! assert!(prog.symbols.contains_key("loop"));
//! ```

use crate::inst::{Cond, Inst};
use crate::reg::Reg;
use std::collections::BTreeMap;

/// An assembled code image: bytes plus symbols (offsets relative to image
/// start).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// The raw image.
    pub bytes: Vec<u8>,
    /// Label name → offset within `bytes`.
    pub symbols: BTreeMap<String, u64>,
}

impl Program {
    /// Offset of `name`.
    ///
    /// # Panics
    ///
    /// Panics if the symbol was never defined — callers are assembling code
    /// they themselves authored, so a missing symbol is a programming error.
    pub fn sym(&self, name: &str) -> u64 {
        *self
            .symbols
            .get(name)
            .unwrap_or_else(|| panic!("undefined symbol {name:?}"))
    }
}

#[derive(Debug, Clone, Copy)]
enum FixupKind {
    /// rel32 at `at`, relative to `end_of_inst`.
    Rel32 { at: usize, end_of_inst: usize },
    /// absolute u64 at `at` (for `mov reg, $label` — resolved by the loader
    /// relative to the image base, so stored here as the raw offset).
    Abs64 { at: usize },
}

#[derive(Debug, Clone)]
struct Fixup {
    label: String,
    kind: FixupKind,
}

/// Incremental assembler with labels.
///
/// Every instruction-emitting method appends at the current position. Label
/// references may be forward; they are resolved in [`Asm::finish`].
#[derive(Debug, Default)]
pub struct Asm {
    out: Vec<u8>,
    labels: BTreeMap<String, usize>,
    fixups: Vec<Fixup>,
    /// Offsets of label-absolute fixups that the loader must relocate by the
    /// final image base (collected into [`Program`] consumers via
    /// [`Asm::abs_relocs`]).
    abs_relocs: Vec<usize>,
}

impl Asm {
    /// Creates an empty assembler.
    pub fn new() -> Asm {
        Asm::default()
    }

    /// Current offset (== number of bytes emitted so far).
    pub fn here(&self) -> usize {
        self.out.len()
    }

    /// Defines `name` at the current offset.
    ///
    /// # Panics
    ///
    /// Panics if the label was already defined.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let prev = self.labels.insert(name.to_string(), self.out.len());
        assert!(prev.is_none(), "label {name:?} defined twice");
        self
    }

    /// Emits a raw instruction.
    pub fn inst(&mut self, i: Inst) -> &mut Self {
        i.encode_into(&mut self.out);
        self
    }

    /// Emits raw bytes (embedded data — the stuff of pitfall P3).
    pub fn bytes(&mut self, b: &[u8]) -> &mut Self {
        self.out.extend_from_slice(b);
        self
    }

    /// Emits a little-endian u64 (e.g. a jump-table entry).
    pub fn quad(&mut self, v: u64) -> &mut Self {
        self.out.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Emits `n` one-byte nops.
    pub fn nops(&mut self, n: usize) -> &mut Self {
        self.out.resize(self.out.len() + n, 0x90);
        self
    }

    // ---- plain instructions -------------------------------------------------

    /// `nop`
    pub fn nop(&mut self) -> &mut Self {
        self.inst(Inst::Nop)
    }
    /// `syscall`
    pub fn syscall(&mut self) -> &mut Self {
        self.inst(Inst::Syscall)
    }
    /// `sysenter`
    pub fn sysenter(&mut self) -> &mut Self {
        self.inst(Inst::Sysenter)
    }
    /// `ret`
    pub fn ret(&mut self) -> &mut Self {
        self.inst(Inst::Ret)
    }
    /// `int3`
    pub fn int3(&mut self) -> &mut Self {
        self.inst(Inst::Int3)
    }
    /// `cpuid` (serializing)
    pub fn cpuid(&mut self) -> &mut Self {
        self.inst(Inst::Cpuid)
    }
    /// instruction-stream fence
    pub fn fence(&mut self) -> &mut Self {
        self.inst(Inst::Fence)
    }
    /// vDSO fast clock read into `rax`
    pub fn vsyscall(&mut self) -> &mut Self {
        self.inst(Inst::Vsyscall)
    }
    /// read PKRU into `rax`
    pub fn rdpkru(&mut self) -> &mut Self {
        self.inst(Inst::Rdpkru)
    }
    /// write `rax` to PKRU
    pub fn wrpkru(&mut self) -> &mut Self {
        self.inst(Inst::Wrpkru)
    }
    /// `push %r`
    pub fn push(&mut self, r: Reg) -> &mut Self {
        self.inst(Inst::Push(r))
    }
    /// `pop %r`
    pub fn pop(&mut self, r: Reg) -> &mut Self {
        self.inst(Inst::Pop(r))
    }
    /// `call *%r`
    pub fn call_reg(&mut self, r: Reg) -> &mut Self {
        self.inst(Inst::CallReg(r))
    }
    /// `jmp *%r`
    pub fn jmp_reg(&mut self, r: Reg) -> &mut Self {
        self.inst(Inst::JmpReg(r))
    }
    /// `mov $imm, %r`
    pub fn mov_imm(&mut self, r: Reg, imm: u64) -> &mut Self {
        self.inst(Inst::MovImm(r, imm))
    }
    /// `mov %src, %dst`
    pub fn mov_reg(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.inst(Inst::MovReg(dst, src))
    }
    /// `mov disp(%base), %dst`
    pub fn load(&mut self, dst: Reg, base: Reg, disp: i32) -> &mut Self {
        self.inst(Inst::Load(dst, base, disp))
    }
    /// `mov %src, disp(%base)`
    pub fn store(&mut self, base: Reg, disp: i32, src: Reg) -> &mut Self {
        self.inst(Inst::Store(base, disp, src))
    }
    /// byte load, zero-extended
    pub fn load_byte(&mut self, dst: Reg, base: Reg, disp: i32) -> &mut Self {
        self.inst(Inst::LoadByte(dst, base, disp))
    }
    /// byte store
    pub fn store_byte(&mut self, base: Reg, disp: i32, src: Reg) -> &mut Self {
        self.inst(Inst::StoreByte(base, disp, src))
    }
    /// `add %src, %dst`
    pub fn add_reg(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.inst(Inst::AddReg(dst, src))
    }
    /// `sub %src, %dst`
    pub fn sub_reg(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.inst(Inst::SubReg(dst, src))
    }
    /// `and %src, %dst`
    pub fn and_reg(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.inst(Inst::AndReg(dst, src))
    }
    /// `or %src, %dst`
    pub fn or_reg(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.inst(Inst::OrReg(dst, src))
    }
    /// `xor %src, %dst`
    pub fn xor_reg(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.inst(Inst::XorReg(dst, src))
    }
    /// `cmp %src, %dst`
    pub fn cmp_reg(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.inst(Inst::CmpReg(dst, src))
    }
    /// `test %src, %dst`
    pub fn test_reg(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.inst(Inst::TestReg(dst, src))
    }
    /// `imul %src, %dst`
    pub fn imul_reg(&mut self, dst: Reg, src: Reg) -> &mut Self {
        self.inst(Inst::ImulReg(dst, src))
    }
    /// `add $imm, %r`
    pub fn add_imm(&mut self, r: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::AddImm(r, imm))
    }
    /// `sub $imm, %r`
    pub fn sub_imm(&mut self, r: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::SubImm(r, imm))
    }
    /// `and $imm, %r`
    pub fn and_imm(&mut self, r: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::AndImm(r, imm))
    }
    /// `or $imm, %r`
    pub fn or_imm(&mut self, r: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::OrImm(r, imm))
    }
    /// `xor $imm, %r`
    pub fn xor_imm(&mut self, r: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::XorImm(r, imm))
    }
    /// `cmp $imm, %r`
    pub fn cmp_imm(&mut self, r: Reg, imm: i32) -> &mut Self {
        self.inst(Inst::CmpImm(r, imm))
    }
    /// `shl $imm, %r`
    pub fn shl_imm(&mut self, r: Reg, imm: u8) -> &mut Self {
        self.inst(Inst::ShlImm(r, imm))
    }
    /// `shr $imm, %r`
    pub fn shr_imm(&mut self, r: Reg, imm: u8) -> &mut Self {
        self.inst(Inst::ShrImm(r, imm))
    }
    /// `shl %cl, %r`
    pub fn shl_cl(&mut self, r: Reg) -> &mut Self {
        self.inst(Inst::ShlCl(r))
    }
    /// `shr %cl, %r`
    pub fn shr_cl(&mut self, r: Reg) -> &mut Self {
        self.inst(Inst::ShrCl(r))
    }
    /// `bt %idx, (%base)` — CF = bit `idx` of the bit string at `base`
    pub fn bt_mem(&mut self, base: Reg, idx: Reg) -> &mut Self {
        self.inst(Inst::BtMem(base, idx))
    }

    // ---- label-relative instructions ---------------------------------------

    fn branch(&mut self, opcode_len: usize, total_len: usize, label: &str) {
        let at = self.out.len() + opcode_len;
        let end = self.out.len() + total_len;
        self.fixups.push(Fixup {
            label: label.to_string(),
            kind: FixupKind::Rel32 {
                at,
                end_of_inst: end,
            },
        });
    }

    /// `jmp label`
    pub fn jmp(&mut self, label: &str) -> &mut Self {
        self.branch(1, 5, label);
        self.inst(Inst::Jmp(0))
    }

    /// `call label`
    pub fn call(&mut self, label: &str) -> &mut Self {
        self.branch(1, 5, label);
        self.inst(Inst::Call(0))
    }

    /// `jCC label`
    pub fn jcc(&mut self, cond: Cond, label: &str) -> &mut Self {
        self.branch(2, 6, label);
        self.inst(Inst::Jcc(cond, 0))
    }

    /// `je label`
    pub fn jz(&mut self, label: &str) -> &mut Self {
        self.jcc(Cond::E, label)
    }
    /// `jne label`
    pub fn jnz(&mut self, label: &str) -> &mut Self {
        self.jcc(Cond::Ne, label)
    }
    /// `jl label`
    pub fn jl(&mut self, label: &str) -> &mut Self {
        self.jcc(Cond::L, label)
    }
    /// `jge label`
    pub fn jge(&mut self, label: &str) -> &mut Self {
        self.jcc(Cond::Ge, label)
    }

    /// `lea label(%rip), %dst` — loads the absolute address of `label`
    /// (position-independent; works wherever the image is mapped).
    pub fn lea_label(&mut self, dst: Reg, label: &str) -> &mut Self {
        let at = self.out.len() + 3;
        let end = self.out.len() + 7;
        self.fixups.push(Fixup {
            label: label.to_string(),
            kind: FixupKind::Rel32 {
                at,
                end_of_inst: end,
            },
        });
        self.inst(Inst::Lea(dst, 0))
    }

    /// `mov $label, %dst` — loads the *image-relative offset* of `label` as a
    /// 64-bit immediate. The loader rebases these via [`Asm::abs_relocs`].
    pub fn mov_label(&mut self, dst: Reg, label: &str) -> &mut Self {
        let at = self.out.len() + 2;
        self.fixups.push(Fixup {
            label: label.to_string(),
            kind: FixupKind::Abs64 { at },
        });
        self.abs_relocs.push(at);
        self.inst(Inst::MovImm(dst, 0))
    }

    /// Emits a u64 data slot holding the offset of `label` (a jump-table
    /// entry); recorded as an absolute relocation.
    pub fn quad_label(&mut self, label: &str) -> &mut Self {
        let at = self.out.len();
        self.fixups.push(Fixup {
            label: label.to_string(),
            kind: FixupKind::Abs64 { at },
        });
        self.abs_relocs.push(at);
        self.quad(0)
    }

    /// Offsets within the image containing image-relative u64s that the
    /// loader must add the load base to.
    pub fn abs_relocs(&self) -> &[usize] {
        &self.abs_relocs
    }

    /// Resolves fixups and returns the raw bytes.
    ///
    /// # Panics
    ///
    /// Panics on undefined labels or branch displacements that do not fit in
    /// 32 bits.
    pub fn finish(mut self) -> Vec<u8> {
        self.resolve();
        self.out
    }

    /// Resolves fixups and returns bytes + symbol table + relocations.
    pub fn finish_program(mut self) -> Program {
        self.resolve();
        Program {
            bytes: self.out,
            symbols: self
                .labels
                .into_iter()
                .map(|(k, v)| (k, v as u64))
                .collect(),
        }
    }

    /// Like [`Asm::finish_program`] but also returns the absolute-relocation
    /// offsets (needed when the image is not loaded at address 0).
    pub fn finish_with_relocs(mut self) -> (Program, Vec<usize>) {
        self.resolve();
        let relocs = std::mem::take(&mut self.abs_relocs);
        (
            Program {
                bytes: self.out,
                symbols: self
                    .labels
                    .into_iter()
                    .map(|(k, v)| (k, v as u64))
                    .collect(),
            },
            relocs,
        )
    }

    fn resolve(&mut self) {
        for fixup in &self.fixups {
            let target = *self
                .labels
                .get(&fixup.label)
                .unwrap_or_else(|| panic!("undefined label {:?}", fixup.label));
            match fixup.kind {
                FixupKind::Rel32 { at, end_of_inst } => {
                    let rel = target as i64 - end_of_inst as i64;
                    let rel32 = i32::try_from(rel).expect("branch displacement overflows rel32");
                    self.out[at..at + 4].copy_from_slice(&rel32.to_le_bytes());
                }
                FixupKind::Abs64 { at } => {
                    self.out[at..at + 8].copy_from_slice(&(target as u64).to_le_bytes());
                }
            }
        }
        self.fixups.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::decode;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut a = Asm::new();
        a.label("start");
        a.jmp("end"); // forward
        a.label("mid");
        a.nop();
        a.jmp("start"); // backward
        a.label("end");
        a.ret();
        let bytes = a.finish();

        // jmp end: at offset 0, next inst at 5, end at 11 => rel = 6
        let (inst, _) = decode(&bytes).unwrap();
        assert_eq!(inst, crate::Inst::Jmp(6));
        // jmp start: at offset 6, ends at 11, start=0 => rel = -11
        let (inst, _) = decode(&bytes[6..]).unwrap();
        assert_eq!(inst, crate::Inst::Jmp(-11));
    }

    #[test]
    fn conditional_branch_targets() {
        let mut a = Asm::new();
        a.label("loop");
        a.sub_imm(Reg::Rcx, 1); // 7 bytes
        a.jnz("loop"); // 6 bytes, rel = -(7+6) = -13
        let bytes = a.finish();
        let (inst, _) = decode(&bytes[7..]).unwrap();
        assert_eq!(inst, crate::Inst::Jcc(Cond::Ne, -13));
    }

    #[test]
    fn lea_label_is_rip_relative() {
        let mut a = Asm::new();
        a.lea_label(Reg::Rdi, "data"); // 7 bytes, next rip = 7
        a.ret();
        a.label("data");
        a.quad(42);
        let bytes = a.finish();
        let (inst, _) = decode(&bytes).unwrap();
        assert_eq!(inst, crate::Inst::Lea(Reg::Rdi, 1)); // data at 8, 8-7=1
    }

    #[test]
    fn mov_label_records_reloc() {
        let mut a = Asm::new();
        a.mov_label(Reg::Rax, "tbl");
        a.label("tbl");
        a.quad_label("tbl");
        let (prog, relocs) = a.finish_with_relocs();
        assert_eq!(relocs, vec![2, 10]);
        assert_eq!(prog.sym("tbl"), 10);
        // mov immediate holds the offset of tbl
        assert_eq!(&prog.bytes[2..10], &10u64.to_le_bytes());
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn undefined_label_panics() {
        let mut a = Asm::new();
        a.jmp("nowhere");
        let _ = a.finish();
    }

    #[test]
    #[should_panic(expected = "defined twice")]
    fn duplicate_label_panics() {
        let mut a = Asm::new();
        a.label("x");
        a.label("x");
    }

    #[test]
    fn nops_emit_sled() {
        let mut a = Asm::new();
        a.nops(512);
        let bytes = a.finish();
        assert_eq!(bytes.len(), 512);
        assert!(bytes.iter().all(|&b| b == 0x90));
    }
}
