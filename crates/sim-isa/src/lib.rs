//! # sim-isa — an x86-64-like variable-length instruction set
//!
//! This crate defines the guest instruction set used by the whole K23
//! reproduction. The encoding deliberately mirrors the properties of x86-64
//! that the paper's analysis depends on:
//!
//! * `SYSCALL` is the two-byte sequence `0x0f 0x05` and `SYSENTER` is
//!   `0x0f 0x34`, exactly as on real hardware.
//! * `callq *%rax` is the two-byte sequence `0xff 0xd0` — the same length as
//!   `SYSCALL`, which is the key fact zpoline-style rewriting exploits.
//! * Instructions are variable length (1–10 bytes) and immediates may contain
//!   arbitrary bytes, so the `0x0f 0x05` pattern can appear *inside* another
//!   instruction (a "partial syscall instruction") or inside data embedded in
//!   a code page — the root cause of pitfalls P2a/P3a/P3b.
//!
//! The crate provides:
//!
//! * [`Reg`] — the sixteen general-purpose registers.
//! * [`Inst`] — the instruction enum, with [`Inst::encode`] / [`decode`].
//! * [`Asm`] — a small assembler with labels, used to author guest programs.
//! * [`disasm`] — a linear-sweep disassembler with the same imprecision as
//!   the static tooling zpoline relies on, plus a naive byte-pattern scanner.
//!
//! ## Example
//!
//! ```
//! use sim_isa::{Asm, Reg, Inst, decode};
//!
//! let mut a = Asm::new();
//! a.mov_imm(Reg::Rax, 60); // exit
//! a.syscall();
//! let code = a.finish();
//! let (inst, len) = decode(&code).unwrap();
//! assert_eq!(len, 10);
//! assert_eq!(inst, Inst::MovImm(Reg::Rax, 60));
//! ```

pub mod asm;
pub mod disasm;
pub mod inst;
pub mod reg;

pub use asm::{Asm, Program};
pub use disasm::{linear_sweep, scan_syscall_bytes, DisasmItem, SyscallKind};
pub use inst::{decode, Cond, DecodeError, Inst};
pub use reg::Reg;

/// Opcode bytes for `SYSCALL` (`0x0f 0x05`).
pub const SYSCALL_BYTES: [u8; 2] = [0x0f, 0x05];
/// Opcode bytes for `SYSENTER` (`0x0f 0x34`).
pub const SYSENTER_BYTES: [u8; 2] = [0x0f, 0x34];
/// Opcode bytes for `callq *%rax` (`0xff 0xd0`), the zpoline replacement.
pub const CALL_RAX_BYTES: [u8; 2] = [0xff, 0xd0];
