//! Instruction definitions, encoding, and decoding.
//!
//! The encoding follows x86-64 closely enough that the paper's pitfalls are
//! structural properties of this ISA too:
//!
//! * `SYSCALL` = `0f 05`, `SYSENTER` = `0f 34`, `callq *%rax` = `ff d0` — all
//!   two bytes, enabling in-place rewriting.
//! * `mov r, imm64` is ten bytes with an arbitrary 8-byte immediate, so the
//!   bytes `0f 05` can legitimately appear *inside* an instruction.
//! * A REX-style prefix (`0x48..=0x4d`, `0x41`) extends register fields, so a
//!   linear sweep that starts at the wrong byte cheerfully mis-decodes.

use crate::reg::Reg;
use std::fmt;

/// Condition codes for [`Inst::Jcc`], numbered as the low nibble of the
/// x86-64 `0f 8x` long-form conditional jump opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Below (unsigned `<`), CF=1.
    B = 0x2,
    /// Above or equal (unsigned `>=`), CF=0.
    Ae = 0x3,
    /// Equal / zero.
    E = 0x4,
    /// Not equal / not zero.
    Ne = 0x5,
    /// Below or equal (unsigned `<=`).
    Be = 0x6,
    /// Above (unsigned `>`).
    A = 0x7,
    /// Sign (negative).
    S = 0x8,
    /// Not sign.
    Ns = 0x9,
    /// Less (signed `<`).
    L = 0xc,
    /// Greater or equal (signed `>=`).
    Ge = 0xd,
    /// Less or equal (signed `<=`).
    Le = 0xe,
    /// Greater (signed `>`).
    G = 0xf,
}

impl Cond {
    /// All condition codes.
    pub const ALL: [Cond; 12] = [
        Cond::B,
        Cond::Ae,
        Cond::E,
        Cond::Ne,
        Cond::Be,
        Cond::A,
        Cond::S,
        Cond::Ns,
        Cond::L,
        Cond::Ge,
        Cond::Le,
        Cond::G,
    ];

    fn from_nibble(n: u8) -> Option<Cond> {
        Self::ALL.iter().copied().find(|c| *c as u8 == n)
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::B => "b",
            Cond::Ae => "ae",
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::S => "s",
            Cond::Ns => "ns",
            Cond::L => "l",
            Cond::Ge => "ge",
            Cond::Le => "le",
            Cond::G => "g",
        };
        f.write_str(s)
    }
}

/// A decoded guest instruction.
///
/// Memory operands are always `[base + disp32]`; RIP-relative addressing is
/// available through [`Inst::Lea`]. All ALU operations are 64-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `90` — one-byte no-op (the zpoline trampoline sled material).
    Nop,
    /// `0f 05` — enter the kernel; syscall number in `rax`.
    Syscall,
    /// `0f 34` — legacy syscall entry; treated identically to `Syscall`.
    Sysenter,
    /// `c3` — pop return address and jump to it.
    Ret,
    /// `f4` — halt: terminates the thread with a fault unless the kernel
    /// installed a meaning for it (used only in bare-metal style tests).
    Hlt,
    /// `cc` — breakpoint trap.
    Int3,
    /// `0f a2` — serializing instruction; flushes this core's decoded
    /// instruction cache (like a real `cpuid` fence in self-modifying code).
    Cpuid,
    /// `0f ae f0` — memory + instruction-stream fence; flushes this core's
    /// decoded instruction cache.
    Fence,
    /// `0f 01 f9` — vDSO fast path: loads the current clock into `rax`
    /// without entering the kernel (models a vDSO `clock_gettime`).
    Vsyscall,
    /// `0f 01 ee` — read the PKU rights register into `rax`.
    Rdpkru,
    /// `0f 01 ef` — write `rax` into the PKU rights register.
    Wrpkru,
    /// `(41) ff d0+r` — indirect call through a register; pushes the return
    /// address. `callq *%rax` (`ff d0`) is the zpoline rewrite target.
    CallReg(Reg),
    /// `(41) ff e0+r` — indirect jump through a register.
    JmpReg(Reg),
    /// `(41) 50+r` — push register.
    Push(Reg),
    /// `(41) 58+r` — pop register.
    Pop(Reg),
    /// `48/49 b8+r imm64` — load a 64-bit immediate. The immediate may
    /// contain any bytes, including `0f 05`.
    MovImm(Reg, u64),
    /// `rex 89 /r (mod=11)` — `dst = src`.
    MovReg(Reg, Reg),
    /// `rex 8b /r (mod=10) disp32` — `dst = *(u64*)(base + disp)`.
    Load(Reg, Reg, i32),
    /// `rex 89 /r (mod=10) disp32` — `*(u64*)(base + disp) = src`
    /// (operands: base, disp, src).
    Store(Reg, i32, Reg),
    /// `rex 8a /r (mod=10) disp32` — `dst = *(u8*)(base + disp)` zero-extended.
    LoadByte(Reg, Reg, i32),
    /// `rex 88 /r (mod=10) disp32` — `*(u8*)(base + disp) = src as u8`
    /// (operands: base, disp, src).
    StoreByte(Reg, i32, Reg),
    /// `rex 8d /r (mod=00, rm=101) disp32` — `dst = rip_of_next_inst + disp`.
    Lea(Reg, i32),
    /// `rex 01 /r` — `dst += src`.
    AddReg(Reg, Reg),
    /// `rex 29 /r` — `dst -= src`.
    SubReg(Reg, Reg),
    /// `rex 21 /r` — `dst &= src`.
    AndReg(Reg, Reg),
    /// `rex 09 /r` — `dst |= src`.
    OrReg(Reg, Reg),
    /// `rex 31 /r` — `dst ^= src`.
    XorReg(Reg, Reg),
    /// `rex 39 /r` — set flags from `dst - src`.
    CmpReg(Reg, Reg),
    /// `rex 85 /r` — set flags from `dst & src`.
    TestReg(Reg, Reg),
    /// `rex 0f af /r` — `dst *= src` (wrapping).
    ImulReg(Reg, Reg),
    /// `rex 81 /0 imm32` — `dst += sext(imm)`.
    AddImm(Reg, i32),
    /// `rex 81 /5 imm32` — `dst -= sext(imm)`.
    SubImm(Reg, i32),
    /// `rex 81 /4 imm32` — `dst &= sext(imm)`.
    AndImm(Reg, i32),
    /// `rex 81 /1 imm32` — `dst |= sext(imm)`.
    OrImm(Reg, i32),
    /// `rex 81 /6 imm32` — `dst ^= sext(imm)`.
    XorImm(Reg, i32),
    /// `rex 81 /7 imm32` — set flags from `dst - sext(imm)`.
    CmpImm(Reg, i32),
    /// `rex c1 /4 imm8` — `dst <<= imm`.
    ShlImm(Reg, u8),
    /// `rex c1 /5 imm8` — `dst >>= imm` (logical).
    ShrImm(Reg, u8),
    /// `rex d3 /4` — `dst <<= (rcx & 63)` (count in `cl`, as on x86).
    ShlCl(Reg),
    /// `rex d3 /5` — `dst >>= (rcx & 63)` (logical; count in `cl`).
    ShrCl(Reg),
    /// `rex 0f a3 /r (mod=00)` — bit test: `CF = bit idx of the byte string
    /// at [base]` (operands: base, idx). The one-instruction bitmap probe
    /// zpoline's NULL-execution check uses.
    BtMem(Reg, Reg),
    /// `e9 rel32` — relative jump (target = next rip + rel).
    Jmp(i32),
    /// `e8 rel32` — relative call; pushes return address.
    Call(i32),
    /// `0f 8x rel32` — conditional relative jump.
    Jcc(Cond, i32),
}

/// Why a byte sequence failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// First byte (or mandatory second byte) is not a known opcode.
    BadOpcode { offset: usize, byte: u8 },
    /// The buffer ends in the middle of an instruction.
    Truncated { needed: usize, have: usize },
    /// A mod/rm combination this ISA does not define.
    BadModRm { offset: usize, byte: u8 },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode { offset, byte } => {
                write!(f, "invalid opcode byte {byte:#04x} at offset {offset}")
            }
            DecodeError::Truncated { needed, have } => {
                write!(f, "truncated instruction: need {needed} bytes, have {have}")
            }
            DecodeError::BadModRm { offset, byte } => {
                write!(f, "invalid mod/rm byte {byte:#04x} at offset {offset}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

const fn modrm(mode: u8, reg: u8, rm: u8) -> u8 {
    (mode << 6) | ((reg & 7) << 3) | (rm & 7)
}

/// REX-like prefix: W always set; `r` extends the modrm `reg` field and `b`
/// extends the `rm` field, exactly like x86-64 REX.R / REX.B.
const fn rex(r: Reg, b: Reg) -> u8 {
    0x48 | (((r as u8) >> 3) << 2) | ((b as u8) >> 3)
}

impl Inst {
    /// Appends the encoding of `self` to `out`. Returns the encoded length.
    pub fn encode_into(&self, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        match *self {
            Inst::Nop => out.push(0x90),
            Inst::Syscall => out.extend_from_slice(&[0x0f, 0x05]),
            Inst::Sysenter => out.extend_from_slice(&[0x0f, 0x34]),
            Inst::Ret => out.push(0xc3),
            Inst::Hlt => out.push(0xf4),
            Inst::Int3 => out.push(0xcc),
            Inst::Cpuid => out.extend_from_slice(&[0x0f, 0xa2]),
            Inst::Fence => out.extend_from_slice(&[0x0f, 0xae, 0xf0]),
            Inst::Vsyscall => out.extend_from_slice(&[0x0f, 0x01, 0xf9]),
            Inst::Rdpkru => out.extend_from_slice(&[0x0f, 0x01, 0xee]),
            Inst::Wrpkru => out.extend_from_slice(&[0x0f, 0x01, 0xef]),
            Inst::CallReg(r) => {
                if (r as u8) >= 8 {
                    out.push(0x41);
                }
                out.extend_from_slice(&[0xff, 0xd0 + ((r as u8) & 7)]);
            }
            Inst::JmpReg(r) => {
                if (r as u8) >= 8 {
                    out.push(0x41);
                }
                out.extend_from_slice(&[0xff, 0xe0 + ((r as u8) & 7)]);
            }
            Inst::Push(r) => {
                if (r as u8) >= 8 {
                    out.push(0x41);
                }
                out.push(0x50 + ((r as u8) & 7));
            }
            Inst::Pop(r) => {
                if (r as u8) >= 8 {
                    out.push(0x41);
                }
                out.push(0x58 + ((r as u8) & 7));
            }
            Inst::MovImm(r, imm) => {
                out.push(if (r as u8) >= 8 { 0x49 } else { 0x48 });
                out.push(0xb8 + ((r as u8) & 7));
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Inst::MovReg(dst, src) => {
                out.extend_from_slice(&[rex(src, dst), 0x89, modrm(0b11, src as u8, dst as u8)]);
            }
            Inst::Load(dst, base, disp) => {
                out.extend_from_slice(&[rex(dst, base), 0x8b, modrm(0b10, dst as u8, base as u8)]);
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Inst::Store(base, disp, src) => {
                out.extend_from_slice(&[rex(src, base), 0x89, modrm(0b10, src as u8, base as u8)]);
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Inst::LoadByte(dst, base, disp) => {
                out.extend_from_slice(&[rex(dst, base), 0x8a, modrm(0b10, dst as u8, base as u8)]);
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Inst::StoreByte(base, disp, src) => {
                out.extend_from_slice(&[rex(src, base), 0x88, modrm(0b10, src as u8, base as u8)]);
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Inst::Lea(dst, disp) => {
                out.extend_from_slice(&[rex(dst, Reg::Rax), 0x8d, modrm(0b00, dst as u8, 0b101)]);
                out.extend_from_slice(&disp.to_le_bytes());
            }
            Inst::AddReg(dst, src) => encode_alu_reg(out, 0x01, dst, src),
            Inst::SubReg(dst, src) => encode_alu_reg(out, 0x29, dst, src),
            Inst::AndReg(dst, src) => encode_alu_reg(out, 0x21, dst, src),
            Inst::OrReg(dst, src) => encode_alu_reg(out, 0x09, dst, src),
            Inst::XorReg(dst, src) => encode_alu_reg(out, 0x31, dst, src),
            Inst::CmpReg(dst, src) => encode_alu_reg(out, 0x39, dst, src),
            Inst::TestReg(dst, src) => encode_alu_reg(out, 0x85, dst, src),
            Inst::ImulReg(dst, src) => {
                // Note the operand order: imul dst, src has dst in the reg field.
                out.extend_from_slice(&[
                    rex(dst, src),
                    0x0f,
                    0xaf,
                    modrm(0b11, dst as u8, src as u8),
                ]);
            }
            Inst::AddImm(r, imm) => encode_alu_imm(out, 0, r, imm),
            Inst::OrImm(r, imm) => encode_alu_imm(out, 1, r, imm),
            Inst::AndImm(r, imm) => encode_alu_imm(out, 4, r, imm),
            Inst::SubImm(r, imm) => encode_alu_imm(out, 5, r, imm),
            Inst::XorImm(r, imm) => encode_alu_imm(out, 6, r, imm),
            Inst::CmpImm(r, imm) => encode_alu_imm(out, 7, r, imm),
            Inst::ShlImm(r, imm) => {
                out.extend_from_slice(&[rex(Reg::Rax, r), 0xc1, modrm(0b11, 4, r as u8), imm]);
            }
            Inst::ShrImm(r, imm) => {
                out.extend_from_slice(&[rex(Reg::Rax, r), 0xc1, modrm(0b11, 5, r as u8), imm]);
            }
            Inst::ShlCl(r) => {
                out.extend_from_slice(&[rex(Reg::Rax, r), 0xd3, modrm(0b11, 4, r as u8)]);
            }
            Inst::ShrCl(r) => {
                out.extend_from_slice(&[rex(Reg::Rax, r), 0xd3, modrm(0b11, 5, r as u8)]);
            }
            Inst::BtMem(base, idx) => {
                out.extend_from_slice(&[
                    rex(idx, base),
                    0x0f,
                    0xa3,
                    modrm(0b00, idx as u8, base as u8),
                ]);
            }
            Inst::Jmp(rel) => {
                out.push(0xe9);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Inst::Call(rel) => {
                out.push(0xe8);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Inst::Jcc(cond, rel) => {
                out.extend_from_slice(&[0x0f, 0x80 + cond as u8]);
                out.extend_from_slice(&rel.to_le_bytes());
            }
        }
        out.len() - start
    }

    /// Encodes `self` into a fresh byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(10);
        self.encode_into(&mut v);
        v
    }

    /// Encoded length in bytes.
    #[allow(clippy::len_without_is_empty)] // an instruction is never empty
    pub fn len(&self) -> usize {
        // Cheap enough to compute by encoding; instruction lengths are <= 10.
        self.encode().len()
    }

    /// True for the two instructions that enter the kernel.
    pub fn is_syscall(&self) -> bool {
        matches!(self, Inst::Syscall | Inst::Sysenter)
    }
}

fn encode_alu_reg(out: &mut Vec<u8>, opcode: u8, dst: Reg, src: Reg) {
    out.extend_from_slice(&[rex(src, dst), opcode, modrm(0b11, src as u8, dst as u8)]);
}

fn encode_alu_imm(out: &mut Vec<u8>, ext: u8, r: Reg, imm: i32) {
    out.extend_from_slice(&[rex(Reg::Rax, r), 0x81, modrm(0b11, ext, r as u8)]);
    out.extend_from_slice(&imm.to_le_bytes());
}

fn need(bytes: &[u8], n: usize) -> Result<(), DecodeError> {
    if bytes.len() < n {
        Err(DecodeError::Truncated {
            needed: n,
            have: bytes.len(),
        })
    } else {
        Ok(())
    }
}

fn read_i32(bytes: &[u8], at: usize) -> Result<i32, DecodeError> {
    need(bytes, at + 4)?;
    Ok(i32::from_le_bytes([
        bytes[at],
        bytes[at + 1],
        bytes[at + 2],
        bytes[at + 3],
    ]))
}

/// Decodes one instruction from the start of `bytes`.
///
/// Returns the instruction and its encoded length.
///
/// # Errors
///
/// Returns [`DecodeError`] if the bytes do not begin a valid instruction or
/// the buffer is too short. Note that *any* byte stream position yields some
/// answer — valid or error — which is exactly why linear-sweep disassembly of
/// variable-length code is unreliable (paper §4.3).
pub fn decode(bytes: &[u8]) -> Result<(Inst, usize), DecodeError> {
    need(bytes, 1)?;
    let b0 = bytes[0];
    match b0 {
        0x90 => Ok((Inst::Nop, 1)),
        0xc3 => Ok((Inst::Ret, 1)),
        0xf4 => Ok((Inst::Hlt, 1)),
        0xcc => Ok((Inst::Int3, 1)),
        0x50..=0x57 => Ok((Inst::Push(Reg::from_index(b0 - 0x50).unwrap()), 1)),
        0x58..=0x5f => Ok((Inst::Pop(Reg::from_index(b0 - 0x58).unwrap()), 1)),
        0xe8 => Ok((Inst::Call(read_i32(bytes, 1)?), 5)),
        0xe9 => Ok((Inst::Jmp(read_i32(bytes, 1)?), 5)),
        0xff => {
            need(bytes, 2)?;
            match bytes[1] {
                b @ 0xd0..=0xd7 => Ok((Inst::CallReg(Reg::from_index(b - 0xd0).unwrap()), 2)),
                b @ 0xe0..=0xe7 => Ok((Inst::JmpReg(Reg::from_index(b - 0xe0).unwrap()), 2)),
                b => Err(DecodeError::BadModRm { offset: 1, byte: b }),
            }
        }
        0x41 => {
            need(bytes, 2)?;
            match bytes[1] {
                b @ 0x50..=0x57 => Ok((Inst::Push(Reg::from_index(8 + b - 0x50).unwrap()), 2)),
                b @ 0x58..=0x5f => Ok((Inst::Pop(Reg::from_index(8 + b - 0x58).unwrap()), 2)),
                0xff => {
                    need(bytes, 3)?;
                    match bytes[2] {
                        b @ 0xd0..=0xd7 => {
                            Ok((Inst::CallReg(Reg::from_index(8 + b - 0xd0).unwrap()), 3))
                        }
                        b @ 0xe0..=0xe7 => {
                            Ok((Inst::JmpReg(Reg::from_index(8 + b - 0xe0).unwrap()), 3))
                        }
                        b => Err(DecodeError::BadModRm { offset: 2, byte: b }),
                    }
                }
                b => Err(DecodeError::BadOpcode { offset: 1, byte: b }),
            }
        }
        0x0f => {
            need(bytes, 2)?;
            match bytes[1] {
                0x05 => Ok((Inst::Syscall, 2)),
                0x34 => Ok((Inst::Sysenter, 2)),
                0xa2 => Ok((Inst::Cpuid, 2)),
                0xae => {
                    need(bytes, 3)?;
                    if bytes[2] == 0xf0 {
                        Ok((Inst::Fence, 3))
                    } else {
                        Err(DecodeError::BadModRm {
                            offset: 2,
                            byte: bytes[2],
                        })
                    }
                }
                0x01 => {
                    need(bytes, 3)?;
                    match bytes[2] {
                        0xf9 => Ok((Inst::Vsyscall, 3)),
                        0xee => Ok((Inst::Rdpkru, 3)),
                        0xef => Ok((Inst::Wrpkru, 3)),
                        b => Err(DecodeError::BadModRm { offset: 2, byte: b }),
                    }
                }
                b @ 0x80..=0x8f => match Cond::from_nibble(b - 0x80) {
                    Some(cond) => Ok((Inst::Jcc(cond, read_i32(bytes, 2)?), 6)),
                    None => Err(DecodeError::BadOpcode { offset: 1, byte: b }),
                },
                b => Err(DecodeError::BadOpcode { offset: 1, byte: b }),
            }
        }
        0x48..=0x4f if b0 & 0x02 == 0 => decode_rex(bytes, b0),
        b => Err(DecodeError::BadOpcode { offset: 0, byte: b }),
    }
}

fn decode_rex(bytes: &[u8], prefix: u8) -> Result<(Inst, usize), DecodeError> {
    need(bytes, 2)?;
    let ext_r = (prefix >> 2) & 1; // extends modrm.reg
    let ext_b = prefix & 1; // extends modrm.rm / opcode reg
    let op = bytes[1];

    let split = |mrm: u8| -> (u8, Reg, Reg) {
        let mode = mrm >> 6;
        let r = Reg::from_index(((mrm >> 3) & 7) + 8 * ext_r).unwrap();
        let rm = Reg::from_index((mrm & 7) + 8 * ext_b).unwrap();
        (mode, r, rm)
    };

    match op {
        b @ 0xb8..=0xbf => {
            need(bytes, 10)?;
            let r = Reg::from_index((b - 0xb8) + 8 * ext_b).unwrap();
            let mut imm = [0u8; 8];
            imm.copy_from_slice(&bytes[2..10]);
            Ok((Inst::MovImm(r, u64::from_le_bytes(imm)), 10))
        }
        0x88..=0x8b => {
            need(bytes, 3)?;
            let (mode, r, rm) = split(bytes[2]);
            match (op, mode) {
                (0x89, 0b11) => Ok((Inst::MovReg(rm, r), 3)),
                (0x89, 0b10) => Ok((Inst::Store(rm, read_i32(bytes, 3)?, r), 7)),
                (0x8b, 0b10) => Ok((Inst::Load(r, rm, read_i32(bytes, 3)?), 7)),
                (0x88, 0b10) => Ok((Inst::StoreByte(rm, read_i32(bytes, 3)?, r), 7)),
                (0x8a, 0b10) => Ok((Inst::LoadByte(r, rm, read_i32(bytes, 3)?), 7)),
                _ => Err(DecodeError::BadModRm {
                    offset: 2,
                    byte: bytes[2],
                }),
            }
        }
        0x8d => {
            need(bytes, 3)?;
            let (mode, r, _) = split(bytes[2]);
            if mode == 0b00 && bytes[2] & 7 == 0b101 {
                Ok((Inst::Lea(r, read_i32(bytes, 3)?), 7))
            } else {
                Err(DecodeError::BadModRm {
                    offset: 2,
                    byte: bytes[2],
                })
            }
        }
        0x01 | 0x29 | 0x21 | 0x09 | 0x31 | 0x39 | 0x85 => {
            need(bytes, 3)?;
            let (mode, r, rm) = split(bytes[2]);
            if mode != 0b11 {
                return Err(DecodeError::BadModRm {
                    offset: 2,
                    byte: bytes[2],
                });
            }
            let inst = match op {
                0x01 => Inst::AddReg(rm, r),
                0x29 => Inst::SubReg(rm, r),
                0x21 => Inst::AndReg(rm, r),
                0x09 => Inst::OrReg(rm, r),
                0x31 => Inst::XorReg(rm, r),
                0x39 => Inst::CmpReg(rm, r),
                0x85 => Inst::TestReg(rm, r),
                _ => unreachable!(),
            };
            Ok((inst, 3))
        }
        0x0f => {
            need(bytes, 4)?;
            let (mode, r, rm) = split(bytes[3]);
            match bytes[2] {
                0xaf if mode == 0b11 => Ok((Inst::ImulReg(r, rm), 4)),
                0xa3 if mode == 0b00 => Ok((Inst::BtMem(rm, r), 4)),
                0xaf | 0xa3 => Err(DecodeError::BadModRm {
                    offset: 3,
                    byte: bytes[3],
                }),
                b => Err(DecodeError::BadOpcode { offset: 2, byte: b }),
            }
        }
        0x81 => {
            need(bytes, 3)?;
            let mrm = bytes[2];
            let mode = mrm >> 6;
            let ext = (mrm >> 3) & 7;
            let rm = Reg::from_index((mrm & 7) + 8 * ext_b).unwrap();
            if mode != 0b11 {
                return Err(DecodeError::BadModRm {
                    offset: 2,
                    byte: mrm,
                });
            }
            let imm = read_i32(bytes, 3)?;
            let inst = match ext {
                0 => Inst::AddImm(rm, imm),
                1 => Inst::OrImm(rm, imm),
                4 => Inst::AndImm(rm, imm),
                5 => Inst::SubImm(rm, imm),
                6 => Inst::XorImm(rm, imm),
                7 => Inst::CmpImm(rm, imm),
                _ => {
                    return Err(DecodeError::BadModRm {
                        offset: 2,
                        byte: mrm,
                    })
                }
            };
            Ok((inst, 7))
        }
        0xc1 => {
            need(bytes, 4)?;
            let mrm = bytes[2];
            let mode = mrm >> 6;
            let ext = (mrm >> 3) & 7;
            let rm = Reg::from_index((mrm & 7) + 8 * ext_b).unwrap();
            if mode != 0b11 {
                return Err(DecodeError::BadModRm {
                    offset: 2,
                    byte: mrm,
                });
            }
            match ext {
                4 => Ok((Inst::ShlImm(rm, bytes[3]), 4)),
                5 => Ok((Inst::ShrImm(rm, bytes[3]), 4)),
                _ => Err(DecodeError::BadModRm {
                    offset: 2,
                    byte: mrm,
                }),
            }
        }
        0xd3 => {
            need(bytes, 3)?;
            let mrm = bytes[2];
            let mode = mrm >> 6;
            let ext = (mrm >> 3) & 7;
            let rm = Reg::from_index((mrm & 7) + 8 * ext_b).unwrap();
            if mode != 0b11 {
                return Err(DecodeError::BadModRm {
                    offset: 2,
                    byte: mrm,
                });
            }
            match ext {
                4 => Ok((Inst::ShlCl(rm), 3)),
                5 => Ok((Inst::ShrCl(rm), 3)),
                _ => Err(DecodeError::BadModRm {
                    offset: 2,
                    byte: mrm,
                }),
            }
        }
        b => Err(DecodeError::BadOpcode { offset: 1, byte: b }),
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Nop => write!(f, "nop"),
            Inst::Syscall => write!(f, "syscall"),
            Inst::Sysenter => write!(f, "sysenter"),
            Inst::Ret => write!(f, "ret"),
            Inst::Hlt => write!(f, "hlt"),
            Inst::Int3 => write!(f, "int3"),
            Inst::Cpuid => write!(f, "cpuid"),
            Inst::Fence => write!(f, "fence"),
            Inst::Vsyscall => write!(f, "vsyscall"),
            Inst::Rdpkru => write!(f, "rdpkru"),
            Inst::Wrpkru => write!(f, "wrpkru"),
            Inst::CallReg(r) => write!(f, "call *%{r}"),
            Inst::JmpReg(r) => write!(f, "jmp *%{r}"),
            Inst::Push(r) => write!(f, "push %{r}"),
            Inst::Pop(r) => write!(f, "pop %{r}"),
            Inst::MovImm(r, v) => write!(f, "mov ${v:#x}, %{r}"),
            Inst::MovReg(d, s) => write!(f, "mov %{s}, %{d}"),
            Inst::Load(d, b, o) => write!(f, "mov {o}(%{b}), %{d}"),
            Inst::Store(b, o, s) => write!(f, "mov %{s}, {o}(%{b})"),
            Inst::LoadByte(d, b, o) => write!(f, "movb {o}(%{b}), %{d}"),
            Inst::StoreByte(b, o, s) => write!(f, "movb %{s}, {o}(%{b})"),
            Inst::Lea(d, o) => write!(f, "lea {o}(%rip), %{d}"),
            Inst::AddReg(d, s) => write!(f, "add %{s}, %{d}"),
            Inst::SubReg(d, s) => write!(f, "sub %{s}, %{d}"),
            Inst::AndReg(d, s) => write!(f, "and %{s}, %{d}"),
            Inst::OrReg(d, s) => write!(f, "or %{s}, %{d}"),
            Inst::XorReg(d, s) => write!(f, "xor %{s}, %{d}"),
            Inst::CmpReg(d, s) => write!(f, "cmp %{s}, %{d}"),
            Inst::TestReg(d, s) => write!(f, "test %{s}, %{d}"),
            Inst::ImulReg(d, s) => write!(f, "imul %{s}, %{d}"),
            Inst::AddImm(r, i) => write!(f, "add ${i}, %{r}"),
            Inst::SubImm(r, i) => write!(f, "sub ${i}, %{r}"),
            Inst::AndImm(r, i) => write!(f, "and ${i:#x}, %{r}"),
            Inst::OrImm(r, i) => write!(f, "or ${i:#x}, %{r}"),
            Inst::XorImm(r, i) => write!(f, "xor ${i:#x}, %{r}"),
            Inst::CmpImm(r, i) => write!(f, "cmp ${i}, %{r}"),
            Inst::ShlImm(r, i) => write!(f, "shl ${i}, %{r}"),
            Inst::ShrImm(r, i) => write!(f, "shr ${i}, %{r}"),
            Inst::ShlCl(r) => write!(f, "shl %cl, %{r}"),
            Inst::ShrCl(r) => write!(f, "shr %cl, %{r}"),
            Inst::BtMem(b, i) => write!(f, "bt %{i}, (%{b})"),
            Inst::Jmp(rel) => write!(f, "jmp .{rel:+}"),
            Inst::Call(rel) => write!(f, "call .{rel:+}"),
            Inst::Jcc(c, rel) => write!(f, "j{c} .{rel:+}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(inst: Inst) {
        let bytes = inst.encode();
        let (decoded, len) = decode(&bytes)
            .unwrap_or_else(|e| panic!("decode of {inst:?} ({bytes:02x?}) failed: {e}"));
        assert_eq!(decoded, inst, "bytes {bytes:02x?}");
        assert_eq!(len, bytes.len());
    }

    #[test]
    fn syscall_is_two_bytes_0f05() {
        assert_eq!(Inst::Syscall.encode(), vec![0x0f, 0x05]);
        assert_eq!(Inst::Sysenter.encode(), vec![0x0f, 0x34]);
    }

    #[test]
    fn call_rax_is_two_bytes_ffd0() {
        assert_eq!(Inst::CallReg(Reg::Rax).encode(), vec![0xff, 0xd0]);
        // Same length as SYSCALL: the zpoline in-place rewrite is possible.
        assert_eq!(
            Inst::CallReg(Reg::Rax).encode().len(),
            Inst::Syscall.encode().len()
        );
    }

    #[test]
    fn roundtrip_simple() {
        for inst in [
            Inst::Nop,
            Inst::Syscall,
            Inst::Sysenter,
            Inst::Ret,
            Inst::Hlt,
            Inst::Int3,
            Inst::Cpuid,
            Inst::Fence,
            Inst::Vsyscall,
            Inst::Rdpkru,
            Inst::Wrpkru,
        ] {
            roundtrip(inst);
        }
    }

    #[test]
    fn roundtrip_all_registers() {
        for r in Reg::ALL {
            roundtrip(Inst::Push(r));
            roundtrip(Inst::Pop(r));
            roundtrip(Inst::CallReg(r));
            roundtrip(Inst::JmpReg(r));
            roundtrip(Inst::MovImm(r, 0x0f05_0f05_0f05_0f05));
            roundtrip(Inst::ShlImm(r, 63));
            roundtrip(Inst::ShrImm(r, 1));
            roundtrip(Inst::AddImm(r, -1));
            roundtrip(Inst::CmpImm(r, i32::MAX));
            roundtrip(Inst::Lea(r, -4096));
            for s in [Reg::Rax, Reg::R11, Reg::R15, Reg::Rsp] {
                roundtrip(Inst::MovReg(r, s));
                roundtrip(Inst::Load(r, s, 1234));
                roundtrip(Inst::Store(s, -8, r));
                roundtrip(Inst::LoadByte(r, s, 0));
                roundtrip(Inst::StoreByte(s, 7, r));
                roundtrip(Inst::AddReg(r, s));
                roundtrip(Inst::SubReg(r, s));
                roundtrip(Inst::AndReg(r, s));
                roundtrip(Inst::OrReg(r, s));
                roundtrip(Inst::XorReg(r, s));
                roundtrip(Inst::CmpReg(r, s));
                roundtrip(Inst::TestReg(r, s));
                roundtrip(Inst::ImulReg(r, s));
            }
        }
    }

    #[test]
    fn roundtrip_shifts_and_bt() {
        for r in Reg::ALL {
            roundtrip(Inst::ShlCl(r));
            roundtrip(Inst::ShrCl(r));
            for s in [Reg::Rax, Reg::R11, Reg::Rbp] {
                roundtrip(Inst::BtMem(r, s));
            }
        }
    }

    #[test]
    fn roundtrip_branches() {
        roundtrip(Inst::Jmp(-5));
        roundtrip(Inst::Call(0x1000));
        for c in Cond::ALL {
            roundtrip(Inst::Jcc(c, -123456));
        }
    }

    #[test]
    fn movimm_can_embed_syscall_bytes() {
        // A ten-byte mov whose immediate contains the SYSCALL opcode: decoding
        // from the start sees a mov; decoding from byte 4 would see a syscall.
        let imm = u64::from_le_bytes([0xaa, 0xbb, 0x0f, 0x05, 0xcc, 0xdd, 0xee, 0x11]);
        let bytes = Inst::MovImm(Reg::Rbx, imm).encode();
        assert_eq!(&bytes[4..6], &[0x0f, 0x05]);
        let (inst, len) = decode(&bytes).unwrap();
        assert_eq!(inst, Inst::MovImm(Reg::Rbx, imm));
        assert_eq!(len, 10);
        let (inner, _) = decode(&bytes[4..]).unwrap();
        assert_eq!(inner, Inst::Syscall);
    }

    #[test]
    fn truncated_inputs_error() {
        assert!(matches!(
            decode(&[]),
            Err(DecodeError::Truncated { needed: 1, .. })
        ));
        assert!(matches!(decode(&[0x0f]), Err(DecodeError::Truncated { .. })));
        assert!(matches!(
            decode(&[0xe9, 0x01]),
            Err(DecodeError::Truncated { .. })
        ));
        assert!(matches!(
            decode(&[0x48, 0xb8, 0, 0, 0]),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn bad_opcodes_error() {
        assert!(matches!(
            decode(&[0x00]),
            Err(DecodeError::BadOpcode { offset: 0, .. })
        ));
        assert!(matches!(
            decode(&[0xff, 0x00]),
            Err(DecodeError::BadModRm { offset: 1, .. })
        ));
        assert!(matches!(
            decode(&[0x0f, 0x99]),
            Err(DecodeError::BadOpcode { offset: 1, .. })
        ));
    }

    #[test]
    fn display_is_nonempty() {
        for inst in [
            Inst::Syscall,
            Inst::MovImm(Reg::Rax, 500),
            Inst::Jcc(Cond::Ne, -10),
            Inst::Store(Reg::Rsp, -8, Reg::R11),
        ] {
            assert!(!inst.to_string().is_empty());
        }
    }
}
