//! The `SimElf` image format and its builder.
//!
//! A SimElf is one loadable module: a code+data byte image with symbols,
//! imports (GOT-style slots the loader patches with absolute addresses),
//! absolute relocations, declared constructor, dependencies, and hostcall
//! symbols (guest `int3` sites wired to registered host handlers at load).
//!
//! Everything before `data_offset` is mapped read+execute; the rest
//! read+write. Like real binaries, images may *embed data in executable
//! pages* (jump tables via [`ImageBuilder::jump_table`]), which is the raw
//! material of pitfall P3.

use sim_isa::{Asm, Reg};
use sim_kernel::Vfs;
use std::collections::BTreeMap;

/// Page size used for section alignment (matches `sim_mem::PAGE_SIZE`).
const PAGE: u64 = sim_mem::PAGE_SIZE;

/// A loadable module.
#[derive(Debug, Clone)]
pub struct SimElf {
    /// Install path, e.g. `/usr/lib/libc-sim.so.6`.
    pub name: String,
    /// The raw image (code then data).
    pub bytes: Vec<u8>,
    /// Byte offset where the writable data section begins (page-aligned;
    /// equals `bytes.len()` when there is no data section).
    pub data_offset: u64,
    /// Extra zero-initialized bytes mapped after `bytes` (bss).
    pub bss: u64,
    /// Symbol table: name → image offset.
    pub symbols: BTreeMap<String, u64>,
    /// Offsets of u64 slots holding image-relative values that the loader
    /// rebases by the final load address.
    pub abs_relocs: Vec<u64>,
    /// Imports: (symbol name, offset of the u64 GOT slot to patch).
    pub imports: Vec<(String, u64)>,
    /// Constructor symbol run by the startup stub after loading (in load
    /// order; preload constructors are where interposers initialize).
    pub init: Option<String>,
    /// Entry symbol (executables only).
    pub entry: Option<String>,
    /// Library dependencies (paths), loaded before this image's init runs.
    pub needed: Vec<String>,
    /// Symbols that are hostcall sites: their address is wired to the host
    /// handler registered under the same name.
    pub hostcall_syms: Vec<String>,
    /// Loaded via `dlmopen` semantics: symbols are *not* entered into the
    /// global resolution namespace (paper §5.3 — prevents recursive
    /// redirection through shared libraries).
    pub isolated_namespace: bool,
}

impl SimElf {
    /// Serializes and installs the image into the VFS at its `name` path.
    ///
    /// # Panics
    ///
    /// Panics if the VFS rejects the write (immutable target).
    pub fn install(&self, vfs: &mut Vfs) {
        let data = self.to_json().to_vec();
        vfs.write_file(&self.name, &data)
            .unwrap_or_else(|e| panic!("installing {} failed: {e}", self.name));
    }

    /// Loads an image previously installed at `path`.
    ///
    /// # Errors
    ///
    /// `None` when the file is missing or not a SimElf.
    pub fn load_from(vfs: &Vfs, path: &str) -> Option<SimElf> {
        let data = vfs.read_file(path).ok()?;
        Self::from_json(&sjson::parse(data).ok()?)
    }

    fn to_json(&self) -> sjson::Value {
        use sjson::Value;
        Value::object(vec![
            ("name", self.name.as_str().into()),
            ("bytes", sjson::bytes_value(&self.bytes)),
            ("data_offset", self.data_offset.into()),
            ("bss", self.bss.into()),
            (
                "symbols",
                Value::Object(
                    self.symbols
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::UInt(*v)))
                        .collect(),
                ),
            ),
            (
                "abs_relocs",
                Value::Array(self.abs_relocs.iter().map(|r| Value::UInt(*r)).collect()),
            ),
            (
                "imports",
                Value::Array(
                    self.imports
                        .iter()
                        .map(|(s, o)| {
                            Value::Array(vec![s.as_str().into(), Value::UInt(*o)])
                        })
                        .collect(),
                ),
            ),
            (
                "init",
                self.init
                    .as_deref()
                    .map(Into::into)
                    .unwrap_or(Value::Null),
            ),
            (
                "entry",
                self.entry
                    .as_deref()
                    .map(Into::into)
                    .unwrap_or(Value::Null),
            ),
            (
                "needed",
                Value::Array(self.needed.iter().map(|n| n.as_str().into()).collect()),
            ),
            (
                "hostcall_syms",
                Value::Array(
                    self.hostcall_syms
                        .iter()
                        .map(|n| n.as_str().into())
                        .collect(),
                ),
            ),
            ("isolated_namespace", self.isolated_namespace.into()),
        ])
    }

    fn from_json(v: &sjson::Value) -> Option<SimElf> {
        let opt_str = |key: &str| -> Option<String> {
            match v.get(key) {
                Some(sjson::Value::Str(s)) => Some(s.clone()),
                _ => None,
            }
        };
        let str_list = |key: &str| -> Option<Vec<String>> {
            v.get(key)?
                .as_array()?
                .iter()
                .map(|s| s.as_str().map(str::to_string))
                .collect()
        };
        let symbols = match v.get("symbols")? {
            sjson::Value::Object(m) => m
                .iter()
                .map(|(k, val)| Some((k.clone(), val.as_u64()?)))
                .collect::<Option<BTreeMap<String, u64>>>()?,
            _ => return None,
        };
        Some(SimElf {
            name: opt_str("name")?,
            bytes: v.get("bytes")?.as_bytes()?,
            data_offset: v.get("data_offset")?.as_u64()?,
            bss: v.get("bss")?.as_u64()?,
            symbols,
            abs_relocs: v
                .get("abs_relocs")?
                .as_array()?
                .iter()
                .map(sjson::Value::as_u64)
                .collect::<Option<Vec<u64>>>()?,
            imports: v
                .get("imports")?
                .as_array()?
                .iter()
                .map(|pair| {
                    let pair = pair.as_array()?;
                    Some((pair.first()?.as_str()?.to_string(), pair.get(1)?.as_u64()?))
                })
                .collect::<Option<Vec<(String, u64)>>>()?,
            init: opt_str("init"),
            entry: opt_str("entry"),
            needed: str_list("needed")?,
            hostcall_syms: str_list("hostcall_syms")?,
            isolated_namespace: v.get("isolated_namespace")?.as_bool()?,
        })
    }

    /// Total mapped size (code + data + bss), page-rounded.
    pub fn mapped_len(&self) -> u64 {
        (self.bytes.len() as u64 + self.bss).div_ceil(PAGE) * PAGE
    }
}

/// Builds a [`SimElf`] from assembly.
///
/// The builder wraps [`Asm`] and adds the module-level concepts: imports,
/// a data section, hostcall sites, constructor/entry declarations.
pub struct ImageBuilder {
    name: String,
    /// The underlying assembler — exposed for direct instruction emission.
    pub asm: Asm,
    imports: Vec<String>,
    init: Option<String>,
    entry: Option<String>,
    needed: Vec<String>,
    hostcall_syms: Vec<String>,
    isolated_namespace: bool,
    data: Vec<(String, Vec<u8>)>,
}

impl ImageBuilder {
    /// Starts building an image to be installed at `name`.
    pub fn new(name: &str) -> ImageBuilder {
        ImageBuilder {
            name: name.to_string(),
            asm: Asm::new(),
            imports: Vec::new(),
            init: None,
            entry: None,
            needed: Vec::new(),
            hostcall_syms: Vec::new(),
            isolated_namespace: false,
            data: Vec::new(),
        }
    }

    /// Declares the constructor symbol (must be defined in the code).
    pub fn init(&mut self, sym: &str) -> &mut Self {
        self.init = Some(sym.to_string());
        self
    }

    /// Declares the entry symbol (executables).
    pub fn entry(&mut self, sym: &str) -> &mut Self {
        self.entry = Some(sym.to_string());
        self
    }

    /// Adds a library dependency by path.
    pub fn needs(&mut self, path: &str) -> &mut Self {
        self.needed.push(path.to_string());
        self
    }

    /// Marks this image for dlmopen-style namespace isolation.
    pub fn isolated(&mut self) -> &mut Self {
        self.isolated_namespace = true;
        self
    }

    /// Defines a named writable data object; returns nothing (address is
    /// reachable via `lea_label` on the same name).
    pub fn data_object(&mut self, label: &str, bytes: &[u8]) -> &mut Self {
        self.data.push((label.to_string(), bytes.to_vec()));
        self
    }

    /// Defines a hostcall function: `label: int3; ret`. At load time the
    /// `int3` address is wired to the host handler registered under `label`.
    pub fn hostcall_fn(&mut self, label: &str) -> &mut Self {
        self.asm.label(label);
        self.asm.int3();
        self.asm.ret();
        self.hostcall_syms.push(label.to_string());
        self
    }

    /// Emits a call through an import: `lea got; load; call *reg` (3
    /// instructions, like a PLT stub). Clobbers `scratch`.
    pub fn call_import_via(&mut self, sym: &str, scratch: Reg) -> &mut Self {
        let got = format!("__got_{sym}");
        if !self.imports.contains(&sym.to_string()) {
            self.imports.push(sym.to_string());
        }
        self.asm.lea_label(scratch, &got);
        self.asm.load(scratch, scratch, 0);
        self.asm.call_reg(scratch);
        self
    }

    /// [`ImageBuilder::call_import_via`] with the conventional scratch `r15`.
    pub fn call_import(&mut self, sym: &str) -> &mut Self {
        self.call_import_via(sym, Reg::R15)
    }

    /// Embeds a jump table (quads of label offsets) directly in the code
    /// stream — data in an executable page, as compilers emit (paper §4.3).
    pub fn jump_table(&mut self, label: &str, targets: &[&str]) -> &mut Self {
        self.asm.label(label);
        for t in targets {
            self.asm.quad_label(t);
        }
        self
    }

    /// Finalizes the image: appends the data section (page-aligned) with the
    /// named data objects and one GOT slot per import.
    pub fn finish(mut self) -> SimElf {
        // Pad code to a page boundary, then lay out data objects + GOT.
        let code_end = self.asm.here() as u64;
        let data_offset = code_end.div_ceil(PAGE) * PAGE;
        let pad = (data_offset - code_end) as usize;
        self.asm.bytes(&vec![0u8; pad]);
        for (label, bytes) in std::mem::take(&mut self.data) {
            self.asm.label(&label);
            self.asm.bytes(&bytes);
            // Keep u64 alignment for the next object.
            let here = self.asm.here();
            let aligned = here.div_ceil(8) * 8;
            self.asm.bytes(&vec![0u8; aligned - here]);
        }
        let mut import_slots = Vec::new();
        for sym in self.imports.clone() {
            let got = format!("__got_{sym}");
            self.asm.label(&got);
            import_slots.push((sym, self.asm.here() as u64));
            self.asm.quad(0);
        }
        let (prog, relocs) = self.asm.finish_with_relocs();
        SimElf {
            name: self.name,
            bytes: prog.bytes,
            data_offset,
            bss: 0,
            symbols: prog.symbols,
            abs_relocs: relocs.into_iter().map(|r| r as u64).collect(),
            imports: import_slots,
            init: self.init,
            entry: self.entry,
            needed: self.needed,
            hostcall_syms: self.hostcall_syms,
            isolated_namespace: self.isolated_namespace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_install_load_roundtrip() {
        let mut b = ImageBuilder::new("/usr/bin/demo");
        b.entry("_start");
        b.asm.label("_start");
        b.asm.mov_imm(Reg::Rax, 60);
        b.asm.syscall();
        let img = b.finish();

        let mut vfs = Vfs::new();
        img.install(&mut vfs);
        let back = SimElf::load_from(&vfs, "/usr/bin/demo").expect("load");
        assert_eq!(back.bytes, img.bytes);
        assert_eq!(back.entry.as_deref(), Some("_start"));
        assert_eq!(back.symbols["_start"], 0);
    }

    #[test]
    fn data_section_is_page_aligned_after_code() {
        let mut b = ImageBuilder::new("/lib/x.so");
        b.asm.label("f");
        b.asm.ret();
        b.data_object("state", &[1, 2, 3, 4]);
        let img = b.finish();
        assert_eq!(img.data_offset % PAGE, 0);
        assert_eq!(img.symbols["state"], img.data_offset);
        assert_eq!(
            &img.bytes[img.symbols["state"] as usize..img.symbols["state"] as usize + 4],
            &[1, 2, 3, 4]
        );
    }

    #[test]
    fn imports_create_got_slots_in_data() {
        let mut b = ImageBuilder::new("/bin/app");
        b.entry("_start");
        b.asm.label("_start");
        b.call_import("write");
        b.asm.ret();
        let img = b.finish();
        assert_eq!(img.imports.len(), 1);
        let (sym, slot) = &img.imports[0];
        assert_eq!(sym, "write");
        assert!(*slot >= img.data_offset, "GOT lives in the data section");
        assert_eq!(img.symbols[&format!("__got_{sym}")], *slot);
    }

    #[test]
    fn jump_table_records_relocs() {
        let mut b = ImageBuilder::new("/bin/jt");
        b.asm.label("a");
        b.asm.ret();
        b.asm.label("b");
        b.asm.ret();
        b.jump_table("table", &["a", "b"]);
        let img = b.finish();
        let t = img.symbols["table"] as usize;
        assert_eq!(
            u64::from_le_bytes(img.bytes[t..t + 8].try_into().unwrap()),
            img.symbols["a"]
        );
        // Both table entries need rebasing at load.
        assert!(img.abs_relocs.contains(&(t as u64)));
        assert!(img.abs_relocs.contains(&(t as u64 + 8)));
    }

    #[test]
    fn hostcall_fn_emits_int3() {
        let mut b = ImageBuilder::new("/lib/i.so");
        b.hostcall_fn("__host_probe");
        let img = b.finish();
        let at = img.symbols["__host_probe"] as usize;
        assert_eq!(img.bytes[at], 0xcc);
        assert_eq!(img.bytes[at + 1], 0xc3);
        assert_eq!(img.hostcall_syms, vec!["__host_probe"]);
    }
}
