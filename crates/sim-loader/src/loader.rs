//! The dynamic loader.
//!
//! Implements [`ExecLoader`]: resolves dependencies and `LD_PRELOAD`, places
//! modules with ASLR (whole-image slides, so *(region, offset)* pairs stay
//! valid across runs — the property K23's offline logs rely on, §5.1), maps
//! a vDSO (fast-path or syscall-fallback when a tracer disabled it, §5.2),
//! patches imports, and generates a **startup stub** that issues the same
//! kind of syscall sequence `ld.so` produces while loading libraries.
//!
//! Those stub syscalls execute *before any preloaded interposer initializes*
//! — they are the "over 100 system calls during startup" that library-
//! injection-based interposers inevitably miss (pitfall P2b, §6.1).

use crate::image::{ImageBuilder, SimElf};
use crate::libc;
use sim_isa::Reg;
use sim_kernel::nr;
use sim_kernel::{ExecLoader, ExecOpts, LoadedImage, Vfs};
use sim_mem::{AddressSpace, Perms, PAGE_SIZE};
use std::collections::{BTreeMap, BTreeSet};

/// Stack size for new images.
pub const STACK_SIZE: u64 = 256 * 1024;
/// Heap mapping size.
pub const HEAP_SIZE: u64 = 4 * 1024 * 1024;

/// How many failed locale/gconv probe opens the startup stub performs
/// (tuned so `ls`-class binaries issue >100 startup syscalls, §6.1).
const LOCALE_PROBES: usize = 40;

/// The loader. Stateless; installed once via [`sim_kernel::Kernel::set_loader`].
#[derive(Debug, Default, Clone, Copy)]
pub struct Ld;

fn basename(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn collect_deps(vfs: &Vfs, img: &SimElf, out: &mut Vec<SimElf>, seen: &mut BTreeSet<String>) {
    for dep in &img.needed {
        if seen.contains(dep) {
            continue;
        }
        seen.insert(dep.clone());
        if let Some(d) = SimElf::load_from(vfs, dep) {
            collect_deps(vfs, &d, out, seen);
            out.push(d);
        }
    }
}

struct Placed {
    img: SimElf,
    base: u64,
}

fn map_module(space: &mut AddressSpace, img: &SimElf, base: u64) -> Result<(), i64> {
    let total = img.mapped_len();
    let code_len = img.data_offset.min(total);
    if code_len > 0 {
        space
            .map(base, code_len, Perms::RX, &img.name)
            .map_err(|_| -nr::ENOMEM)?;
    }
    if total > code_len {
        space
            .map(base + code_len, total - code_len, Perms::RW, &img.name)
            .map_err(|_| -nr::ENOMEM)?;
    }
    space.write_raw(base, &img.bytes).map_err(|_| -nr::ENOMEM)?;
    for &off in &img.abs_relocs {
        let mut b = [0u8; 8];
        space.read_raw(base + off, &mut b).map_err(|_| -nr::ENOMEM)?;
        let v = u64::from_le_bytes(b).wrapping_add(base);
        space
            .write_raw(base + off, &v.to_le_bytes())
            .map_err(|_| -nr::ENOMEM)?;
    }
    Ok(())
}

fn build_vdso(disable_fast_path: bool) -> SimElf {
    let mut b = ImageBuilder::new("[vdso]");
    b.asm.label("clock_gettime_vdso");
    if disable_fast_path {
        // Tracer disabled the vDSO: fall back to a real syscall so the call
        // becomes interposable (paper §5.2).
        b.asm.mov_imm(Reg::Rax, nr::SYS_CLOCK_GETTIME);
        b.asm.syscall();
        b.asm.ret();
    } else {
        // Fast path: read the clock entirely in user space; optionally store
        // it to *rsi.
        b.asm.vsyscall();
        b.asm.test_reg(Reg::Rsi, Reg::Rsi);
        b.asm.jz("skip_store");
        b.asm.store(Reg::Rsi, 0, Reg::Rax);
        b.asm.label("skip_store");
        b.asm.ret();
    }
    b.finish()
}

/// Emits the ld.so-style loading narration for one module (≈14 syscalls).
fn emit_module_load_syscalls(b: &mut ImageBuilder, path_label: &str) {
    let a = &mut b.asm;
    // openat(AT_FDCWD, path, O_RDONLY)
    a.mov_imm(Reg::Rdi, (-100i64) as u64);
    a.lea_label(Reg::Rsi, path_label);
    a.mov_imm(Reg::Rdx, 0);
    a.mov_imm(Reg::Rax, nr::SYS_OPENAT);
    a.syscall();
    a.mov_reg(Reg::R12, Reg::Rax);
    // read(fd, scratch, 64) x2 — the ELF header then the program headers
    for _ in 0..2 {
        a.mov_reg(Reg::Rdi, Reg::R12);
        a.lea_label(Reg::Rsi, "__ld_scratch");
        a.mov_imm(Reg::Rdx, 64);
        a.mov_imm(Reg::Rax, nr::SYS_READ);
        a.syscall();
    }
    // newfstatat(AT_FDCWD, path, scratch, 0)
    a.mov_imm(Reg::Rdi, (-100i64) as u64);
    a.lea_label(Reg::Rsi, path_label);
    a.lea_label(Reg::Rdx, "__ld_scratch");
    a.mov_imm(Reg::Rax, nr::SYS_NEWFSTATAT);
    a.syscall();
    // Three probing mmap/munmap pairs plus one mmap+mprotect+munmap.
    for last in [false, false, false, true] {
        a.mov_imm(Reg::Rdi, 0);
        a.mov_imm(Reg::Rsi, PAGE_SIZE);
        a.mov_imm(Reg::Rdx, 1); // PROT_READ
        a.mov_imm(Reg::R10, 0);
        a.mov_imm(Reg::Rax, nr::SYS_MMAP);
        a.syscall();
        a.mov_reg(Reg::R13, Reg::Rax);
        if last {
            a.mov_reg(Reg::Rdi, Reg::R13);
            a.mov_imm(Reg::Rsi, PAGE_SIZE);
            a.mov_imm(Reg::Rdx, 1);
            a.mov_imm(Reg::Rax, nr::SYS_MPROTECT);
            a.syscall();
        }
        a.mov_reg(Reg::Rdi, Reg::R13);
        a.mov_imm(Reg::Rsi, PAGE_SIZE);
        a.mov_imm(Reg::Rax, nr::SYS_MUNMAP);
        a.syscall();
    }
    // close(fd)
    a.mov_reg(Reg::Rdi, Reg::R12);
    a.mov_imm(Reg::Rax, nr::SYS_CLOSE);
    a.syscall();
}

fn build_stub(
    modules: &[Placed],
    ctors: &[u64],
    main_entry: u64,
    argc: u64,
    argv_ptr: u64,
    envp_ptr: u64,
) -> SimElf {
    let mut b = ImageBuilder::new("/lib/ld-sim.so");
    b.entry("_stub_start");
    b.asm.label("_stub_start");

    // Early ld.so work: two brk probes, arch_prctl, the ld.so.preload check.
    for _ in 0..2 {
        b.asm.mov_imm(Reg::Rdi, 0);
        b.asm.mov_imm(Reg::Rax, nr::SYS_BRK);
        b.asm.syscall();
    }
    b.asm.mov_imm(Reg::Rax, nr::SYS_ARCH_PRCTL);
    b.asm.syscall();
    b.asm.lea_label(Reg::Rdi, "__str_preload_cfg");
    b.asm.mov_imm(Reg::Rax, nr::SYS_ACCESS);
    b.asm.syscall();

    // Per-module loading narration.
    for (i, _) in modules.iter().enumerate() {
        emit_module_load_syscalls(&mut b, &format!("__str_mod_{i}"));
    }

    // Locale / gconv probing (all ENOENT).
    for _ in 0..LOCALE_PROBES {
        b.asm.mov_imm(Reg::Rdi, (-100i64) as u64);
        b.asm.lea_label(Reg::Rsi, "__str_locale");
        b.asm.mov_imm(Reg::Rdx, 0);
        b.asm.mov_imm(Reg::Rax, nr::SYS_OPENAT);
        b.asm.syscall();
    }

    // Late ld.so/libc-startup housekeeping.
    b.asm.mov_imm(Reg::Rax, nr::SYS_SET_TID_ADDRESS);
    b.asm.syscall();
    b.asm.mov_imm(Reg::Rax, nr::SYS_RT_SIGPROCMASK);
    b.asm.syscall();

    // Constructors, in load order (deps first, then preloads — interposer
    // constructors run here, *after* all of the syscalls above).
    for &ctor in ctors {
        b.asm.mov_imm(Reg::R15, ctor);
        b.asm.call_reg(Reg::R15);
    }

    // Call main(argc, argv, envp); its return value feeds exit_group.
    b.asm.mov_imm(Reg::Rdi, argc);
    b.asm.mov_imm(Reg::Rsi, argv_ptr);
    b.asm.mov_imm(Reg::Rdx, envp_ptr);
    b.asm.mov_imm(Reg::R15, main_entry);
    b.asm.call_reg(Reg::R15);
    b.asm.mov_reg(Reg::Rdi, Reg::Rax);
    b.asm.mov_imm(Reg::Rax, nr::SYS_EXIT_GROUP);
    b.asm.syscall();

    // String and scratch data.
    b.data_object("__ld_scratch", &[0u8; 128]);
    b.data_object("__str_preload_cfg", b"/etc/ld.so.preload\0");
    b.data_object("__str_locale", b"/usr/lib/locale/locale-archive\0");
    for (i, m) in modules.iter().enumerate() {
        let mut s = m.img.name.clone().into_bytes();
        s.push(0);
        b.data_object(&format!("__str_mod_{i}"), &s);
    }
    b.finish()
}

impl ExecLoader for Ld {
    fn load(
        &self,
        vfs: &mut Vfs,
        path: &str,
        argv: &[String],
        env: &[String],
        opts: &ExecOpts,
    ) -> Result<LoadedImage, i64> {
        let main = SimElf::load_from(vfs, path).ok_or(-nr::ENOENT)?;
        let main_entry_sym = main.entry.clone().ok_or(-nr::EACCES)?;

        // Dependency closure (post-order: dependencies first).
        let mut seen = BTreeSet::new();
        seen.insert(path.to_string());
        let mut deps = Vec::new();
        collect_deps(vfs, &main, &mut deps, &mut seen);

        // LD_PRELOAD list (colon-separated), loaded after deps; missing
        // entries are skipped like ld.so does (with a warning on stderr).
        let preload_val = env
            .iter()
            .find(|e| e.starts_with("LD_PRELOAD="))
            .map(|e| e["LD_PRELOAD=".len()..].to_string())
            .unwrap_or_default();
        let mut preloads = Vec::new();
        for p in preload_val.split(':').filter(|s| !s.is_empty()) {
            if seen.contains(p) {
                continue;
            }
            seen.insert(p.to_string());
            if let Some(img) = SimElf::load_from(vfs, p) {
                collect_deps(vfs, &img, &mut preloads, &mut seen);
                preloads.push(img);
            }
        }

        // Placement: page-multiple slide, whole-image shifts only.
        let slide = (opts.aslr_seed % 0x400) * PAGE_SIZE;
        let mut space = AddressSpace::new();

        let mut placed: Vec<Placed> = Vec::new();
        let mut lib_cursor = 0x7f00_0000_0000 + slide;
        for img in deps.into_iter().chain(preloads) {
            let base = lib_cursor;
            lib_cursor += img.mapped_len() + 0x20_0000;
            map_module(&mut space, &img, base)?;
            placed.push(Placed { img, base });
        }
        let main_base = 0x5555_5540_0000 + slide;
        map_module(&mut space, &main, main_base)?;
        placed.push(Placed {
            img: main,
            base: main_base,
        });

        // vDSO.
        let vdso = build_vdso(opts.disable_vdso);
        let vdso_base = 0x7fff_0000_0000 + slide;
        map_module(&mut space, &vdso, vdso_base)?;
        placed.push(Placed {
            img: vdso,
            base: vdso_base,
        });

        // Heap.
        let heap_base = 0x6000_0000_0000 + slide;
        space
            .map(heap_base, HEAP_SIZE, Perms::RW, "[heap]")
            .map_err(|_| -nr::ENOMEM)?;

        // Symbol tables. Later modules override earlier ones for bare names
        // (preloads beat deps; the executable beats everything), imports
        // prefer the global namespace, falling back to the module's own.
        let mut global: BTreeMap<String, u64> = BTreeMap::new();
        let mut all_syms: BTreeMap<String, u64> = BTreeMap::new();
        let mut lib_bases: BTreeMap<String, u64> = BTreeMap::new();
        for p in &placed {
            lib_bases.insert(p.img.name.clone(), p.base);
            for (sym, off) in &p.img.symbols {
                all_syms.insert(format!("{}:{sym}", basename(&p.img.name)), p.base + off);
                if !p.img.isolated_namespace {
                    global.insert(sym.clone(), p.base + off);
                }
            }
        }

        // Patch imports.
        for p in &placed {
            for (sym, slot) in &p.img.imports {
                let own = p.img.symbols.get(sym).map(|o| p.base + o);
                let addr = global.get(sym).copied().or(own).ok_or(-nr::ENOENT)?;
                space
                    .write_raw(p.base + slot, &addr.to_le_bytes())
                    .map_err(|_| -nr::ENOMEM)?;
            }
        }

        // Stack with the SysV-style argv/env block at the top.
        let stack_top = 0x7ffd_0000_0000 + slide;
        let stack_base = stack_top - STACK_SIZE;
        space
            .map(stack_base, STACK_SIZE, Perms::RW, "[stack]")
            .map_err(|_| -nr::ENOMEM)?;
        let (rsp, argv_ptr, envp_ptr) = write_args(&mut space, stack_top, argv, env)?;

        // Constructors: all placed modules except main/vdso, in order.
        let ctors: Vec<u64> = placed
            .iter()
            .filter_map(|p| {
                p.img
                    .init
                    .as_ref()
                    .and_then(|sym| p.img.symbols.get(sym))
                    .map(|off| p.base + off)
            })
            .collect();
        let main_placed = placed
            .iter()
            .find(|p| p.img.name == path)
            .expect("main placed");
        let main_entry = main_placed.base
            + *main_placed
                .img
                .symbols
                .get(&main_entry_sym)
                .ok_or(-nr::EACCES)?;

        // The startup stub narrates loading of every non-main module.
        let stub_modules: Vec<&Placed> = placed
            .iter()
            .filter(|p| p.img.name != path && p.img.name != "[vdso]")
            .collect();
        let stub = build_stub(
            &stub_modules
                .iter()
                .map(|p| Placed {
                    img: p.img.clone(),
                    base: p.base,
                })
                .collect::<Vec<_>>(),
            &ctors,
            main_entry,
            argv.len() as u64,
            argv_ptr,
            envp_ptr,
        );
        let stub_base = 0x7fee_0000_0000 + slide;
        map_module(&mut space, &stub, stub_base)?;
        let entry = stub_base + stub.symbols["_stub_start"];
        lib_bases.insert(stub.name.clone(), stub_base);
        for (sym, off) in &stub.symbols {
            all_syms.insert(format!("ld-sim.so:{sym}"), stub_base + off);
        }

        // Hostcall wiring (all modules, including isolated ones).
        let mut hostcall_sites = Vec::new();
        for p in &placed {
            for sym in &p.img.hostcall_syms {
                hostcall_sites.push((sym.clone(), p.base + p.img.symbols[sym]));
            }
        }

        // Merge bare global names into the exported symbol map too.
        for (k, v) in global {
            all_syms.entry(k).or_insert(v);
        }

        Ok(LoadedImage {
            space,
            entry,
            rsp,
            hostcall_sites,
            symbols: all_syms,
            lib_bases,
            vdso_base,
        })
    }
}

/// Writes the argv/env block below `stack_top`; returns (rsp, argv*, envp*).
fn write_args(
    space: &mut AddressSpace,
    stack_top: u64,
    argv: &[String],
    env: &[String],
) -> Result<(u64, u64, u64), i64> {
    let mut cursor = stack_top;
    let mut write_strs = |space: &mut AddressSpace, items: &[String]| -> Result<Vec<u64>, i64> {
        let mut ptrs = Vec::new();
        for s in items {
            let bytes = s.as_bytes();
            cursor -= bytes.len() as u64 + 1;
            space
                .write_raw(cursor, bytes)
                .and_then(|_| space.write_raw(cursor + bytes.len() as u64, &[0]))
                .map_err(|_| -nr::ENOMEM)?;
            ptrs.push(cursor);
        }
        Ok(ptrs)
    };
    let argv_ptrs = write_strs(space, argv)?;
    let env_ptrs = write_strs(space, env)?;
    cursor &= !7;
    // envp array (NULL-terminated), then argv array, then argc.
    cursor -= 8;
    space.write_raw(cursor, &0u64.to_le_bytes()).map_err(|_| -nr::ENOMEM)?;
    for p in env_ptrs.iter().rev() {
        cursor -= 8;
        space.write_raw(cursor, &p.to_le_bytes()).map_err(|_| -nr::ENOMEM)?;
    }
    let envp_ptr = cursor;
    cursor -= 8;
    space.write_raw(cursor, &0u64.to_le_bytes()).map_err(|_| -nr::ENOMEM)?;
    for p in argv_ptrs.iter().rev() {
        cursor -= 8;
        space.write_raw(cursor, &p.to_le_bytes()).map_err(|_| -nr::ENOMEM)?;
    }
    let argv_ptr = cursor;
    cursor -= 8;
    space
        .write_raw(cursor, &(argv.len() as u64).to_le_bytes())
        .map_err(|_| -nr::ENOMEM)?;
    let rsp = cursor & !15;
    Ok((rsp, argv_ptr, envp_ptr))
}

/// Convenience: builds a kernel with the loader installed and the standard
/// libraries present.
pub fn boot_kernel() -> sim_kernel::Kernel {
    let mut k = sim_kernel::Kernel::new();
    k.set_loader(std::rc::Rc::new(Ld));
    libc::install_standard_libs(&mut k.vfs);
    k
}

/// Builds a kernel whose VFS is a clone of a prebuilt template. Serial
/// mechanism sweeps (simperf, simprof, the simscale matrix) boot one
/// kernel per mechanism x workload cell; assembling libc and every guest
/// image each time is pure startup waste. Build the world once, then
/// clone it per cell — the clone is a plain `Vec`/`BTreeMap` copy, no
/// assembly.
pub fn boot_kernel_from(template: &sim_kernel::Vfs) -> sim_kernel::Kernel {
    let mut k = sim_kernel::Kernel::new();
    k.set_loader(std::rc::Rc::new(Ld));
    k.vfs = template.clone();
    k
}
