//! # sim-loader — SimElf images and the dynamic loader
//!
//! Provides the module format ([`SimElf`], [`ImageBuilder`]), the standard
//! guest libraries ([`libc`]: one `syscall` instruction per wrapper, as in
//! glibc), and the [`Ld`] loader implementing [`sim_kernel::ExecLoader`]:
//! dependency resolution, `LD_PRELOAD`, dlmopen-style namespace isolation,
//! ASLR with stable intra-region offsets, vDSO mapping (with a tracer-
//! controlled syscall fallback), and a startup stub that issues a realistic
//! `ld.so` syscall sequence *before* any preloaded interposer initializes
//! (pitfall P2b).

pub mod image;
pub mod libc;
pub mod loader;

pub use image::{ImageBuilder, SimElf};
pub use libc::{build_libc, install_standard_libs, FILLER_LIBS, LIBC_PATH, LIBC_WRAPPERS};
pub use loader::{boot_kernel, boot_kernel_from, Ld};

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::Reg;
    use sim_kernel::{nr, RunExit};

    /// A minimal app: writes "hi\n" to stdout via the libc wrapper, exits 0.
    fn hello_app() -> SimElf {
        let mut b = ImageBuilder::new("/usr/bin/hello");
        b.entry("main");
        b.needs(LIBC_PATH);
        b.asm.label("main");
        b.asm.mov_imm(Reg::Rdi, 1);
        b.asm.lea_label(Reg::Rsi, "msg");
        b.asm.mov_imm(Reg::Rdx, 3);
        b.call_import("write");
        b.asm.mov_imm(Reg::Rax, 0);
        b.asm.ret();
        b.data_object("msg", b"hi\n");
        b.finish()
    }

    #[test]
    fn end_to_end_hello() {
        let mut k = boot_kernel();
        hello_app().install(&mut k.vfs);
        let pid = k
            .spawn("/usr/bin/hello", &["hello".into()], &[], None)
            .expect("spawn");
        let exit = k.run(500_000_000);
        assert_eq!(exit, RunExit::AllExited);
        let p = k.process(pid).expect("proc");
        assert_eq!(p.exit_status, Some(0));
        assert_eq!(p.output_string(), "hi\n");
    }

    #[test]
    fn startup_issues_many_syscalls_before_interposer() {
        // The P2b measurement: a library-injection interposer cannot see any
        // of these.
        let mut k = boot_kernel();
        let mut app = ImageBuilder::new("/usr/bin/ls-ish");
        app.entry("main");
        app.needs(LIBC_PATH);
        for f in FILLER_LIBS {
            app.needs(f);
        }
        app.asm.label("main");
        app.asm.mov_imm(Reg::Rax, 0);
        app.asm.ret();
        app.finish().install(&mut k.vfs);
        let pid = k.spawn("/usr/bin/ls-ish", &[], &[], None).expect("spawn");
        k.run(500_000_000);
        let p = k.process(pid).expect("proc");
        // interposer_live was never set, so everything counted as "before".
        assert!(
            p.stats.syscalls_before_interposer > 100,
            "expected >100 startup syscalls, got {}",
            p.stats.syscalls_before_interposer
        );
    }

    #[test]
    fn aslr_slides_whole_images_keeping_offsets() {
        let mut k1 = boot_kernel();
        let mut k2 = boot_kernel();
        k2.seed = 0x1234_5678;
        // Force differing ASLR seeds by advancing k2's RNG.
        for _ in 0..3 {
            k2.next_random();
        }
        hello_app().install(&mut k1.vfs);
        hello_app().install(&mut k2.vfs);
        let p1 = k1.spawn("/usr/bin/hello", &[], &[], None).unwrap();
        let p2 = k2.spawn("/usr/bin/hello", &[], &[], None).unwrap();
        let b1 = k1.process(p1).unwrap().lib_bases[LIBC_PATH];
        let b2 = k2.process(p2).unwrap().lib_bases[LIBC_PATH];
        let s1 = k1.process(p1).unwrap().symbols["libc-sim.so.6:write"];
        let s2 = k2.process(p2).unwrap().symbols["libc-sim.so.6:write"];
        // Bases differ, offsets match.
        assert_ne!(b1, b2);
        assert_eq!(s1 - b1, s2 - b2);
    }

    #[test]
    fn ld_preload_injects_and_runs_ctor() {
        let mut k = boot_kernel();
        hello_app().install(&mut k.vfs);
        // A preload library whose ctor is a hostcall.
        let mut lib = ImageBuilder::new("/lib/libprobe.so");
        lib.init("__host_probe_init");
        lib.hostcall_fn("__host_probe_init");
        lib.finish().install(&mut k.vfs);

        use std::cell::RefCell;
        use std::rc::Rc;
        let fired = Rc::new(RefCell::new(0u32));
        let f2 = fired.clone();
        k.register_hostcall("__host_probe_init", move |k, pid, _tid| {
            *f2.borrow_mut() += 1;
            k.mark_interposer_live(pid);
        });

        let pid = k
            .spawn(
                "/usr/bin/hello",
                &[],
                &["LD_PRELOAD=/lib/libprobe.so".into()],
                None,
            )
            .expect("spawn");
        let exit = k.run(500_000_000);
        assert_eq!(exit, RunExit::AllExited);
        assert_eq!(*fired.borrow(), 1);
        let p = k.process(pid).expect("proc");
        assert_eq!(p.output_string(), "hi\n");
        // Startup syscalls happened before the ctor marked the interposer
        // live, and at least the app's write happened after.
        assert!(p.stats.syscalls_before_interposer > 50);
        assert!(p.stats.syscalls > p.stats.syscalls_before_interposer);
    }

    #[test]
    fn empty_env_skips_preload() {
        // Pitfall P1a in substrate form: exec with no environment — the
        // preload library is simply not loaded.
        let mut k = boot_kernel();
        hello_app().install(&mut k.vfs);
        let mut lib = ImageBuilder::new("/lib/libprobe.so");
        lib.init("__host_probe_init");
        lib.hostcall_fn("__host_probe_init");
        lib.finish().install(&mut k.vfs);
        use std::cell::RefCell;
        use std::rc::Rc;
        let fired = Rc::new(RefCell::new(0u32));
        let f2 = fired.clone();
        k.register_hostcall("__host_probe_init", move |_k, _pid, _tid| {
            *f2.borrow_mut() += 1;
        });
        k.spawn("/usr/bin/hello", &[], &[], None).expect("spawn");
        k.run(500_000_000);
        assert_eq!(*fired.borrow(), 0);
    }

    #[test]
    fn vdso_fast_path_vs_disabled() {
        // An app that calls clock_gettime through the vDSO.
        let mk_app = || {
            let mut b = ImageBuilder::new("/usr/bin/clock");
            b.entry("main");
            b.needs(LIBC_PATH);
            b.asm.label("main");
            b.asm.mov_imm(Reg::Rdi, 0);
            b.asm.mov_imm(Reg::Rsi, 0);
            b.call_import("clock_gettime_vdso");
            b.asm.mov_imm(Reg::Rax, 0);
            b.asm.ret();
            b.finish()
        };
        // Fast path: no kernel entry for the call.
        let mut k = boot_kernel();
        mk_app().install(&mut k.vfs);
        let pid = k.spawn("/usr/bin/clock", &[], &[], None).unwrap();
        k.run(500_000_000);
        let p = k.process(pid).unwrap();
        assert_eq!(p.stats.vdso_calls, 1);
        assert_eq!(p.stats.syscall_count_of(nr::SYS_CLOCK_GETTIME), 0);

        // Disabled (tracer-style): the same import becomes a real syscall.
        let mut k = boot_kernel();
        mk_app().install(&mut k.vfs);
        use sim_kernel::{CountingTracer, TraceOpts};
        use std::cell::RefCell;
        use std::rc::Rc;
        let tracer = Rc::new(RefCell::new(CountingTracer::default()));
        let pid = k
            .spawn(
                "/usr/bin/clock",
                &[],
                &[],
                Some((
                    tracer,
                    TraceOpts {
                        disable_vdso: true,
                        ..TraceOpts::default()
                    },
                )),
            )
            .unwrap();
        k.run(500_000_000);
        let p = k.process(pid).unwrap();
        assert_eq!(p.stats.vdso_calls, 0);
        assert_eq!(p.stats.syscall_count_of(nr::SYS_CLOCK_GETTIME), 1);
    }
}
