//! The standard guest libraries: `libc-sim` (syscall wrappers, one `syscall`
//! instruction per wrapper — exactly the structure the paper's Figure 3 logs
//! show for glibc) and the filler dependency libraries that give coreutils
//! a realistic startup footprint.

use crate::image::{ImageBuilder, SimElf};
use sim_isa::Reg;
use sim_kernel::nr;

/// Install path of the simulated libc.
pub const LIBC_PATH: &str = "/usr/lib/libc-sim.so.6";

/// Filler dependencies (loaded by coreutils-style binaries for startup
/// realism; they export nothing).
pub const FILLER_LIBS: [&str; 3] = [
    "/usr/lib/libselinux-sim.so.1",
    "/usr/lib/libcap-sim.so.2",
    "/usr/lib/libpcre-sim.so.3",
];

/// The syscall wrappers libc-sim exports. Each wrapper is
/// `mov rax, NR; syscall; ret` — one unique `syscall` instruction per
/// function, at a stable offset within the library.
pub const LIBC_WRAPPERS: [(&str, u64); 49] = [
    ("read", nr::SYS_READ),
    ("write", nr::SYS_WRITE),
    ("open", nr::SYS_OPEN),
    ("openat", nr::SYS_OPENAT),
    ("close", nr::SYS_CLOSE),
    ("lseek", nr::SYS_LSEEK),
    ("mmap", nr::SYS_MMAP),
    ("mprotect", nr::SYS_MPROTECT),
    ("munmap", nr::SYS_MUNMAP),
    ("rt_sigaction", nr::SYS_RT_SIGACTION),
    ("rt_sigprocmask", nr::SYS_RT_SIGPROCMASK),
    ("ioctl", nr::SYS_IOCTL),
    ("access", nr::SYS_ACCESS),
    ("pipe", nr::SYS_PIPE),
    ("sched_yield", nr::SYS_SCHED_YIELD),
    ("madvise", nr::SYS_MADVISE),
    ("dup", nr::SYS_DUP),
    ("nanosleep", nr::SYS_NANOSLEEP),
    ("getpid", nr::SYS_GETPID),
    ("socket", nr::SYS_SOCKET),
    ("connect", nr::SYS_CONNECT),
    ("accept", nr::SYS_ACCEPT),
    ("bind", nr::SYS_BIND),
    ("listen", nr::SYS_LISTEN),
    ("fork", nr::SYS_FORK),
    ("execve", nr::SYS_EXECVE),
    ("wait4", nr::SYS_WAIT4),
    ("uname", nr::SYS_UNAME),
    ("fsync", nr::SYS_FSYNC),
    ("getcwd", nr::SYS_GETCWD),
    ("mkdir", nr::SYS_MKDIR),
    ("unlink", nr::SYS_UNLINK),
    ("gettimeofday", nr::SYS_GETTIMEOFDAY),
    ("getuid", nr::SYS_GETUID),
    ("prctl", nr::SYS_PRCTL),
    ("gettid", nr::SYS_GETTID),
    ("futex", nr::SYS_FUTEX),
    ("getdents64", nr::SYS_GETDENTS64),
    ("clock_gettime", nr::SYS_CLOCK_GETTIME),
    ("newfstatat", nr::SYS_NEWFSTATAT),
    ("utimensat", nr::SYS_UTIMENSAT),
    ("getrandom", nr::SYS_GETRANDOM),
    ("clone", nr::SYS_CLONE),
    ("exit_group", nr::SYS_EXIT_GROUP),
    ("fcntl", nr::SYS_FCNTL),
    ("epoll_create1", nr::SYS_EPOLL_CREATE1),
    ("epoll_ctl", nr::SYS_EPOLL_CTL),
    ("epoll_wait", nr::SYS_EPOLL_WAIT),
    ("eventfd2", nr::SYS_EVENTFD2),
];

/// Builds libc-sim.
///
/// Besides the wrappers, it has a constructor issuing the startup syscalls
/// glibc makes (`getrandom` for the stack guard, `brk`), and exports `exit`
/// (no return).
pub fn build_libc() -> SimElf {
    let mut b = ImageBuilder::new(LIBC_PATH);
    b.init("__libc_init");

    for (name, num) in LIBC_WRAPPERS {
        b.asm.label(name);
        b.asm.mov_imm(Reg::Rax, num);
        b.asm.syscall();
        b.asm.ret();
    }

    // exit(status): never returns.
    b.asm.label("exit");
    b.asm.mov_imm(Reg::Rax, nr::SYS_EXIT);
    b.asm.syscall();
    b.asm.label("__spin");
    b.asm.jmp("__spin");

    // Constructor: stack-guard randomness + a brk probe.
    b.asm.label("__libc_init");
    b.asm.lea_label(Reg::Rdi, "__stack_guard");
    b.asm.mov_imm(Reg::Rsi, 8);
    b.asm.mov_imm(Reg::Rax, nr::SYS_GETRANDOM);
    b.asm.syscall();
    b.asm.mov_imm(Reg::Rdi, 0);
    b.asm.mov_imm(Reg::Rax, nr::SYS_BRK);
    b.asm.syscall();
    b.asm.ret();

    b.data_object("__stack_guard", &[0u8; 8]);
    b.finish()
}

/// Builds one empty filler library.
pub fn build_filler(path: &str) -> SimElf {
    let mut b = ImageBuilder::new(path);
    // A single exported no-op plus a bit of bulk so the mapping is real.
    b.asm.label("__noop");
    b.asm.ret();
    b.asm.nops(256);
    b.finish()
}

/// Installs libc-sim and the filler libraries into a VFS.
pub fn install_standard_libs(vfs: &mut sim_kernel::Vfs) {
    build_libc().install(vfs);
    for p in FILLER_LIBS {
        build_filler(p).install(vfs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::{decode, Inst};

    #[test]
    fn every_wrapper_has_exactly_one_syscall_site() {
        let libc = build_libc();
        for (name, num) in LIBC_WRAPPERS {
            let off = libc.symbols[name] as usize;
            let (mov, len) = decode(&libc.bytes[off..]).expect("mov");
            assert_eq!(mov, Inst::MovImm(Reg::Rax, num), "{name}");
            let (sys, _) = decode(&libc.bytes[off + len..]).expect("syscall");
            assert_eq!(sys, Inst::Syscall, "{name}");
        }
    }

    #[test]
    fn wrapper_offsets_are_distinct() {
        let libc = build_libc();
        let mut offs: Vec<u64> = LIBC_WRAPPERS
            .iter()
            .map(|(n, _)| libc.symbols[*n])
            .collect();
        offs.sort_unstable();
        offs.dedup();
        assert_eq!(offs.len(), LIBC_WRAPPERS.len());
    }

    #[test]
    fn fillers_build() {
        for p in FILLER_LIBS {
            let f = build_filler(p);
            assert_eq!(f.name, p);
            assert!(f.bytes.len() >= 256);
        }
    }
}
