//! # criterion (shim) — offline micro-benchmark harness
//!
//! The build container has no crates.io access, so the real `criterion`
//! crate is unavailable. This shim keeps the workspace's `[[bench]]` targets
//! compiling and running with the same source: `criterion_group!`/
//! `criterion_main!`, `Criterion::bench_function`, benchmark groups with
//! `sample_size`/`bench_with_input`, `BenchmarkId`, and `black_box`.
//!
//! Measurement is deliberately simple: each benchmark body is warmed up,
//! then run in adaptively-sized batches until a time budget is spent; the
//! median batch gives ns/iteration. Results print to stdout in a stable
//! single-line format (`bench <name> ... <ns>/iter`), which is what the
//! repo's tooling parses.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of [`std::hint::black_box`]).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter(p: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: p.to_string(),
        }
    }

    /// An id with an explicit function name and parameter.
    pub fn new(name: impl Into<String>, p: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", name.into(), p),
        }
    }
}

/// Drives iterations of one benchmark body.
pub struct Bencher {
    /// Nanoseconds per iteration measured by the last `iter` call.
    ns_per_iter: f64,
    budget: Duration,
}

impl Bencher {
    /// Times `f`, recording the per-iteration cost.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warm up once so lazily-initialized state does not dominate.
        black_box(f());
        let mut batch: u64 = 1;
        let mut samples: Vec<f64> = Vec::new();
        let start = Instant::now();
        while start.elapsed() < self.budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            samples.push(dt.as_nanos() as f64 / batch as f64);
            if dt < Duration::from_millis(10) {
                batch = batch.saturating_mul(2);
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.ns_per_iter = samples[samples.len() / 2];
    }
}

fn run_one(name: &str, f: impl FnOnce(&mut Bencher), budget: Duration) {
    let mut b = Bencher {
        ns_per_iter: 0.0,
        budget,
    };
    f(&mut b);
    println!("bench {name:<48} {:>14.1} ns/iter", b.ns_per_iter);
}

/// Harness entry point: hands out benchmark registrations.
pub struct Criterion {
    budget: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let budget_ms = std::env::var("BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(300);
        Criterion {
            budget: Duration::from_millis(budget_ms),
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies command-line filters (first non-flag argument, as criterion).
    pub fn configure_from_args(mut self) -> Criterion {
        self.filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        self
    }

    fn wants(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Criterion {
        if self.wants(name) {
            run_one(name, f, self.budget);
        }
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
        }
    }
}

/// A named group (criterion's `BenchmarkGroup`); `sample_size` is accepted
/// and ignored (the shim sizes batches by time budget instead).
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim is time-budgeted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` with `input` under `id`.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id.label);
        if self.parent.wants(&name) {
            run_one(&name, |b| f(b, input), self.parent.budget);
        }
        self
    }

    /// Benchmarks `f` under `name` within the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        if self.parent.wants(&full) {
            run_one(&full, f, self.parent.budget);
        }
        self
    }

    /// Ends the group (no-op; prints happen eagerly).
    pub fn finish(self) {}
}

/// Declares a group function compatible with criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            budget: Duration::from_millis(20),
            filter: None,
        };
        c.bench_function("spin", |b| {
            b.iter(|| {
                let mut x = 0u64;
                for i in 0..100 {
                    x = x.wrapping_add(black_box(i));
                }
                x
            })
        });
    }

    #[test]
    fn group_api_compiles() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
            filter: Some("nomatch-skip-everything".into()),
        };
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter("p"), &1u64, |b, i| {
            b.iter(|| *i + 1)
        });
        g.finish();
    }
}
