//! # sim-record — record/replay log format and divergence bisection
//!
//! The portable half of the record/replay subsystem (DESIGN.md §11). A
//! [`Recording`] is what `simrecord` writes to disk: a self-describing
//! header (workload, engine, fault plan, checkpoint period), the
//! nondeterminism log — every syscall result, injected fault/signal/
//! permission flip, and scheduler decision, keyed by the retired-
//! instruction count at which it happened — and the canonicalized sim-obs
//! event stream the recording run produced. Retired-instruction keys are
//! the engine-invariant addressing scheme the fault planner already uses:
//! a log recorded under any engine (stepwise, block, trace) replays
//! byte-identically under any other, because all three agree on which
//! instruction is the Nth to retire.
//!
//! The kernel-side half (sessions, capture/injection hooks, checkpoints)
//! lives in `sim-kernel`; this crate stays dependency-light so exporters
//! and offline tooling can parse logs without linking the simulator.
//!
//! Divergence hunting is a bisection, not a scan: [`first_divergence`]
//! digests both logs once into chained prefix hashes, then binary-searches
//! for the longest equal prefix in `O(log n)` probes, returning the first
//! mismatched record and the retired-instruction index it is keyed by —
//! the coordinate the stepwise oracle can then re-execute to for a
//! register/stack dump.

use sim_obs::{EventKind, Recorder};

/// Log format magic + version. Bumped on any framing change.
pub const MAGIC: &[u8; 6] = b"SREC1\n";

/// One logged nondeterminism event, keyed by the retired-instruction
/// count at which it took effect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Rec {
    /// A syscall completed: the guest observed `ret` at `retired`.
    /// `cycles` is the full kernel residency (entry to return, blocking
    /// waits included) so injection-mode replay can advance the clock
    /// without re-executing the handler. `writes` carries post-syscall
    /// snapshots of the pages the handler wrote (captured only when the
    /// recording is checkpoint-grade; empty otherwise) so navigation can
    /// reproduce `read(2)`-style buffer fills without kernel state.
    Syscall {
        retired: u64,
        nr: u64,
        site: u64,
        ret: u64,
        cycles: u64,
        writes: Vec<(u64, Vec<u8>)>,
    },
    /// An injected asynchronous signal at an instruction boundary.
    Signal {
        retired: u64,
        signo: u64,
        delivered: bool,
    },
    /// An injected transient page-permission flip (or its restore).
    Flip {
        retired: u64,
        page: u64,
        perms: u8,
        restore: bool,
    },
    /// A scheduler decision: the runnable list of length `n` was rotated
    /// by `rot` in scheduling round `round`. Logged only when more than
    /// one thread was runnable (single-threaded phases are decision-free).
    Sched {
        retired: u64,
        round: u64,
        rot: u64,
        n: u64,
    },
    /// A process exited with `status`.
    Exit {
        retired: u64,
        pid: u64,
        status: u64,
    },
}

impl Rec {
    /// The retired-instruction coordinate this record is keyed by.
    pub fn retired(&self) -> u64 {
        match *self {
            Rec::Syscall { retired, .. }
            | Rec::Signal { retired, .. }
            | Rec::Flip { retired, .. }
            | Rec::Sched { retired, .. }
            | Rec::Exit { retired, .. } => retired,
        }
    }

    fn tag(&self) -> u8 {
        match self {
            Rec::Syscall { .. } => 1,
            Rec::Signal { .. } => 2,
            Rec::Flip { .. } => 3,
            Rec::Sched { .. } => 4,
            Rec::Exit { .. } => 5,
        }
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        out.push(self.tag());
        let at = out.len();
        out.extend_from_slice(&[0; 4]); // length patched below
        match self {
            Rec::Syscall {
                retired,
                nr,
                site,
                ret,
                cycles,
                writes,
            } => {
                for v in [retired, nr, site, ret, cycles] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
                out.extend_from_slice(&(writes.len() as u32).to_le_bytes());
                for (base, data) in writes {
                    out.extend_from_slice(&base.to_le_bytes());
                    out.extend_from_slice(&(data.len() as u32).to_le_bytes());
                    out.extend_from_slice(data);
                }
            }
            Rec::Signal {
                retired,
                signo,
                delivered,
            } => {
                out.extend_from_slice(&retired.to_le_bytes());
                out.extend_from_slice(&signo.to_le_bytes());
                out.push(u8::from(*delivered));
            }
            Rec::Flip {
                retired,
                page,
                perms,
                restore,
            } => {
                out.extend_from_slice(&retired.to_le_bytes());
                out.extend_from_slice(&page.to_le_bytes());
                out.push(*perms);
                out.push(u8::from(*restore));
            }
            Rec::Sched {
                retired,
                round,
                rot,
                n,
            } => {
                for v in [retired, round, rot, n] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Rec::Exit {
                retired,
                pid,
                status,
            } => {
                for v in [retired, pid, status] {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        let len = (out.len() - at - 4) as u32;
        out[at..at + 4].copy_from_slice(&len.to_le_bytes());
    }

    fn decode(cur: &mut Cursor) -> Result<Rec, String> {
        let tag = cur.u8()?;
        let len = cur.u32()? as usize;
        let end = cur.pos + len;
        let rec = match tag {
            1 => {
                let retired = cur.u64()?;
                let nr = cur.u64()?;
                let site = cur.u64()?;
                let ret = cur.u64()?;
                let cycles = cur.u64()?;
                let n = cur.u32()? as usize;
                let mut writes = Vec::with_capacity(n);
                for _ in 0..n {
                    let base = cur.u64()?;
                    let dlen = cur.u32()? as usize;
                    writes.push((base, cur.bytes(dlen)?.to_vec()));
                }
                Rec::Syscall {
                    retired,
                    nr,
                    site,
                    ret,
                    cycles,
                    writes,
                }
            }
            2 => Rec::Signal {
                retired: cur.u64()?,
                signo: cur.u64()?,
                delivered: cur.u8()? != 0,
            },
            3 => Rec::Flip {
                retired: cur.u64()?,
                page: cur.u64()?,
                perms: cur.u8()?,
                restore: cur.u8()? != 0,
            },
            4 => Rec::Sched {
                retired: cur.u64()?,
                round: cur.u64()?,
                rot: cur.u64()?,
                n: cur.u64()?,
            },
            5 => Rec::Exit {
                retired: cur.u64()?,
                pid: cur.u64()?,
                status: cur.u64()?,
            },
            t => return Err(format!("unknown record tag {t}")),
        };
        if cur.pos != end {
            return Err(format!(
                "record tag {tag}: length {len} does not match payload"
            ));
        }
        Ok(rec)
    }
}

/// Self-describing log header: everything needed to re-create the
/// recording run (and therefore to replay-verify it on another engine).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Header {
    /// Engine label the log was recorded under (`stepwise`/`block`/
    /// `trace`) — informational; replay may pick any engine.
    pub engine: String,
    /// Workload name, interpreted by the `simrecord` driver.
    pub workload: String,
    /// Workload seed/scale knob (driver-interpreted).
    pub seed: u64,
    /// `FaultPlan::encode()` string of the injected plan, if any.
    pub fault_plan: Option<String>,
    /// Periodic checkpoint spacing in retired instructions (0 = recording
    /// is not checkpoint-grade and cannot seed time-travel navigation).
    pub checkpoint_period: u64,
}

/// A complete recording: header + nondeterminism log + the canonicalized
/// sim-obs event stream of the recording run (the byte-compare target for
/// cross-engine replay).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Recording {
    pub header: Header,
    pub recs: Vec<Rec>,
    pub obs: Vec<String>,
}

impl Recording {
    /// Serializes to the length-prefixed binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.recs.len() * 48);
        out.extend_from_slice(MAGIC);
        put_str(&mut out, &self.header.engine);
        put_str(&mut out, &self.header.workload);
        out.extend_from_slice(&self.header.seed.to_le_bytes());
        match &self.header.fault_plan {
            Some(p) => {
                out.push(1);
                put_str(&mut out, p);
            }
            None => out.push(0),
        }
        out.extend_from_slice(&self.header.checkpoint_period.to_le_bytes());
        out.extend_from_slice(&(self.recs.len() as u64).to_le_bytes());
        for r in &self.recs {
            r.encode_into(&mut out);
        }
        out.extend_from_slice(&(self.obs.len() as u64).to_le_bytes());
        for line in &self.obs {
            put_str(&mut out, line);
        }
        out
    }

    /// Parses the binary format.
    ///
    /// # Errors
    ///
    /// Returns a description of the first framing violation (bad magic,
    /// truncated field, unknown tag, length mismatch, trailing bytes).
    pub fn decode(data: &[u8]) -> Result<Recording, String> {
        let mut cur = Cursor { data, pos: 0 };
        if cur.bytes(MAGIC.len())? != MAGIC {
            return Err("bad magic: not a simrecord log".into());
        }
        let engine = cur.string()?;
        let workload = cur.string()?;
        let seed = cur.u64()?;
        let fault_plan = if cur.u8()? != 0 {
            Some(cur.string()?)
        } else {
            None
        };
        let checkpoint_period = cur.u64()?;
        let nrecs = cur.u64()? as usize;
        let mut recs = Vec::with_capacity(nrecs.min(1 << 20));
        for _ in 0..nrecs {
            recs.push(Rec::decode(&mut cur)?);
        }
        let nobs = cur.u64()? as usize;
        let mut obs = Vec::with_capacity(nobs.min(1 << 20));
        for _ in 0..nobs {
            obs.push(cur.string()?);
        }
        if cur.pos != data.len() {
            return Err(format!("{} trailing bytes", data.len() - cur.pos));
        }
        Ok(Recording {
            header: Header {
                engine,
                workload,
                seed,
                fault_plan,
                checkpoint_period,
            },
            recs,
            obs,
        })
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| format!("truncated log at byte {}", self.pos))?;
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap()))
    }

    fn string(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.bytes(n)?.to_vec()).map_err(|e| e.to_string())
    }
}

// ===== Obs-stream canonicalization =====

/// Renders every recorded sim-obs event into one line of stable text —
/// `clock pid/tid kind{fields}` with interposer-path and span-stage ids
/// resolved to their registered labels. Two runs are byte-identical iff
/// their canonicalized streams compare equal line-for-line, which makes
/// this the cross-engine replay-verification target.
pub fn obs_lines(rec: &Recorder) -> Vec<String> {
    rec.merged_events()
        .iter()
        .map(|e| {
            let kind = match e.kind {
                EventKind::SyscallEnter {
                    nr,
                    site,
                    path,
                    name,
                } => format!(
                    "syscall_enter nr={nr} site={site:#x} path={} name={name}",
                    rec.path_label(path)
                ),
                EventKind::SyscallExit {
                    nr,
                    ret,
                    path,
                    latency,
                    name,
                } => format!(
                    "syscall_exit nr={nr} ret={ret:#x} path={} latency={latency} name={name}",
                    rec.path_label(path)
                ),
                EventKind::Sigsys { nr, site } => format!("sigsys nr={nr} site={site:#x}"),
                EventKind::TracerStop { kind } => format!("tracer_stop kind={kind}"),
                EventKind::ContextSwitch => "context_switch".into(),
                EventKind::SudArm { selector_addr } => {
                    format!("sud_arm selector={selector_addr:#x}")
                }
                EventKind::SudSelectorFlip { value } => format!("sud_selector_flip value={value}"),
                EventKind::PkuFault { addr } => format!("pku_fault addr={addr:#x}"),
                EventKind::FaultErrno { nr, kind } => format!("fault_errno nr={nr} kind={kind}"),
                EventKind::FaultSignal { signo, delivered } => {
                    format!("fault_signal signo={signo} delivered={delivered}")
                }
                EventKind::FaultPermFlip { page, restore } => {
                    format!("fault_perm_flip page={page:#x} restore={restore}")
                }
                EventKind::TlbFill { page } => format!("tlb_fill page={page:#x}"),
                EventKind::IcacheRevalidate { rip } => format!("icache_revalidate rip={rip:#x}"),
                EventKind::IcacheInvalidate { addr, entries } => {
                    format!("icache_invalidate addr={addr:#x} entries={entries}")
                }
                EventKind::AuditBypass { nr, site, sig } => {
                    format!("audit_bypass nr={nr} site={site:#x} sig={sig}")
                }
                EventKind::SpanEnter { stage } => {
                    format!("span_enter stage={}", rec.stage_label(stage))
                }
                EventKind::SpanExit { stage, dur } => {
                    format!("span_exit stage={} dur={dur}", rec.stage_label(stage))
                }
            };
            format!("{} {}/{} {}", e.clock, e.pid, e.tid, kind)
        })
        .collect()
}

// ===== Divergence bisection =====

/// A located divergence between an expected (recorded) stream and a live
/// (replayed) one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// Index of the first mismatched record.
    pub index: usize,
    /// Retired-instruction coordinate of the mismatch — the address the
    /// stepwise oracle re-executes to for the post-mortem dump.
    pub retired: u64,
    /// What the log said should happen (`None`: the live stream ran past
    /// the end of the log).
    pub expected: Option<Rec>,
    /// What actually happened (`None`: the live stream ended early).
    pub got: Option<Rec>,
    /// Bisection probes spent locating the index (`⌈log₂ n⌉`-ish; kept
    /// so tests can assert the search really is logarithmic).
    pub probes: u32,
}

/// 64-bit FNV-1a.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Chained prefix digests: `out[i]` commits to `items[..i]`.
fn prefix_digests<T>(items: &[T], h: impl Fn(&T) -> u64) -> Vec<u64> {
    let mut out = Vec::with_capacity(items.len() + 1);
    let mut acc = 0x9e37_79b9_7f4a_7c15u64;
    out.push(acc);
    for it in items {
        acc = (acc.rotate_left(5) ^ h(it)).wrapping_mul(0x2545_f491_4f6c_dd1d);
        out.push(acc);
    }
    out
}

/// Binary search over the prefix digests of two streams for the length of
/// their longest common prefix. Returns `(first mismatched index, probes)`
/// — the index equals the shorter length when one stream is a strict
/// prefix of the other — or `None` when the streams are identical.
fn bisect_prefix<T: PartialEq>(
    a: &[T],
    b: &[T],
    h: impl Fn(&T) -> u64,
) -> Option<(usize, u32)> {
    let n = a.len().min(b.len());
    let da = prefix_digests(&a[..n], &h);
    let db = prefix_digests(&b[..n], &h);
    let mut probes = 0u32;
    if da[n] == db[n] {
        // Digest-equal up to the shorter length; confirm (collision guard)
        // then the only possible divergence is a length mismatch.
        if a[..n] == b[..n] {
            return (a.len() != b.len()).then_some((n, probes));
        }
    }
    // Invariant: prefix of length `lo` matches, prefix of length `hi`
    // does not.
    let (mut lo, mut hi) = (0usize, n);
    while hi - lo > 1 {
        let mid = lo + (hi - lo) / 2;
        probes += 1;
        if da[mid] == db[mid] {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    // First mismatched item is at index `hi - 1 == lo`; walk forward over
    // (astronomically unlikely) digest collisions.
    let mut idx = lo;
    while idx < n && a[idx] == b[idx] {
        idx += 1;
    }
    Some((idx, probes))
}

/// Bisects to the first record where the live stream departs from the
/// recorded one. `None` when the streams agree exactly.
pub fn first_divergence(expected: &[Rec], live: &[Rec]) -> Option<Divergence> {
    let (index, probes) = bisect_prefix(expected, live, |r| {
        let mut buf = Vec::with_capacity(48);
        r.encode_into(&mut buf);
        fnv64(&buf)
    })?;
    let exp = expected.get(index).cloned();
    let got = live.get(index).cloned();
    let retired = exp
        .as_ref()
        .or(got.as_ref())
        .map(Rec::retired)
        .unwrap_or(0);
    Some(Divergence {
        index,
        retired,
        expected: exp,
        got,
        probes,
    })
}

/// Bisects two canonicalized obs streams (see [`obs_lines`]) to the index
/// of their first differing line. `None` when byte-identical.
pub fn first_obs_divergence(expected: &[String], live: &[String]) -> Option<(usize, u32)> {
    bisect_prefix(expected, live, |s| fnv64(s.as_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys(retired: u64, ret: u64) -> Rec {
        Rec::Syscall {
            retired,
            nr: 500,
            site: 0x40_1000,
            ret,
            cycles: 321,
            writes: Vec::new(),
        }
    }

    fn sample() -> Recording {
        Recording {
            header: Header {
                engine: "trace".into(),
                workload: "nginx".into(),
                seed: 7,
                fault_plan: Some("v1;seed=7".into()),
                checkpoint_period: 4096,
            },
            recs: vec![
                sys(10, 0),
                Rec::Signal {
                    retired: 64,
                    signo: 10,
                    delivered: true,
                },
                Rec::Flip {
                    retired: 65,
                    page: 0x1000,
                    perms: 3,
                    restore: false,
                },
                Rec::Sched {
                    retired: 90,
                    round: 4,
                    rot: 1,
                    n: 3,
                },
                Rec::Syscall {
                    retired: 120,
                    nr: 0,
                    site: 0x40_2000,
                    ret: 4096,
                    cycles: 900,
                    writes: vec![(0x7000, vec![1, 2, 3]), (0x8000, vec![0; 4096])],
                },
                Rec::Exit {
                    retired: 150,
                    pid: 1,
                    status: 0,
                },
            ],
            obs: vec!["1 1/1 syscall_enter nr=500".into(), "2 1/1 syscall_exit".into()],
        }
    }

    #[test]
    fn codec_round_trips() {
        let r = sample();
        let bytes = r.encode();
        assert_eq!(&bytes[..MAGIC.len()], MAGIC);
        let back = Recording::decode(&bytes).expect("decode");
        assert_eq!(back, r);
    }

    #[test]
    fn codec_rejects_corruption() {
        let r = sample();
        let mut bytes = r.encode();
        bytes[0] ^= 0xff;
        assert!(Recording::decode(&bytes).is_err(), "bad magic accepted");
        let bytes = r.encode();
        assert!(
            Recording::decode(&bytes[..bytes.len() - 3]).is_err(),
            "truncation accepted"
        );
    }

    #[test]
    fn bisection_finds_exact_perturbed_index() {
        let n = 10_000usize;
        let base: Vec<Rec> = (0..n).map(|i| sys(i as u64 * 7, i as u64)).collect();
        for &target in &[0usize, 1, 4999, 9998, 9999] {
            let mut bad = base.clone();
            if let Rec::Syscall { ret, .. } = &mut bad[target] {
                *ret ^= 1;
            }
            let d = first_divergence(&base, &bad).expect("divergence");
            assert_eq!(d.index, target);
            assert_eq!(d.retired, target as u64 * 7);
            assert!(
                d.probes <= 16,
                "bisection not logarithmic: {} probes for n={n}",
                d.probes
            );
        }
        assert!(first_divergence(&base, &base).is_none());
    }

    #[test]
    fn bisection_handles_prefix_truncation() {
        let base: Vec<Rec> = (0..100).map(|i| sys(i, i)).collect();
        let d = first_divergence(&base, &base[..40]).expect("divergence");
        assert_eq!(d.index, 40);
        assert_eq!(d.retired, 40);
        assert!(d.expected.is_some() && d.got.is_none());
    }

    #[test]
    fn obs_bisection_finds_first_line() {
        let a: Vec<String> = (0..1000).map(|i| format!("{i} 1/1 syscall_enter")).collect();
        let mut b = a.clone();
        b[617].push('!');
        let (idx, probes) = first_obs_divergence(&a, &b).expect("divergence");
        assert_eq!(idx, 617);
        assert!(probes <= 12);
        assert!(first_obs_divergence(&a, &a).is_none());
    }
}
