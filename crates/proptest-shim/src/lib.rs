//! # proptest (shim) — offline property-testing
//!
//! The container this workspace builds in has no access to crates.io, so the
//! real `proptest` crate cannot be used. This shim implements the subset of
//! its API that the workspace's property tests rely on — deterministic
//! seeded generation, `proptest!`/`prop_assert*!`/`prop_oneof!`, integer and
//! range strategies, `collection::vec`, `sample::select`, simple
//! `[a-z]{m,n}`-style string patterns, `Just`, and `prop_map` — with plain
//! panics instead of shrinking.
//!
//! Generation is fully deterministic: every test function derives its RNG
//! seed from its own name, so failures reproduce exactly. Set
//! `PROPTEST_CASES` to change the per-test case count (default 96).

pub mod test_runner {
    /// Deterministic xorshift* RNG used for all generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds deterministically from a test name.
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                state: h | 1, // never zero
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value in `[lo, hi)` (empty ranges return `lo`).
        pub fn below(&mut self, lo: u64, hi: u64) -> u64 {
            if hi <= lo {
                return lo;
            }
            lo + self.next_u64() % (hi - lo)
        }
    }

    /// Number of cases per property (the `PROPTEST_CASES` env var, or 96).
    pub fn case_count() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|v| *v > 0)
            .unwrap_or(96)
    }

    /// Per-block configuration, the `proptest_config` subset. A block
    /// opening with `#![proptest_config(ProptestConfig::with_cases(n))]`
    /// runs exactly `n` cases — an explicit count wins over the
    /// `PROPTEST_CASES` env var, so expensive properties (whole-kernel
    /// boots per case) stay cheap even when CI cranks the global knob.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases to run per property in the block.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running exactly `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A value generator. The shimmed equivalent of `proptest::Strategy`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 != 0
        }
    }

    /// Strategy for any value of `T` (see [`crate::prelude::any`]).
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.below(self.start as u64, self.end as u64) as $t
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! srange_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(0, span) as i64) as $t
                }
            }
        )*};
    }
    srange_strategy!(i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);

    /// String pattern strategy: supports `[c1-c2c3...]{m,n}` char-class
    /// patterns (e.g. `"[a-z]{1,6}"`); any other string is taken literally.
    impl Strategy for &'static str {
        type Value = String;
        fn sample(&self, rng: &mut TestRng) -> String {
            sample_pattern(self, rng)
        }
    }

    fn sample_pattern(pat: &str, rng: &mut TestRng) -> String {
        let bytes = pat.as_bytes();
        if bytes.first() != Some(&b'[') {
            return pat.to_string();
        }
        let Some(close) = pat.find(']') else {
            return pat.to_string();
        };
        // Expand the class into candidate chars.
        let class: Vec<char> = {
            let inner: Vec<char> = pat[1..close].chars().collect();
            let mut out = Vec::new();
            let mut i = 0;
            while i < inner.len() {
                if i + 2 < inner.len() && inner[i + 1] == '-' {
                    let (lo, hi) = (inner[i] as u32, inner[i + 2] as u32);
                    for c in lo..=hi {
                        if let Some(c) = char::from_u32(c) {
                            out.push(c);
                        }
                    }
                    i += 3;
                } else {
                    out.push(inner[i]);
                    i += 1;
                }
            }
            out
        };
        if class.is_empty() {
            return String::new();
        }
        // Parse the {m,n} / {m} repetition (default exactly one).
        let rest = &pat[close + 1..];
        let (lo, hi) = if rest.starts_with('{') && rest.ends_with('}') {
            let body = &rest[1..rest.len() - 1];
            match body.split_once(',') {
                Some((a, b)) => (
                    a.trim().parse().unwrap_or(1),
                    b.trim().parse().unwrap_or(1),
                ),
                None => {
                    let n = body.trim().parse().unwrap_or(1);
                    (n, n)
                }
            }
        } else {
            (1usize, 1usize)
        };
        let n = rng.below(lo as u64, hi as u64 + 1) as usize;
        (0..n)
            .map(|_| class[rng.below(0, class.len() as u64) as usize])
            .collect()
    }

    /// A boxed sampler closure, as produced by [`boxed_sampler`].
    pub type Sampler<V> = Box<dyn Fn(&mut TestRng) -> V>;

    /// Weighted-equal choice between boxed strategies (`prop_oneof!`).
    pub struct OneOf<V> {
        arms: Vec<Sampler<V>>,
    }

    impl<V> OneOf<V> {
        /// Builds from sampler closures (used by the `prop_oneof!` macro).
        pub fn new(arms: Vec<Sampler<V>>) -> OneOf<V> {
            OneOf { arms }
        }
    }

    impl<V> Strategy for OneOf<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let i = rng.below(0, self.arms.len() as u64) as usize;
            (self.arms[i])(rng)
        }
    }

    /// Boxes a strategy into a sampler closure (used by `prop_oneof!`; a
    /// plain generic fn so the arm type is inferred without casts).
    pub fn boxed_sampler<S>(s: S) -> Sampler<S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(move |rng| s.sample(rng))
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.below(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly selects one of the given values.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        Select { options }
    }

    /// Output of [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.below(0, self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    use std::marker::PhantomData;

    /// The canonical strategy for any `T`.
    pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::Any(PhantomData)
    }
}

/// Defines deterministic property tests:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn holds(x in 0u64..10, ys in proptest::collection::vec(any::<u8>(), 0..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = u64::from(($cfg).cases);
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among several strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $($crate::strategy::boxed_sampler($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn determinism() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = Strategy::sample(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let s = Strategy::sample(&(-5i32..5), &mut rng);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn pattern_strings() {
        let mut rng = crate::test_runner::TestRng::from_name("pat");
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z]{1,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 6);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    proptest! {
        /// The macro itself compiles and runs.
        #[test]
        fn macro_smoke(x in 0u64..100, v in crate::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 8);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1u64), Just(2u64), (10u64..20).prop_map(|x| x * 2)]) {
            prop_assert!(v == 1 || v == 2 || (20..40).contains(&v));
        }
    }
}
