//! # zpoline — faithful reproduction of the load-time rewriting interposer
//!
//! Yasukata et al.'s zpoline (USENIX ATC'23), as analyzed by the K23 paper:
//!
//! * at library-constructor time it **statically disassembles** every
//!   executable region present in the process and rewrites each two-byte
//!   `syscall`/`sysenter` it believes it found into `callq *%rax`;
//! * a trampoline mapped at virtual address 0 (a nop sled indexed by the
//!   syscall number in `rax`) funnels rewritten sites into the handler;
//! * the trampoline page is made execute-only with a protection key, so
//!   NULL *reads/writes* still fault;
//! * the `-ultra` variant additionally validates, at handler entry, that the
//!   caller is a known rewritten site — using a **bitmap spanning the whole
//!   virtual address space** (pitfall P4b: 16 TiB of reserved virtual memory
//!   per process);
//! * page permissions are properly saved and restored around the one-time
//!   rewrite (zpoline is *not* affected by P5).
//!
//! Its documented flaws are reproduced, not patched: static disassembly
//! misidentifies sites (P3a) and misses sites (P2a); code loaded or
//! generated after the constructor is never rewritten (P2a); startup and
//! vDSO calls escape entirely (P2b); `LD_PRELOAD` is the sole injection
//! vector (P1a).

use interpose::{env_with_preload, Interposer};
use sim_isa::{disasm, Reg};
use sim_kernel::{nr, Kernel, Pid};
use sim_loader::{ImageBuilder, SimElf};
use sim_mem::{Perms, PAGE_SIZE};
use std::cell::RefCell;
use std::rc::Rc;

/// Install path of the zpoline guest library.
pub const ZPOLINE_LIB: &str = "/usr/lib/libzpoline.so";
/// Base of the full-address-space bitmap mapping (`-ultra` only).
pub const BITMAP_BASE: u64 = 0x0800_0000_0000;
/// Reserved bitmap size: 2^47 addresses / 8 = 16 TiB.
pub const BITMAP_LEN: u64 = 1 << 44;
/// Nop-sled length: the trampoline body starts here, above every syscall
/// number that can appear in `rax`.
pub const SLED_LEN: u64 = 1024;

/// How the constructor locates `syscall` instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanStrategy {
    /// objdump-style linear sweep (the upstream behavior): desynchronizes on
    /// embedded data → both misses (P2a) and misidentifications (P3a).
    LinearSweep,
    /// Raw `0f 05`/`0f 34` byte scan: never misses a true site but rewrites
    /// every partial instruction and data match (maximal P3a).
    ByteScan,
}

/// Host-side statistics of one zpoline instance.
#[derive(Debug, Default, Clone)]
pub struct ZpolineStats {
    /// Addresses rewritten at constructor time.
    pub rewritten: Vec<u64>,
    /// Executable regions scanned.
    pub regions_scanned: usize,
    /// Virtual bytes reserved for the bitmap (0 for `-default`).
    pub bitmap_reserved: u64,
    /// Bytes of bitmap actually materialized.
    pub bitmap_resident: u64,
}

/// The zpoline interposer.
#[derive(Debug, Clone)]
pub struct Zpoline {
    /// Enable the NULL-execution check (the `-ultra` variant).
    pub null_check: bool,
    /// Disassembly strategy for the rewrite scan.
    pub scan: ScanStrategy,
    stats: Rc<RefCell<ZpolineStats>>,
}

impl Zpoline {
    /// `zpoline-default`: no NULL-execution check.
    pub fn default_variant() -> Zpoline {
        Zpoline {
            null_check: false,
            scan: ScanStrategy::LinearSweep,
            stats: Rc::default(),
        }
    }

    /// `zpoline-ultra`: with the bitmap NULL-execution check.
    pub fn ultra() -> Zpoline {
        Zpoline {
            null_check: true,
            scan: ScanStrategy::LinearSweep,
            stats: Rc::default(),
        }
    }

    /// Statistics recorded at constructor time.
    pub fn stats(&self) -> ZpolineStats {
        self.stats.borrow().clone()
    }

    /// Builds the guest library image.
    fn build_lib(&self) -> SimElf {
        let mut b = ImageBuilder::new(ZPOLINE_LIB);
        b.isolated();
        b.init("__host_zpoline_init");
        b.asm.label("__lib_start");

        // Handler: entered from the trampoline; the rewritten call pushed
        // the return address (site + 2) on the stack; rax holds the syscall
        // number; rcx/r11 are dead (the kernel would clobber them anyway).
        b.asm.label("zpoline_handler");
        if self.null_check {
            // NULL-execution check: the caller must be a known rewritten
            // site. The bitmap is keyed by *return address* (site + 2), so
            // the check is a single load + `bt`, as upstream.
            b.asm.load(Reg::R11, Reg::Rsp, 0);
            b.asm.mov_imm(Reg::Rcx, BITMAP_BASE);
            b.asm.bt_mem(Reg::Rcx, Reg::R11);
            b.asm.jcc(sim_isa::Cond::Ae, "__zp_abort");
        }
        // Save the registers a C hook could clobber, marshal its arguments
        // (syscall number + stack pointer), run the (empty) hook, restore,
        // forward.
        for r in [Reg::Rdi, Reg::Rsi, Reg::Rdx, Reg::R10, Reg::R8, Reg::R9] {
            b.asm.push(r);
        }
        b.asm.mov_reg(Reg::Rcx, Reg::Rax);
        b.asm.mov_reg(Reg::R11, Reg::Rsp);
        b.asm.label("zpoline_hook"); // extension point: the empty hook
        for r in [Reg::R9, Reg::R8, Reg::R10, Reg::Rdx, Reg::Rsi, Reg::Rdi] {
            b.asm.pop(r);
        }
        // Restart the forwarded call while it returns EINTR — the
        // interruption targeted the handler, not the application. The
        // number is spilled to the per-thread application stack (rcx/r11
        // are kernel-clobbered at syscall exit, so no register survives).
        // clone bypasses the spill: its child resumes on a fresh stack
        // that must see exactly the pre-handler layout.
        b.asm.cmp_imm(Reg::Rax, nr::SYS_CLONE as i32);
        b.asm.jz("__zp_forward_raw");
        b.asm.push(Reg::Rax);
        b.asm.label("__zp_forward");
        b.asm.syscall();
        b.asm.mov_imm(Reg::R11, nr::err(nr::EINTR));
        b.asm.cmp_reg(Reg::Rax, Reg::R11);
        b.asm.jnz("__zp_forward_done");
        b.asm.load(Reg::Rax, Reg::Rsp, 0);
        b.asm.jmp("__zp_forward");
        b.asm.label("__zp_forward_done");
        b.asm.add_imm(Reg::Rsp, 8);
        b.asm.ret();
        b.asm.label("__zp_forward_raw");
        b.asm.syscall();
        b.asm.ret();

        // Abort path: unknown caller executed the trampoline.
        b.asm.label("__zp_abort");
        b.asm.mov_imm(Reg::Rdi, 134); // 128 + SIGABRT
        b.asm.mov_imm(Reg::Rax, nr::SYS_EXIT_GROUP);
        b.asm.syscall();

        b.hostcall_fn("__host_zpoline_init");
        b.finish()
    }
}

/// Performs the one-time trampoline installation inside the guest `pid`.
///
/// Factored out so lazypoline and K23 can reuse it.
pub fn install_trampoline(k: &mut Kernel, pid: Pid, handler_addr: u64, region_name: &str) {
    let p = k.process_mut(pid).expect("live process");
    p.space
        .map(0, PAGE_SIZE, Perms::RX, region_name)
        .expect("page 0 free");
    let mut tramp = vec![0x90u8; SLED_LEN as usize];
    sim_isa::Inst::MovImm(Reg::R11, handler_addr).encode_into(&mut tramp);
    sim_isa::Inst::JmpReg(Reg::R11).encode_into(&mut tramp);
    p.space.write_raw(0, &tramp).expect("trampoline write");
    // XOM via PKU: reads/writes to page 0 still fault; execution does not
    // (paper §4.4).
    let key = p.next_pkey;
    p.next_pkey += 1;
    p.space.set_pkey(0, PAGE_SIZE, key).expect("pkey");
    for t in &mut p.threads {
        t.cpu.pkru.set_access_disable(key, true);
    }
    // Single choke point for every trampoline user (zpoline, lazypoline,
    // K23): attribute sampled time on the page-0 sled to the mechanism's
    // trampoline stage on the critical-path table.
    if sim_obs::enabled() {
        let stage = region_name.trim_matches(['[', ']']);
        sim_obs::register_span_range(pid, 0, PAGE_SIZE, stage);
    }
}

/// Rewrites one two-byte syscall site to `callq *%rax`, saving and restoring
/// page permissions (the proper dance zpoline performs; lazypoline's flawed
/// version lives in the `lazypoline` crate).
pub fn rewrite_site_properly(k: &mut Kernel, pid: Pid, site: u64) {
    let p = k.process_mut(pid).expect("live process");
    let saved = p.space.page_perms(site).unwrap_or(Perms::RX);
    p.space
        .protect(site & !(PAGE_SIZE - 1), PAGE_SIZE, Perms::RW)
        .expect("mprotect for rewrite");
    p.space
        .write_raw(site, &sim_isa::CALL_RAX_BYTES)
        .expect("rewrite");
    p.space
        .protect(site & !(PAGE_SIZE - 1), PAGE_SIZE, saved)
        .expect("mprotect restore");
}

/// Registers both zpoline variants in the [`interpose::registry`].
pub fn register() {
    interpose::register("zpoline", || Box::new(Zpoline::default_variant()));
    interpose::register("zpoline-ultra", || Box::new(Zpoline::ultra()));
}

impl Interposer for Zpoline {
    fn name(&self) -> &'static str {
        if self.null_check {
            "zpoline-ultra"
        } else {
            "zpoline"
        }
    }

    fn label(&self) -> String {
        if self.null_check {
            "zpoline-ultra".to_string()
        } else {
            "zpoline-default".to_string()
        }
    }

    fn install(&self, k: &mut Kernel) {
        self.build_lib().install(&mut k.vfs);
        sim_obs::register_region_path(ZPOLINE_LIB, &self.label());
        let stats = self.stats.clone();
        let null_check = self.null_check;
        let scan = self.scan;
        k.register_hostcall("__host_zpoline_init", move |k, pid, _tid| {
            zpoline_init(k, pid, null_check, scan, &stats);
        });
    }

    fn spawn(
        &self,
        k: &mut Kernel,
        path: &str,
        argv: &[String],
        env: &[String],
    ) -> Result<Pid, i64> {
        *self.stats.borrow_mut() = ZpolineStats::default();
        let env = env_with_preload(env, ZPOLINE_LIB);
        k.spawn(path, argv, &env, None)
    }

    fn attribution_path(&self) -> Option<String> {
        Some(ZPOLINE_LIB.to_string())
    }

    fn forward_symbols(&self) -> Vec<String> {
        vec!["libzpoline.so:__zp_forward".to_string()]
    }

    fn coverage(&self) -> sim_kernel::AuditSpec {
        // Binary rewriting redirects every rewritten site into the
        // handler; the only channel is the handler's own forwarding
        // re-issue. No SIGSYS, no tracer, and the vDSO stays mapped —
        // its calls are a genuine shadow.
        sim_kernel::AuditSpec {
            mechanism: self.name().to_string(),
            handler_regions: vec!["libzpoline.so".to_string()],
            ..sim_kernel::AuditSpec::default()
        }
    }
}

fn zpoline_init(
    k: &mut Kernel,
    pid: Pid,
    null_check: bool,
    scan: ScanStrategy,
    stats: &Rc<RefCell<ZpolineStats>>,
) {
    let handler = k.process(pid).expect("proc").symbols["libzpoline.so:zpoline_handler"];
    install_trampoline(k, pid, handler, "[zpoline-trampoline]");

    if null_check {
        let p = k.process_mut(pid).expect("proc");
        p.space
            .map(BITMAP_BASE, BITMAP_LEN, Perms::RW, "[zpoline-bitmap]")
            .expect("bitmap reservation");
    }

    // Scan every executable region present at load time — except our own
    // library, the trampoline, and the vDSO (not rewritable in a real
    // process either).
    let targets: Vec<(u64, u64)> = {
        let p = k.process(pid).expect("proc");
        p.space
            .mappings()
            .iter()
            .filter(|m| {
                m.perms.executable()
                    && m.name != ZPOLINE_LIB
                    && m.name != "[zpoline-trampoline]"
                    && m.name != "[vdso]"
            })
            .map(|m| (m.start, m.end))
            .collect()
    };
    let mut sites = Vec::new();
    for (start, end) in &targets {
        let mut bytes = vec![0u8; (*end - *start) as usize];
        let p = k.process_mut(pid).expect("proc");
        if p.space.read_raw(*start, &mut bytes).is_err() {
            continue;
        }
        let found = match scan {
            ScanStrategy::LinearSweep => disasm::sweep_syscall_sites(&bytes, *start),
            ScanStrategy::ByteScan => disasm::scan_syscall_bytes(&bytes, *start),
        };
        sites.extend(found.into_iter().map(|(a, _)| a));
    }

    for &site in &sites {
        rewrite_site_properly(k, pid, site);
        if null_check {
            // Commit the site's bit in the guest bitmap, keyed by the
            // return address the rewritten call pushes (site + 2).
            let ra = site + 2;
            let p = k.process_mut(pid).expect("proc");
            let byte_addr = BITMAP_BASE + ra / 8;
            let mut b = [0u8; 1];
            let _ = p.space.read_raw(byte_addr, &mut b);
            b[0] |= 1 << (ra % 8);
            let _ = p.space.write_raw(byte_addr, &b);
        }
    }

    let p = k.process_mut(pid).expect("proc");
    let mut s = stats.borrow_mut();
    s.regions_scanned = targets.len();
    s.rewritten = sites;
    if null_check {
        s.bitmap_reserved = BITMAP_LEN;
        s.bitmap_resident = p.space.resident_bytes_in(BITMAP_BASE, BITMAP_BASE + BITMAP_LEN);
    }
    k.mark_interposer_live(pid);
    let label = if null_check { "zpoline-ultra" } else { "zpoline-default" };
    interpose::register_handler_span(k, pid, ZPOLINE_LIB, label);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_loader::{boot_kernel, LIBC_PATH};

    fn stress_app(n: u64) -> SimElf {
        let mut b = ImageBuilder::new("/usr/bin/stress");
        b.entry("main");
        b.needs(LIBC_PATH);
        b.asm.label("main");
        b.asm.mov_imm(Reg::Rcx, n);
        b.asm.label("loop");
        b.asm.push(Reg::Rcx);
        b.asm.mov_imm(Reg::Rax, nr::SYS_NONEXISTENT);
        b.asm.syscall();
        b.asm.pop(Reg::Rcx);
        b.asm.sub_imm(Reg::Rcx, 1);
        b.asm.jnz("loop");
        b.asm.mov_imm(Reg::Rax, 0);
        b.asm.ret();
        b.finish()
    }

    #[test]
    fn rewrites_and_interposes() {
        let mut k = boot_kernel();
        let zp = Zpoline::default_variant();
        zp.install(&mut k);
        stress_app(25).install(&mut k.vfs);
        let pid = zp.spawn(&mut k, "/usr/bin/stress", &[], &[]).unwrap();
        let exit = k.run(5_000_000_000);
        assert_eq!(exit, sim_kernel::RunExit::AllExited);
        let p = k.process(pid).unwrap();
        assert_eq!(p.exit_status, Some(0), "output: {}", p.output_string());
        // The stress site + libc wrappers were rewritten.
        assert!(zp.stats().rewritten.len() > 10);
        // All 25 loop syscalls flowed through the trampoline into the
        // handler's forwarding site.
        assert!(
            zp.interposed_count(&k, pid) >= 25,
            "interposed {}",
            zp.interposed_count(&k, pid)
        );
        assert_eq!(p.stats.sigsys_count, 0); // no SUD involved
    }

    #[test]
    fn ultra_null_check_aborts_stray_trampoline_entry() {
        // A NULL function pointer call: call *%rax with rax = 0.
        let mut b = ImageBuilder::new("/usr/bin/nullcall");
        b.entry("main");
        b.needs(LIBC_PATH);
        b.asm.label("main");
        b.asm.mov_imm(Reg::Rax, 0);
        b.asm.call_reg(Reg::Rax);
        b.asm.mov_imm(Reg::Rax, 0);
        b.asm.ret();

        let mut k = boot_kernel();
        let zp = Zpoline::ultra();
        zp.install(&mut k);
        b.finish().install(&mut k.vfs);
        let pid = zp.spawn(&mut k, "/usr/bin/nullcall", &[], &[]).unwrap();
        k.run(5_000_000_000);
        let p = k.process(pid).unwrap();
        // The check caught it: abort (exit 134), not silent execution.
        assert_eq!(p.exit_status, Some(134));
        assert!(zp.stats().bitmap_reserved == BITMAP_LEN);
        // Bitmap committed far less than it reserved.
        assert!(zp.stats().bitmap_resident < 1 << 20);
    }

    #[test]
    fn default_variant_executes_null_call_silently() {
        // P4a shape: without the check, the NULL call "succeeds" — the
        // bogus syscall (rax = 0 → read) executes and control returns.
        let mut b = ImageBuilder::new("/usr/bin/nullcall");
        b.entry("main");
        b.needs(LIBC_PATH);
        b.asm.label("main");
        b.asm.mov_imm(Reg::Rax, 0);
        b.asm.call_reg(Reg::Rax);
        b.asm.mov_imm(Reg::Rax, 0);
        b.asm.ret();

        let mut k = boot_kernel();
        let zp = Zpoline::default_variant();
        zp.install(&mut k);
        b.finish().install(&mut k.vfs);
        let pid = zp.spawn(&mut k, "/usr/bin/nullcall", &[], &[]).unwrap();
        k.run(5_000_000_000);
        let p = k.process(pid).unwrap();
        assert_eq!(p.exit_status, Some(0), "silently survived the NULL call");
    }

    #[test]
    fn misses_code_mapped_after_init() {
        // P2a: the app mmaps fresh executable code containing a syscall and
        // calls it; zpoline never rewrites it, so the call is NOT interposed.
        let mut b = ImageBuilder::new("/usr/bin/jit");
        b.entry("main");
        b.needs(LIBC_PATH);
        b.asm.label("main");
        // mmap(0, 4096, RWX, 0)
        b.asm.mov_imm(Reg::Rdi, 0);
        b.asm.mov_imm(Reg::Rsi, 4096);
        b.asm.mov_imm(Reg::Rdx, 7);
        b.asm.mov_imm(Reg::R10, 0);
        b.asm.mov_imm(Reg::Rax, nr::SYS_MMAP);
        b.asm.syscall();
        b.asm.mov_reg(Reg::Rbx, Reg::Rax);
        // Synthesize `mov rax, 500; syscall; ret` in the fresh mapping from
        // immediates. (A static template in the binary would itself be
        // rewritten by zpoline's load-time scan -- a genuine hazard for JITs
        // that copy code templates.)
        let blob: [u8; 16] = {
            let mut v = sim_isa::Inst::MovImm(Reg::Rax, nr::SYS_NONEXISTENT).encode();
            v.extend_from_slice(&sim_isa::SYSCALL_BYTES);
            v.push(0xc3);
            v.resize(16, 0x90);
            v.try_into().unwrap()
        };
        b.asm
            .mov_imm(Reg::Rdx, u64::from_le_bytes(blob[..8].try_into().unwrap()));
        b.asm.store(Reg::Rbx, 0, Reg::Rdx);
        b.asm
            .mov_imm(Reg::Rdx, u64::from_le_bytes(blob[8..].try_into().unwrap()));
        b.asm.store(Reg::Rbx, 8, Reg::Rdx);
        // Call it.
        b.asm.call_reg(Reg::Rbx);
        b.asm.mov_imm(Reg::Rax, 0);
        b.asm.ret();

        let mut k = boot_kernel();
        let zp = Zpoline::default_variant();
        zp.install(&mut k);
        b.finish().install(&mut k.vfs);
        let pid = zp.spawn(&mut k, "/usr/bin/jit", &[], &[]).unwrap();
        k.run(5_000_000_000);
        let p = k.process(pid).unwrap();
        assert_eq!(p.exit_status, Some(0));
        // The JIT-issued syscall executed from the anonymous mapping —
        // uninterposed.
        assert!(p.stats.syscalls_via_region("[anon]") >= 1);
    }
}
