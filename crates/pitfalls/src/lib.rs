//! # pitfalls — PoC programs and the Table 3 evaluation matrix
//!
//! Executable reproductions of the paper's System Call Interposition
//! Pitfalls (§4): each PoC ([`pocs`]) triggers one scenario; the matrix
//! ([`matrix`]) runs every PoC under zpoline, lazypoline, and K23 and
//! records who defends what — regenerating Table 3.

pub mod audit;
pub mod fault;
pub mod matrix;
pub mod pocs;
pub mod stack;

pub use audit::{signature_describe, signature_pitfall};
pub use fault::{full_fault_matrix, render_fault_matrix, Scenario};
pub use stack::{full_stack_matrix, render_stack_matrix, StackCell, STACKS};
pub use matrix::{
    evaluate, full_matrix, p4b_footprint, render_matrix, P4bFootprint, Pitfall, Subject, Verdict,
    P4B_THRESHOLD_BYTES,
};
pub use pocs::install_pocs;

/// Registers every interposition mechanism in the [`interpose::registry`]:
/// the builtins (native, ptrace, SUD) are pre-seeded there; this adds both
/// zpoline variants, lazypoline, and all three K23 variants. Idempotent.
pub fn register_all() {
    zpoline::register();
    lazypoline::register();
    k23::register();
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix::{Pitfall::*, Subject::*, Verdict::*};

    /// The paper's Table 3, as ground truth.
    fn expected(s: Subject, p: Pitfall) -> Verdict {
        match (s, p) {
            (Zpoline, P1a) => Vulnerable,
            (Zpoline, P1b) => Handled,
            (Zpoline, P2a) => Vulnerable,
            (Zpoline, P2b) => Vulnerable,
            (Zpoline, P3a) => Vulnerable,
            (Zpoline, P3b) => Handled,
            (Zpoline, P4a) => Handled,
            (Zpoline, P4b) => Vulnerable,
            (Zpoline, P5) => Handled,
            (Lazypoline, P1a) => Vulnerable,
            (Lazypoline, P1b) => Vulnerable,
            (Lazypoline, P2a) => Handled,
            (Lazypoline, P2b) => Vulnerable,
            (Lazypoline, P3a) => Handled,
            (Lazypoline, P3b) => Vulnerable,
            (Lazypoline, P4a) => Vulnerable,
            (Lazypoline, P4b) => Handled,
            (Lazypoline, P5) => Vulnerable,
            (K23, _) => Handled,
        }
    }

    #[test]
    fn p1a_matches_table3() {
        for s in Subject::ALL {
            assert_eq!(evaluate(s, P1a), expected(s, P1a), "{}", s.label());
        }
    }

    #[test]
    fn p1b_matches_table3() {
        for s in Subject::ALL {
            assert_eq!(evaluate(s, P1b), expected(s, P1b), "{}", s.label());
        }
    }

    #[test]
    fn p2a_matches_table3() {
        for s in Subject::ALL {
            assert_eq!(evaluate(s, P2a), expected(s, P2a), "{}", s.label());
        }
    }

    #[test]
    fn p2b_matches_table3() {
        for s in Subject::ALL {
            assert_eq!(evaluate(s, P2b), expected(s, P2b), "{}", s.label());
        }
    }

    #[test]
    fn p3a_matches_table3() {
        for s in Subject::ALL {
            assert_eq!(evaluate(s, P3a), expected(s, P3a), "{}", s.label());
        }
    }

    #[test]
    fn p3b_matches_table3() {
        for s in Subject::ALL {
            assert_eq!(evaluate(s, P3b), expected(s, P3b), "{}", s.label());
        }
    }

    #[test]
    fn p4a_matches_table3() {
        for s in Subject::ALL {
            assert_eq!(evaluate(s, P4a), expected(s, P4a), "{}", s.label());
        }
    }

    #[test]
    fn p4b_matches_table3_and_footprints_contrast() {
        for s in Subject::ALL {
            assert_eq!(evaluate(s, P4b), expected(s, P4b), "{}", s.label());
        }
        let zp = p4b_footprint(Zpoline);
        let k = p4b_footprint(K23);
        // zpoline reserves TiBs; K23 needs KiBs.
        assert!(zp.reserved > (1 << 40), "zpoline reserved {}", zp.reserved);
        assert!(k.reserved <= (1 << 20), "K23 reserved {}", k.reserved);
        assert!(zp.reserved / k.reserved.max(1) > 1_000_000);
    }

    #[test]
    fn p5_matches_table3() {
        for s in Subject::ALL {
            assert_eq!(evaluate(s, P5), expected(s, P5), "{}", s.label());
        }
    }

    #[test]
    fn render_produces_all_cells() {
        // Render a synthetic matrix (avoid re-running everything).
        let matrix: Vec<(Subject, Vec<(Pitfall, Verdict)>)> = Subject::ALL
            .iter()
            .map(|s| {
                (
                    *s,
                    Pitfall::ALL.iter().map(|p| (*p, expected(*s, *p))).collect(),
                )
            })
            .collect();
        let text = render_matrix(&matrix);
        assert_eq!(text.lines().count(), 10);
        assert!(text.contains("zpoline"));
        assert!(text.contains("K23"));
        assert!(text.contains('✗'));
        assert!(text.contains('✓'));
    }
}
