//! Composed-stack evaluation: the fault matrix of [`crate::fault`] swept
//! over *stacked* interposers, plus fork/execve propagation probes.
//!
//! Stacking layers on a mechanism is where a second class of pitfalls
//! lives: hazards no single mechanism exhibits, created purely by the
//! composition. The canonical one is the nested-sigreturn hazard — a
//! naive record layer marshals *every* chained outcome as a return value,
//! so when the signal scenario lands a delivery whose handler ends in
//! `rt_sigreturn`, the layer's epilogue "returns" into the frame the
//! sigreturn just abandoned. `zpoline+recorder` and `ptrace+recorder` die
//! on the signal scenario even though bare `zpoline` and bare `ptrace`
//! both survive it; the composition-only column of the matrix makes that
//! visible. The propagation probes reuse the P1a parent/victim pair to
//! show per-layer fork/exec masks: a `tracer` follows a K23-covered
//! victim across `execve` while a `recorder` (exec propagation off) does
//! not, and under zpoline's env-clearing gap *no* layer survives the exec
//! because the base itself loses its handler library.

use crate::fault::{plan_for, run_probe, ProbeRun, Scenario};
use crate::pocs;
use interpose::registry::parse_spec;
use interpose::{Interposer, InterposerStack};
use k23::OfflineSession;
use sim_fault::FaultPlan;
use sim_kernel::{nr, Kernel, Pid};
use sim_loader::boot_kernel;

/// The composed stacks the matrix sweeps (bare `zpoline` rides along as
/// the in-table control for its own compositions).
pub const STACKS: [&str; 7] = [
    "zpoline",
    "zpoline+tracer",
    "zpoline+recorder",
    "zpoline+tracer+recorder-safe",
    "ptrace+recorder",
    "k23+tracer",
    "sud+sandbox",
];

/// Cycle budget per propagation probe run.
const BUDGET: u64 = 500_000_000_000;

/// One evaluated (stack, scenario) cell.
#[derive(Debug, Clone)]
pub struct StackCell {
    /// The registry spec evaluated.
    pub spec: &'static str,
    /// Scenario injected.
    pub scenario: Scenario,
    /// The exact plan injected (replayable).
    pub plan: FaultPlan,
    /// Whether the faulted run matched the stack's own clean baseline
    /// byte-for-byte (exit status and captured output).
    pub survived: bool,
    /// Whether the *bare base mechanism* survives the same scenario at
    /// the same seed: `!survived && base_survived` is a composition-only
    /// hazard.
    pub base_survived: bool,
    /// Faulted exit status.
    pub exit: Option<i64>,
    /// Baseline exit status.
    pub baseline_exit: Option<i64>,
}

impl StackCell {
    /// A failure the bare base does not exhibit.
    pub fn composition_only(&self) -> bool {
        !self.survived && self.base_survived
    }
}

/// Evaluates the full composed matrix at `seed`: one clean baseline per
/// stack, every scenario against it, and — for the composition-only
/// column — every distinct *base* mechanism's verdicts at the same seed.
pub fn full_stack_matrix(seed: u64) -> Vec<StackCell> {
    crate::register_all();
    // Per-base verdicts, computed once per distinct base.
    let mut base_verdicts: Vec<(String, Vec<(Scenario, bool)>)> = Vec::new();
    let mut base_survived = |base: &str, scenario: Scenario| -> bool {
        if !base_verdicts.iter().any(|(b, _)| b == base) {
            let baseline = run_probe(base, None);
            let verdicts = Scenario::ALL
                .into_iter()
                .map(|sc| {
                    let plan = plan_for(sc, seed, &baseline);
                    let faulted = run_probe(base, Some(&plan));
                    let ok =
                        faulted.exit == baseline.exit && faulted.output == baseline.output;
                    (sc, ok)
                })
                .collect();
            base_verdicts.push((base.to_string(), verdicts));
        }
        base_verdicts
            .iter()
            .find(|(b, _)| b == base)
            .and_then(|(_, vs)| vs.iter().find(|(sc, _)| *sc == scenario))
            .map(|(_, ok)| *ok)
            .expect("verdict just computed")
    };

    let mut cells = Vec::new();
    for spec in STACKS {
        let (base, _) = parse_spec(spec).expect("STACKS entries parse");
        let baseline = run_probe(spec, None);
        for scenario in Scenario::ALL {
            let plan = plan_for(scenario, seed, &baseline);
            let faulted = run_probe(spec, Some(&plan));
            cells.push(StackCell {
                spec,
                scenario,
                survived: faulted.exit == baseline.exit && faulted.output == baseline.output,
                base_survived: base_survived(&base, scenario),
                exit: faulted.exit,
                baseline_exit: baseline.exit,
                plan,
            });
        }
    }
    cells
}

/// Renders the composed matrix (stack rows × scenario columns), the
/// composition-only callout, and a one-command replay line per failing
/// cell. Byte-deterministic for a given seed.
pub fn render_stack_matrix(seed: u64, cells: &[StackCell]) -> String {
    let mut out = String::new();
    out.push_str(&format!("composed-stack fault matrix (seed {seed})\n"));
    out.push_str(&format!("{:<30}", "stack"));
    for scenario in Scenario::ALL {
        out.push_str(&format!("{:>10}", scenario.label()));
    }
    out.push('\n');
    for spec in STACKS {
        out.push_str(&format!("{spec:<30}"));
        for scenario in Scenario::ALL {
            let cell = cells
                .iter()
                .find(|c| c.spec == spec && c.scenario == scenario)
                .expect("cell evaluated");
            let glyph = if cell.survived {
                "✓"
            } else if cell.composition_only() {
                "✗*"
            } else {
                "✗"
            };
            out.push_str(&format!("{glyph:>10}"));
        }
        out.push('\n');
    }
    let comp: Vec<&StackCell> = cells.iter().filter(|c| c.composition_only()).collect();
    if !comp.is_empty() {
        out.push_str("\n* composition-only hazard: the bare base mechanism survives this\n");
        out.push_str("  scenario at the same seed; the failure exists only in the stack.\n");
    }
    let failing: Vec<&StackCell> = cells.iter().filter(|c| !c.survived).collect();
    if !failing.is_empty() {
        out.push_str("\nreplay failing cells:\n");
        for c in failing {
            out.push_str(&format!(
                "  simstack --replay {} '{}'\n",
                c.spec,
                c.plan.encode()
            ));
        }
    }
    out
}

/// [`crate::fault::run_probe`] over a spec, kept as a named alias so the
/// `simstack` binary reads symmetrically to `simfault`.
pub fn run_stack_probe(spec: &str, plan: Option<&FaultPlan>) -> ProbeRun {
    run_probe(spec, plan)
}

/// What one propagation probe observed: the P1a parent/victim pair run
/// under a composed stack, with per-layer chained-call counts split by
/// process.
#[derive(Debug, Clone)]
pub struct PropagationProbe {
    /// The spec probed.
    pub spec: &'static str,
    /// Chained entries the tracer layer saw in the parent (any nr).
    pub parent_traced: u64,
    /// Chained entries of the victim's marker syscall (nr 500) the tracer
    /// layer saw in the exec'd victim. 10 when the layer propagated
    /// across the execve; 0 when the chain went inert.
    pub victim_traced: u64,
    /// Completions the recorder layer logged in the exec'd victim.
    pub victim_recorded: u64,
}

/// Runs `/usr/bin/p1a-parent` (fork → execve of the env-cleared victim)
/// under `spec` and reports per-layer, per-process chained-call counts.
///
/// # Panics
///
/// On a spec that does not parse, carries no layers, or fails to spawn.
pub fn probe_propagation(spec: &'static str) -> PropagationProbe {
    crate::register_all();
    let stack = InterposerStack::from_spec(spec).expect("composed spec");
    let mut k = boot_kernel();
    pocs::install_pocs(&mut k.vfs);
    if parse_spec(spec).expect("parses").0 == "k23" {
        let session = OfflineSession::new(&mut k, "/usr/bin/p1a-parent");
        let _ = session.run_once(&mut k, &["/usr/bin/p1a-parent".to_string()], &[], BUDGET);
        session.finish(&mut k);
    }
    stack.install(&mut k);
    let parent = stack
        .spawn(
            &mut k,
            "/usr/bin/p1a-parent",
            &["/usr/bin/p1a-parent".to_string()],
            &[],
        )
        .unwrap_or_else(|e| panic!("spawn p1a-parent: {e}"));
    k.run(BUDGET);
    let victims: Vec<Pid> = k
        .pids()
        .into_iter()
        .filter(|pid| {
            k.process(*pid)
                .is_some_and(|p| p.exe == "/usr/bin/p1-victim")
        })
        .collect();
    let tracer = stack.tracer();
    let recorder = stack.recorder();
    PropagationProbe {
        spec,
        parent_traced: tracer.as_ref().map_or(0, |t| t.total(parent)),
        victim_traced: victims
            .iter()
            .map(|pid| {
                tracer
                    .as_ref()
                    .map_or(0, |t| t.count(*pid, nr::SYS_NONEXISTENT))
            })
            .sum(),
        victim_recorded: recorder
            .as_ref()
            .map_or(0, |r| {
                victims.iter().map(|pid| r.entries(*pid) as u64).sum()
            }),
    }
}

/// The propagation probes the report runs, chosen to separate the three
/// propagation outcomes: layer follows the exec (K23 re-attaches its
/// handler), layer masked out by its own exec flag (recorder), and chain
/// inert because the *base* lost its library to the env-clearing exec
/// (zpoline under P1a).
pub const PROPAGATION_SPECS: [&str; 4] = [
    "k23+tracer",
    "k23+tracer+recorder",
    "zpoline+tracer",
    "zpoline+recorder",
];

/// Renders the propagation section: one row per probe. Deterministic.
pub fn render_propagation() -> String {
    let mut out = String::new();
    out.push_str("layer propagation across fork+execve (P1a parent → env-cleared victim)\n");
    out.push_str(&format!(
        "{:<26}{:>14}{:>14}{:>16}\n",
        "stack", "parent-traced", "victim-traced", "victim-recorded"
    ));
    for spec in PROPAGATION_SPECS {
        let p = probe_propagation(spec);
        out.push_str(&format!(
            "{:<26}{:>14}{:>14}{:>16}\n",
            p.spec, p.parent_traced, p.victim_traced, p.victim_recorded
        ));
    }
    out
}

/// Boots a fresh kernel with the PoC images installed (shared by the
/// stack tests).
pub fn fresh_kernel() -> Kernel {
    let mut k = boot_kernel();
    pocs::install_pocs(&mut k.vfs);
    k
}
