//! The pitfall evaluation matrix (paper Table 3): run every PoC under every
//! interposer and record who defends what.

use crate::pocs::{self, EXIT_CORRUPT};
use interpose::Interposer;
use k23::{OfflineSession, Variant, K23};
use lazypoline::Lazypoline;
use sim_kernel::{Kernel, Pid};
use sim_loader::boot_kernel;
use zpoline::Zpoline;

/// The interposers under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Subject {
    /// zpoline (ultra for the P4 rows — the variant that offers the check).
    Zpoline,
    /// lazypoline (stretched torn window for P5).
    Lazypoline,
    /// K23 (ultra for the P4 rows; offline phase run on the PoC first).
    K23,
}

impl Subject {
    /// All subjects, in Table 3 column order.
    pub const ALL: [Subject; 3] = [Subject::Zpoline, Subject::Lazypoline, Subject::K23];

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            Subject::Zpoline => "zpoline",
            Subject::Lazypoline => "lazypoline",
            Subject::K23 => "K23",
        }
    }
}

/// One pitfall scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pitfall {
    /// Interposition bypass via environment clearing (Listing 1).
    P1a,
    /// Interposition bypass via `prctl` SUD-disable (Listing 2).
    P1b,
    /// Overlooked syscalls: dynamically generated code.
    P2a,
    /// Overlooked syscalls: startup + vDSO.
    P2b,
    /// Misidentification by static disassembly.
    P3a,
    /// Attack-induced misidentification (runtime rewriting of data).
    P3b,
    /// NULL-execution without a check.
    P4a,
    /// Check-structure memory overhead.
    P4b,
    /// Runtime rewriting races (torn writes).
    P5,
}

impl Pitfall {
    /// All pitfalls, in Table 3 row order.
    pub const ALL: [Pitfall; 9] = [
        Pitfall::P1a,
        Pitfall::P1b,
        Pitfall::P2a,
        Pitfall::P2b,
        Pitfall::P3a,
        Pitfall::P3b,
        Pitfall::P4a,
        Pitfall::P4b,
        Pitfall::P5,
    ];

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            Pitfall::P1a => "P1a",
            Pitfall::P1b => "P1b",
            Pitfall::P2a => "P2a",
            Pitfall::P2b => "P2b",
            Pitfall::P3a => "P3a",
            Pitfall::P3b => "P3b",
            Pitfall::P4a => "P4a",
            Pitfall::P4b => "P4b",
            Pitfall::P5 => "P5",
        }
    }
}

/// Whether the interposer defended the scenario (✓) or not (✗).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Pitfall handled or not relevant to the design.
    Handled,
    /// Pitfall triggered: bypass, blind spot, corruption, or crash.
    Vulnerable,
}

impl Verdict {
    /// Table 3 glyph.
    pub fn glyph(self) -> &'static str {
        match self {
            Verdict::Handled => "✓",
            Verdict::Vulnerable => "✗",
        }
    }
}

const BUDGET: u64 = 500_000_000_000;

fn fresh_kernel() -> Kernel {
    let mut k = boot_kernel();
    pocs::install_pocs(&mut k.vfs);
    k
}

fn make_interposer(s: Subject, p: Pitfall) -> Box<dyn Interposer> {
    match s {
        Subject::Zpoline => {
            if matches!(p, Pitfall::P4a | Pitfall::P4b) {
                Box::new(Zpoline::ultra())
            } else {
                Box::new(Zpoline::default_variant())
            }
        }
        Subject::Lazypoline => {
            if p == Pitfall::P5 {
                Box::new(Lazypoline::with_torn_window(200_000))
            } else {
                Box::new(Lazypoline::new())
            }
        }
        Subject::K23 => {
            if matches!(p, Pitfall::P4a | Pitfall::P4b) {
                Box::new(K23::new(Variant::Ultra))
            } else {
                Box::new(K23::new(Variant::Default))
            }
        }
    }
}

/// Runs K23's offline phase for `app` on `k` (no-op for other subjects).
fn maybe_offline(k: &mut Kernel, s: Subject, app: &str) {
    if s != Subject::K23 {
        return;
    }
    let session = OfflineSession::new(k, app);
    // PoCs that trigger aborts/crashes still terminate; budget-bounded.
    let _ = session.run_once(k, &[app.to_string()], &[], BUDGET);
    session.finish(k);
}

fn spawn_and_run(k: &mut Kernel, ip: &dyn Interposer, app: &str) -> Pid {
    spawn_and_run_args(k, ip, app, &[app.to_string()])
}

fn spawn_and_run_args(k: &mut Kernel, ip: &dyn Interposer, app: &str, argv: &[String]) -> Pid {
    let pid = ip
        .spawn(k, app, argv, &[])
        .unwrap_or_else(|e| panic!("spawn {app}: {e}"));
    k.run(BUDGET);
    pid
}

fn exit_of(k: &Kernel, pid: Pid) -> Option<i64> {
    k.process(pid).and_then(|p| p.exit_status)
}

/// Evaluates one (subject, pitfall) cell.
pub fn evaluate(s: Subject, p: Pitfall) -> Verdict {
    match p {
        Pitfall::P1a => {
            let mut k = fresh_kernel();
            maybe_offline(&mut k, s, "/usr/bin/p1a-parent");
            let ip = make_interposer(s, p);
            ip.install(&mut k);
            spawn_and_run(&mut k, ip.as_ref(), "/usr/bin/p1a-parent");
            // Find the exec'd victim and check whether its known site ran
            // natively.
            let native = k
                .pids()
                .into_iter()
                .filter_map(|pid| k.process(pid))
                .filter(|pr| pr.exe == "/usr/bin/p1-victim")
                .map(|pr| {
                    pr.symbols
                        .get("p1-victim:victim_site")
                        .map(|site| pr.stats.syscalls_at_site(*site))
                        .unwrap_or(0)
                })
                .sum::<u64>();
            if native == 0 {
                Verdict::Handled
            } else {
                Verdict::Vulnerable
            }
        }
        Pitfall::P1b => {
            let mut k = fresh_kernel();
            maybe_offline(&mut k, s, "/usr/bin/p1b-poc");
            let ip = make_interposer(s, p);
            ip.install(&mut k);
            let pid = spawn_and_run(&mut k, ip.as_ref(), "/usr/bin/p1b-poc");
            let aborted = exit_of(&k, pid) == Some(134);
            let native = k
                .process(pid)
                .map(|pr| {
                    pr.symbols
                        .get("p1b-poc:bypass_site")
                        .map(|site| pr.stats.syscalls_at_site(*site))
                        .unwrap_or(0)
                })
                .unwrap_or(0);
            if aborted || native == 0 {
                Verdict::Handled
            } else {
                Verdict::Vulnerable
            }
        }
        Pitfall::P2a => {
            let mut k = fresh_kernel();
            maybe_offline(&mut k, s, "/usr/bin/p2a-jit");
            let ip = make_interposer(s, p);
            ip.install(&mut k);
            let pid = spawn_and_run(&mut k, ip.as_ref(), "/usr/bin/p2a-jit");
            let native = k
                .process(pid)
                .map(|pr| pr.stats.syscalls_via_region("[anon]"))
                .unwrap_or(u64::MAX);
            if exit_of(&k, pid) == Some(0) && native == 0 {
                Verdict::Handled
            } else {
                Verdict::Vulnerable
            }
        }
        Pitfall::P2b => {
            let mut k = fresh_kernel();
            maybe_offline(&mut k, s, "/usr/bin/p2b-poc");
            let ip = make_interposer(s, p);
            ip.install(&mut k);
            let pid = spawn_and_run(&mut k, ip.as_ref(), "/usr/bin/p2b-poc");
            let Some(pr) = k.process(pid) else {
                return Verdict::Vulnerable;
            };
            let exhaustive = ip.interposed_count(&k, pid) == pr.stats.syscalls;
            let vdso_blind = pr.stats.vdso_calls > 0;
            if exhaustive && !vdso_blind {
                Verdict::Handled
            } else {
                Verdict::Vulnerable
            }
        }
        Pitfall::P3a | Pitfall::P3b => {
            let app = if p == Pitfall::P3a {
                "/usr/bin/p3a-poc"
            } else {
                "/usr/bin/p3b-poc"
            };
            let mut k = fresh_kernel();
            maybe_offline(&mut k, s, app);
            let ip = make_interposer(s, p);
            ip.install(&mut k);
            // The attack path is argv-gated so the offline run stays benign.
            let pid = spawn_and_run_args(
                &mut k,
                ip.as_ref(),
                app,
                &[app.to_string(), "-attack".to_string()],
            );
            match exit_of(&k, pid) {
                Some(0) => Verdict::Handled,
                Some(e) if e == EXIT_CORRUPT => Verdict::Vulnerable,
                _ => Verdict::Vulnerable, // crash = corruption went further
            }
        }
        Pitfall::P4a => {
            let mut k = fresh_kernel();
            maybe_offline(&mut k, s, "/usr/bin/p4a-poc");
            let ip = make_interposer(s, p);
            ip.install(&mut k);
            let pid = spawn_and_run(&mut k, ip.as_ref(), "/usr/bin/p4a-poc");
            // Defended = the stray NULL execution was detected and aborted.
            if exit_of(&k, pid) == Some(134) {
                Verdict::Handled
            } else {
                Verdict::Vulnerable
            }
        }
        Pitfall::P4b => evaluate_p4b(s),
        Pitfall::P5 => {
            let mut k = fresh_kernel();
            maybe_offline(&mut k, s, "/usr/bin/p5-mt");
            let ip = make_interposer(s, p);
            ip.install(&mut k);
            let pid = spawn_and_run_args(
                &mut k,
                ip.as_ref(),
                "/usr/bin/p5-mt",
                &["p5-mt".to_string(), "-mt".to_string()],
            );
            match exit_of(&k, pid) {
                Some(0) => Verdict::Handled,
                _ => Verdict::Vulnerable,
            }
        }
    }
}

/// Memory-overhead threshold for the P4b verdict: a check structure must
/// not reserve more than this per process.
pub const P4B_THRESHOLD_BYTES: u64 = 1 << 20;

/// Measured check-structure footprints for one subject.
#[derive(Debug, Clone, Copy)]
pub struct P4bFootprint {
    /// Virtual bytes reserved for the validity-check structure.
    pub reserved: u64,
    /// Bytes actually materialized/committed.
    pub committed: u64,
}

/// Measures the P4b footprint for `s` by running the stress PoC.
pub fn p4b_footprint(s: Subject) -> P4bFootprint {
    let mut k = fresh_kernel();
    match s {
        Subject::Zpoline => {
            let ip = Zpoline::ultra();
            ip.install(&mut k);
            let pid = ip
                .spawn(&mut k, "/usr/bin/p-stress", &[], &[])
                .expect("spawn");
            k.run(BUDGET);
            let st = ip.stats();
            let _ = pid;
            P4bFootprint {
                reserved: st.bitmap_reserved,
                committed: st.bitmap_resident,
            }
        }
        Subject::Lazypoline => {
            let ip = Lazypoline::new();
            ip.install(&mut k);
            ip.spawn(&mut k, "/usr/bin/p-stress", &[], &[]).expect("spawn");
            k.run(BUDGET);
            // lazypoline keeps no validity structure at all.
            P4bFootprint {
                reserved: 0,
                committed: 0,
            }
        }
        Subject::K23 => {
            maybe_offline(&mut k, Subject::K23, "/usr/bin/p-stress");
            let ip = K23::new(Variant::Ultra);
            ip.install(&mut k);
            ip.spawn(&mut k, "/usr/bin/p-stress", &[], &[]).expect("spawn");
            k.run(BUDGET);
            let st = ip.stats();
            P4bFootprint {
                reserved: st.table_bytes,
                committed: st.table_bytes,
            }
        }
    }
}

fn evaluate_p4b(s: Subject) -> Verdict {
    let f = p4b_footprint(s);
    if f.reserved <= P4B_THRESHOLD_BYTES {
        Verdict::Handled
    } else {
        Verdict::Vulnerable
    }
}

/// Evaluates the full Table 3 matrix.
pub fn full_matrix() -> Vec<(Subject, Vec<(Pitfall, Verdict)>)> {
    Subject::ALL
        .iter()
        .map(|s| {
            (
                *s,
                Pitfall::ALL.iter().map(|p| (*p, evaluate(*s, *p))).collect(),
            )
        })
        .collect()
}

/// Renders the matrix as the paper's Table 3 layout (pitfall rows,
/// interposer columns).
pub fn render_matrix(matrix: &[(Subject, Vec<(Pitfall, Verdict)>)]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<10}", "Pitfall"));
    for (s, _) in matrix {
        out.push_str(&format!("{:>12}", s.label()));
    }
    out.push('\n');
    for (i, p) in Pitfall::ALL.iter().enumerate() {
        out.push_str(&format!("{:<10}", p.label()));
        for (_, cells) in matrix {
            out.push_str(&format!("{:>12}", cells[i].1.glyph()));
        }
        out.push('\n');
    }
    out
}

