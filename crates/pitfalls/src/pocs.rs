//! Proof-of-Concept guest programs for the System Call Interposition
//! Pitfalls (paper §4). Each PoC's exit status / observable state encodes
//! whether the interposer under test defended the scenario.

use sim_isa::Reg;
use sim_kernel::nr;
use sim_loader::{ImageBuilder, SimElf, LIBC_PATH};

/// Exit code a PoC uses to report detected corruption.
pub const EXIT_CORRUPT: i64 = 7;

/// P1a (Listing 1): fork, then exec the victim with a **NULL environment**,
/// silently dropping `LD_PRELOAD`.
pub fn build_p1a_parent() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/p1a-parent");
    b.entry("main");
    b.needs(LIBC_PATH);
    b.asm.label("main");
    b.call_import("fork");
    b.asm.test_reg(Reg::Rax, Reg::Rax);
    b.asm.jz("child");
    // parent: wait for the child
    b.asm.mov_imm(Reg::Rdi, 0);
    b.asm.mov_imm(Reg::Rsi, 0);
    b.call_import("wait4");
    b.asm.mov_imm(Reg::Rax, 0);
    b.asm.ret();
    b.asm.label("child");
    // execve(victim, NULL, NULL): empty environment, as in Listing 1.
    b.asm.lea_label(Reg::Rdi, "victim_path");
    b.asm.mov_imm(Reg::Rsi, 0);
    b.asm.mov_imm(Reg::Rdx, 0);
    b.call_import("execve");
    b.asm.mov_imm(Reg::Rdi, 1);
    b.call_import("exit_group"); // exec failed
    b.data_object("victim_path", b"/usr/bin/p1-victim\0");
    b.finish()
}

/// The P1 victim: issues ten syscalls from a known site; if those execute
/// natively, interposition was bypassed.
pub fn build_p1_victim() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/p1-victim");
    b.entry("main");
    b.needs(LIBC_PATH);
    b.asm.label("main");
    b.asm.mov_imm(Reg::Rcx, 10);
    b.asm.label("loop");
    b.asm.push(Reg::Rcx);
    b.asm.mov_imm(Reg::Rax, nr::SYS_NONEXISTENT);
    b.asm.label("victim_site");
    b.asm.syscall();
    b.asm.pop(Reg::Rcx);
    b.asm.sub_imm(Reg::Rcx, 1);
    b.asm.jnz("loop");
    b.asm.mov_imm(Reg::Rax, 0);
    b.asm.ret();
    b.finish()
}

/// P1b (Listing 2): disable SUD via `prctl`, then issue syscalls from a
/// fresh site.
pub fn build_p1b() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/p1b-poc");
    b.entry("main");
    b.needs(LIBC_PATH);
    b.asm.label("main");
    b.asm.mov_imm(Reg::Rdi, nr::PR_SET_SYSCALL_USER_DISPATCH);
    b.asm.mov_imm(Reg::Rsi, nr::PR_SYS_DISPATCH_OFF);
    b.asm.mov_imm(Reg::Rdx, 0);
    b.asm.mov_imm(Reg::R10, 0);
    b.asm.mov_imm(Reg::R8, 0);
    b.asm.mov_imm(Reg::Rax, nr::SYS_PRCTL);
    b.asm.label("prctl_site");
    b.asm.syscall();
    b.asm.mov_imm(Reg::Rcx, 10);
    b.asm.label("loop");
    b.asm.push(Reg::Rcx);
    b.asm.mov_imm(Reg::Rax, nr::SYS_NONEXISTENT);
    b.asm.label("bypass_site");
    b.asm.syscall();
    b.asm.pop(Reg::Rcx);
    b.asm.sub_imm(Reg::Rcx, 1);
    b.asm.jnz("loop");
    b.asm.mov_imm(Reg::Rax, 0);
    b.asm.ret();
    b.finish()
}

/// P2a: mmap fresh executable memory, synthesize a syscall there at
/// runtime (from immediates, like a JIT), and call it twice.
pub fn build_p2a_jit() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/p2a-jit");
    b.entry("main");
    b.needs(LIBC_PATH);
    b.asm.label("main");
    b.asm.mov_imm(Reg::Rdi, 0);
    b.asm.mov_imm(Reg::Rsi, 4096);
    b.asm.mov_imm(Reg::Rdx, 7);
    b.asm.mov_imm(Reg::R10, 0);
    b.asm.mov_imm(Reg::Rax, nr::SYS_MMAP);
    b.asm.syscall();
    b.asm.mov_reg(Reg::Rbx, Reg::Rax);
    let blob: [u8; 16] = {
        let mut v = sim_isa::Inst::MovImm(Reg::Rax, nr::SYS_NONEXISTENT).encode();
        v.extend_from_slice(&sim_isa::SYSCALL_BYTES);
        v.push(0xc3);
        v.resize(16, 0x90);
        v.try_into().expect("16 bytes")
    };
    b.asm
        .mov_imm(Reg::Rdx, u64::from_le_bytes(blob[..8].try_into().expect("8")));
    b.asm.store(Reg::Rbx, 0, Reg::Rdx);
    b.asm
        .mov_imm(Reg::Rdx, u64::from_le_bytes(blob[8..].try_into().expect("8")));
    b.asm.store(Reg::Rbx, 8, Reg::Rdx);
    b.asm.call_reg(Reg::Rbx);
    b.asm.call_reg(Reg::Rbx);
    b.asm.mov_imm(Reg::Rax, 0);
    b.asm.ret();
    b.finish()
}

/// P2b: the startup-and-vDSO blind spot. Calls `clock_gettime` through the
/// vDSO once; the startup syscalls come for free from the loader stub.
pub fn build_p2b() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/p2b-poc");
    b.entry("main");
    b.needs(LIBC_PATH);
    for f in sim_loader::FILLER_LIBS {
        b.needs(f);
    }
    b.asm.label("main");
    b.asm.mov_imm(Reg::Rdi, 0);
    b.asm.mov_imm(Reg::Rsi, 0);
    b.call_import("clock_gettime_vdso");
    b.asm.mov_imm(Reg::Rax, 0);
    b.asm.ret();
    b.finish()
}

/// P3a: data embedded in an executable page whose bytes *look like* a
/// syscall instruction. The program never executes it — it only checks, at
/// the end, that the bytes are intact. A static rewriter corrupts them.
pub fn build_p3a() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/p3a-poc");
    b.entry("main");
    b.needs(LIBC_PATH);
    b.asm.label("main");
    // One legitimate syscall so the scanner has real work too.
    b.asm.mov_imm(Reg::Rax, nr::SYS_NONEXISTENT);
    b.asm.syscall();
    // Verify the embedded constant (a "jump table" entry whose low bytes
    // encode 0f 05) is still what the compiler put there.
    b.asm.lea_label(Reg::R11, "table");
    b.asm.load(Reg::Rbx, Reg::R11, 0);
    // The expected value is reconstructed via XOR so the check's own
    // immediate cannot contain the 0f 05 pattern (a byte-pattern rewriter
    // would otherwise corrupt data and expectation identically and blind
    // the check).
    b.asm.mov_imm(Reg::Rcx, P3A_MAGIC ^ u64::MAX);
    b.asm.mov_imm(Reg::Rdx, u64::MAX);
    b.asm.xor_reg(Reg::Rcx, Reg::Rdx);
    b.asm.cmp_reg(Reg::Rbx, Reg::Rcx);
    b.asm.jnz("corrupt");
    b.asm.mov_imm(Reg::Rax, 0);
    b.asm.ret();
    b.asm.label("corrupt");
    b.asm.mov_imm(Reg::Rdi, EXIT_CORRUPT as u64);
    b.call_import("exit_group");
    // Embedded data in the code region: bytes `de c0 0f 05 ...`.
    b.asm.label("table");
    b.asm.quad(P3A_MAGIC);
    b.finish()
}

/// The P3a magic constant: little-endian bytes contain `0f 05`.
pub const P3A_MAGIC: u64 = 0x1122_3344_050f_c0de;

/// P3b: a control-flow hijack executes *data* that happens to encode
/// `syscall; ret`. The data is hidden from static sweeps behind a mov
/// prefix, so only runtime rewriters touch it. The program then verifies
/// the data survived.
pub fn build_p3b() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/p3b-poc");
    b.entry("main");
    b.needs(LIBC_PATH);
    b.asm.label("main");
    // The attack only fires with an extra argv entry — the offline phase
    // runs the benign path (a controlled environment, §5.1).
    b.asm.cmp_imm(Reg::Rdi, 1);
    b.asm.jcc(sim_isa::Cond::Le, "benign");
    // "Hijacked" indirect call into the middle of the data blob.
    b.asm.mov_imm(Reg::Rax, nr::SYS_NONEXISTENT);
    b.asm.lea_label(Reg::R12, "gadget");
    b.asm.add_imm(Reg::R12, 2); // skip the 48 b8 camouflage prefix
    b.asm.call_reg(Reg::R12);
    b.asm.jmp("verify");
    b.asm.label("benign");
    b.asm.mov_imm(Reg::Rax, nr::SYS_NONEXISTENT);
    b.asm.syscall();
    b.asm.label("verify");
    // Verify the blob is intact.
    b.asm.lea_label(Reg::R11, "gadget");
    b.asm.load(Reg::Rbx, Reg::R11, 0);
    // XOR-masked expectation (see build_p3a).
    b.asm.mov_imm(Reg::Rcx, P3B_BLOB ^ u64::MAX);
    b.asm.mov_imm(Reg::Rdx, u64::MAX);
    b.asm.xor_reg(Reg::Rcx, Reg::Rdx);
    b.asm.cmp_reg(Reg::Rbx, Reg::Rcx);
    b.asm.jnz("corrupt");
    b.asm.mov_imm(Reg::Rax, 0);
    b.asm.ret();
    b.asm.label("corrupt");
    b.asm.mov_imm(Reg::Rdi, EXIT_CORRUPT as u64);
    b.call_import("exit_group");
    // Data: 48 b8 | 0f 05 | c3 | padding. A linear sweep decodes one long
    // mov and sees nothing; executing offset +2 runs syscall; ret.
    b.asm.label("gadget");
    b.asm.quad(P3B_BLOB);
    b.finish()
}

/// The P3b gadget: bytes `48 b8 0f 05 c3 90 90 90`.
pub const P3B_BLOB: u64 = u64::from_le_bytes([0x48, 0xb8, 0x0f, 0x05, 0xc3, 0x90, 0x90, 0x90]);

/// P4a: a NULL function-pointer call (`call *%rax` with rax = 0).
pub fn build_p4a() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/p4a-poc");
    b.entry("main");
    b.needs(LIBC_PATH);
    b.asm.label("main");
    b.asm.mov_imm(Reg::Rax, 0);
    b.asm.call_reg(Reg::Rax);
    b.asm.mov_imm(Reg::Rax, 0);
    b.asm.ret();
    b.finish()
}

/// P4b uses the stress app (memory is measured host-side).
pub fn build_stress() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/p-stress");
    b.entry("main");
    b.needs(LIBC_PATH);
    b.asm.label("main");
    b.asm.mov_imm(Reg::Rcx, 50);
    b.asm.label("loop");
    b.asm.push(Reg::Rcx);
    b.asm.mov_imm(Reg::Rax, nr::SYS_NONEXISTENT);
    b.asm.syscall();
    b.asm.pop(Reg::Rcx);
    b.asm.sub_imm(Reg::Rcx, 1);
    b.asm.jnz("loop");
    b.asm.mov_imm(Reg::Rax, 0);
    b.asm.ret();
    b.finish()
}

/// P5: two threads, one hammering a syscall site while the first execution
/// triggers any on-the-fly rewriting. A torn rewrite kills the process.
pub fn build_p5_mt() -> SimElf {
    let mut b = ImageBuilder::new("/usr/bin/p5-mt");
    b.entry("main");
    b.needs(LIBC_PATH);
    b.asm.label("main");
    // Benign (offline) mode: a single syscall, then exit.
    b.asm.cmp_imm(Reg::Rdi, 1);
    b.asm.jcc(sim_isa::Cond::G, "mt_mode");
    b.asm.mov_imm(Reg::Rax, nr::SYS_NONEXISTENT);
    b.asm.syscall();
    b.asm.mov_imm(Reg::Rax, 0);
    b.asm.ret();
    b.asm.label("mt_mode");
    // Child stack.
    b.asm.mov_imm(Reg::Rdi, 0);
    b.asm.mov_imm(Reg::Rsi, 0x10000);
    b.asm.mov_imm(Reg::Rdx, 3);
    b.asm.mov_imm(Reg::R10, 0);
    b.asm.mov_imm(Reg::Rax, nr::SYS_MMAP);
    b.asm.syscall();
    b.asm.mov_reg(Reg::Rsi, Reg::Rax);
    b.asm.add_imm(Reg::Rsi, 0xfff0);
    b.asm.lea_label(Reg::Rcx, "hammer");
    b.asm.store(Reg::Rsi, 0, Reg::Rcx);
    b.asm.mov_imm(Reg::Rdi, 0);
    b.asm.mov_imm(Reg::Rax, nr::SYS_CLONE);
    b.asm.syscall();
    b.asm.test_reg(Reg::Rax, Reg::Rax);
    b.asm.jz("hammer"); // raw-clone child has no seeded return: jump directly
    // Parent: spin, then exit 0.
    b.asm.mov_imm(Reg::Rcx, 5000);
    b.asm.label("spin");
    b.asm.sub_imm(Reg::Rcx, 1);
    b.asm.jnz("spin");
    b.asm.mov_imm(Reg::Rax, 0);
    b.asm.ret();
    b.asm.label("hammer");
    b.asm.mov_imm(Reg::Rax, nr::SYS_NONEXISTENT);
    b.asm.label("shared_site");
    b.asm.syscall();
    b.asm.jmp("hammer");
    b.finish()
}

/// Installs every PoC program.
pub fn install_pocs(vfs: &mut sim_kernel::Vfs) {
    build_p1a_parent().install(vfs);
    build_p1_victim().install(vfs);
    build_p1b().install(vfs);
    build_p2a_jit().install(vfs);
    build_p2b().install(vfs);
    build_p3a().install(vfs);
    build_p3b().install(vfs);
    build_p4a().install(vfs);
    build_stress().install(vfs);
    build_p5_mt().install(vfs);
}
