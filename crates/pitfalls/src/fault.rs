//! The fault-resilience matrix: every interposition mechanism versus every
//! deterministic fault scenario from [`sim_fault`].
//!
//! Each cell runs the same probe workload twice through the mechanism's
//! [`interpose::Interposer`] — once clean, once under a seeded
//! [`FaultPlan`] — and declares survival iff exit status and captured
//! output are byte-identical. Because the simulator is deterministic, a
//! failing cell is replayed exactly from its printed `seed + plan`
//! encoding alone.

use interpose::Interposer;
use k23::OfflineSession;
use sim_fault::{FaultKind, FaultPlan, PermFlip, Rng, SchedPlan, SignalWindow, SyscallFault};
use sim_isa::Reg;
use sim_kernel::{nr, EngineConfig};
use sim_loader::{boot_kernel, ImageBuilder, SimElf};

/// Guest path of the fault probe.
pub const PROBE_PATH: &str = "/usr/bin/fault-probe";

/// The mechanisms under evaluation, by canonical registry name.
pub const MECHANISMS: [&str; 5] = ["sud", "ptrace", "zpoline", "lazypoline", "k23"];

const BUDGET: u64 = 500_000_000_000;
const ROUNDS: u64 = 24;
const MSG: &[u8] = b"tick\n";

/// One fault-injection scenario (a family of plans, parameterized by seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// errno faults on the probe's syscalls: `EINTR`, `EAGAIN`, and short
    /// transfers at seeded occurrences.
    Errno,
    /// Asynchronous `SIGUSR1` delivered at seeded instruction boundaries
    /// across the whole run — including inside trampolines and handlers.
    Signal,
    /// Adversarial scheduling: rotated run queues plus jittered slice
    /// caps. Must be invisible to a single-threaded guest.
    Sched,
    /// Transient page-permission flips on the probe's code/data pages
    /// (and the zero page), each restored after a fixed duration.
    PermFlip,
}

impl Scenario {
    /// All scenarios, in table row order.
    pub const ALL: [Scenario; 4] = [
        Scenario::Errno,
        Scenario::Signal,
        Scenario::Sched,
        Scenario::PermFlip,
    ];

    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::Errno => "errno",
            Scenario::Signal => "signal",
            Scenario::Sched => "sched",
            Scenario::PermFlip => "permflip",
        }
    }
}

/// Builds the probe: a guest that registers a `SIGUSR1` counter handler,
/// then loops issuing a marker syscall (result ignored) and a robust
/// `write` that retries `EINTR`/`EAGAIN` and continues short transfers —
/// the contract POSIX asks of well-written applications, and exactly what
/// an interposer must preserve under injected faults.
pub fn build_fault_probe() -> SimElf {
    let mut b = ImageBuilder::new(PROBE_PATH);
    b.entry("main");
    b.needs(sim_loader::LIBC_PATH);
    b.asm.label("main");
    // rt_sigaction(SIGUSR1, sig_count)
    b.asm.mov_imm(Reg::Rdi, nr::SIGUSR1);
    b.asm.lea_label(Reg::Rsi, "sig_count");
    b.asm.mov_imm(Reg::Rax, nr::SYS_RT_SIGACTION);
    b.asm.syscall();
    b.asm.mov_imm(Reg::R12, ROUNDS);
    b.asm.label("round");
    // Marker syscall: unknown nr, every return value (ENOSYS or an
    // injected errno) is acceptable.
    b.asm.mov_imm(Reg::Rax, 500);
    b.asm.syscall();
    // Robust write of MSG to stdout: r13 = cursor, r14 = remaining.
    b.asm.lea_label(Reg::R13, "msg");
    b.asm.mov_imm(Reg::R14, MSG.len() as u64);
    b.asm.label("wr");
    b.asm.mov_imm(Reg::Rdi, 1);
    b.asm.mov_reg(Reg::Rsi, Reg::R13);
    b.asm.mov_reg(Reg::Rdx, Reg::R14);
    b.asm.mov_imm(Reg::Rax, nr::SYS_WRITE);
    b.asm.syscall();
    b.asm.mov_imm(Reg::R11, nr::err(nr::EINTR) as u64);
    b.asm.cmp_reg(Reg::Rax, Reg::R11);
    b.asm.jz("wr");
    b.asm.mov_imm(Reg::R11, nr::err(nr::EAGAIN) as u64);
    b.asm.cmp_reg(Reg::Rax, Reg::R11);
    b.asm.jz("wr");
    // Short transfer: advance the cursor and keep going.
    b.asm.add_reg(Reg::R13, Reg::Rax);
    b.asm.sub_reg(Reg::R14, Reg::Rax);
    b.asm.cmp_imm(Reg::R14, 0);
    b.asm.jnz("wr");
    b.asm.sub_imm(Reg::R12, 1);
    b.asm.cmp_imm(Reg::R12, 0);
    b.asm.jnz("round");
    b.asm.mov_imm(Reg::Rax, 0);
    b.asm.ret();
    // SIGUSR1 handler: count the delivery in guest data (never printed, so
    // output stays comparable to the zero-fault baseline), then sigreturn.
    b.asm.label("sig_count");
    b.asm.lea_label(Reg::Rax, "counter");
    b.asm.load(Reg::Rcx, Reg::Rax, 0);
    b.asm.add_imm(Reg::Rcx, 1);
    b.asm.store(Reg::Rax, 0, Reg::Rcx);
    b.asm.mov_imm(Reg::Rax, nr::SYS_RT_SIGRETURN);
    b.asm.syscall();
    b.data_object("msg", MSG);
    b.data_object("counter", &[0u8; 8]);
    b.finish()
}

/// One probe execution's observable result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProbeRun {
    /// Exit status, if the guest terminated in budget.
    pub exit: Option<i64>,
    /// Captured stdout/stderr bytes.
    pub output: Vec<u8>,
    /// Guest address of the probe's `main` label.
    pub main_addr: u64,
    /// Guest address of the probe's data page (the `msg` object).
    pub data_addr: u64,
    /// Final simulated clock.
    pub clock: u64,
}

/// Runs the probe under `mech` (a canonical registry name), with an
/// optional fault plan. K23 gets its offline phase (run fault-free, before
/// the plan is armed) exactly as the Table 3 matrix does.
pub fn run_probe(mech: &str, plan: Option<&FaultPlan>) -> ProbeRun {
    run_probe_on(mech, plan, EngineConfig::new())
}

/// [`run_probe`] with an explicit base [`EngineConfig`] — the cross-engine
/// determinism tests drive the same plan through the block engine and the
/// stepwise oracle. The plan (if any) is installed on top of `base`.
pub fn run_probe_on(mech: &str, plan: Option<&FaultPlan>, base: EngineConfig) -> ProbeRun {
    crate::register_all();
    let mut k = boot_kernel();
    build_fault_probe().install(&mut k.vfs);
    let (mech_base, _) = interpose::registry::parse_spec(mech)
        .unwrap_or_else(|e| panic!("spec {mech:?}: {e}"));
    if mech_base == "k23" {
        // Offline phase always runs fault-free under the default engine, so
        // the collected site log is identical regardless of `base`.
        let session = OfflineSession::new(&mut k, PROBE_PATH);
        let _ = session.run_once(&mut k, &[PROBE_PATH.to_string()], &[], BUDGET);
        session.finish(&mut k);
    }
    let cfg = match plan {
        Some(plan) => base.fault(plan.clone()),
        None => base,
    };
    k.configure(cfg);
    let ip: Box<dyn Interposer> =
        interpose::by_name_spec(mech).unwrap_or_else(|e| panic!("spec {mech:?}: {e}"));
    ip.install(&mut k);
    let pid = ip
        .spawn(&mut k, PROBE_PATH, &[PROBE_PATH.to_string()], &[])
        .unwrap_or_else(|e| panic!("spawn {PROBE_PATH}: {e}"));
    k.run(BUDGET);
    let sym = |name: &str| {
        k.process(pid)
            .and_then(|p| p.symbols.get(name).copied())
            .unwrap_or(0)
    };
    ProbeRun {
        exit: k.process(pid).and_then(|p| p.exit_status),
        output: k.process(pid).map(|p| p.output.clone()).unwrap_or_default(),
        main_addr: sym("fault-probe:main"),
        data_addr: sym("fault-probe:msg"),
        clock: k.clock,
    }
}

/// Derives the scenario's plan from the seed (and, for permission flips,
/// the baseline run's symbol addresses — image layout is deterministic, so
/// the plan replays exactly).
pub fn plan_for(scenario: Scenario, seed: u64, baseline: &ProbeRun) -> FaultPlan {
    let mut plan = FaultPlan::zero(seed);
    let mut rng = Rng::new(seed ^ (0xfa17_0000 + scenario as u64));
    match scenario {
        Scenario::Errno => {
            let f = |nr, occurrence, kind| SyscallFault {
                nr,
                occurrence,
                kind,
            };
            plan.syscall_faults = vec![
                f(nr::SYS_WRITE, 2 + rng.below(6), FaultKind::Eintr),
                f(nr::SYS_WRITE, 9 + rng.below(6), FaultKind::Partial),
                f(nr::SYS_WRITE, 16 + rng.below(4), FaultKind::Eagain),
                f(500, 1 + rng.below(8), FaultKind::Eintr),
                f(500, 10 + rng.below(8), FaultKind::Eagain),
            ];
        }
        Scenario::Signal => {
            // Probe runs retire only a few thousand instructions, so a
            // tight stride lands deliveries inside trampolines, handlers,
            // and plain app code alike.
            plan.signal_window = Some(SignalWindow {
                signo: nr::SIGUSR1,
                start: 200 + rng.below(200),
                end: 50_000,
                stride: 150 + rng.below(150),
            });
        }
        Scenario::Sched => {
            plan.sched = Some(SchedPlan {
                rotate_period: 2 + rng.below(4),
                slice_jitter: 64 + rng.below(192),
            });
        }
        Scenario::PermFlip => {
            let page = |a: u64| a & !(sim_mem::PAGE_SIZE - 1);
            let mut flips = Vec::new();
            for (i, at) in [400u64, 900, 1_400, 1_900].iter().enumerate() {
                // Alternate code-page and data-page widenings (adding W to
                // code, X to data): never lethal by themselves, but each
                // one behaves like an mprotect IPI mid-run.
                let target = if i % 2 == 0 {
                    page(baseline.main_addr)
                } else {
                    page(baseline.data_addr)
                };
                flips.push(PermFlip {
                    at: at + rng.below(200),
                    page: target,
                    perms: 7,
                    duration: 300,
                });
            }
            // The zero page: zpoline's trampoline lives there; for every
            // other mechanism it is unmapped and the flip is a no-op.
            flips.push(PermFlip {
                at: 1_100 + rng.below(200),
                page: 0,
                perms: 7,
                duration: 250,
            });
            plan.perm_flips = flips;
        }
    }
    plan
}

/// One evaluated cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Canonical mechanism name.
    pub mech: &'static str,
    /// Scenario injected.
    pub scenario: Scenario,
    /// The exact plan injected (replayable).
    pub plan: FaultPlan,
    /// Whether the faulted run matched the clean baseline byte-for-byte
    /// (exit status and captured output).
    pub survived: bool,
    /// Faulted exit status.
    pub exit: Option<i64>,
    /// Baseline exit status.
    pub baseline_exit: Option<i64>,
}

/// Evaluates one (mechanism, scenario) cell at `seed`, given the
/// mechanism's clean baseline run.
pub fn evaluate_cell(mech: &'static str, scenario: Scenario, seed: u64, baseline: &ProbeRun) -> Cell {
    let plan = plan_for(scenario, seed, baseline);
    let faulted = run_probe(mech, Some(&plan));
    Cell {
        mech,
        scenario,
        survived: faulted.exit == baseline.exit && faulted.output == baseline.output,
        exit: faulted.exit,
        baseline_exit: baseline.exit,
        plan,
    }
}

/// Evaluates the full matrix at `seed`: one clean baseline per mechanism,
/// then every scenario against it.
pub fn full_fault_matrix(seed: u64) -> Vec<Cell> {
    let mut cells = Vec::new();
    for mech in MECHANISMS {
        let baseline = run_probe(mech, None);
        for scenario in Scenario::ALL {
            cells.push(evaluate_cell(mech, scenario, seed, &baseline));
        }
    }
    cells
}

/// Renders the matrix (scenario rows × mechanism columns) followed by a
/// one-command replay line per failing cell. Byte-deterministic for a
/// given seed.
pub fn render_fault_matrix(seed: u64, cells: &[Cell]) -> String {
    let mut out = String::new();
    out.push_str(&format!("fault resilience matrix (seed {seed})\n"));
    out.push_str(&format!("{:<10}", "scenario"));
    for mech in MECHANISMS {
        out.push_str(&format!("{mech:>12}"));
    }
    out.push('\n');
    for scenario in Scenario::ALL {
        out.push_str(&format!("{:<10}", scenario.label()));
        for mech in MECHANISMS {
            let cell = cells
                .iter()
                .find(|c| c.mech == mech && c.scenario == scenario)
                .expect("cell evaluated");
            out.push_str(&format!("{:>12}", if cell.survived { "✓" } else { "✗" }));
        }
        out.push('\n');
    }
    let failing: Vec<&Cell> = cells.iter().filter(|c| !c.survived).collect();
    if !failing.is_empty() {
        out.push_str("\nreplay failing cells:\n");
        for c in failing {
            out.push_str(&format!(
                "  simfault --replay {} '{}'\n",
                c.mech,
                c.plan.encode()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_runs_clean_natively() {
        let r = run_probe("native", None);
        assert_eq!(r.exit, Some(0));
        assert_eq!(r.output, MSG.repeat(ROUNDS as usize));
        assert_ne!(r.main_addr, 0);
        assert_ne!(r.data_addr, 0);
    }

    #[test]
    fn plans_replay_through_their_encoding() {
        let baseline = run_probe("native", None);
        for scenario in Scenario::ALL {
            let plan = plan_for(scenario, 7, &baseline);
            let round = FaultPlan::decode(&plan.encode()).expect("decodes");
            assert_eq!(round, plan, "{scenario:?} encoding is lossy");
        }
    }
}

