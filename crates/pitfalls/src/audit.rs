//! Bridges the kernel audit ledger's signature taxonomy
//! (`sim_kernel::audit::Signature`) to this crate's pitfall catalogue
//! ([`crate::Pitfall`]), so the quantified coverage reports
//! (`MATRIX_simaudit.txt`) and the pass/fail PoC matrix (Table 3) speak
//! the same language: an audited bypass carrying `P1a-exec` is the same
//! phenomenon the P1a PoC demonstrates, now counted instead of merely
//! detected.

use crate::matrix::Pitfall;
use sim_kernel::Signature;

/// The pitfall a bypass signature instantiates, if the taxonomy maps it
/// to one of the paper's named pitfalls. Both P1b flavors map to P1b:
/// `SudOff` is the Listing 2 `prctl` disable, `SelectorRewrite` the
/// selector-byte rewrite. `ForkGap`, `Vdso`, and `Uncovered` are
/// coverage phenomena without a dedicated Table 3 row (`Vdso` is
/// discussed under P2b but audited separately so startup and vDSO
/// shadows stay distinguishable).
pub fn signature_pitfall(sig: Signature) -> Option<Pitfall> {
    match sig {
        Signature::PreInit => Some(Pitfall::P2b),
        Signature::ExecGap => Some(Pitfall::P1a),
        Signature::SelectorRewrite | Signature::SudOff => Some(Pitfall::P1b),
        Signature::Blind => Some(Pitfall::P2a),
        Signature::ForkGap | Signature::Vdso | Signature::Uncovered => None,
    }
}

/// One-line description for report legends, stable across runs (the
/// committed matrices embed these strings).
pub fn signature_describe(sig: Signature) -> &'static str {
    match sig {
        Signature::PreInit => "startup syscalls before the interposer went live (P2b)",
        Signature::ExecGap => "post-execve window after the image cleared the interposer (P1a)",
        Signature::SelectorRewrite => "SUD selector rewritten to ALLOW by application code (P1b)",
        Signature::SudOff => "SUD disarmed by application prctl on the issuing thread (P1b)",
        Signature::ForkGap => "child spawned outside the mechanism's propagation",
        Signature::Blind => "issued from an uninstrumented region (dynamically generated code, P2a)",
        Signature::Vdso => "serviced by the vDSO; never entered the kernel",
        Signature::Uncovered => "mechanism claims no coverage",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pitfall_signatures_map_to_table3_rows() {
        assert_eq!(signature_pitfall(Signature::PreInit), Some(Pitfall::P2b));
        assert_eq!(signature_pitfall(Signature::ExecGap), Some(Pitfall::P1a));
        assert_eq!(
            signature_pitfall(Signature::SelectorRewrite),
            Some(Pitfall::P1b)
        );
        assert_eq!(signature_pitfall(Signature::Blind), Some(Pitfall::P2a));
        assert_eq!(signature_pitfall(Signature::SudOff), Some(Pitfall::P1b));
        assert_eq!(signature_pitfall(Signature::Vdso), None);
        assert_eq!(signature_pitfall(Signature::Uncovered), None);
    }

    #[test]
    fn signature_codes_embed_their_pitfall_labels() {
        // The stable report codes and the Table 3 labels must never
        // drift apart: a code like "P1a-exec" starts with the label of
        // the pitfall the signature maps to.
        for sig in Signature::ALL {
            if let Some(p) = signature_pitfall(sig) {
                assert!(
                    sig.code().starts_with(p.label()),
                    "{} should start with {}",
                    sig.code(),
                    p.label()
                );
            }
        }
    }

    #[test]
    fn every_signature_has_a_description() {
        for sig in Signature::ALL {
            assert!(!signature_describe(sig).is_empty());
        }
    }
}
