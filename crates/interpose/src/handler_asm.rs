//! Shared guest-assembly emitters for SUD-based interposition.
//!
//! These produce the in-guest code paths every SUD-using interposer needs:
//! the SIGSYS handler that performs interposer logic by *modifying the
//! signal context directly* (paper §2.1), and the constructor that installs
//! the handler and arms Syscall User Dispatch.

use sim_isa::Reg;
use sim_kernel::signal::{uc_reg, SI_CALL_ADDR, SI_SIGNO};
use sim_kernel::nr;
use sim_loader::ImageBuilder;

/// Configuration for [`emit_sigsys_handler`].
#[derive(Debug, Clone, Default)]
pub struct SigsysHandlerOpts {
    /// Label of the guest data byte used as the SUD selector.
    pub selector_label: String,
    /// Label the handler is defined at.
    pub handler_label: String,
    /// Optional code label called *before* emulating the syscall, with
    /// `rdi = si_call_addr` (the trapping instruction's address) and
    /// `rsi = saved rax` (the syscall number). lazypoline points this at its
    /// rewrite hostcall; libLogger at its logging hostcall.
    pub pre_call: Option<String>,
    /// Skip the selector toggling (for handlers whose own syscalls are
    /// covered by the SUD allowlist, like libK23's).
    pub no_selector_toggle: bool,
    /// Label placed on the forwarding `syscall` instruction so executions at
    /// that exact site can be counted as interposed. Defaults to
    /// `__interpose_forward` when empty.
    pub forward_label: String,
}

/// Emits the standard SIGSYS interposition handler.
///
/// On entry (per the kernel's signal ABI): `rdi` = signo, `rsi` = siginfo*,
/// `rdx` = ucontext*. The handler:
///
/// 1. sets the selector to ALLOW (unless covered by an allowlist),
/// 2. optionally calls `pre_call(si_call_addr, nr)`,
/// 3. reloads the trapped syscall's registers from the saved context and
///    re-issues the syscall (the *empty interposition function*),
///    restarting it as long as it returns `EINTR` (the interposer — not
///    the application — ate the interruption, so it must retry),
/// 4. stores the result into the saved `rax`,
/// 5. restores the selector to BLOCK and `rt_sigreturn`s.
pub fn emit_sigsys_handler(b: &mut ImageBuilder, opts: &SigsysHandlerOpts) {
    let a = &mut b.asm;
    a.label(&opts.handler_label);
    // Stash siginfo/ucontext in callee-ish scratch (everything is restored
    // by sigreturn anyway).
    a.mov_reg(Reg::R14, Reg::Rdx);
    a.mov_reg(Reg::R13, Reg::Rsi);
    if !opts.no_selector_toggle {
        a.lea_label(Reg::R11, &opts.selector_label);
        a.mov_imm(Reg::Rcx, nr::SYSCALL_DISPATCH_FILTER_ALLOW as u64);
        a.store_byte(Reg::R11, 0, Reg::Rcx);
    }
    if let Some(pre) = opts.pre_call.clone() {
        // rdi = si_call_addr; rsi = saved rax (the syscall number).
        a.load(Reg::Rdi, Reg::R13, (SI_CALL_ADDR - SI_SIGNO) as i32);
        a.load(Reg::Rsi, Reg::R14, uc_reg(Reg::Rax) as i32);
        a.call(&pre);
    }
    // Reload the trapped call's registers from the saved context.
    a.load(Reg::Rax, Reg::R14, uc_reg(Reg::Rax) as i32);
    a.load(Reg::Rdi, Reg::R14, uc_reg(Reg::Rdi) as i32);
    a.load(Reg::Rsi, Reg::R14, uc_reg(Reg::Rsi) as i32);
    a.load(Reg::Rdx, Reg::R14, uc_reg(Reg::Rdx) as i32);
    a.load(Reg::R10, Reg::R14, uc_reg(Reg::R10) as i32);
    a.load(Reg::R8, Reg::R14, uc_reg(Reg::R8) as i32);
    a.load(Reg::R9, Reg::R14, uc_reg(Reg::R9) as i32);
    // Hook point (empty interposition function) + forward the syscall.
    let fwd = if opts.forward_label.is_empty() {
        "__interpose_forward".to_string()
    } else {
        opts.forward_label.clone()
    };
    a.label(&fwd);
    a.syscall();
    // EINTR restart: the signal interrupted *our* forwarded call, so the
    // application must never observe it — reload the number from the saved
    // context and re-issue. rcx/r11 are dead (kernel-clobbered).
    let done = format!("{fwd}_done");
    a.mov_imm(Reg::R11, nr::err(nr::EINTR));
    a.cmp_reg(Reg::Rax, Reg::R11);
    a.jnz(&done);
    a.load(Reg::Rax, Reg::R14, uc_reg(Reg::Rax) as i32);
    a.jmp(&fwd);
    a.label(&done);
    a.store(Reg::R14, uc_reg(Reg::Rax) as i32, Reg::Rax);
    if !opts.no_selector_toggle {
        a.lea_label(Reg::R11, &opts.selector_label);
        a.mov_imm(Reg::Rcx, nr::SYSCALL_DISPATCH_FILTER_BLOCK as u64);
        a.store_byte(Reg::R11, 0, Reg::Rcx);
    }
    a.mov_imm(Reg::Rax, nr::SYS_RT_SIGRETURN);
    let sigreturn_label = if opts.forward_label.is_empty() {
        "__interpose_forward_sigreturn".to_string()
    } else {
        format!("{}_sigreturn", opts.forward_label)
    };
    a.label(&sigreturn_label);
    a.syscall();
}

/// Configuration for [`emit_sud_ctor`].
#[derive(Debug, Clone)]
pub struct SudCtorOpts {
    /// Constructor label to define.
    pub ctor_label: String,
    /// SIGSYS handler label (already emitted).
    pub handler_label: String,
    /// Selector byte data label.
    pub selector_label: String,
    /// Arm SUD with an allowlist covering this library (from the label at
    /// offset 0, `lib_start_label`, for `allowlist_len` bytes). `None` arms
    /// with an empty allowlist.
    pub allowlist: Option<(String, u64)>,
    /// Initial selector value (BLOCK enables interposition; ALLOW arms SUD
    /// without interposition — the paper's "SUD-no-interposition" row).
    pub initial_selector: u8,
    /// Hostcall label invoked at the end of the constructor (init hook).
    pub init_hostcall: Option<String>,
}

/// Emits a constructor that registers the SIGSYS handler, arms SUD via
/// `prctl`, sets the selector, and invokes the init hostcall.
pub fn emit_sud_ctor(b: &mut ImageBuilder, opts: &SudCtorOpts) {
    let a = &mut b.asm;
    a.label(&opts.ctor_label);
    // rt_sigaction(SIGSYS, handler), masking other signals while the
    // handler runs: a signal landing mid-emulation would otherwise nest a
    // second handler frame over the half-updated context.
    a.mov_imm(Reg::Rdi, nr::SIGSYS | nr::SIGACT_MASK_ALL);
    a.lea_label(Reg::Rsi, &opts.handler_label);
    a.mov_imm(Reg::Rax, nr::SYS_RT_SIGACTION);
    a.syscall();
    // prctl(PR_SET_SYSCALL_USER_DISPATCH, ON, start, len, selector)
    a.mov_imm(Reg::Rdi, nr::PR_SET_SYSCALL_USER_DISPATCH);
    a.mov_imm(Reg::Rsi, nr::PR_SYS_DISPATCH_ON);
    match &opts.allowlist {
        Some((start_label, len)) => {
            a.lea_label(Reg::Rdx, start_label);
            a.mov_imm(Reg::R10, *len);
        }
        None => {
            a.mov_imm(Reg::Rdx, 0);
            a.mov_imm(Reg::R10, 0);
        }
    }
    a.lea_label(Reg::R8, &opts.selector_label);
    a.mov_imm(Reg::Rax, nr::SYS_PRCTL);
    a.syscall();
    // Selector: from here on, syscalls outside the allowlist dispatch.
    a.lea_label(Reg::R11, &opts.selector_label);
    a.mov_imm(Reg::Rcx, opts.initial_selector as u64);
    a.store_byte(Reg::R11, 0, Reg::Rcx);
    if let Some(hc) = opts.init_hostcall.clone() {
        a.call(&hc);
    }
    a.ret();
}
