//! The ptrace-only baseline interposer.
//!
//! Exhaustive from the first instruction and fully expressive, but every
//! syscall costs two stops × two context switches — the "prohibitive
//! performance overhead" of §2.1. K23 reuses this mechanism *only* during
//! startup, where it is the sole option that sees everything.

use crate::Interposer;
use sim_kernel::{Kernel, Pid, Stop, TraceOpts, Tracer, TracerAction};
use std::cell::RefCell;
use std::rc::Rc;

/// The empty-hook tracer used as the ptrace interposition baseline.
#[derive(Debug, Default)]
pub struct EmptyHookTracer {
    /// Syscall-enter stops seen (== syscalls interposed).
    pub interposed: u64,
}

impl Tracer for EmptyHookTracer {
    fn on_stop(&mut self, _k: &mut Kernel, _pid: Pid, _tid: u64, stop: &Stop) -> TracerAction {
        if let Stop::SyscallEnter { .. } = stop {
            self.interposed += 1;
            sim_obs::ptrace_hook();
        }
        TracerAction::Continue
    }
}

/// ptrace-based interposition of every syscall, from process start.
#[derive(Debug, Clone, Default)]
pub struct PtraceInterposer {
    state: Rc<RefCell<EmptyHookTracer>>,
}

impl PtraceInterposer {
    /// A fresh instance.
    pub fn new() -> PtraceInterposer {
        PtraceInterposer::default()
    }
}

impl Interposer for PtraceInterposer {
    fn name(&self) -> &'static str {
        "ptrace"
    }

    fn install(&self, _k: &mut Kernel) {}

    fn spawn(
        &self,
        k: &mut Kernel,
        path: &str,
        argv: &[String],
        env: &[String],
    ) -> Result<Pid, i64> {
        let pid = k.spawn(
            path,
            argv,
            env,
            Some((
                self.state.clone(),
                TraceOpts {
                    trace_syscalls: true,
                    trace_exec: true,
                    trace_fork: true,
                    disable_vdso: true,
                },
            )),
        )?;
        // ptrace interposes from the very first instruction — live at spawn.
        k.mark_interposer_live(pid);
        Ok(pid)
    }

    fn interposed_count(&self, _k: &Kernel, _pid: Pid) -> u64 {
        self.state.borrow().interposed
    }

    fn coverage(&self) -> sim_kernel::AuditSpec {
        sim_kernel::AuditSpec {
            mechanism: self.name().to_string(),
            via_tracer: true,
            // Spawned with `disable_vdso`, so would-be vDSO calls fall
            // through to real syscalls the tracer stops on.
            covers_vdso: true,
            ..sim_kernel::AuditSpec::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::Reg;
    use sim_loader::{boot_kernel, ImageBuilder, LIBC_PATH};

    #[test]
    fn ptrace_sees_startup_syscalls() {
        let mut k = boot_kernel();
        let mut b = ImageBuilder::new("/usr/bin/tiny");
        b.entry("main");
        b.needs(LIBC_PATH);
        b.asm.label("main");
        b.asm.mov_imm(Reg::Rax, 0);
        b.asm.ret();
        b.finish().install(&mut k.vfs);
        let ip = PtraceInterposer::new();
        ip.install(&mut k);
        let pid = ip.spawn(&mut k, "/usr/bin/tiny", &[], &[]).unwrap();
        k.run(5_000_000_000);
        let p = k.process(pid).unwrap();
        assert_eq!(p.exit_status, Some(0));
        // Every executed syscall was interposed — including every startup
        // syscall that LD_PRELOAD-based mechanisms miss (P2b).
        assert_eq!(ip.interposed_count(&k, pid), p.stats.syscalls);
        assert!(p.stats.syscalls > 50);
    }

    #[test]
    fn ptrace_overhead_is_prohibitive() {
        let stress = |with_tracer: bool| {
            let mut k = boot_kernel();
            let mut b = ImageBuilder::new("/usr/bin/st");
            b.entry("main");
            b.needs(LIBC_PATH);
            b.asm.label("main");
            b.asm.mov_imm(Reg::Rcx, 100);
            b.asm.label("loop");
            b.asm.push(Reg::Rcx);
            b.asm.mov_imm(Reg::Rax, 500);
            b.asm.syscall();
            b.asm.pop(Reg::Rcx);
            b.asm.sub_imm(Reg::Rcx, 1);
            b.asm.jnz("loop");
            b.asm.mov_imm(Reg::Rax, 0);
            b.asm.ret();
            b.finish().install(&mut k.vfs);
            let pid = if with_tracer {
                let ip = PtraceInterposer::new();
                ip.spawn(&mut k, "/usr/bin/st", &[], &[]).unwrap()
            } else {
                k.spawn("/usr/bin/st", &[], &[], None).unwrap()
            };
            k.run(10_000_000_000);
            assert_eq!(k.process(pid).unwrap().exit_status, Some(0));
            k.clock
        };
        let native = stress(false);
        let traced = stress(true);
        let ratio = traced as f64 / native as f64;
        assert!(ratio > 10.0, "ptrace should be far slower; got {ratio:.1}x");
    }
}
