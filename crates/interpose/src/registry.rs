//! Interposer registry: canonical names → constructors.
//!
//! Every mechanism registers a constructor under a stable lowercase name,
//! so drivers (simperf, simtrace, simfault, the pitfalls matrix, the
//! table/figure generators) resolve interposers uniformly instead of each
//! maintaining its own per-mechanism `match`. The builtins defined in this
//! crate (native, ptrace, SUD) are pre-seeded; mechanism crates higher in
//! the dependency graph add theirs via [`register`] (each exports a
//! `register()` convenience, and `pitfalls::register_all()` installs the
//! full set).

use crate::ptrace::PtraceInterposer;
use crate::sud::SudInterposer;
use crate::{Interposer, Native};
use std::sync::{LazyLock, Mutex};

/// Constructor for one registered interposer.
pub type Maker = fn() -> Box<dyn Interposer>;

/// Canonical registry order: baselines first, then mechanisms in the
/// paper's presentation order, cheapest variant first.
const ORDER: &[&str] = &[
    "native",
    "ptrace",
    "sud",
    "sud-armed",
    "zpoline",
    "zpoline-ultra",
    "lazypoline",
    "k23",
    "k23-ultra",
    "k23-ultra+",
];

static REGISTRY: LazyLock<Mutex<Vec<(&'static str, Maker)>>> = LazyLock::new(|| {
    Mutex::new(vec![
        ("native", (|| Box::new(Native)) as Maker),
        ("ptrace", || Box::new(PtraceInterposer::new())),
        ("sud", || Box::new(SudInterposer::new())),
        ("sud-armed", || Box::new(SudInterposer::armed_only())),
    ])
});

/// Registers (or replaces) the constructor for `name`.
///
/// Idempotent: re-registering the same name overwrites the previous
/// constructor, so crate-level `register()` helpers are safe to call from
/// every test.
pub fn register(name: &'static str, maker: Maker) {
    let mut reg = REGISTRY.lock().unwrap();
    if let Some(slot) = reg.iter_mut().find(|(n, _)| *n == name) {
        slot.1 = maker;
    } else {
        reg.push((name, maker));
    }
}

/// Builds the interposer registered under `name`, if any.
pub fn by_name(name: &str) -> Option<Box<dyn Interposer>> {
    let maker = {
        let reg = REGISTRY.lock().unwrap();
        reg.iter().find(|(n, _)| *n == name).map(|(_, m)| *m)
    };
    maker.map(|m| m())
}

/// Currently registered names, in canonical order (names outside
/// [`ORDER`] follow, in registration order).
pub fn names() -> Vec<&'static str> {
    let reg = REGISTRY.lock().unwrap();
    let mut out: Vec<&'static str> = ORDER
        .iter()
        .copied()
        .filter(|o| reg.iter().any(|(n, _)| n == o))
        .collect();
    for (n, _) in reg.iter() {
        if !out.contains(n) {
            out.push(n);
        }
    }
    out
}

/// Builds every registered interposer, in canonical order.
pub fn all() -> Vec<Box<dyn Interposer>> {
    names().iter().filter_map(|n| by_name(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_resolve_and_roundtrip_names() {
        for name in ["native", "ptrace", "sud", "sud-armed"] {
            let ip = by_name(name).expect("builtin registered");
            assert_eq!(ip.name(), name);
        }
        assert!(by_name("no-such-mechanism").is_none());
    }

    #[test]
    fn names_are_canonically_ordered() {
        let ns = names();
        let native = ns.iter().position(|n| *n == "native").unwrap();
        let sud = ns.iter().position(|n| *n == "sud").unwrap();
        assert!(native < sud);
    }

    #[test]
    fn register_replaces_existing_entry() {
        register("native", || Box::new(Native));
        let ip = by_name("native").unwrap();
        assert_eq!(ip.label(), "native");
    }
}
