//! Interposer registry: canonical names → constructors.
//!
//! Every mechanism registers a constructor under a stable lowercase name,
//! so drivers (simperf, simtrace, simfault, the pitfalls matrix, the
//! table/figure generators) resolve interposers uniformly instead of each
//! maintaining its own per-mechanism `match`. The builtins defined in this
//! crate (native, ptrace, SUD) are pre-seeded; mechanism crates higher in
//! the dependency graph add theirs via [`register`] (each exports a
//! `register()` convenience, and `pitfalls::register_all()` installs the
//! full set).

use crate::ptrace::PtraceInterposer;
use crate::sud::SudInterposer;
use crate::{Interposer, Native};
use std::sync::{LazyLock, Mutex};

/// Constructor for one registered interposer.
pub type Maker = fn() -> Box<dyn Interposer>;

/// Canonical registry order: baselines first, then mechanisms in the
/// paper's presentation order, cheapest variant first.
const ORDER: &[&str] = &[
    "native",
    "ptrace",
    "sud",
    "sud-armed",
    "zpoline",
    "zpoline-ultra",
    "lazypoline",
    "k23",
    "k23-ultra",
    "k23-ultra+",
];

static REGISTRY: LazyLock<Mutex<Vec<(&'static str, Maker)>>> = LazyLock::new(|| {
    Mutex::new(vec![
        ("native", (|| Box::new(Native)) as Maker),
        ("ptrace", || Box::new(PtraceInterposer::new())),
        ("sud", || Box::new(SudInterposer::new())),
        ("sud-armed", || Box::new(SudInterposer::armed_only())),
    ])
});

/// Registers (or replaces) the constructor for `name`.
///
/// Idempotent: re-registering the same name overwrites the previous
/// constructor, so crate-level `register()` helpers are safe to call from
/// every test.
pub fn register(name: &'static str, maker: Maker) {
    let mut reg = REGISTRY.lock().unwrap();
    if let Some(slot) = reg.iter_mut().find(|(n, _)| *n == name) {
        slot.1 = maker;
    } else {
        reg.push((name, maker));
    }
}

/// Why a registry spec failed to resolve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The spec (or one of its `+`-separated segments) was empty.
    Empty,
    /// The base mechanism name is not registered.
    UnknownName(String),
    /// A layer segment names no known stack layer.
    UnknownLayer(String),
    /// The same layer appears twice in one spec.
    DuplicateLayer(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Empty => write!(f, "empty interposer spec"),
            SpecError::UnknownName(n) => write!(f, "unknown mechanism {n:?}"),
            SpecError::UnknownLayer(l) => write!(f, "unknown stack layer {l:?}"),
            SpecError::DuplicateLayer(l) => write!(f, "duplicate stack layer {l:?}"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Splits a registry spec into its base mechanism and layer names.
///
/// Grammar: `base[+layer]*`, where `base` is a registered mechanism name
/// and layers come from [`crate::stack`]. Because registered names may
/// themselves contain `+` (`"k23-ultra+"`), the base is the **longest**
/// registered name that prefixes the spec at a `+` boundary (or the whole
/// spec).
///
/// # Errors
///
/// [`SpecError`] on an empty spec/segment, an unregistered base, an
/// unknown layer, or a repeated layer.
pub fn parse_spec(spec: &str) -> Result<(String, Vec<String>), SpecError> {
    if spec.is_empty() {
        return Err(SpecError::Empty);
    }
    let registered: Vec<&'static str> = {
        let reg = REGISTRY.lock().unwrap();
        reg.iter().map(|(n, _)| *n).collect()
    };
    if registered.contains(&spec) {
        return Ok((spec.to_string(), Vec::new()));
    }
    let mut base: Option<&str> = None;
    for n in registered {
        if spec.starts_with(n)
            && spec[n.len()..].starts_with('+')
            && base.is_none_or(|b| n.len() > b.len())
        {
            base = Some(n);
        }
    }
    let Some(base) = base else {
        let head = spec.split('+').next().unwrap_or(spec);
        return Err(SpecError::UnknownName(head.to_string()));
    };
    let mut layers: Vec<String> = Vec::new();
    for seg in spec[base.len() + 1..].split('+') {
        if seg.is_empty() {
            return Err(SpecError::Empty);
        }
        if !crate::stack::layer_known(seg) {
            return Err(SpecError::UnknownLayer(seg.to_string()));
        }
        if layers.iter().any(|l| l == seg) {
            return Err(SpecError::DuplicateLayer(seg.to_string()));
        }
        layers.push(seg.to_string());
    }
    Ok((base.to_string(), layers))
}

/// Builds the interposer a spec describes: a bare registered mechanism
/// (`"k23"`) or a composed stack (`"k23+tracer+recorder"`), which wraps
/// the base in an [`crate::stack::InterposerStack`] carrying the named
/// layers.
///
/// # Errors
///
/// [`SpecError`] when the spec does not parse (see [`parse_spec`]).
pub fn by_name_spec(spec: &str) -> Result<Box<dyn Interposer>, SpecError> {
    let (base, layers) = parse_spec(spec)?;
    let maker = {
        let reg = REGISTRY.lock().unwrap();
        reg.iter().find(|(n, _)| *n == base).map(|(_, m)| *m)
    };
    let base_ip = maker.map(|m| m()).ok_or(SpecError::UnknownName(base))?;
    if layers.is_empty() {
        return Ok(base_ip);
    }
    Ok(Box::new(crate::stack::InterposerStack::new(
        base_ip, &layers,
    )))
}

/// Currently registered names, in canonical order (names outside
/// [`ORDER`] follow, in registration order).
pub fn names() -> Vec<&'static str> {
    let reg = REGISTRY.lock().unwrap();
    let mut out: Vec<&'static str> = ORDER
        .iter()
        .copied()
        .filter(|o| reg.iter().any(|(n, _)| n == o))
        .collect();
    for (n, _) in reg.iter() {
        if !out.contains(n) {
            out.push(n);
        }
    }
    out
}

/// Builds every registered interposer, in canonical order.
pub fn all() -> Vec<Box<dyn Interposer>> {
    names().iter().filter_map(|n| by_name_spec(n).ok()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_resolve_and_roundtrip_names() {
        for name in ["native", "ptrace", "sud", "sud-armed"] {
            let ip = by_name_spec(name).expect("builtin registered");
            assert_eq!(ip.name(), name);
        }
        assert_eq!(
            by_name_spec("no-such-mechanism").err(),
            Some(SpecError::UnknownName("no-such-mechanism".to_string()))
        );
    }

    #[test]
    fn spec_parse_errors_are_typed() {
        assert_eq!(parse_spec("").err(), Some(SpecError::Empty));
        assert_eq!(parse_spec("sud+").err(), Some(SpecError::Empty));
        assert_eq!(parse_spec("sud++tracer").err(), Some(SpecError::Empty));
        assert_eq!(
            parse_spec("bogus+tracer").err(),
            Some(SpecError::UnknownName("bogus".to_string()))
        );
        assert_eq!(
            parse_spec("sud+nope").err(),
            Some(SpecError::UnknownLayer("nope".to_string()))
        );
        assert_eq!(
            parse_spec("sud+tracer+tracer").err(),
            Some(SpecError::DuplicateLayer("tracer".to_string()))
        );
        let (base, layers) = parse_spec("sud+tracer+recorder").expect("parses");
        assert_eq!(base, "sud");
        assert_eq!(layers, vec!["tracer", "recorder"]);
    }

    #[test]
    fn composed_specs_resolve_and_intern_names() {
        let ip = by_name_spec("sud+tracer+recorder").expect("composed spec");
        assert_eq!(ip.name(), "sud+tracer+recorder");
        assert_eq!(ip.label(), "sud+tracer+recorder");
        assert!(by_name_spec("sud+tracer").is_ok());
        assert!(by_name_spec("sud+nope").is_err());
    }

    #[test]
    fn names_are_canonically_ordered() {
        let ns = names();
        let native = ns.iter().position(|n| *n == "native").unwrap();
        let sud = ns.iter().position(|n| *n == "sud").unwrap();
        assert!(native < sud);
    }

    #[test]
    fn register_replaces_existing_entry() {
        register("native", || Box::new(Native));
        let ip = by_name_spec("native").unwrap();
        assert_eq!(ip.label(), "native");
    }
}
