//! Composed interposition: [`InterposerStack`] layers host-side hooks
//! over one base mechanism.
//!
//! A stack is written as a registry spec — `base+layer+layer` — and
//! resolves through [`crate::registry::by_name_spec`] exactly like a bare
//! mechanism. The base does the actual interposition (SUD, ptrace,
//! rewriting, K23); the layers are priority-ordered hooks the kernel runs
//! at the base's forwarding sites, each receiving a
//! [`sim_kernel::stack::Chain`] handle with `call_next()` (invoke the
//! next layer) and `call_real()` (forward to the kernel, skipping the
//! rest). Per-layer propagation flags decide whether a layer follows
//! `fork` children and survives `execve` — the P1a env-clearing bypass
//! applies to the *base*: when the preloaded handler library is gone
//! after an exec, no forwarding sites resolve and the whole chain is
//! inert regardless of the masks.
//!
//! Built-in layers:
//!
//! | layer | priority | fork | exec | behavior |
//! |---|---|---|---|---|
//! | `sandbox` | 200 | ✓ | ✓ | denies syscall 500 with `EPERM`, short-circuiting the chain |
//! | `tracer` | 100 | ✓ | ✓ | counts per-(pid, nr) entries, passes everything through |
//! | `recorder` | 50 | ✓ | ✗ | logs (nr, ret); **naively marshals control transfers** — the nested-sigreturn composition hazard |
//! | `recorder-safe` | 50 | ✓ | ✗ | logs (nr, ret); control-transfer aware |
//! | `passthrough` | 0 | ✓ | ✓ | nothing: zero overhead, no span — observationally invisible |

use crate::Interposer;
use sim_kernel::nr;
use sim_kernel::stack::{Chain, ChainFilter, LayerHook, StackLayer, StackSession, SysResult, SyscallCtx};
use sim_kernel::{Kernel, Pid};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;
use std::sync::{LazyLock, Mutex};

/// The sentinel a naive recorder "reads back" after a control transfer —
/// the poisoned value that triggers the composition-hazard kill.
pub const RECORD_POISON: u64 = 0xdead_beef_0bad_f00d;

/// Static metadata of one built-in layer.
#[derive(Debug, Clone, Copy)]
pub struct LayerInfo {
    /// Spec segment name.
    pub name: &'static str,
    /// Dispatch priority: higher runs earlier (outermost).
    pub priority: i32,
    /// Follows forked children.
    pub propagate_fork: bool,
    /// Survives `execve`.
    pub propagate_exec: bool,
    /// Wrapper cycles charged per chained syscall.
    pub overhead: u64,
    /// Emits a `stack/<name>` simprof span per chained syscall.
    pub span: bool,
}

/// All built-in layers (spec-resolvable via [`crate::by_name_spec`]).
pub const LAYERS: [LayerInfo; 5] = [
    LayerInfo {
        name: "sandbox",
        priority: 200,
        propagate_fork: true,
        propagate_exec: true,
        overhead: 30,
        span: true,
    },
    LayerInfo {
        name: "tracer",
        priority: 100,
        propagate_fork: true,
        propagate_exec: true,
        overhead: 40,
        span: true,
    },
    LayerInfo {
        name: "recorder",
        priority: 50,
        propagate_fork: true,
        propagate_exec: false,
        overhead: 60,
        span: true,
    },
    LayerInfo {
        name: "recorder-safe",
        priority: 50,
        propagate_fork: true,
        propagate_exec: false,
        overhead: 60,
        span: true,
    },
    LayerInfo {
        name: "passthrough",
        priority: 0,
        propagate_fork: true,
        propagate_exec: true,
        overhead: 0,
        span: false,
    },
];

/// Whether `name` is a known layer.
pub fn layer_known(name: &str) -> bool {
    LAYERS.iter().any(|l| l.name == name)
}

fn layer_info(name: &str) -> Option<LayerInfo> {
    LAYERS.iter().copied().find(|l| l.name == name)
}

// ---- layer implementations ----------------------------------------------

/// Counts chained syscalls per (pid, nr); never touches the result.
#[derive(Debug, Default)]
pub struct TracerLayer {
    /// (pid, nr) → chained-entry count.
    pub counts: RefCell<BTreeMap<(Pid, u64), u64>>,
}

impl TracerLayer {
    /// Chained entries of syscall `nr` by `pid`.
    pub fn count(&self, pid: Pid, nr_: u64) -> u64 {
        self.counts.borrow().get(&(pid, nr_)).copied().unwrap_or(0)
    }

    /// All chained entries by `pid`.
    pub fn total(&self, pid: Pid) -> u64 {
        self.counts
            .borrow()
            .iter()
            .filter(|((p, _), _)| *p == pid)
            .map(|(_, c)| *c)
            .sum()
    }
}

impl LayerHook for TracerLayer {
    fn on_syscall(&self, k: &mut Kernel, ctx: &mut SyscallCtx, chain: &mut Chain) -> SysResult {
        *self.counts.borrow_mut().entry((ctx.pid, ctx.nr)).or_insert(0) += 1;
        chain.call_next(k, ctx)
    }
}

/// Logs (pid, nr, ret) per chained syscall. In naive mode it treats
/// *every* outcome as a value to marshal: after a control transfer
/// (`rt_sigreturn`) it still "reads back a return value", reproducing the
/// nested-sigreturn composition hazard (its epilogue runs on the frame
/// the sigreturn abandoned — the kernel kills the process). The safe
/// variant passes control transfers through untouched.
#[derive(Debug)]
pub struct RecorderLayer {
    safe: bool,
    /// Logged completions: (pid, nr, ret).
    pub log: RefCell<Vec<(Pid, u64, u64)>>,
}

impl RecorderLayer {
    fn new(safe: bool) -> RecorderLayer {
        RecorderLayer {
            safe,
            log: RefCell::new(Vec::new()),
        }
    }

    /// Logged entries for `pid`.
    pub fn entries(&self, pid: Pid) -> usize {
        self.log.borrow().iter().filter(|(p, _, _)| *p == pid).count()
    }
}

impl LayerHook for RecorderLayer {
    fn on_syscall(&self, k: &mut Kernel, ctx: &mut SyscallCtx, chain: &mut Chain) -> SysResult {
        match chain.call_next(k, ctx) {
            SysResult::Value(v) => {
                self.log.borrow_mut().push((ctx.pid, ctx.nr, v));
                SysResult::Value(v)
            }
            SysResult::Control if self.safe => SysResult::Control,
            SysResult::Control => {
                self.log.borrow_mut().push((ctx.pid, ctx.nr, RECORD_POISON));
                SysResult::Value(RECORD_POISON)
            }
        }
    }
}

/// Denies one syscall number with `EPERM`, short-circuiting the chain
/// (the layers below it and the kernel never see the call); everything
/// else passes through. The default policy denies the unknown-syscall
/// probe nr 500.
#[derive(Debug)]
pub struct SandboxLayer {
    /// The denied syscall number.
    pub deny_nr: u64,
    /// pid → denied-call count.
    pub denied: RefCell<BTreeMap<Pid, u64>>,
}

impl SandboxLayer {
    fn new() -> SandboxLayer {
        SandboxLayer {
            deny_nr: nr::SYS_NONEXISTENT,
            denied: RefCell::new(BTreeMap::new()),
        }
    }

    /// Denied calls by `pid`.
    pub fn denied_count(&self, pid: Pid) -> u64 {
        self.denied.borrow().get(&pid).copied().unwrap_or(0)
    }
}

impl LayerHook for SandboxLayer {
    fn on_syscall(&self, k: &mut Kernel, ctx: &mut SyscallCtx, chain: &mut Chain) -> SysResult {
        if ctx.nr == self.deny_nr {
            *self.denied.borrow_mut().entry(ctx.pid).or_insert(0) += 1;
            return SysResult::Value(nr::err(nr::EPERM));
        }
        chain.call_next(k, ctx)
    }
}

/// Does nothing at all: `call_next` immediately, zero overhead, no span.
/// The byte-identity proptest's layer — a single-passthrough stack must
/// be observationally indistinguishable from the bare base.
#[derive(Debug, Default)]
pub struct PassthroughLayer;

impl LayerHook for PassthroughLayer {
    fn on_syscall(&self, k: &mut Kernel, ctx: &mut SyscallCtx, chain: &mut Chain) -> SysResult {
        chain.call_next(k, ctx)
    }
}

/// A built layer instance: shared between the kernel session (which
/// dispatches it) and the stack (which exposes its state to callers).
#[derive(Clone)]
pub enum LayerHandle {
    /// See [`PassthroughLayer`].
    Passthrough(Rc<PassthroughLayer>),
    /// See [`TracerLayer`].
    Tracer(Rc<TracerLayer>),
    /// See [`RecorderLayer`] (both variants).
    Recorder(Rc<RecorderLayer>),
    /// See [`SandboxLayer`].
    Sandbox(Rc<SandboxLayer>),
}

impl LayerHandle {
    fn build(name: &str) -> LayerHandle {
        match name {
            "passthrough" => LayerHandle::Passthrough(Rc::new(PassthroughLayer)),
            "tracer" => LayerHandle::Tracer(Rc::new(TracerLayer::default())),
            "recorder" => LayerHandle::Recorder(Rc::new(RecorderLayer::new(false))),
            "recorder-safe" => LayerHandle::Recorder(Rc::new(RecorderLayer::new(true))),
            "sandbox" => LayerHandle::Sandbox(Rc::new(SandboxLayer::new())),
            other => panic!("unknown layer {other:?} (parse_spec admits only known layers)"),
        }
    }

    fn hook(&self) -> Rc<dyn LayerHook> {
        match self {
            LayerHandle::Passthrough(h) => h.clone(),
            LayerHandle::Tracer(h) => h.clone(),
            LayerHandle::Recorder(h) => h.clone(),
            LayerHandle::Sandbox(h) => h.clone(),
        }
    }
}

/// A priority-ordered stack of layers over one base mechanism, itself an
/// [`Interposer`]: `install` installs the base and the kernel-side
/// [`StackSession`]; `spawn` spawns under the base and binds every layer
/// to the new process.
pub struct InterposerStack {
    base: Box<dyn Interposer>,
    spec: String,
    layers: Vec<(String, LayerHandle)>,
}

impl InterposerStack {
    /// Wraps `base` with `layer_names` (must all be known — resolve specs
    /// through [`crate::registry::by_name_spec`] for typed errors).
    pub fn new(base: Box<dyn Interposer>, layer_names: &[String]) -> InterposerStack {
        let spec = std::iter::once(base.name().to_string())
            .chain(layer_names.iter().cloned())
            .collect::<Vec<_>>()
            .join("+");
        let layers = layer_names
            .iter()
            .map(|n| (n.clone(), LayerHandle::build(n)))
            .collect();
        InterposerStack { base, spec, layers }
    }

    /// Builds the stack a spec describes (concrete type, so callers keep
    /// access to the layer handles).
    ///
    /// # Errors
    ///
    /// [`crate::SpecError`] when the spec does not parse or names no
    /// layers (a bare mechanism is not a stack).
    pub fn from_spec(spec: &str) -> Result<InterposerStack, crate::SpecError> {
        let (base, layers) = crate::registry::parse_spec(spec)?;
        if layers.is_empty() {
            return Err(crate::SpecError::Empty);
        }
        let base_ip = crate::registry::by_name_spec(&base)?;
        Ok(InterposerStack::new(base_ip, &layers))
    }

    /// The base mechanism.
    pub fn base(&self) -> &dyn Interposer {
        self.base.as_ref()
    }

    /// The tracer layer's handle, when the spec carries one.
    pub fn tracer(&self) -> Option<Rc<TracerLayer>> {
        self.layers.iter().find_map(|(_, h)| match h {
            LayerHandle::Tracer(t) => Some(t.clone()),
            _ => None,
        })
    }

    /// The recorder layer's handle (either variant), when present.
    pub fn recorder(&self) -> Option<Rc<RecorderLayer>> {
        self.layers.iter().find_map(|(_, h)| match h {
            LayerHandle::Recorder(r) => Some(r.clone()),
            _ => None,
        })
    }

    /// The sandbox layer's handle, when present.
    pub fn sandbox(&self) -> Option<Rc<SandboxLayer>> {
        self.layers.iter().find_map(|(_, h)| match h {
            LayerHandle::Sandbox(s) => Some(s.clone()),
            _ => None,
        })
    }
}

impl Interposer for InterposerStack {
    fn name(&self) -> &'static str {
        intern(&self.spec)
    }

    fn label(&self) -> String {
        self.spec.clone()
    }

    fn install(&self, k: &mut Kernel) {
        self.base.install(k);
        let defs: Vec<StackLayer> = self
            .layers
            .iter()
            .map(|(name, handle)| {
                let info = layer_info(name).expect("layers validated at construction");
                StackLayer {
                    name: name.clone(),
                    priority: info.priority,
                    propagate_fork: info.propagate_fork,
                    propagate_exec: info.propagate_exec,
                    overhead: info.overhead,
                    span: info.span,
                    hook: handle.hook(),
                }
            })
            .collect();
        let syms = self.base.chain_symbols();
        let filter = if syms.is_empty() {
            ChainFilter::All
        } else {
            ChainFilter::Sites(Rc::new(syms))
        };
        k.install_stack(StackSession::new(self.spec.clone(), defs, filter));
    }

    fn spawn(
        &self,
        k: &mut Kernel,
        path: &str,
        argv: &[String],
        env: &[String],
    ) -> Result<Pid, i64> {
        let pid = self.base.spawn(k, path, argv, env)?;
        k.bind_stack(pid);
        Ok(pid)
    }

    fn attribution_path(&self) -> Option<String> {
        self.base.attribution_path()
    }

    fn forward_symbols(&self) -> Vec<String> {
        self.base.forward_symbols()
    }

    fn chain_symbols(&self) -> Vec<String> {
        self.base.chain_symbols()
    }

    fn interposed_count(&self, k: &Kernel, pid: Pid) -> u64 {
        self.base.interposed_count(k, pid)
    }

    fn coverage(&self) -> sim_kernel::AuditSpec {
        // Layers add behavior on top of the base's interception — they
        // never widen which syscalls are caught — so the stack's coverage
        // claim is the base's, relabeled with the full spec. Per-layer
        // participation is accounted separately via the ledger's
        // `layer_hits`.
        sim_kernel::AuditSpec {
            mechanism: self.spec.clone(),
            ..self.base.coverage()
        }
    }
}

/// Interns a spec so [`Interposer::name`] can hand out `&'static str` for
/// dynamically composed names. Bounded by the number of distinct specs a
/// process resolves.
fn intern(s: &str) -> &'static str {
    static INTERNED: LazyLock<Mutex<Vec<&'static str>>> = LazyLock::new(|| Mutex::new(Vec::new()));
    let mut v = INTERNED.lock().unwrap();
    if let Some(e) = v.iter().find(|e| **e == s) {
        return e;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    v.push(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_table_is_consistent() {
        for info in LAYERS {
            assert!(layer_known(info.name));
            // Every layer builds.
            let _ = LayerHandle::build(info.name);
        }
        assert!(!layer_known("nope"));
        // The invisibility layer really is invisible.
        let p = layer_info("passthrough").unwrap();
        assert_eq!(p.overhead, 0);
        assert!(!p.span);
    }

    #[test]
    fn stack_composes_spec_and_handles() {
        let s = InterposerStack::from_spec("sud+tracer+recorder").expect("parses");
        assert_eq!(s.label(), "sud+tracer+recorder");
        assert_eq!(s.name(), "sud+tracer+recorder");
        assert!(s.tracer().is_some());
        assert!(s.recorder().is_some());
        assert!(s.sandbox().is_none());
        assert_eq!(s.base().name(), "sud");
        // A bare mechanism is not a stack.
        assert!(InterposerStack::from_spec("sud").is_err());
    }
}
