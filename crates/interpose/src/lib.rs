//! # interpose — the common interposition API and baseline interposers
//!
//! Defines the [`Interposer`] trait every mechanism in this reproduction
//! implements (native, SUD, ptrace, zpoline, lazypoline, K23), plus the
//! shared guest-assembly emitters for SUD signal handlers and constructors
//! ([`handler_asm`]).
//!
//! Per the paper's methodology (§6.2), every interposer's hook is the
//! *empty interposition function*: it simply forwards the original syscall
//! and returns its result, isolating the cost of the mechanism itself.

pub mod handler_asm;
pub mod ptrace;
pub mod registry;
pub mod stack;
pub mod sud;

pub use ptrace::PtraceInterposer;
pub use registry::{all, by_name_spec, names, register, SpecError};
pub use stack::InterposerStack;
pub use sud::{SudInterposer, SudMode};

use sim_kernel::{Kernel, Pid};

/// A system call interposition mechanism (object-safe: benches, the
/// pitfalls matrix, and the fault explorer all drive
/// `Box<dyn Interposer>` instances obtained from the [`registry`]).
pub trait Interposer {
    /// Canonical registry name (lowercase; the key
    /// [`registry::by_name_spec`] resolves and the name replay commands
    /// use). For a composed stack this is the full spec
    /// (`"k23+tracer+recorder"`).
    fn name(&self) -> &'static str;

    /// Display label matching the paper's configuration labels
    /// (e.g. `"K23-ultra+"`, `"SUD-no-interposition"`).
    fn label(&self) -> String {
        self.name().to_string()
    }

    /// Installs guest libraries into the VFS and registers hostcalls.
    /// Must be called at least once per kernel before
    /// [`Interposer::spawn`].
    ///
    /// **Idempotency contract:** `install` must be safe to call multiple
    /// times on the same kernel — library files overwrite identically,
    /// hostcall registrations replace their previous closure, and no
    /// per-call state accumulates. Drivers rely on this to re-install
    /// after reconfiguring a kernel without tracking whether a mechanism
    /// was installed before.
    fn install(&self, k: &mut Kernel);

    /// Spawns `path` under this interposer.
    ///
    /// # Errors
    ///
    /// Returns `-errno` when the image cannot be loaded.
    fn spawn(
        &self,
        k: &mut Kernel,
        path: &str,
        argv: &[String],
        env: &[String],
    ) -> Result<Pid, i64>;

    /// The guest path syscalls are attributed to when they are issued by
    /// this mechanism's handler library, if any.
    fn attribution_path(&self) -> Option<String> {
        None
    }

    /// Fully-qualified symbol names (`"lib basename:symbol"`) of the
    /// handler's *forwarding* `syscall` instructions. Every interposed call
    /// is re-issued from one of these exact sites, so counting executions at
    /// them measures interposition precisely (setup syscalls excluded).
    fn forward_symbols(&self) -> Vec<String> {
        Vec::new()
    }

    /// The forwarding symbols at which a composed stack's chain
    /// dispatches. Defaults to [`Interposer::forward_symbols`];
    /// mechanisms whose forward list includes interposer-internal sites
    /// (fake control syscalls, internal sigreturns) override this to just
    /// the sites that carry *application* syscalls. An empty list means
    /// the chain intercepts every site of a covered process (ptrace,
    /// native).
    fn chain_symbols(&self) -> Vec<String> {
        self.forward_symbols()
    }

    /// How many of `pid`'s executed syscalls were demonstrably interposed.
    fn interposed_count(&self, k: &Kernel, pid: Pid) -> u64 {
        count_at_symbols(k, pid, &self.forward_symbols())
    }

    /// What this mechanism claims to cover — the expectation the
    /// kernel-side audit ledger (`sim_kernel::audit`) checks every
    /// retired syscall against. The default claims nothing: every
    /// syscall audits as `uncovered`, which is correct for the native
    /// baseline and any mechanism that has not yet declared its
    /// coverage.
    fn coverage(&self) -> sim_kernel::AuditSpec {
        sim_kernel::AuditSpec::none(self.name())
    }
}

/// Sums the executed-syscall counts at the sites named by `symbols`,
/// resolved through `pid`'s symbol table. Sites are deduplicated by
/// address first: two stack layers (or two aliases) sharing a forward
/// symbol must not double-count the syscalls issued there.
pub fn count_at_symbols(k: &Kernel, pid: Pid, symbols: &[String]) -> u64 {
    let Some(p) = k.process(pid) else {
        return 0;
    };
    let mut addrs: Vec<u64> = symbols
        .iter()
        .filter_map(|s| p.symbols.get(s).copied())
        .collect();
    addrs.sort_unstable();
    addrs.dedup();
    addrs
        .into_iter()
        .map(|addr| p.stats.syscalls_at_site(addr))
        .sum()
}

/// No interposition at all — the native baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct Native;

impl Interposer for Native {
    fn name(&self) -> &'static str {
        "native"
    }

    fn install(&self, _k: &mut Kernel) {}

    fn spawn(
        &self,
        k: &mut Kernel,
        path: &str,
        argv: &[String],
        env: &[String],
    ) -> Result<Pid, i64> {
        k.spawn(path, argv, env, None)
    }
}

/// Registers the handler library's mapped extent as a profiler span
/// range (`"<label>/handler"`), so sampled time spent inside the
/// interposition handler is attributed to the mechanism on the
/// critical-path table. Called from each interposer's init hostcall,
/// once the library is mapped; a no-op when observability is off and
/// idempotent across repeated init calls.
pub fn register_handler_span(k: &Kernel, pid: Pid, lib_path: &str, label: &str) {
    if !sim_obs::enabled() {
        return;
    }
    let Some(p) = k.process(pid) else {
        return;
    };
    let base = lib_path.rsplit('/').next().unwrap_or(lib_path);
    let mut lo = u64::MAX;
    let mut hi = 0u64;
    for m in p.space.mappings() {
        if m.name.rsplit('/').next().unwrap_or(&m.name) == base {
            lo = lo.min(m.start);
            hi = hi.max(m.end);
        }
    }
    if lo < hi {
        sim_obs::register_span_range(pid, lo, hi, &format!("{label}/handler"));
    }
}

/// Adds (or extends) `LD_PRELOAD` in an environment vector.
pub fn env_with_preload(env: &[String], lib: &str) -> Vec<String> {
    let mut out = Vec::with_capacity(env.len() + 1);
    let mut done = false;
    for e in env {
        if let Some(v) = e.strip_prefix("LD_PRELOAD=") {
            if v.split(':').any(|p| p == lib) {
                out.push(e.clone());
            } else {
                out.push(format!("LD_PRELOAD={v}:{lib}"));
            }
            done = true;
        } else {
            out.push(e.clone());
        }
    }
    if !done {
        out.push(format!("LD_PRELOAD={lib}"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_with_preload_inserts_and_extends() {
        assert_eq!(env_with_preload(&[], "/lib/a.so"), vec!["LD_PRELOAD=/lib/a.so"]);
        let e = vec!["PATH=/bin".to_string(), "LD_PRELOAD=/lib/a.so".to_string()];
        assert_eq!(
            env_with_preload(&e, "/lib/b.so"),
            vec!["PATH=/bin", "LD_PRELOAD=/lib/a.so:/lib/b.so"]
        );
        // Idempotent.
        let e2 = env_with_preload(&e, "/lib/a.so");
        assert_eq!(e2[1], "LD_PRELOAD=/lib/a.so");
    }
}
