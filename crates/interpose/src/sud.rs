//! The SUD-only baseline interposer (the paper's "SUD" and
//! "SUD-no-interposition" rows).
//!
//! A preloaded library arms Syscall User Dispatch in its constructor; every
//! subsequent syscall outside the handler raises SIGSYS and is emulated in
//! the handler by re-issuing it with the selector set to ALLOW. This is
//! exhaustive *after* library load, fully expressive, and — as Table 5
//! shows — brutally slow for syscall-heavy workloads (~15× native).

use crate::handler_asm::{emit_sigsys_handler, emit_sud_ctor, SigsysHandlerOpts, SudCtorOpts};
use crate::{env_with_preload, Interposer};
use sim_kernel::{nr, Kernel, Pid};
use sim_loader::ImageBuilder;

/// Library install path.
pub const SUD_LIB: &str = "/usr/lib/libsud-interpose.so";

/// Whether the selector actually dispatches syscalls.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SudMode {
    /// Selector = BLOCK: every syscall is interposed via SIGSYS.
    Interpose,
    /// Selector = ALLOW: SUD armed but inert — isolates the kernel's
    /// SUD slow-path cost ("SUD-no-interposition").
    Armed,
}

/// The SUD baseline interposer.
#[derive(Debug, Clone, Copy)]
pub struct SudInterposer {
    /// Dispatch mode.
    pub mode: SudMode,
}

impl SudInterposer {
    /// An interposing instance.
    pub fn new() -> SudInterposer {
        SudInterposer {
            mode: SudMode::Interpose,
        }
    }

    /// An armed-but-inert instance.
    pub fn armed_only() -> SudInterposer {
        SudInterposer {
            mode: SudMode::Armed,
        }
    }

    /// Builds the guest library.
    fn build_lib(&self) -> sim_loader::SimElf {
        let mut b = ImageBuilder::new(SUD_LIB);
        b.isolated();
        b.init("sud_ctor");
        // Offset-0 label so the SUD allowlist can cover this library: the
        // handler's own syscalls — in particular its `rt_sigreturn` — must
        // bypass dispatch, or the return from the handler would recursively
        // trigger SUD (paper §2.1).
        b.asm.label("__lib_start");
        emit_sigsys_handler(
            &mut b,
            &SigsysHandlerOpts {
                selector_label: "__sud_selector".into(),
                handler_label: "sud_sigsys_handler".into(),
                pre_call: None,
                no_selector_toggle: false,
                forward_label: String::new(),
            },
        );
        b.hostcall_fn("__host_sud_mark_live");
        emit_sud_ctor(
            &mut b,
            &SudCtorOpts {
                ctor_label: "sud_ctor".into(),
                handler_label: "sud_sigsys_handler".into(),
                selector_label: "__sud_selector".into(),
                allowlist: Some(("__lib_start".into(), 0x10_0000)),
                initial_selector: match self.mode {
                    SudMode::Interpose => nr::SYSCALL_DISPATCH_FILTER_BLOCK,
                    SudMode::Armed => nr::SYSCALL_DISPATCH_FILTER_ALLOW,
                },
                init_hostcall: Some("__host_sud_mark_live".into()),
            },
        );
        b.data_object("__sud_selector", &[nr::SYSCALL_DISPATCH_FILTER_ALLOW]);
        b.finish()
    }
}

impl Default for SudInterposer {
    fn default() -> Self {
        SudInterposer::new()
    }
}

impl Interposer for SudInterposer {
    fn name(&self) -> &'static str {
        match self.mode {
            SudMode::Interpose => "sud",
            SudMode::Armed => "sud-armed",
        }
    }

    fn label(&self) -> String {
        match self.mode {
            SudMode::Interpose => "SUD".to_string(),
            SudMode::Armed => "SUD-no-interposition".to_string(),
        }
    }

    fn install(&self, k: &mut Kernel) {
        self.build_lib().install(&mut k.vfs);
        sim_obs::register_region_path(SUD_LIB, &self.label());
        let label = self.label();
        k.register_hostcall("__host_sud_mark_live", move |k, pid, _tid| {
            k.mark_interposer_live(pid);
            crate::register_handler_span(k, pid, SUD_LIB, &label);
        });
    }

    fn spawn(
        &self,
        k: &mut Kernel,
        path: &str,
        argv: &[String],
        env: &[String],
    ) -> Result<Pid, i64> {
        let env = env_with_preload(env, SUD_LIB);
        k.spawn(path, argv, &env, None)
    }

    fn attribution_path(&self) -> Option<String> {
        Some(SUD_LIB.to_string())
    }

    fn forward_symbols(&self) -> Vec<String> {
        vec!["libsud-interpose.so:__interpose_forward".to_string()]
    }

    fn coverage(&self) -> sim_kernel::AuditSpec {
        match self.mode {
            SudMode::Interpose => sim_kernel::AuditSpec {
                mechanism: self.name().to_string(),
                handler_regions: vec!["libsud-interpose.so".to_string()],
                via_sigsys: true,
                ..sim_kernel::AuditSpec::default()
            },
            // SUD-no-interposition arms the dispatcher but installs no
            // handler: it claims nothing, so every syscall audits as
            // uncovered (the paper's pure-overhead row).
            SudMode::Armed => sim_kernel::AuditSpec::none(self.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::Reg;
    use sim_loader::{boot_kernel, LIBC_PATH};

    fn stress_app(n: u64) -> sim_loader::SimElf {
        let mut b = ImageBuilder::new("/usr/bin/stress");
        b.entry("main");
        b.needs(LIBC_PATH);
        b.asm.label("main");
        b.asm.mov_imm(Reg::Rcx, n);
        b.asm.label("loop");
        b.asm.push(Reg::Rcx);
        b.asm.mov_imm(Reg::Rax, nr::SYS_NONEXISTENT);
        b.asm.syscall();
        b.asm.pop(Reg::Rcx);
        b.asm.sub_imm(Reg::Rcx, 1);
        b.asm.jnz("loop");
        b.asm.mov_imm(Reg::Rax, 0);
        b.asm.ret();
        b.finish()
    }

    #[test]
    fn sud_interposes_app_syscalls() {
        let mut k = boot_kernel();
        let ip = SudInterposer::new();
        ip.install(&mut k);
        stress_app(10).install(&mut k.vfs);
        let pid = ip.spawn(&mut k, "/usr/bin/stress", &[], &[]).unwrap();
        let exit = k.run(2_000_000_000);
        assert_eq!(exit, sim_kernel::RunExit::AllExited, "run completed");
        let p = k.process(pid).unwrap();
        assert_eq!(p.exit_status, Some(0));
        // All 10 stress syscalls trapped via SIGSYS and were re-issued from
        // the handler library.
        assert!(p.stats.sigsys_count >= 10, "sigsys: {}", p.stats.sigsys_count);
        assert!(
            ip.interposed_count(&k, pid) >= 10,
            "interposed: {:?}",
            p.stats.syscalls_via
        );
    }

    #[test]
    fn armed_mode_never_traps() {
        let mut k = boot_kernel();
        let ip = SudInterposer::armed_only();
        ip.install(&mut k);
        stress_app(10).install(&mut k.vfs);
        let pid = ip.spawn(&mut k, "/usr/bin/stress", &[], &[]).unwrap();
        k.run(2_000_000_000);
        let p = k.process(pid).unwrap();
        assert_eq!(p.exit_status, Some(0));
        assert_eq!(p.stats.sigsys_count, 0);
        assert_eq!(ip.interposed_count(&k, pid), 0);
    }

    #[test]
    fn sud_is_dramatically_slower_than_native() {
        // The shape of Table 5's SUD row: interposing costs ~10-20x.
        let run = |ip: &dyn Interposer| -> (u64, u64) {
            let mut k = boot_kernel();
            ip.install(&mut k);
            stress_app(200).install(&mut k.vfs);
            let pid = ip.spawn(&mut k, "/usr/bin/stress", &[], &[]).unwrap();
            // Cycles consumed once the app's own loop starts: measure whole
            // run; startup dominates neither at n=200 for the ratio check
            // below (we compare slopes instead).
            let start = k.clock;
            k.run(5_000_000_000);
            let p = k.process(pid).unwrap();
            assert_eq!(p.exit_status, Some(0), "{}", ip.label());
            (k.clock - start, p.stats.sigsys_count)
        };
        let (native, _) = run(&crate::Native);
        let (sud, sigsys) = run(&SudInterposer::new());
        assert!(sigsys >= 200);
        let ratio = sud as f64 / native as f64;
        assert!(ratio > 5.0, "expected heavy SUD penalty, got {ratio:.2}x");
    }
}
