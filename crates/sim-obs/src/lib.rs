//! # sim-obs — deterministic tracing and metrics for the simulator
//!
//! A zero-overhead-when-disabled observability layer threaded through
//! `sim-mem`, `sim-cpu`, `sim-kernel`, and every interposer crate. It
//! records two kinds of data:
//!
//! * **Events** — structured records (syscall enter/exit, SIGSYS and
//!   ptrace-stop round-trips, context switches, SUD selector flips, PKU
//!   faults, icache revalidations/invalidations, TLB fills) pushed into
//!   bounded per-CPU ring buffers. Every event is stamped with the
//!   *simulated* clock — never wall time — so a trace is bit-identical
//!   across repeated runs and, for architectural events, across the block
//!   and stepwise engines.
//! * **Counters and histograms** — TLB hit rate, icache reuse vs.
//!   re-decode, block lengths, page-run lengths, and per-syscall latency
//!   histograms in sim-cycles bucketed per interposer path, so K23 vs.
//!   zpoline vs. lazypoline vs. SUD-only vs. ptrace-only overhead is
//!   directly attributable (paper Tables 3/4).
//!
//! ## Determinism contract
//!
//! Events split into two classes:
//!
//! * **Architectural** (syscalls, signals, tracer stops, context switches,
//!   SUD arms/selector flips, PKU faults): emitted from kernel code shared
//!   by both engines, stamped with clocks the determinism oracle already
//!   proves equal — these streams are byte-identical across engines.
//! * **Microarchitectural** ([`EventKind::TlbFill`],
//!   [`EventKind::IcacheRevalidate`], [`EventKind::IcacheInvalidate`]):
//!   the stepwise oracle seeds the icache flush at every serialization
//!   point while the block engine revalidates, so these *counts differ by
//!   design* across engines. They are therefore gated behind
//!   [`ObsConfig::micro_events`] (off by default) and excluded from the
//!   cross-engine equality guarantee; within one engine they are still
//!   bit-identical run to run.
//!
//! Ring buffers are bounded: once a CPU's ring is full, new events are
//! counted in [`Ring::dropped`] instead of growing the buffer, keeping
//! memory use flat and the recorded prefix deterministic.
//!
//! ## Threading model
//!
//! The simulator is single-host-threaded (a `Kernel` owns everything via
//! `Rc`), so all state here is thread-local: each host thread gets an
//! independent recorder, which also isolates concurrent `cargo test`
//! threads from each other. "Per-CPU" refers to *simulated* CPUs, keyed
//! by `(pid, tid)`.
//!
//! Not to be confused with `k23::log`, the K23 *offline site log* (the
//! persisted set of syscall sites discovered by the offline phase); this
//! crate is runtime telemetry about the simulation itself.

mod export;

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;

/// Label used for syscall sites not inside any registered interposer
/// region: sites in the application or libc images ("direct" syscalls).
pub const DIRECT_PATH: &str = "direct";

/// One structured trace event. All payloads are plain integers or
/// `'static` names so events are `Copy` and comparisons are exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// Guest entered the kernel for a syscall. `path` indexes
    /// [`Recorder::paths`]: 0 is [`DIRECT_PATH`], others are interposer
    /// labels registered via [`register_region_path`].
    SyscallEnter {
        nr: u64,
        site: u64,
        path: u16,
        name: &'static str,
    },
    /// Syscall completed (or was cut short by SIGSYS, in which case
    /// `ret` is `u64::MAX` and the latency covers entry to delivery).
    SyscallExit {
        nr: u64,
        ret: u64,
        path: u16,
        latency: u64,
        name: &'static str,
    },
    /// SUD blocked the syscall and SIGSYS is about to be delivered.
    Sigsys { nr: u64, site: u64 },
    /// The tracee stopped for its ptracer (one full round-trip: two
    /// context switches were charged).
    TracerStop { kind: &'static str },
    /// The scheduler switched the running thread.
    ContextSwitch,
    /// `prctl(PR_SET_SYSCALL_USER_DISPATCH, ON)` armed SUD.
    SudArm { selector_addr: u64 },
    /// The SUD selector byte changed since this CPU last entered the
    /// kernel with SUD armed (ALLOW <-> BLOCK flip).
    SudSelectorFlip { value: u8 },
    /// A protection-key fault (lazypoline/K23 PKU guard).
    PkuFault { addr: u64 },
    /// `sim-fault` injected an errno (or partial-transfer cap) into a
    /// syscall occurrence.
    FaultErrno { nr: u64, kind: &'static str },
    /// `sim-fault` injected an asynchronous signal at an instruction
    /// boundary (`delivered` is false when the guest had no handler and
    /// the injection was deterministically skipped).
    FaultSignal { signo: u64, delivered: bool },
    /// `sim-fault` transiently flipped (or restored) a page's
    /// permissions.
    FaultPermFlip { page: u64, restore: bool },
    /// Microarchitectural: software TLB miss filled a slot.
    TlbFill { page: u64 },
    /// Microarchitectural: a stale icache entry revalidated by version
    /// check instead of re-decoding.
    IcacheRevalidate { rip: u64 },
    /// Microarchitectural: a store invalidated decoded instructions.
    IcacheInvalidate { addr: u64, entries: u64 },
    /// Coverage audit: the kernel's dispatch choke point saw a syscall
    /// the configured mechanism missed. `sig` is the pitfall-signature
    /// code (`sim_kernel::audit::Signature::code`). Gated behind
    /// [`ObsConfig::audit_events`] (off by default) so the event stream
    /// stays byte-identical between audit-on and audit-off runs;
    /// [`Counters`] and [`Recorder::audit_by_path`] are maintained
    /// regardless.
    AuditBypass {
        nr: u64,
        site: u64,
        sig: &'static str,
    },
    /// A critical-path span opened. `stage` indexes [`Recorder::stages`];
    /// emitted by an explicit [`span_enter`] or when execution entered a
    /// guest-address range registered via [`register_span_range`].
    SpanEnter { stage: u16 },
    /// The matching span closed; `dur` is its length in sim-cycles.
    SpanExit { stage: u16, dur: u64 },
}

/// An event stamped with the simulated clock and the simulated CPU
/// (`(pid, tid)`) that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub clock: u64,
    pub pid: u64,
    pub tid: u64,
    /// Recorder-wide insertion sequence number: a total order over all
    /// rings. Exporters use it to break clock ties so a begin/end pair
    /// emitted at the same clock can never be reordered.
    pub seq: u64,
    pub kind: EventKind,
}

/// Recorder configuration, fixed at [`enable`] time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// Maximum events retained per simulated CPU; overflow increments
    /// the ring's drop counter instead of growing memory.
    pub ring_capacity: usize,
    /// Record microarchitectural events (TLB fills, icache
    /// revalidations/invalidations) into the rings. Off by default
    /// because their counts legitimately differ between the block and
    /// stepwise engines; counters are maintained regardless.
    pub micro_events: bool,
    /// Record [`EventKind::AuditBypass`] events into the rings. Off by
    /// default so enabling the kernel's coverage audit never perturbs
    /// the event stream (the audit-on/audit-off identity the
    /// invisibility proptests pin down); audit counters and the per-path
    /// table are maintained regardless.
    pub audit_events: bool,
}

impl Default for ObsConfig {
    fn default() -> Self {
        let ring_capacity = std::env::var("SIM_OBS_RING_CAP")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(1 << 16);
        ObsConfig {
            ring_capacity,
            micro_events: false,
            audit_events: false,
        }
    }
}

/// Bounded event buffer for one simulated CPU.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Ring {
    cap: usize,
    pub events: Vec<Event>,
    /// Events discarded because the ring was full.
    pub dropped: u64,
}

impl Ring {
    fn new(cap: usize) -> Ring {
        Ring {
            cap,
            events: Vec::new(),
            dropped: 0,
        }
    }

    fn push(&mut self, ev: Event) {
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }
}

/// Power-of-two histogram: bucket `b` counts values whose bit width is
/// `b` (bucket 0 holds only zero, bucket 1 holds 1, bucket 2 holds 2–3,
/// bucket `b` holds `2^(b-1) ..= 2^b - 1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    pub buckets: [u64; 65],
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Hist {
    pub fn record(&mut self, v: u64) {
        let b = (64 - v.leading_zeros()) as usize;
        self.buckets[b] += 1;
        self.count += 1;
        // Adversarial latencies (e.g. u64::MAX from injected faults) must
        // not wrap the running sum in debug builds.
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile (an
    /// over-approximation, exact to a factor of two). `q` is clamped to
    /// `[0, 1]`; a NaN quantile reads as 0. An empty histogram answers 0
    /// for every quantile.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if n > 0 && seen >= target {
                return if b == 0 {
                    0
                } else if b >= 64 {
                    u64::MAX
                } else {
                    (1u64 << b) - 1
                };
            }
        }
        self.max
    }
}

/// Flat counter/histogram registry, always maintained while enabled.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Counters {
    // sim-mem
    pub tlb_hits: u64,
    pub tlb_fills: u64,
    pub page_runs: Hist,
    // sim-cpu
    pub icache_fresh_hits: u64,
    pub icache_revalidations: u64,
    pub icache_decodes: u64,
    pub icache_invalidations: u64,
    pub icache_invalidated_entries: u64,
    pub icache_flushes: u64,
    /// Serialization points coalesced away because the address space's
    /// write stamp was unchanged since the last real flush — the flush
    /// would have revalidated every entry trivially.
    pub icache_flush_coalesced: u64,
    pub block_lengths: Hist,
    // sim-cpu trace engine
    pub trace_forms: u64,
    pub trace_entries: u64,
    pub trace_links: u64,
    pub trace_side_exits: u64,
    pub trace_revalidations: u64,
    pub trace_unlinks: u64,
    pub trace_aborts: u64,
    pub trace_lengths: Hist,
    // sim-kernel
    pub syscalls: u64,
    pub sigsys: u64,
    pub tracer_stops: u64,
    pub ctx_switches: u64,
    pub sud_arms: u64,
    pub sud_selector_flips: u64,
    pub pku_faults: u64,
    // sim-fault injections (architectural: identical across engines)
    pub faults_errno: u64,
    pub faults_signal: u64,
    pub faults_flip: u64,
    // interposers
    pub ptrace_hooks: u64,
    // sim-kernel coverage audit (architectural; maintained whenever the
    // kernel's audit session is live, independent of `audit_events`)
    pub audit_interposed: u64,
    pub audit_bypassed: u64,
    pub audit_double: u64,
}

impl Counters {
    /// TLB hit rate in [0, 1]; 1.0 when the TLB was never exercised.
    pub fn tlb_hit_rate(&self) -> f64 {
        let total = self.tlb_hits + self.tlb_fills;
        if total == 0 {
            1.0
        } else {
            self.tlb_hits as f64 / total as f64
        }
    }

    /// Fraction of fetches served without a full re-decode.
    pub fn icache_reuse_rate(&self) -> f64 {
        let total = self.icache_fresh_hits + self.icache_revalidations + self.icache_decodes;
        if total == 0 {
            1.0
        } else {
            (self.icache_fresh_hits + self.icache_revalidations) as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    clock: u64,
    path: u16,
}

/// One profiler sample: the simulated clock, the CPU it was taken on,
/// and the symbolized guest call stack, leaf first. Frames index
/// [`Recorder::frame_names`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfSample {
    pub clock: u64,
    pub pid: u64,
    pub tid: u64,
    pub frames: Vec<u32>,
}

/// All state captured while tracing is enabled. Returned by [`disable`]
/// for export; every field needed by exporters and tests is public.
#[derive(Debug)]
pub struct Recorder {
    pub cfg: ObsConfig,
    pub counters: Counters,
    /// Per simulated CPU (`(pid, tid)`) bounded event rings.
    pub rings: BTreeMap<(u64, u64), Ring>,
    /// Interposer path table; index 0 is always [`DIRECT_PATH`].
    pub paths: Vec<String>,
    /// Per-path syscall latency histograms (sim-cycles, enter→exit).
    pub latency: BTreeMap<u16, Hist>,
    /// Critical-path stage table; [`EventKind::SpanEnter`]'s `stage` and
    /// the [`Recorder::stage_cycles`] keys index into it.
    pub stages: Vec<String>,
    /// Per-stage span-duration histograms (sim-cycles). Besides explicit
    /// and range spans this also holds one `<path>/kernel` stage per
    /// interposer path, fed from the syscall latency samples, so the
    /// stage table decomposes a full round-trip.
    pub stage_cycles: BTreeMap<u16, Hist>,
    /// Profiler samples in capture order (the sample hook in sim-kernel
    /// fires at deterministic retired-instruction boundaries).
    pub samples: Vec<ProfSample>,
    /// Per-path coverage-audit tallies `[interposed, bypassed, double]`,
    /// keyed like [`Recorder::latency`] by path id. Fed by the kernel's
    /// audit session ([`audit_tag`]); empty unless auditing ran.
    pub audit_by_path: BTreeMap<u16, [u64; 3]>,
    /// Interned symbolized frame names; [`ProfSample::frames`] indexes it.
    pub frame_names: Vec<String>,
    frame_ids: BTreeMap<String, u32>,
    pending: BTreeMap<(u64, u64), Pending>,
    last_selector: BTreeMap<(u64, u64), u8>,
    /// Per-CPU stack of open explicit spans: `(stage, enter_clock)`.
    span_stack: BTreeMap<(u64, u64), Vec<(u16, u64)>>,
    /// Memoized `path id -> "<path>/kernel" stage id`.
    kernel_stage_ids: BTreeMap<u16, u16>,
    next_seq: u64,
}

impl Recorder {
    fn new(cfg: ObsConfig) -> Recorder {
        Recorder {
            cfg,
            counters: Counters::default(),
            rings: BTreeMap::new(),
            paths: vec![DIRECT_PATH.to_string()],
            latency: BTreeMap::new(),
            stages: Vec::new(),
            stage_cycles: BTreeMap::new(),
            samples: Vec::new(),
            audit_by_path: BTreeMap::new(),
            frame_names: Vec::new(),
            frame_ids: BTreeMap::new(),
            pending: BTreeMap::new(),
            last_selector: BTreeMap::new(),
            span_stack: BTreeMap::new(),
            kernel_stage_ids: BTreeMap::new(),
            next_seq: 0,
        }
    }

    fn record(&mut self, cpu: (u64, u64), clock: u64, kind: EventKind) {
        let cap = self.cfg.ring_capacity;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.rings
            .entry(cpu)
            .or_insert_with(|| Ring::new(cap))
            .push(Event {
                clock,
                pid: cpu.0,
                tid: cpu.1,
                seq,
                kind,
            });
    }

    /// Index of `label` in [`Recorder::paths`], interning it if new.
    fn path_id(&mut self, label: &str) -> u16 {
        if let Some(i) = self.paths.iter().position(|p| p == label) {
            return i as u16;
        }
        self.paths.push(label.to_string());
        (self.paths.len() - 1) as u16
    }

    /// Label for a path id (callers outside the crate read summaries).
    pub fn path_label(&self, id: u16) -> &str {
        self.paths.get(id as usize).map_or(DIRECT_PATH, |s| s)
    }

    /// Index of `stage` in [`Recorder::stages`], interning it if new.
    fn stage_id(&mut self, stage: &str) -> u16 {
        if let Some(i) = self.stages.iter().position(|s| s == stage) {
            return i as u16;
        }
        self.stages.push(stage.to_string());
        (self.stages.len() - 1) as u16
    }

    /// Label for a stage id.
    pub fn stage_label(&self, id: u16) -> &str {
        self.stages.get(id as usize).map_or("?", |s| s)
    }

    /// Interned `<path>/kernel` stage for an interposer path id.
    fn kernel_stage(&mut self, path: u16) -> u16 {
        if let Some(&s) = self.kernel_stage_ids.get(&path) {
            return s;
        }
        let name = format!("{}/kernel", self.path_label(path));
        let id = self.stage_id(&name);
        self.kernel_stage_ids.insert(path, id);
        id
    }

    /// Index of `name` in [`Recorder::frame_names`], interning it if new.
    fn frame_id(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.frame_ids.get(name) {
            return i;
        }
        let i = self.frame_names.len() as u32;
        self.frame_names.push(name.to_string());
        self.frame_ids.insert(name.to_string(), i);
        i
    }

    pub fn total_events(&self) -> u64 {
        self.rings.values().map(|r| r.events.len() as u64).sum()
    }

    pub fn total_dropped(&self) -> u64 {
        self.rings.values().map(|r| r.dropped).sum()
    }

    fn close_pending(&mut self, cpu: (u64, u64), clock: u64, ret: u64, nr: u64, name: &'static str) {
        if let Some(p) = self.pending.remove(&cpu) {
            let latency = clock.saturating_sub(p.clock);
            self.latency.entry(p.path).or_default().record(latency);
            let stage = self.kernel_stage(p.path);
            self.stage_cycles.entry(stage).or_default().record(latency);
            self.record(
                cpu,
                clock,
                EventKind::SyscallExit {
                    nr,
                    ret,
                    path: p.path,
                    latency,
                    name,
                },
            );
        }
    }
}

/// A registered guest-address range attributed to a named stage while
/// any instruction inside it retires (see [`register_span_range`]).
#[derive(Debug, Clone)]
struct SpanRange {
    pid: u64,
    start: u64,
    end: u64,
    stage: String,
}

/// Cached containment interval for the per-step range-span check: the
/// half-open `[lo, hi)` around the last observed RIP in which the stage
/// answer cannot change, so consecutive steps cost three compares.
#[derive(Debug, Clone, Copy)]
struct SpanCur {
    pid: u64,
    tid: u64,
    lo: u64,
    hi: u64,
    /// Inside a registered range (vs. in the gap between ranges).
    in_range: bool,
    stage: u16,
    enter_clock: u64,
}

/// `pid == u64::MAX` plus an empty interval: never matches a real CPU,
/// forcing the slow path to recompute.
const SPAN_CUR_INVALID: SpanCur = SpanCur {
    pid: u64::MAX,
    tid: u64::MAX,
    lo: 1,
    hi: 0,
    in_range: false,
    stage: 0,
    enter_clock: 0,
};

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static CLOCK: Cell<u64> = const { Cell::new(0) };
    static CPU: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
    static RECORDER: RefCell<Option<Box<Recorder>>> = const { RefCell::new(None) };
    /// `(region basename, interposer label)` registrations. Survives
    /// enable/disable cycles so interposer `install()` may run before
    /// tracing starts.
    static REGION_PATHS: RefCell<Vec<(String, String)>> = const { RefCell::new(Vec::new()) };
    /// Guest-address range → stage registrations ([`register_span_range`]).
    /// Unlike `REGION_PATHS` these are pid-scoped and only ever registered
    /// while recording, so [`enable`] clears them: stale ranges from a
    /// previous kernel (pid numbering restarts) would mis-attribute — and
    /// desynchronize the engines, since the fresh run's registrations land
    /// mid-run while the stale ones cover it from instruction zero.
    static SPAN_RANGES: RefCell<Vec<SpanRange>> = const { RefCell::new(Vec::new()) };
    static SPAN_CUR: Cell<SpanCur> = const { Cell::new(SPAN_CUR_INVALID) };
}

/// Fast gate checked by every tracepoint; `false` unless [`enable`] is
/// active on this host thread.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Starts recording on this host thread, replacing any prior recorder.
pub fn enable(cfg: ObsConfig) {
    RECORDER.with(|r| *r.borrow_mut() = Some(Box::new(Recorder::new(cfg))));
    CLOCK.with(|c| c.set(0));
    CPU.with(|c| c.set((0, 0)));
    SPAN_RANGES.with(|m| m.borrow_mut().clear());
    SPAN_CUR.with(|c| c.set(SPAN_CUR_INVALID));
    ENABLED.with(|e| e.set(true));
}

/// Resizes the event-ring capacity of the live recorder (and of rings
/// already allocated). No-op when recording is disabled. Shrinking below
/// a ring's current length stops further pushes but never discards
/// already-recorded events.
pub fn set_ring_capacity(cap: usize) {
    if !enabled() || cap == 0 {
        return;
    }
    with_rec(|r| {
        r.cfg.ring_capacity = cap;
        for ring in r.rings.values_mut() {
            ring.cap = cap;
        }
    });
}

/// Stops recording and hands the recorder to the caller for export.
pub fn disable() -> Option<Box<Recorder>> {
    ENABLED.with(|e| e.set(false));
    RECORDER.with(|r| r.borrow_mut().take())
}

/// Maps a mapped-region basename (e.g. `libk23.so`) to an interposer
/// label so syscalls issued from that region are attributed to it.
/// Idempotent; registrations persist across enable/disable cycles.
pub fn register_region_path(region: &str, label: &str) {
    let base = basename(region).to_string();
    REGION_PATHS.with(|m| {
        let mut m = m.borrow_mut();
        if !m.iter().any(|(r, _)| *r == base) {
            m.push((base, label.to_string()));
        }
    });
}

/// Clears region registrations (test isolation helper).
pub fn clear_region_paths() {
    REGION_PATHS.with(|m| m.borrow_mut().clear());
}

/// Attributes retired instructions inside `[start, end)` of guest `pid`
/// to `stage` (e.g. a trampoline page or an interposer handler's text):
/// [`span_step`] opens a span when execution enters the range and closes
/// it when execution leaves, feeding [`Recorder::stage_cycles`].
/// Idempotent per `(pid, start, end)`; cleared by the next [`enable`]
/// (ranges are pid-scoped, so they never outlive a recording session).
pub fn register_span_range(pid: u64, start: u64, end: u64, stage: &str) {
    if start >= end {
        return;
    }
    let inserted = SPAN_RANGES.with(|m| {
        let mut m = m.borrow_mut();
        if m.iter()
            .any(|r| r.pid == pid && r.start == start && r.end == end)
        {
            return false;
        }
        m.push(SpanRange {
            pid,
            start,
            end,
            stage: stage.to_string(),
        });
        true
    });
    // Only a genuinely new range can change a containment answer; an
    // idempotent re-registration must not disturb the cache (dropping it
    // mid-range would orphan the open span's exit).
    if inserted {
        SPAN_CUR.with(|c| c.set(SPAN_CUR_INVALID));
    }
}

/// Clears span-range registrations. [`enable`] does this automatically;
/// this entry point exists for callers that want a clean table without
/// (re)starting a recording session.
pub fn clear_span_ranges() {
    SPAN_RANGES.with(|m| m.borrow_mut().clear());
    SPAN_CUR.with(|c| c.set(SPAN_CUR_INVALID));
}

fn basename(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or(path)
}

fn lookup_region_label(region: &str) -> Option<String> {
    let base = basename(region);
    REGION_PATHS.with(|m| {
        m.borrow()
            .iter()
            .find(|(r, _)| r == base)
            .map(|(_, l)| l.clone())
    })
}

#[inline]
fn with_rec<F: FnOnce(&mut Recorder)>(f: F) {
    RECORDER.with(|r| {
        if let Some(rec) = r.borrow_mut().as_mut() {
            f(rec);
        }
    });
}

/// Advances the observed simulated clock; micro events emitted after
/// this call are stamped with it.
#[inline]
pub fn set_clock(clock: u64) {
    CLOCK.with(|c| c.set(clock));
}

/// Sets the simulated CPU subsequent events are attributed to.
#[inline]
pub fn set_cpu(pid: u64, tid: u64) {
    CPU.with(|c| c.set((pid, tid)));
}

// ---------------------------------------------------------------------
// Architectural tracepoints (kernel layer; caller passes the sim clock).
// ---------------------------------------------------------------------

/// Syscall entry. `region` is the mapped-region name containing the
/// syscall site (resolved to an interposer path); `name` the syscall's
/// static name.
#[inline]
pub fn syscall_enter(clock: u64, nr: u64, site: u64, region: &str, name: &'static str) {
    if !enabled() {
        return;
    }
    set_clock(clock);
    let cpu = CPU.with(|c| c.get());
    let label = lookup_region_label(region);
    with_rec(|r| {
        let path = match &label {
            Some(l) => r.path_id(l),
            None => 0,
        };
        r.counters.syscalls += 1;
        r.pending.insert(cpu, Pending { clock, path });
        r.record(
            cpu,
            clock,
            EventKind::SyscallEnter {
                nr,
                site,
                path,
                name,
            },
        );
    });
}

/// Syscall completion; pairs with the pending [`syscall_enter`] on this
/// CPU to produce the latency sample (blocked time included).
#[inline]
pub fn syscall_exit(clock: u64, nr: u64, ret: u64, name: &'static str) {
    if !enabled() {
        return;
    }
    set_clock(clock);
    let cpu = CPU.with(|c| c.get());
    with_rec(|r| r.close_pending(cpu, clock, ret, nr, name));
}

/// SUD blocked the syscall; closes the pending span with `ret =
/// u64::MAX` and emits a SIGSYS instant.
#[inline]
pub fn sigsys(clock: u64, nr: u64, site: u64, name: &'static str) {
    if !enabled() {
        return;
    }
    set_clock(clock);
    let cpu = CPU.with(|c| c.get());
    with_rec(|r| {
        r.counters.sigsys += 1;
        r.record(cpu, clock, EventKind::Sigsys { nr, site });
        r.close_pending(cpu, clock, u64::MAX, nr, name);
    });
}

/// A ptrace stop round-trip completed (after its context-switch charge).
#[inline]
pub fn tracer_stop(clock: u64, kind: &'static str) {
    if !enabled() {
        return;
    }
    set_clock(clock);
    let cpu = CPU.with(|c| c.get());
    with_rec(|r| {
        r.counters.tracer_stops += 1;
        r.record(cpu, clock, EventKind::TracerStop { kind });
    });
}

/// Scheduler switched to `(pid, tid)`; also retargets [`set_cpu`].
#[inline]
pub fn context_switch(clock: u64, pid: u64, tid: u64) {
    if !enabled() {
        return;
    }
    set_clock(clock);
    set_cpu(pid, tid);
    with_rec(|r| {
        r.counters.ctx_switches += 1;
        r.record((pid, tid), clock, EventKind::ContextSwitch);
    });
}

/// SUD armed via prctl.
#[inline]
pub fn sud_arm(clock: u64, selector_addr: u64) {
    if !enabled() {
        return;
    }
    set_clock(clock);
    let cpu = CPU.with(|c| c.get());
    with_rec(|r| {
        r.counters.sud_arms += 1;
        r.record(cpu, clock, EventKind::SudArm { selector_addr });
    });
}

/// Kernel observed the SUD selector byte at syscall entry; emits a flip
/// event when it differs from this CPU's previous observation.
#[inline]
pub fn sud_selector(clock: u64, value: u8) {
    if !enabled() {
        return;
    }
    set_clock(clock);
    let cpu = CPU.with(|c| c.get());
    with_rec(|r| {
        if r.last_selector.insert(cpu, value) != Some(value) {
            r.counters.sud_selector_flips += 1;
            r.record(cpu, clock, EventKind::SudSelectorFlip { value });
        }
    });
}

/// A protection-key (PKU) fault was raised for `addr`.
#[inline]
pub fn pku_fault(clock: u64, addr: u64) {
    if !enabled() {
        return;
    }
    set_clock(clock);
    let cpu = CPU.with(|c| c.get());
    with_rec(|r| {
        r.counters.pku_faults += 1;
        r.record(cpu, clock, EventKind::PkuFault { addr });
    });
}

/// `sim-fault` injected an errno (or partial-transfer cap) into the
/// current syscall.
#[inline]
pub fn fault_errno(clock: u64, nr: u64, kind: &'static str) {
    if !enabled() {
        return;
    }
    set_clock(clock);
    let cpu = CPU.with(|c| c.get());
    with_rec(|r| {
        r.counters.faults_errno += 1;
        r.record(cpu, clock, EventKind::FaultErrno { nr, kind });
    });
}

/// `sim-fault` injected an asynchronous signal at an instruction
/// boundary (or deterministically skipped it: no handler registered).
#[inline]
pub fn fault_signal(clock: u64, signo: u64, delivered: bool) {
    if !enabled() {
        return;
    }
    set_clock(clock);
    let cpu = CPU.with(|c| c.get());
    with_rec(|r| {
        r.counters.faults_signal += 1;
        r.record(cpu, clock, EventKind::FaultSignal { signo, delivered });
    });
}

/// `sim-fault` flipped (restore = false) or restored (restore = true)
/// a page's permissions.
#[inline]
pub fn fault_flip(clock: u64, page: u64, restore: bool) {
    if !enabled() {
        return;
    }
    set_clock(clock);
    let cpu = CPU.with(|c| c.get());
    with_rec(|r| {
        r.counters.faults_flip += 1;
        r.record(cpu, clock, EventKind::FaultPermFlip { page, restore });
    });
}

/// An interposer's ptrace hook observed a syscall-enter stop.
#[inline]
pub fn ptrace_hook() {
    if !enabled() {
        return;
    }
    with_rec(|r| r.counters.ptrace_hooks += 1);
}

/// How the kernel's coverage audit tagged one syscall (the obs-side
/// mirror of `sim_kernel::audit::AuditTag`; sim-obs sits below
/// sim-kernel in the dependency graph, so the kernel maps its tags onto
/// this when calling [`audit_tag`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditMark {
    /// Interposed via a declared handler region.
    Path,
    /// Interposed via a control transfer (SIGSYS / ptrace stop).
    Control,
    /// Observed by two interposition channels at once.
    Double,
    /// Bypassed; the payload is the pitfall-signature code.
    Bypass(&'static str),
}

/// The kernel's audit session tagged one retired syscall. Counters and
/// the per-path table update unconditionally; a ring event is emitted
/// only for bypasses and only under [`ObsConfig::audit_events`], so the
/// default event stream is identical with auditing on or off.
#[inline]
pub fn audit_tag(clock: u64, nr: u64, site: u64, region: &str, mark: AuditMark) {
    if !enabled() {
        return;
    }
    set_clock(clock);
    let cpu = CPU.with(|c| c.get());
    let label = lookup_region_label(region);
    with_rec(|r| {
        let path = match &label {
            Some(l) => r.path_id(l),
            None => 0,
        };
        let slot = r.audit_by_path.entry(path).or_insert([0; 3]);
        match mark {
            AuditMark::Path | AuditMark::Control => {
                r.counters.audit_interposed += 1;
                slot[0] += 1;
            }
            AuditMark::Double => {
                r.counters.audit_double += 1;
                slot[2] += 1;
            }
            AuditMark::Bypass(sig) => {
                r.counters.audit_bypassed += 1;
                slot[1] += 1;
                if r.cfg.audit_events {
                    r.record(cpu, clock, EventKind::AuditBypass { nr, site, sig });
                }
            }
        }
    });
}

// ---------------------------------------------------------------------
// Critical-path spans and profiler samples (simprof).
// ---------------------------------------------------------------------

/// Opens an explicit nestable span named `stage` on the current CPU.
/// Spans nest per CPU: each [`span_exit`] closes the innermost open one.
#[inline]
pub fn span_enter(clock: u64, stage: &str) {
    if !enabled() {
        return;
    }
    set_clock(clock);
    let cpu = CPU.with(|c| c.get());
    with_rec(|r| {
        let id = r.stage_id(stage);
        r.span_stack.entry(cpu).or_default().push((id, clock));
        r.record(cpu, clock, EventKind::SpanEnter { stage: id });
    });
}

/// Closes the innermost open explicit span on the current CPU, recording
/// its duration into [`Recorder::stage_cycles`]. A stray exit with no
/// open span is ignored.
#[inline]
pub fn span_exit(clock: u64) {
    if !enabled() {
        return;
    }
    set_clock(clock);
    let cpu = CPU.with(|c| c.get());
    with_rec(|r| {
        if let Some((id, t0)) = r.span_stack.get_mut(&cpu).and_then(|s| s.pop()) {
            let dur = clock.saturating_sub(t0);
            r.stage_cycles.entry(id).or_default().record(dur);
            r.record(cpu, clock, EventKind::SpanExit { stage: id, dur });
        }
    });
}

/// Per-retired-instruction hook driving the range spans registered via
/// [`register_span_range`]: `rip` is the post-step instruction pointer.
/// Both engines call it with identical `(clock, rip)` sequences, so the
/// resulting span stream is architectural. The fast path (same CPU, RIP
/// still inside the cached containment interval) is three compares.
#[inline]
pub fn span_step(clock: u64, rip: u64) {
    if !enabled() {
        return;
    }
    let (pid, tid) = CPU.with(|c| c.get());
    let cur = SPAN_CUR.with(|c| c.get());
    if pid == cur.pid && tid == cur.tid && rip >= cur.lo && rip < cur.hi {
        return;
    }
    span_step_slow(clock, rip, pid, tid);
}

#[cold]
fn span_step_slow(clock: u64, rip: u64, pid: u64, tid: u64) {
    // Compute the containment interval around `rip` for this pid: the
    // matching range, or the gap up to the nearest range boundaries so
    // steps outside every range stay on the fast path too.
    let (lo, hi, stage_name) = SPAN_RANGES.with(|m| {
        let m = m.borrow();
        let (mut lo, mut hi) = (0u64, u64::MAX);
        let mut hit: Option<(u64, u64, String)> = None;
        for r in m.iter().filter(|r| r.pid == pid) {
            if rip >= r.start && rip < r.end {
                hit = Some((r.start, r.end, r.stage.clone()));
            } else if r.end <= rip {
                lo = lo.max(r.end);
            } else {
                hi = hi.min(r.start);
            }
        }
        match hit {
            Some((s, e, n)) => (s, e, Some(n)),
            None => (lo, hi, None),
        }
    });
    let prev = SPAN_CUR.with(|c| c.get());
    with_rec(|r| {
        // Leaving a range (or being preempted inside one) closes its
        // span; the next entry opens a fresh one, so descheduled time is
        // never charged to a stage.
        if prev.pid != u64::MAX && prev.in_range {
            let dur = clock.saturating_sub(prev.enter_clock);
            r.stage_cycles.entry(prev.stage).or_default().record(dur);
            r.record(
                (prev.pid, prev.tid),
                clock,
                EventKind::SpanExit {
                    stage: prev.stage,
                    dur,
                },
            );
        }
        let (in_range, stage) = match &stage_name {
            Some(n) => {
                let id = r.stage_id(n);
                r.record((pid, tid), clock, EventKind::SpanEnter { stage: id });
                (true, id)
            }
            None => (false, 0),
        };
        SPAN_CUR.with(|c| {
            c.set(SpanCur {
                pid,
                tid,
                lo,
                hi,
                in_range,
                stage,
                enter_clock: clock,
            })
        });
    });
}

/// Stores one profiler sample: `frames` is the symbolized guest call
/// stack, leaf first, interned into [`Recorder::frame_names`].
pub fn profile_sample(clock: u64, frames: &[String]) {
    if !enabled() {
        return;
    }
    set_clock(clock);
    let cpu = CPU.with(|c| c.get());
    with_rec(|r| {
        let frames = frames.iter().map(|f| r.frame_id(f)).collect();
        r.samples.push(ProfSample {
            clock,
            pid: cpu.0,
            tid: cpu.1,
            frames,
        });
    });
}

// ---------------------------------------------------------------------
// Microarchitectural tracepoints (engine layer; stamped from the clock
// last published via `set_clock`). Ring events additionally require
// `ObsConfig::micro_events`.
// ---------------------------------------------------------------------

#[inline]
pub fn tlb_hit() {
    if !enabled() {
        return;
    }
    with_rec(|r| r.counters.tlb_hits += 1);
}

#[inline]
pub fn tlb_fill(page: u64) {
    if !enabled() {
        return;
    }
    let cpu = CPU.with(|c| c.get());
    let clock = CLOCK.with(|c| c.get());
    with_rec(|r| {
        r.counters.tlb_fills += 1;
        if r.cfg.micro_events {
            r.record(cpu, clock, EventKind::TlbFill { page });
        }
    });
}

/// Records the length in bytes of one contiguous page-run access.
#[inline]
pub fn page_run(len: u64) {
    if !enabled() {
        return;
    }
    with_rec(|r| r.counters.page_runs.record(len));
}

#[inline]
pub fn icache_fresh_hit() {
    if !enabled() {
        return;
    }
    with_rec(|r| r.counters.icache_fresh_hits += 1);
}

#[inline]
pub fn icache_revalidate(rip: u64) {
    if !enabled() {
        return;
    }
    let cpu = CPU.with(|c| c.get());
    let clock = CLOCK.with(|c| c.get());
    with_rec(|r| {
        r.counters.icache_revalidations += 1;
        if r.cfg.micro_events {
            r.record(cpu, clock, EventKind::IcacheRevalidate { rip });
        }
    });
}

#[inline]
pub fn icache_decode() {
    if !enabled() {
        return;
    }
    with_rec(|r| r.counters.icache_decodes += 1);
}

/// A store invalidated `entries` decoded instructions at `addr`.
#[inline]
pub fn icache_invalidate(addr: u64, entries: u64) {
    if !enabled() {
        return;
    }
    let cpu = CPU.with(|c| c.get());
    let clock = CLOCK.with(|c| c.get());
    with_rec(|r| {
        r.counters.icache_invalidations += 1;
        r.counters.icache_invalidated_entries += entries;
        if r.cfg.micro_events {
            r.record(cpu, clock, EventKind::IcacheInvalidate { addr, entries });
        }
    });
}

#[inline]
pub fn icache_flush() {
    if !enabled() {
        return;
    }
    with_rec(|r| r.counters.icache_flushes += 1);
}

/// A serialization point was coalesced away: the address space's write
/// stamp was unchanged since the last real flush, so every cached decode
/// would have revalidated trivially.
#[inline]
pub fn icache_flush_coalesced() {
    if !enabled() {
        return;
    }
    with_rec(|r| r.counters.icache_flush_coalesced += 1);
}

/// A hot block chain was promoted into a trace of `ops` instructions.
#[inline]
pub fn trace_form(ops: u64) {
    if !enabled() {
        return;
    }
    with_rec(|r| {
        r.counters.trace_forms += 1;
        r.counters.trace_lengths.record(ops);
    });
}

/// Execution entered a validated trace from the cold dispatcher.
#[inline]
pub fn trace_enter() {
    if !enabled() {
        return;
    }
    with_rec(|r| r.counters.trace_entries += 1);
}

/// A trace's terminal branch jumped directly into a successor trace
/// without returning to the dispatcher.
#[inline]
pub fn trace_link() {
    if !enabled() {
        return;
    }
    with_rec(|r| r.counters.trace_links += 1);
}

/// Control flow left a trace before its terminal op (branch went the
/// other way); execution fell back to the dispatcher.
#[inline]
pub fn trace_side_exit() {
    if !enabled() {
        return;
    }
    with_rec(|r| r.counters.trace_side_exits += 1);
}

/// A trace survived a generation bump: one `mem_gen` compare plus a
/// per-page version walk confirmed its decode is still current.
#[inline]
pub fn trace_revalidate() {
    if !enabled() {
        return;
    }
    with_rec(|r| r.counters.trace_revalidations += 1);
}

/// `n` traces were unlinked (invalidated) by a store, protection flip,
/// or failed revalidation.
#[inline]
pub fn trace_unlink(n: u64) {
    if !enabled() {
        return;
    }
    with_rec(|r| r.counters.trace_unlinks += n);
}

/// An in-progress trace recording was aborted (SMC, flush, or overlap
/// with a store) before it could form.
#[inline]
pub fn trace_abort() {
    if !enabled() {
        return;
    }
    with_rec(|r| r.counters.trace_aborts += 1);
}

/// Records the number of steps retired by one `run_block` invocation.
#[inline]
pub fn block_len(steps: u64) {
    if !enabled() {
        return;
    }
    with_rec(|r| r.counters.block_lengths.record(steps));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracepoints_are_noops() {
        assert!(!enabled());
        syscall_enter(1, 0, 0x1000, "app", "read");
        syscall_exit(2, 0, 0, "read");
        tlb_hit();
        tlb_fill(0x2000);
        block_len(9);
        context_switch(3, 1, 1);
        assert!(disable().is_none());
    }

    #[test]
    fn ring_is_bounded_with_drop_counter() {
        enable(ObsConfig {
            ring_capacity: 4,
            ..ObsConfig::default()
        });
        for i in 0..10 {
            context_switch(i, 1, 1);
        }
        let rec = disable().expect("recorder");
        let ring = &rec.rings[&(1, 1)];
        assert_eq!(ring.events.len(), 4);
        assert_eq!(ring.dropped, 6);
        assert_eq!(rec.total_events(), 4);
        assert_eq!(rec.total_dropped(), 6);
        assert_eq!(rec.counters.ctx_switches, 10);
    }

    #[test]
    fn syscall_latency_attributes_to_registered_path() {
        clear_region_paths();
        register_region_path("/usr/lib/libk23.so", "K23-default");
        enable(ObsConfig::default());
        set_cpu(1, 1);
        syscall_enter(100, 0, 0x7000, "libk23.so", "read");
        syscall_exit(340, 0, 5, "read");
        syscall_enter(400, 1, 0x4000, "app", "write");
        syscall_exit(520, 1, 5, "write");
        let rec = disable().expect("recorder");
        clear_region_paths();
        assert_eq!(rec.paths, vec!["direct".to_string(), "K23-default".to_string()]);
        assert_eq!(rec.latency[&1].count, 1);
        assert_eq!(rec.latency[&1].sum, 240);
        assert_eq!(rec.latency[&0].sum, 120);
        assert_eq!(rec.counters.syscalls, 2);
    }

    #[test]
    fn sigsys_closes_pending_span() {
        enable(ObsConfig::default());
        set_cpu(2, 3);
        syscall_enter(10, 500, 0x9000, "app", "nonexistent");
        sigsys(25, 500, 0x9000, "nonexistent");
        let rec = disable().expect("recorder");
        assert_eq!(rec.counters.sigsys, 1);
        let evs = &rec.rings[&(2, 3)].events;
        assert!(matches!(
            evs.last().unwrap().kind,
            EventKind::SyscallExit {
                ret: u64::MAX,
                latency: 15,
                ..
            }
        ));
    }

    #[test]
    fn selector_flip_only_on_change() {
        enable(ObsConfig::default());
        set_cpu(1, 1);
        sud_selector(5, 1);
        sud_selector(10, 1);
        sud_selector(20, 0);
        sud_selector(30, 1);
        let rec = disable().expect("recorder");
        assert_eq!(rec.counters.sud_selector_flips, 3);
    }

    #[test]
    fn micro_events_gated_by_config() {
        enable(ObsConfig::default());
        set_cpu(1, 1);
        set_clock(7);
        tlb_fill(0x1000);
        icache_revalidate(0x400);
        let rec = disable().expect("recorder");
        assert_eq!(rec.counters.tlb_fills, 1);
        assert_eq!(rec.counters.icache_revalidations, 1);
        assert_eq!(rec.total_events(), 0, "micro events off by default");

        enable(ObsConfig {
            micro_events: true,
            ..ObsConfig::default()
        });
        set_cpu(1, 1);
        set_clock(7);
        tlb_fill(0x1000);
        let rec = disable().expect("recorder");
        assert_eq!(rec.total_events(), 1);
        assert_eq!(
            rec.rings[&(1, 1)].events[0].kind,
            EventKind::TlbFill { page: 0x1000 }
        );
    }

    #[test]
    fn hist_buckets_and_quantiles() {
        let mut h = Hist::default();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1010);
        assert_eq!(h.max, 1000);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2);
        assert_eq!(h.buckets[3], 1);
        assert_eq!(h.buckets[10], 1);
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 1023);
    }

    #[test]
    fn hist_quantile_of_empty_hist_is_zero() {
        let h = Hist::default();
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn hist_quantile_clamps_out_of_range_and_nan_q() {
        let mut h = Hist::default();
        for v in [1, 2, 4, 8] {
            h.record(v);
        }
        // q outside [0, 1] clamps instead of over/under-shooting.
        assert_eq!(h.quantile(2.0), h.quantile(1.0));
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        // NaN reads as the 0-quantile, never a garbage bucket index.
        assert_eq!(h.quantile(f64::NAN), h.quantile(0.0));
        // And the empty histogram stays 0 under the same abuse.
        let e = Hist::default();
        assert_eq!(e.quantile(f64::NAN), 0);
        assert_eq!(e.quantile(7.5), 0);
    }

    #[test]
    fn audit_tags_count_without_events_unless_opted_in() {
        clear_region_paths();
        register_region_path("/usr/lib/libzpoline.so", "zpoline-default");
        enable(ObsConfig::default());
        set_cpu(1, 1);
        audit_tag(10, 0, 0x7000, "libzpoline.so", AuditMark::Path);
        audit_tag(20, 1, 0x4000, "app", AuditMark::Bypass("P2b-preinit"));
        audit_tag(30, 2, 0x7000, "libzpoline.so", AuditMark::Double);
        let rec = disable().expect("recorder");
        assert_eq!(rec.counters.audit_interposed, 1);
        assert_eq!(rec.counters.audit_bypassed, 1);
        assert_eq!(rec.counters.audit_double, 1);
        let zp = rec.paths.iter().position(|p| p == "zpoline-default").unwrap() as u16;
        assert_eq!(rec.audit_by_path[&zp], [1, 0, 1]);
        assert_eq!(rec.audit_by_path[&0], [0, 1, 0]);
        assert_eq!(rec.total_events(), 0, "no ring events by default");

        enable(ObsConfig {
            audit_events: true,
            ..ObsConfig::default()
        });
        set_cpu(1, 1);
        audit_tag(10, 1, 0x4000, "app", AuditMark::Bypass("P1a-exec"));
        audit_tag(20, 2, 0x4000, "app", AuditMark::Control);
        let rec = disable().expect("recorder");
        clear_region_paths();
        assert_eq!(rec.total_events(), 1, "only bypasses become events");
        assert_eq!(
            rec.rings[&(1, 1)].events[0].kind,
            EventKind::AuditBypass {
                nr: 1,
                site: 0x4000,
                sig: "P1a-exec"
            }
        );
    }

    #[test]
    fn hist_zero_lands_in_bucket_zero() {
        let mut h = Hist::default();
        h.record(0);
        assert_eq!(h.buckets[0], 1);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
        assert_eq!(h.max, 0);
    }

    #[test]
    fn hist_umax_lands_in_bucket_64_and_never_wraps_sum() {
        let mut h = Hist::default();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.buckets[64], 2);
        assert_eq!(h.quantile(0.5), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
        // Two MAX samples would wrap a plain `+=`; the sum saturates.
        assert_eq!(h.sum, u64::MAX);
        assert_eq!(h.max, u64::MAX);
    }

    #[test]
    fn events_carry_monotonic_sequence_numbers() {
        enable(ObsConfig::default());
        context_switch(5, 1, 1);
        context_switch(5, 2, 1);
        context_switch(5, 1, 1);
        let rec = disable().expect("recorder");
        let mut seqs: Vec<u64> = rec
            .rings
            .values()
            .flat_map(|r| r.events.iter().map(|e| e.seq))
            .collect();
        seqs.sort_unstable();
        assert_eq!(seqs, vec![0, 1, 2], "global order across rings");
    }

    #[test]
    fn explicit_spans_nest_per_cpu() {
        enable(ObsConfig::default());
        set_cpu(1, 1);
        span_enter(100, "ptrace/stop");
        span_enter(110, "ptrace/peek");
        span_exit(130); // closes peek: 20 cycles
        span_exit(200); // closes stop: 100 cycles
        span_exit(210); // stray: ignored
        let rec = disable().expect("recorder");
        assert_eq!(rec.stages, vec!["ptrace/stop", "ptrace/peek"]);
        assert_eq!(rec.stage_cycles[&0].sum, 100);
        assert_eq!(rec.stage_cycles[&1].sum, 20);
        let evs = &rec.rings[&(1, 1)].events;
        assert!(matches!(evs[0].kind, EventKind::SpanEnter { stage: 0 }));
        assert!(matches!(evs[1].kind, EventKind::SpanEnter { stage: 1 }));
        assert!(matches!(
            evs[2].kind,
            EventKind::SpanExit { stage: 1, dur: 20 }
        ));
        assert!(matches!(
            evs[3].kind,
            EventKind::SpanExit {
                stage: 0,
                dur: 100
            }
        ));
        assert_eq!(evs.len(), 4, "the stray exit emitted nothing");
    }

    #[test]
    fn range_spans_open_and_close_on_boundary_crossings() {
        enable(ObsConfig::default());
        register_span_range(1, 0x1000, 0x2000, "zpoline-trampoline");
        set_cpu(1, 1);
        span_step(10, 0x400); // outside
        span_step(20, 0x1000); // enter
        span_step(30, 0x1ff0); // inside: fast path, no event
        span_step(40, 0x2000); // exit: 20 cycles in range
        span_step(50, 0x3000); // outside: fast path
        let rec = disable().expect("recorder");
        clear_span_ranges();
        let id = rec
            .stages
            .iter()
            .position(|s| s == "zpoline-trampoline")
            .expect("stage interned") as u16;
        let h = &rec.stage_cycles[&id];
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 20);
        let evs = &rec.rings[&(1, 1)].events;
        assert_eq!(evs.len(), 2, "one enter + one exit");
        assert!(matches!(evs[0].kind, EventKind::SpanEnter { stage } if stage == id));
        assert!(matches!(evs[1].kind, EventKind::SpanExit { stage, dur: 20 } if stage == id));
    }

    #[test]
    fn range_spans_split_at_cpu_switches() {
        enable(ObsConfig::default());
        register_span_range(1, 0x1000, 0x2000, "handler");
        set_cpu(1, 1);
        span_step(10, 0x1100); // enter on (1,1)
        set_cpu(1, 2);
        span_step(30, 0x5000); // other thread outside: closes (1,1)'s span
        set_cpu(1, 1);
        span_step(40, 0x1200); // re-enter
        span_step(60, 0x9000); // exit
        let rec = disable().expect("recorder");
        clear_span_ranges();
        let h = &rec.stage_cycles[&0];
        assert_eq!(h.count, 2, "span split at the switch");
        assert_eq!(h.sum, (30 - 10) + (60 - 40));
        // The split exit is attributed to the CPU that owned the span.
        assert_eq!(rec.rings[&(1, 1)].events.len(), 4);
        assert!(!rec.rings.contains_key(&(1, 2)));
    }

    #[test]
    fn profile_samples_intern_frames() {
        enable(ObsConfig::default());
        set_cpu(1, 1);
        let stack_a = vec!["app:main".to_string(), "libc.so:_start".to_string()];
        let stack_b = vec!["app:helper".to_string(), "libc.so:_start".to_string()];
        profile_sample(100, &stack_a);
        profile_sample(200, &stack_b);
        profile_sample(300, &stack_a);
        let rec = disable().expect("recorder");
        assert_eq!(rec.samples.len(), 3);
        assert_eq!(
            rec.frame_names,
            vec!["app:main", "libc.so:_start", "app:helper"]
        );
        assert_eq!(rec.samples[0].frames, vec![0, 1]);
        assert_eq!(rec.samples[1].frames, vec![2, 1]);
        assert_eq!(rec.samples[2].frames, vec![0, 1]);
    }

    #[test]
    fn syscall_latency_feeds_kernel_stage() {
        enable(ObsConfig::default());
        set_cpu(1, 1);
        syscall_enter(100, 0, 0x7000, "app", "read");
        syscall_exit(340, 0, 5, "read");
        let rec = disable().expect("recorder");
        let id = rec
            .stages
            .iter()
            .position(|s| s == "direct/kernel")
            .expect("kernel stage") as u16;
        assert_eq!(rec.stage_cycles[&id].sum, 240);
    }
}
