//! Exporters: Chrome trace-event JSON (loadable in Perfetto or
//! `about:tracing`) and a plain-text summary. Both are pure functions of
//! the [`Recorder`] state — timestamps are sim-cycles, never wall time —
//! so identical runs export byte-identical output.

use crate::{Event, EventKind, Hist, Recorder};
use sjson::Value;
use std::fmt::Write as _;

impl Recorder {
    /// All ring events merged into one deterministic order: stable sort
    /// by `(clock, pid, tid)`, preserving per-ring insertion order.
    pub fn merged_events(&self) -> Vec<Event> {
        let mut evs: Vec<Event> = self
            .rings
            .values()
            .flat_map(|r| r.events.iter().copied())
            .collect();
        evs.sort_by_key(|e| (e.clock, e.pid, e.tid));
        evs
    }

    /// Chrome trace-event JSON object (`{"traceEvents": [...]}`).
    /// Syscalls become "B"/"E" duration pairs on the issuing thread's
    /// track; everything else becomes thread-scoped "i" instants.
    pub fn chrome_trace(&self) -> Value {
        let trace_events: Vec<Value> = self
            .merged_events()
            .iter()
            .map(|e| self.trace_event(e))
            .collect();
        Value::object(vec![
            ("traceEvents", Value::Array(trace_events)),
            ("displayTimeUnit", Value::Str("ns".into())),
            (
                "otherData",
                Value::object(vec![
                    ("clock_unit", Value::Str("sim-cycles".into())),
                    ("recorded_events", Value::UInt(self.total_events())),
                    ("dropped_events", Value::UInt(self.total_dropped())),
                    (
                        "paths",
                        Value::Array(
                            self.paths
                                .iter()
                                .map(|p| Value::Str(p.clone()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }

    /// [`Recorder::chrome_trace`] pretty-printed to a string.
    pub fn chrome_trace_json(&self) -> String {
        self.chrome_trace().to_string_pretty()
    }

    fn trace_event(&self, e: &Event) -> Value {
        let (ph, name, cat, args): (&str, String, &str, Vec<(&str, Value)>) = match e.kind {
            EventKind::SyscallEnter {
                nr,
                site,
                path,
                name,
            } => (
                "B",
                name.to_string(),
                "syscall",
                vec![
                    ("nr", Value::UInt(nr)),
                    ("site", Value::UInt(site)),
                    ("path", Value::Str(self.path_label(path).to_string())),
                ],
            ),
            EventKind::SyscallExit {
                ret, latency, name, ..
            } => (
                "E",
                name.to_string(),
                "syscall",
                vec![
                    ("ret", Value::UInt(ret)),
                    ("latency", Value::UInt(latency)),
                ],
            ),
            EventKind::Sigsys { nr, site } => (
                "i",
                "SIGSYS".to_string(),
                "signal",
                vec![("nr", Value::UInt(nr)), ("site", Value::UInt(site))],
            ),
            EventKind::TracerStop { kind } => (
                "i",
                format!("ptrace-stop:{kind}"),
                "ptrace",
                vec![],
            ),
            EventKind::ContextSwitch => ("i", "ctx-switch".to_string(), "sched", vec![]),
            EventKind::SudArm { selector_addr } => (
                "i",
                "sud-arm".to_string(),
                "sud",
                vec![("selector_addr", Value::UInt(selector_addr))],
            ),
            EventKind::SudSelectorFlip { value } => (
                "i",
                "sud-selector-flip".to_string(),
                "sud",
                vec![("value", Value::UInt(value as u64))],
            ),
            EventKind::PkuFault { addr } => (
                "i",
                "pku-fault".to_string(),
                "signal",
                vec![("addr", Value::UInt(addr))],
            ),
            EventKind::FaultErrno { nr, kind } => (
                "i",
                format!("fault-errno:{kind}"),
                "fault",
                vec![("nr", Value::UInt(nr))],
            ),
            EventKind::FaultSignal { signo, delivered } => (
                "i",
                "fault-signal".to_string(),
                "fault",
                vec![
                    ("signo", Value::UInt(signo)),
                    ("delivered", Value::UInt(delivered as u64)),
                ],
            ),
            EventKind::FaultPermFlip { page, restore } => (
                "i",
                "fault-perm-flip".to_string(),
                "fault",
                vec![
                    ("page", Value::UInt(page)),
                    ("restore", Value::UInt(restore as u64)),
                ],
            ),
            EventKind::TlbFill { page } => (
                "i",
                "tlb-fill".to_string(),
                "engine",
                vec![("page", Value::UInt(page))],
            ),
            EventKind::IcacheRevalidate { rip } => (
                "i",
                "icache-revalidate".to_string(),
                "engine",
                vec![("rip", Value::UInt(rip))],
            ),
            EventKind::IcacheInvalidate { addr, entries } => (
                "i",
                "icache-invalidate".to_string(),
                "engine",
                vec![
                    ("addr", Value::UInt(addr)),
                    ("entries", Value::UInt(entries)),
                ],
            ),
        };
        let mut pairs = vec![
            ("name", Value::Str(name)),
            ("cat", Value::Str(cat.into())),
            ("ph", Value::Str(ph.into())),
            ("ts", Value::UInt(e.clock)),
            ("pid", Value::UInt(e.pid)),
            ("tid", Value::UInt(e.tid)),
        ];
        if ph == "i" {
            pairs.push(("s", Value::Str("t".into())));
        }
        if !args.is_empty() {
            pairs.push(("args", Value::object(args)));
        }
        Value::object(pairs)
    }

    /// Counter snapshot as JSON, for embedding in benchmark payloads so
    /// perf changes regress-check hit rates, not just throughput.
    pub fn counters_json(&self) -> Value {
        let c = &self.counters;
        let hist = |h: &Hist| {
            Value::object(vec![
                ("count", Value::UInt(h.count)),
                ("mean", Value::Float(h.mean())),
                ("max", Value::UInt(h.max)),
            ])
        };
        let latency: Vec<Value> = self
            .latency
            .iter()
            .map(|(path, h)| {
                Value::object(vec![
                    ("path", Value::Str(self.path_label(*path).to_string())),
                    ("count", Value::UInt(h.count)),
                    ("mean_cycles", Value::Float(h.mean())),
                    ("p50_cycles", Value::UInt(h.quantile(0.5))),
                    ("max_cycles", Value::UInt(h.max)),
                ])
            })
            .collect();
        Value::object(vec![
            ("tlb_hits", Value::UInt(c.tlb_hits)),
            ("tlb_fills", Value::UInt(c.tlb_fills)),
            ("tlb_hit_rate", Value::Float(c.tlb_hit_rate())),
            ("page_runs", hist(&c.page_runs)),
            ("icache_fresh_hits", Value::UInt(c.icache_fresh_hits)),
            ("icache_revalidations", Value::UInt(c.icache_revalidations)),
            ("icache_decodes", Value::UInt(c.icache_decodes)),
            ("icache_reuse_rate", Value::Float(c.icache_reuse_rate())),
            ("icache_invalidations", Value::UInt(c.icache_invalidations)),
            (
                "icache_invalidated_entries",
                Value::UInt(c.icache_invalidated_entries),
            ),
            ("icache_flushes", Value::UInt(c.icache_flushes)),
            ("block_lengths", hist(&c.block_lengths)),
            ("syscalls", Value::UInt(c.syscalls)),
            ("sigsys", Value::UInt(c.sigsys)),
            ("tracer_stops", Value::UInt(c.tracer_stops)),
            ("ctx_switches", Value::UInt(c.ctx_switches)),
            ("sud_arms", Value::UInt(c.sud_arms)),
            ("sud_selector_flips", Value::UInt(c.sud_selector_flips)),
            ("pku_faults", Value::UInt(c.pku_faults)),
            ("faults_errno", Value::UInt(c.faults_errno)),
            ("faults_signal", Value::UInt(c.faults_signal)),
            ("faults_flip", Value::UInt(c.faults_flip)),
            ("ptrace_hooks", Value::UInt(c.ptrace_hooks)),
            ("recorded_events", Value::UInt(self.total_events())),
            ("dropped_events", Value::UInt(self.total_dropped())),
            ("syscall_latency", Value::Array(latency)),
        ])
    }

    /// Human-readable summary: engine hit rates, event totals, and the
    /// per-interposer syscall latency table.
    pub fn summary(&self) -> String {
        let c = &self.counters;
        let mut s = String::new();
        let _ = writeln!(s, "sim-obs summary");
        let _ = writeln!(s, "===============");
        let _ = writeln!(
            s,
            "events: {} recorded, {} dropped across {} cpu ring(s)",
            self.total_events(),
            self.total_dropped(),
            self.rings.len()
        );
        let _ = writeln!(
            s,
            "kernel: {} syscalls, {} sigsys, {} tracer stops, {} ctx switches",
            c.syscalls, c.sigsys, c.tracer_stops, c.ctx_switches
        );
        let _ = writeln!(
            s,
            "sud/pku: {} arms, {} selector flips, {} pku faults, {} ptrace hooks",
            c.sud_arms, c.sud_selector_flips, c.pku_faults, c.ptrace_hooks
        );
        let _ = writeln!(
            s,
            "injected: {} errno faults, {} signals, {} perm flips",
            c.faults_errno, c.faults_signal, c.faults_flip
        );
        let _ = writeln!(
            s,
            "tlb: {} hits, {} fills ({:.2}% hit rate)",
            c.tlb_hits,
            c.tlb_fills,
            100.0 * c.tlb_hit_rate()
        );
        let _ = writeln!(
            s,
            "icache: {} fresh, {} revalidated, {} decoded ({:.2}% reuse), {} invalidations ({} entries), {} flushes",
            c.icache_fresh_hits,
            c.icache_revalidations,
            c.icache_decodes,
            100.0 * c.icache_reuse_rate(),
            c.icache_invalidations,
            c.icache_invalidated_entries,
            c.icache_flushes
        );
        let _ = writeln!(
            s,
            "blocks: {} executed, mean {:.1} steps, max {}",
            c.block_lengths.count,
            c.block_lengths.mean(),
            c.block_lengths.max
        );
        let _ = writeln!(
            s,
            "page runs: {} accesses, mean {:.1} bytes, max {}",
            c.page_runs.count,
            c.page_runs.mean(),
            c.page_runs.max
        );
        if !self.latency.is_empty() {
            let _ = writeln!(s, "per-path syscall latency (sim-cycles):");
            let _ = writeln!(
                s,
                "  {:<24} {:>8} {:>10} {:>8} {:>8}",
                "path", "count", "mean", "p50", "max"
            );
            for (path, h) in &self.latency {
                let _ = writeln!(
                    s,
                    "  {:<24} {:>8} {:>10.1} {:>8} {:>8}",
                    self.path_label(*path),
                    h.count,
                    h.mean(),
                    h.quantile(0.5),
                    h.max
                );
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use crate::{disable, enable, syscall_enter, syscall_exit, tracer_stop, ObsConfig};

    #[test]
    fn chrome_trace_round_trips_through_sjson() {
        enable(ObsConfig::default());
        crate::set_cpu(1, 1);
        syscall_enter(100, 0, 0x1000, "app", "read");
        syscall_exit(250, 0, 42, "read");
        tracer_stop(300, "syscall-enter");
        let rec = disable().expect("recorder");
        let json = rec.chrome_trace_json();
        let parsed = sjson::parse(json.as_bytes()).expect("valid json");
        let evs = parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents");
        assert_eq!(evs.len(), 3);
        let begins = evs
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("B"))
            .count();
        assert_eq!(begins, 1, "one syscall span opens");
        assert_eq!(
            evs[0].get("ts").and_then(|t| t.as_u64()),
            Some(100),
            "timestamps are sim-cycles"
        );
        // Exporting twice is byte-identical (pure function of state).
        assert_eq!(json, rec.chrome_trace_json());
    }

    #[test]
    fn summary_contains_latency_table() {
        enable(ObsConfig::default());
        crate::set_cpu(1, 1);
        syscall_enter(10, 1, 0x1000, "app", "write");
        syscall_exit(90, 1, 1, "write");
        let rec = disable().expect("recorder");
        let s = rec.summary();
        assert!(s.contains("per-path syscall latency"));
        assert!(s.contains("direct"));
        let c = rec.counters_json();
        assert_eq!(c.get("syscalls").and_then(|v| v.as_u64()), Some(1));
    }
}
