//! Exporters: Chrome trace-event JSON (loadable in Perfetto or
//! `about:tracing`) and a plain-text summary. Both are pure functions of
//! the [`Recorder`] state — timestamps are sim-cycles, never wall time —
//! so identical runs export byte-identical output.

use crate::{Event, EventKind, Hist, Recorder};
use sjson::Value;
use std::fmt::Write as _;

impl Recorder {
    /// All ring events merged into one deterministic order: sorted by
    /// `(clock, pid, tid, seq)`. The recorder-wide sequence number breaks
    /// clock ties, so a begin/end pair emitted at the same clock (e.g. a
    /// zero-latency SyscallExit followed by the next SyscallEnter) keeps
    /// its emission order regardless of which rings the events sat in.
    pub fn merged_events(&self) -> Vec<Event> {
        let mut evs: Vec<Event> = self
            .rings
            .values()
            .flat_map(|r| r.events.iter().copied())
            .collect();
        evs.sort_by_key(|e| (e.clock, e.pid, e.tid, e.seq));
        evs
    }

    /// Chrome trace-event JSON object (`{"traceEvents": [...]}`).
    /// Syscalls become "B"/"E" duration pairs on the issuing thread's
    /// track; everything else becomes thread-scoped "i" instants.
    pub fn chrome_trace(&self) -> Value {
        let trace_events: Vec<Value> = self
            .merged_events()
            .iter()
            .map(|e| self.trace_event(e))
            .collect();
        Value::object(vec![
            ("traceEvents", Value::Array(trace_events)),
            ("displayTimeUnit", Value::Str("ns".into())),
            (
                "otherData",
                Value::object(vec![
                    ("clock_unit", Value::Str("sim-cycles".into())),
                    ("recorded_events", Value::UInt(self.total_events())),
                    ("dropped_events", Value::UInt(self.total_dropped())),
                    (
                        "paths",
                        Value::Array(
                            self.paths
                                .iter()
                                .map(|p| Value::Str(p.clone()))
                                .collect(),
                        ),
                    ),
                ]),
            ),
        ])
    }

    /// [`Recorder::chrome_trace`] pretty-printed to a string.
    pub fn chrome_trace_json(&self) -> String {
        self.chrome_trace().to_string_pretty()
    }

    fn trace_event(&self, e: &Event) -> Value {
        let (ph, name, cat, args): (&str, String, &str, Vec<(&str, Value)>) = match e.kind {
            EventKind::SyscallEnter {
                nr,
                site,
                path,
                name,
            } => (
                "B",
                name.to_string(),
                "syscall",
                vec![
                    ("nr", Value::UInt(nr)),
                    ("site", Value::UInt(site)),
                    ("path", Value::Str(self.path_label(path).to_string())),
                ],
            ),
            EventKind::SyscallExit {
                ret, latency, name, ..
            } => (
                "E",
                name.to_string(),
                "syscall",
                vec![
                    ("ret", Value::UInt(ret)),
                    ("latency", Value::UInt(latency)),
                ],
            ),
            EventKind::Sigsys { nr, site } => (
                "i",
                "SIGSYS".to_string(),
                "signal",
                vec![("nr", Value::UInt(nr)), ("site", Value::UInt(site))],
            ),
            EventKind::TracerStop { kind } => (
                "i",
                format!("ptrace-stop:{kind}"),
                "ptrace",
                vec![],
            ),
            EventKind::ContextSwitch => ("i", "ctx-switch".to_string(), "sched", vec![]),
            EventKind::SudArm { selector_addr } => (
                "i",
                "sud-arm".to_string(),
                "sud",
                vec![("selector_addr", Value::UInt(selector_addr))],
            ),
            EventKind::SudSelectorFlip { value } => (
                "i",
                "sud-selector-flip".to_string(),
                "sud",
                vec![("value", Value::UInt(value as u64))],
            ),
            EventKind::PkuFault { addr } => (
                "i",
                "pku-fault".to_string(),
                "signal",
                vec![("addr", Value::UInt(addr))],
            ),
            EventKind::FaultErrno { nr, kind } => (
                "i",
                format!("fault-errno:{kind}"),
                "fault",
                vec![("nr", Value::UInt(nr))],
            ),
            EventKind::FaultSignal { signo, delivered } => (
                "i",
                "fault-signal".to_string(),
                "fault",
                vec![
                    ("signo", Value::UInt(signo)),
                    ("delivered", Value::UInt(delivered as u64)),
                ],
            ),
            EventKind::FaultPermFlip { page, restore } => (
                "i",
                "fault-perm-flip".to_string(),
                "fault",
                vec![
                    ("page", Value::UInt(page)),
                    ("restore", Value::UInt(restore as u64)),
                ],
            ),
            EventKind::TlbFill { page } => (
                "i",
                "tlb-fill".to_string(),
                "engine",
                vec![("page", Value::UInt(page))],
            ),
            EventKind::IcacheRevalidate { rip } => (
                "i",
                "icache-revalidate".to_string(),
                "engine",
                vec![("rip", Value::UInt(rip))],
            ),
            EventKind::IcacheInvalidate { addr, entries } => (
                "i",
                "icache-invalidate".to_string(),
                "engine",
                vec![
                    ("addr", Value::UInt(addr)),
                    ("entries", Value::UInt(entries)),
                ],
            ),
            EventKind::AuditBypass { nr, site, sig } => (
                "i",
                format!("audit-bypass:{sig}"),
                "audit",
                vec![("nr", Value::UInt(nr)), ("site", Value::UInt(site))],
            ),
            EventKind::SpanEnter { stage } => (
                "B",
                self.stage_label(stage).to_string(),
                "stage",
                vec![],
            ),
            EventKind::SpanExit { stage, dur } => (
                "E",
                self.stage_label(stage).to_string(),
                "stage",
                vec![("dur", Value::UInt(dur))],
            ),
        };
        let mut pairs = vec![
            ("name", Value::Str(name)),
            ("cat", Value::Str(cat.into())),
            ("ph", Value::Str(ph.into())),
            ("ts", Value::UInt(e.clock)),
            ("pid", Value::UInt(e.pid)),
            ("tid", Value::UInt(e.tid)),
        ];
        if ph == "i" {
            pairs.push(("s", Value::Str("t".into())));
        }
        if !args.is_empty() {
            pairs.push(("args", Value::object(args)));
        }
        Value::object(pairs)
    }

    /// Counter snapshot as JSON, for embedding in benchmark payloads so
    /// perf changes regress-check hit rates, not just throughput.
    pub fn counters_json(&self) -> Value {
        let c = &self.counters;
        let hist = |h: &Hist| {
            Value::object(vec![
                ("count", Value::UInt(h.count)),
                ("mean", Value::Float(h.mean())),
                ("max", Value::UInt(h.max)),
            ])
        };
        let latency: Vec<Value> = self
            .latency
            .iter()
            .map(|(path, h)| {
                Value::object(vec![
                    ("path", Value::Str(self.path_label(*path).to_string())),
                    ("count", Value::UInt(h.count)),
                    ("mean_cycles", Value::Float(h.mean())),
                    ("p50_cycles", Value::UInt(h.quantile(0.5))),
                    ("max_cycles", Value::UInt(h.max)),
                ])
            })
            .collect();
        Value::object(vec![
            ("tlb_hits", Value::UInt(c.tlb_hits)),
            ("tlb_fills", Value::UInt(c.tlb_fills)),
            ("tlb_hit_rate", Value::Float(c.tlb_hit_rate())),
            ("page_runs", hist(&c.page_runs)),
            ("icache_fresh_hits", Value::UInt(c.icache_fresh_hits)),
            ("icache_revalidations", Value::UInt(c.icache_revalidations)),
            ("icache_decodes", Value::UInt(c.icache_decodes)),
            ("icache_reuse_rate", Value::Float(c.icache_reuse_rate())),
            ("icache_invalidations", Value::UInt(c.icache_invalidations)),
            (
                "icache_invalidated_entries",
                Value::UInt(c.icache_invalidated_entries),
            ),
            ("icache_flushes", Value::UInt(c.icache_flushes)),
            (
                "icache_flush_coalesced",
                Value::UInt(c.icache_flush_coalesced),
            ),
            ("block_lengths", hist(&c.block_lengths)),
            ("trace_forms", Value::UInt(c.trace_forms)),
            ("trace_entries", Value::UInt(c.trace_entries)),
            ("trace_links", Value::UInt(c.trace_links)),
            ("trace_side_exits", Value::UInt(c.trace_side_exits)),
            ("trace_revalidations", Value::UInt(c.trace_revalidations)),
            ("trace_unlinks", Value::UInt(c.trace_unlinks)),
            ("trace_aborts", Value::UInt(c.trace_aborts)),
            ("trace_lengths", hist(&c.trace_lengths)),
            ("syscalls", Value::UInt(c.syscalls)),
            ("sigsys", Value::UInt(c.sigsys)),
            ("tracer_stops", Value::UInt(c.tracer_stops)),
            ("ctx_switches", Value::UInt(c.ctx_switches)),
            ("sud_arms", Value::UInt(c.sud_arms)),
            ("sud_selector_flips", Value::UInt(c.sud_selector_flips)),
            ("pku_faults", Value::UInt(c.pku_faults)),
            ("faults_errno", Value::UInt(c.faults_errno)),
            ("faults_signal", Value::UInt(c.faults_signal)),
            ("faults_flip", Value::UInt(c.faults_flip)),
            ("ptrace_hooks", Value::UInt(c.ptrace_hooks)),
            ("audit_interposed", Value::UInt(c.audit_interposed)),
            ("audit_bypassed", Value::UInt(c.audit_bypassed)),
            ("audit_double", Value::UInt(c.audit_double)),
            ("recorded_events", Value::UInt(self.total_events())),
            ("dropped_events", Value::UInt(self.total_dropped())),
            ("syscall_latency", Value::Array(latency)),
        ])
    }

    /// Human-readable summary: engine hit rates, event totals, and the
    /// per-interposer syscall latency table.
    pub fn summary(&self) -> String {
        let c = &self.counters;
        let mut s = String::new();
        let _ = writeln!(s, "sim-obs summary");
        let _ = writeln!(s, "===============");
        let _ = writeln!(
            s,
            "events: {} recorded, {} dropped across {} cpu ring(s)",
            self.total_events(),
            self.total_dropped(),
            self.rings.len()
        );
        let _ = writeln!(
            s,
            "kernel: {} syscalls, {} sigsys, {} tracer stops, {} ctx switches",
            c.syscalls, c.sigsys, c.tracer_stops, c.ctx_switches
        );
        let _ = writeln!(
            s,
            "sud/pku: {} arms, {} selector flips, {} pku faults, {} ptrace hooks",
            c.sud_arms, c.sud_selector_flips, c.pku_faults, c.ptrace_hooks
        );
        let _ = writeln!(
            s,
            "injected: {} errno faults, {} signals, {} perm flips",
            c.faults_errno, c.faults_signal, c.faults_flip
        );
        let _ = writeln!(
            s,
            "tlb: {} hits, {} fills ({:.2}% hit rate)",
            c.tlb_hits,
            c.tlb_fills,
            100.0 * c.tlb_hit_rate()
        );
        let _ = writeln!(
            s,
            "icache: {} fresh, {} revalidated, {} decoded ({:.2}% reuse), {} invalidations ({} entries), {} flushes",
            c.icache_fresh_hits,
            c.icache_revalidations,
            c.icache_decodes,
            100.0 * c.icache_reuse_rate(),
            c.icache_invalidations,
            c.icache_invalidated_entries,
            c.icache_flushes
        );
        if c.icache_flush_coalesced > 0 {
            let _ = writeln!(
                s,
                "icache: {} serialization points coalesced (unchanged write stamp)",
                c.icache_flush_coalesced
            );
        }
        let _ = writeln!(
            s,
            "blocks: {} executed, mean {:.1} steps, max {}",
            c.block_lengths.count,
            c.block_lengths.mean(),
            c.block_lengths.max
        );
        // Always emitted (zero outside the trace engine) so the counter
        // snapshot has a stable shape tools can diff across engines.
        let _ = writeln!(
            s,
            "traces: {} formed (mean {:.1} ops, max {}), {} entered, {} linked, {} side exits",
            c.trace_forms,
            c.trace_lengths.mean(),
            c.trace_lengths.max,
            c.trace_entries,
            c.trace_links,
            c.trace_side_exits
        );
        let _ = writeln!(
            s,
            "traces: {} revalidated, {} unlinked, {} recordings aborted",
            c.trace_revalidations, c.trace_unlinks, c.trace_aborts
        );
        let _ = writeln!(
            s,
            "page runs: {} accesses, mean {:.1} bytes, max {}",
            c.page_runs.count,
            c.page_runs.mean(),
            c.page_runs.max
        );
        if c.audit_interposed + c.audit_bypassed + c.audit_double > 0 {
            let _ = writeln!(
                s,
                "audit: {} interposed, {} bypassed, {} double-interposed",
                c.audit_interposed, c.audit_bypassed, c.audit_double
            );
            let _ = writeln!(
                s,
                "  {:<24} {:>10} {:>10} {:>10}",
                "path", "interposed", "bypassed", "double"
            );
            for (path, [ip, by, db]) in &self.audit_by_path {
                let _ = writeln!(
                    s,
                    "  {:<24} {:>10} {:>10} {:>10}",
                    self.path_label(*path),
                    ip,
                    by,
                    db
                );
            }
        }
        if !self.latency.is_empty() {
            let _ = writeln!(s, "per-path syscall latency (sim-cycles):");
            let _ = writeln!(
                s,
                "  {:<24} {:>8} {:>10} {:>8} {:>8}",
                "path", "count", "mean", "p50", "max"
            );
            for (path, h) in &self.latency {
                let _ = writeln!(
                    s,
                    "  {:<24} {:>8} {:>10.1} {:>8} {:>8}",
                    self.path_label(*path),
                    h.count,
                    h.mean(),
                    h.quantile(0.5),
                    h.max
                );
            }
        }
        s
    }

    /// Profiler samples in folded-stack format (`a;b;c count` lines,
    /// root first), the input format of flamegraph tooling. Aggregated
    /// into a BTreeMap so the output is sorted and deterministic.
    pub fn folded_stacks(&self) -> String {
        let mut agg: std::collections::BTreeMap<String, u64> = std::collections::BTreeMap::new();
        for sample in &self.samples {
            let stack = sample
                .frames
                .iter()
                .rev()
                .map(|&f| self.frame_names[f as usize].as_str())
                .collect::<Vec<_>>()
                .join(";");
            *agg.entry(stack).or_insert(0) += 1;
        }
        let mut s = String::new();
        for (stack, n) in &agg {
            let _ = writeln!(s, "{stack} {n}");
        }
        s
    }

    /// Per-stage cycle table decomposing interposer round-trips (paper
    /// Tables 3/5): explicit spans, guest-range spans (trampolines,
    /// handler regions), and the per-path `/kernel` stages, sorted by
    /// stage name so each interposer's stages group together.
    pub fn stage_table(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "per-stage critical path (sim-cycles):");
        let _ = writeln!(
            s,
            "  {:<36} {:>8} {:>14} {:>10} {:>10}",
            "stage", "count", "total", "mean", "max"
        );
        let mut rows: Vec<(&str, &Hist)> = self
            .stage_cycles
            .iter()
            .map(|(id, h)| (self.stage_label(*id), h))
            .collect();
        rows.sort_by_key(|r| r.0);
        for (stage, h) in rows {
            let _ = writeln!(
                s,
                "  {:<36} {:>8} {:>14} {:>10.1} {:>10}",
                stage,
                h.count,
                h.sum,
                h.mean(),
                h.max
            );
        }
        s
    }

    /// Minimal flamegraph SVG built from the profiler samples: a trie of
    /// frames drawn as stacked rects, widths proportional to sample
    /// counts. Fully deterministic — colors are a pure hash of the frame
    /// name; no randomness or wall time.
    pub fn flamegraph_svg(&self) -> String {
        struct Node {
            children: std::collections::BTreeMap<String, Node>,
            total: u64,
        }
        impl Node {
            fn new() -> Node {
                Node {
                    children: std::collections::BTreeMap::new(),
                    total: 0,
                }
            }
            fn depth(&self) -> usize {
                1 + self
                    .children
                    .values()
                    .map(Node::depth)
                    .max()
                    .unwrap_or(0)
            }
        }
        let mut root = Node::new();
        for sample in &self.samples {
            root.total += 1;
            let mut node = &mut root;
            for &f in sample.frames.iter().rev() {
                let name = self.frame_names[f as usize].clone();
                node = node.children.entry(name).or_insert_with(Node::new);
                node.total += 1;
            }
        }
        const W: f64 = 1200.0;
        const ROW: usize = 16;
        let rows = root.depth();
        let height = (rows + 1) * ROW;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{W}\" height=\"{height}\" \
             font-family=\"monospace\" font-size=\"11\">"
        );
        let _ = writeln!(
            s,
            "<text x=\"4\" y=\"12\">simprof flamegraph — {} samples (widths in samples, not wall time)</text>",
            root.total
        );
        // FNV-1a of the frame name picks a stable warm hue.
        fn color(name: &str) -> String {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            let r = 200 + (h % 56) as u8;
            let g = 80 + ((h >> 8) % 120) as u8;
            let b = 40 + ((h >> 16) % 40) as u8;
            format!("rgb({r},{g},{b})")
        }
        fn draw(s: &mut String, node: &Node, x: f64, width: f64, depth: usize, root_total: u64) {
            let mut cx = x;
            for (name, child) in &node.children {
                let w = width * child.total as f64 / node.total.max(1) as f64;
                let y = (depth + 1) * ROW;
                let _ = writeln!(
                    s,
                    "<rect x=\"{cx:.1}\" y=\"{y}\" width=\"{w:.1}\" height=\"{h}\" \
                     fill=\"{fill}\" stroke=\"white\"><title>{name} ({n} of {t} samples)</title></rect>",
                    h = ROW - 1,
                    fill = color(name),
                    n = child.total,
                    t = root_total,
                );
                if w > 40.0 {
                    let _ = writeln!(
                        s,
                        "<text x=\"{tx:.1}\" y=\"{ty}\">{label}</text>",
                        tx = cx + 2.0,
                        ty = y + ROW - 4,
                        label = svg_escape_truncate(name, w),
                    );
                }
                draw(s, child, cx, w, depth + 1, root_total);
                cx += w;
            }
        }
        draw(&mut s, &root, 0.0, W, 0, root.total);
        let _ = writeln!(s, "</svg>");
        s
    }
}

/// Escapes XML specials and truncates to what fits in `width` pixels.
fn svg_escape_truncate(name: &str, width: f64) -> String {
    let max_chars = (width / 7.0) as usize;
    let mut out = String::new();
    for ch in name.chars().take(max_chars) {
        match ch {
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '&' => out.push_str("&amp;"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use crate::{
        disable, enable, profile_sample, span_enter, span_exit, syscall_enter, syscall_exit,
        tracer_stop, EventKind, ObsConfig,
    };

    #[test]
    fn chrome_trace_round_trips_through_sjson() {
        enable(ObsConfig::default());
        crate::set_cpu(1, 1);
        syscall_enter(100, 0, 0x1000, "app", "read");
        syscall_exit(250, 0, 42, "read");
        tracer_stop(300, "syscall-enter");
        let rec = disable().expect("recorder");
        let json = rec.chrome_trace_json();
        let parsed = sjson::parse(json.as_bytes()).expect("valid json");
        let evs = parsed
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents");
        assert_eq!(evs.len(), 3);
        let begins = evs
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("B"))
            .count();
        assert_eq!(begins, 1, "one syscall span opens");
        assert_eq!(
            evs[0].get("ts").and_then(|t| t.as_u64()),
            Some(100),
            "timestamps are sim-cycles"
        );
        // Exporting twice is byte-identical (pure function of state).
        assert_eq!(json, rec.chrome_trace_json());
    }

    /// Zero-latency syscalls and back-to-back spans produce B/E events
    /// at equal clocks; the seq tiebreak must keep every track's begin/
    /// end stream properly paired (depth never goes negative).
    #[test]
    fn merged_events_keep_begin_end_pairs_ordered_at_equal_clocks() {
        enable(ObsConfig::default());
        crate::set_cpu(1, 1);
        // Exit and the next enter share clock 100; two CPUs interleave.
        syscall_enter(100, 0, 0x1000, "app", "read");
        syscall_exit(100, 0, 0, "read");
        crate::set_cpu(2, 1);
        syscall_enter(100, 1, 0x2000, "app", "write");
        syscall_exit(100, 1, 0, "write");
        crate::set_cpu(1, 1);
        syscall_enter(100, 2, 0x1000, "app", "close");
        syscall_exit(100, 2, 0, "close");
        span_enter(100, "stage-x");
        span_exit(100);
        let rec = disable().expect("recorder");
        let mut depth: std::collections::BTreeMap<(u64, u64), i64> =
            std::collections::BTreeMap::new();
        let mut prev_key = (0, 0, 0, 0);
        for e in rec.merged_events() {
            let key = (e.clock, e.pid, e.tid, e.seq);
            assert!(key > prev_key, "total order with seq tiebreak");
            prev_key = key;
            let d = depth.entry((e.pid, e.tid)).or_insert(0);
            match e.kind {
                EventKind::SyscallEnter { .. } | EventKind::SpanEnter { .. } => *d += 1,
                EventKind::SyscallExit { .. } | EventKind::SpanExit { .. } => {
                    *d -= 1;
                    assert!(*d >= 0, "an E preceded its B on track {:?}", (e.pid, e.tid));
                }
                _ => {}
            }
        }
        assert!(depth.values().all(|&d| d == 0), "all pairs closed");
    }

    #[test]
    fn folded_stacks_and_flamegraph_are_deterministic() {
        enable(ObsConfig::default());
        crate::set_cpu(1, 1);
        let a = vec!["app:main".to_string(), "app:_start".to_string()];
        let b = vec![
            "libk23.so:k23_handler".to_string(),
            "app:main".to_string(),
            "app:_start".to_string(),
        ];
        profile_sample(10, &a);
        profile_sample(20, &b);
        profile_sample(30, &a);
        span_enter(5, "K23-default/handler");
        span_exit(45);
        let rec = disable().expect("recorder");
        let folded = rec.folded_stacks();
        assert_eq!(
            folded,
            "app:_start;app:main 2\napp:_start;app:main;libk23.so:k23_handler 1\n"
        );
        assert_eq!(folded, rec.folded_stacks(), "pure function of state");
        let svg = rec.flamegraph_svg();
        assert!(svg.starts_with("<svg "));
        assert!(svg.contains("k23_handler"));
        assert_eq!(svg, rec.flamegraph_svg());
        let table = rec.stage_table();
        assert!(table.contains("K23-default/handler"));
        assert!(table.contains("40"), "span duration totalled");
    }

    #[test]
    fn summary_contains_latency_table() {
        enable(ObsConfig::default());
        crate::set_cpu(1, 1);
        syscall_enter(10, 1, 0x1000, "app", "write");
        syscall_exit(90, 1, 1, "write");
        let rec = disable().expect("recorder");
        let s = rec.summary();
        assert!(s.contains("per-path syscall latency"));
        assert!(s.contains("direct"));
        let c = rec.counters_json();
        assert_eq!(c.get("syscalls").and_then(|v| v.as_u64()), Some(1));
    }
}
