//! # sim-cpu — guest execution cores
//!
//! Fetch/decode/execute for the [`sim_isa`] instruction set over a
//! [`sim_mem::AddressSpace`], with the two properties the paper's pitfall
//! analysis depends on:
//!
//! * **Deterministic cycle accounting** ([`cost`]): every instruction and
//!   kernel event has a documented cost. Experiments report overhead
//!   *ratios*, so the model is calibrated once (against the paper's Table 5
//!   native baseline) and then left alone.
//! * **A per-core decoded-instruction cache** with x86-like self-modifying
//!   code semantics: a core sees its *own* code writes immediately, but other
//!   cores may keep executing stale decodes until they serialize (`cpuid`,
//!   `fence`, or any kernel entry). Combined with non-atomic two-byte
//!   rewrites this is pitfall **P5**.

pub mod cost;
pub mod cpu;
pub mod fasthash;
pub mod trace;

pub use cost::CostModel;
pub use cpu::{BlockExit, Cpu, HookAction, IcacheMode, Step, StepEvent};
pub use fasthash::FastMap;
pub use trace::{TraceParams, TraceStat};
