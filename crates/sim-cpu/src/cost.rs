//! The deterministic cycle cost model.
//!
//! All experiment output is a *ratio* against a native baseline measured
//! under the same model, so only relative magnitudes matter. The constants
//! below are calibrated once so that the native microbenchmark loop of the
//! paper's Table 5 (a `mov`/`syscall`/`sub`/`jnz` loop around a nonexistent
//! syscall) costs ~163 cycles per iteration, matching the real machine's
//! ~50 ns (at 3.2 GHz) within a small factor. Rationale per constant:
//!
//! | constant | value | rationale |
//! |---|---|---|
//! | `KERNEL_ENTRY` | 150 | syscall + sysret + kernel entry/exit bookkeeping on a mitigated x86-64 kernel |
//! | `SUD_SLOWPATH` | 37  | once SUD is armed, *every* kernel entry takes the slow syscall path (paper §6.2.1, "SUD-no-interposition" ≈ 1.23×) |
//! | `SIGNAL_DELIVERY` | 1357 | SIGSYS frame setup + handler dispatch (dominates the 15.3× SUD row) |
//! | `SIGRETURN` | 550 | `rt_sigreturn` context restore (includes its own kernel entry) |
//! | `CONTEXT_SWITCH` | 1400 | ptrace tracer/tracee switch (two per stop) |
//! | `PTRACE_OP` | 300 | one tracer request (PEEK/GETREGS/...) — itself a syscall round trip |
//! | `HOSTCALL` | 10 | a registered host hook (the paper's "empty interposition function") |
//!
//! Instruction costs model a 4-wide out-of-order core: single-µop ALU ops
//! retire ~1/cycle, memory ops ~2, taken control flow ~2, `nop` is free in
//! the sled (the real zpoline nop sled runs at issue width; its cost is
//! absorbed into the call/branch costs).

use sim_isa::Inst;

/// Cycle costs for instructions and kernel events. One global instance
/// ([`CostModel::DEFAULT`]) is used everywhere; tests construct variants to
/// probe sensitivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Simple register ALU op.
    pub alu: u64,
    /// Memory load/store (L1 hit).
    pub mem: u64,
    /// Taken call/ret/jmp (branch + BTB).
    pub branch: u64,
    /// Push/pop (stack engine).
    pub stack: u64,
    /// `nop` (absorbed by issue width).
    pub nop: u64,
    /// Serializing instruction (`cpuid`/`fence`).
    pub serialize: u64,
    /// vDSO fast path (`vsyscall` instruction): a few loads + arithmetic.
    pub vsyscall: u64,
    /// `wrpkru`/`rdpkru`.
    pub pkru: u64,
    /// Base cost of entering + leaving the kernel for a syscall.
    pub kernel_entry: u64,
    /// Additional kernel-entry cost once SUD is armed for the thread
    /// (selector checked on every entry — even with interposition disabled).
    pub sud_slowpath: u64,
    /// Delivering a signal to a user handler.
    pub signal_delivery: u64,
    /// `rt_sigreturn` restore.
    pub sigreturn: u64,
    /// One scheduler context switch (ptrace stop/resume pays two).
    pub context_switch: u64,
    /// One ptrace request issued by the tracer.
    pub ptrace_op: u64,
    /// Invoking a registered host hook.
    pub hostcall: u64,
}

impl CostModel {
    /// The calibrated default model (see module docs).
    pub const DEFAULT: CostModel = CostModel {
        alu: 1,
        mem: 2,
        branch: 2,
        stack: 1,
        nop: 0,
        serialize: 30,
        vsyscall: 12,
        pkru: 20,
        kernel_entry: 150,
        sud_slowpath: 37,
        signal_delivery: 1357,
        sigreturn: 550,
        context_switch: 1400,
        ptrace_op: 300,
        hostcall: 10,
    };

    /// Cost of executing `inst` (not counting any kernel event it raises).
    pub fn inst_cost(&self, inst: &Inst) -> u64 {
        match inst {
            Inst::Nop => self.nop,
            Inst::Syscall | Inst::Sysenter => 0, // kernel event costed separately
            Inst::Ret | Inst::Jmp(_) | Inst::Call(_) | Inst::Jcc(..) => self.branch,
            Inst::CallReg(_) | Inst::JmpReg(_) => self.branch,
            Inst::Push(_) | Inst::Pop(_) => self.stack,
            Inst::Load(..)
            | Inst::Store(..)
            | Inst::LoadByte(..)
            | Inst::StoreByte(..)
            | Inst::BtMem(..) => self.mem,
            Inst::Cpuid | Inst::Fence => self.serialize,
            Inst::Vsyscall => self.vsyscall,
            Inst::Rdpkru | Inst::Wrpkru => self.pkru,
            Inst::Hlt | Inst::Int3 => self.alu,
            Inst::ImulReg(..) => 3,
            _ => self.alu,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::Reg;

    #[test]
    fn nop_sled_is_free() {
        let m = CostModel::DEFAULT;
        assert_eq!(m.inst_cost(&Inst::Nop), 0);
    }

    #[test]
    fn memory_slower_than_alu() {
        let m = CostModel::DEFAULT;
        assert!(m.inst_cost(&Inst::Load(Reg::Rax, Reg::Rsp, 0)) > m.inst_cost(&Inst::Nop));
        assert!(m.inst_cost(&Inst::Load(Reg::Rax, Reg::Rsp, 0)) >= m.inst_cost(&Inst::AddReg(Reg::Rax, Reg::Rbx)));
    }

    #[test]
    fn table5_native_iteration_cost_is_calibrated() {
        // The Table 5 stress loop: mov rax,500 ; syscall ; sub rcx,1 ; jnz.
        let m = CostModel::DEFAULT;
        let enosys_service = 10; // kernel-side, defined in sim-kernel
        let per_iter = m.inst_cost(&Inst::MovImm(Reg::Rax, 500))
            + m.kernel_entry
            + enosys_service
            + m.inst_cost(&Inst::SubImm(Reg::Rcx, 1))
            + m.inst_cost(&Inst::Jcc(sim_isa::Cond::Ne, -1));
        assert_eq!(per_iter, 164);
    }

    #[test]
    fn signal_path_dwarfs_kernel_entry() {
        let m = CostModel::DEFAULT;
        assert!(m.signal_delivery + m.sigreturn > 10 * m.kernel_entry);
    }
}
